//! MPI auto-instrumentation: the paper's Fig. 5 collection flow.
//!
//! ```text
//! cargo run --release --example mpi_stencil
//! ```
//!
//! A 16-rank 1-D heat-diffusion stencil runs in Virtual Node Mode with
//! **no instrumentation calls in the application code** — linking the
//! instrumented MPI library (here: [`bgp::counters::run_instrumented`])
//! brackets the whole program, one binary dump appears per node, and the
//! post-processing tools mine them into a CSV.

use bgp::arch::OpMode;
use bgp::counters::{run_instrumented, WHOLE_PROGRAM_SET};
use bgp::mpi::{bytes_to_f64s, f64s_to_bytes, JobSpec, Machine, SemOp};
use bgp::postproc::{fp_mix, mflops_per_core, stats_csv, Frame, MixCategory};

fn main() {
    let spec = JobSpec::new(16, OpMode::VirtualNode); // 4 nodes à 4 ranks
    let machine = Machine::new(spec);

    // The "application": plain MPI code, unaware of any counters.
    let (_, lib) = run_instrumented(&machine, |mut ctx| async move {
        let n = 1 << 12;
        let steps = 20;
        let mut u = ctx.alloc::<f64>(n + 2); // +2 halo cells
        for i in 1..=n {
            ctx.st(&mut u, i, if ctx.rank() == 0 && i == 1 { 1000.0 } else { 0.0 }).await;
        }
        let (rank, size) = (ctx.rank(), ctx.size());
        for _step in 0..steps {
            // Halo exchange with the neighbours.
            if rank + 1 < size {
                let edge = ctx.ld(&u, n).await;
                ctx.send(rank + 1, 1, f64s_to_bytes(&[edge])).await;
            }
            if rank > 0 {
                let v = bytes_to_f64s(&ctx.recv(Some(rank - 1), 1).await)[0];
                ctx.st(&mut u, 0, v).await;
                let edge = ctx.ld(&u, 1).await;
                ctx.send(rank - 1, 2, f64s_to_bytes(&[edge])).await;
            }
            if rank + 1 < size {
                let v = bytes_to_f64s(&ctx.recv(Some(rank + 1), 2).await)[0];
                ctx.st(&mut u, n + 1, v).await;
            }
            // Zero-flux (reflective) physical boundaries so total heat is
            // conserved and the verification below can check it.
            if rank == 0 {
                let v = ctx.ld(&u, 1).await;
                ctx.st(&mut u, 0, v).await;
            }
            if rank + 1 == size {
                let v = ctx.ld(&u, n).await;
                ctx.st(&mut u, n + 1, v).await;
            }
            // Diffusion step (vectorizable stencil).
            let mut next = ctx.alloc::<f64>(n + 2);
            for i in 1..=n {
                let um = ctx.ld(&u, i - 1).await;
                let u0 = ctx.ld(&u, i).await;
                let up = ctx.ld(&u, i + 1).await;
                if i % 2 == 0 {
                    let plan = ctx.plan_pair(true);
                    ctx.fp_pair(plan, SemOp::Add);
                    ctx.fp_pair(plan, SemOp::MulAdd);
                }
                ctx.st(&mut next, i, u0 + 0.25 * (um - 2.0 * u0 + up)).await;
            }
            ctx.overhead(n as u64);
            u = next;
            ctx.barrier().await;
        }
        // Total heat must be conserved: verify via all-reduce.
        let local: f64 = (1..=n).map(|i| u.raw(i)).sum();
        let total = ctx.allreduce_sum_f64(&[local]).await[0];
        assert!((total - 1000.0).abs() < 1e-6, "heat not conserved: {total}");
        (ctx, ())
    });

    // Fig. 5's right half: dumps -> post-processing -> csv/metrics.
    let dir = std::env::temp_dir().join("bgp_mpi_stencil_dumps");
    let paths = lib.write_dumps(&dir).expect("write dumps");
    println!("wrote {} per-node dumps to {}", paths.len(), dir.display());

    let dumps = bgp::counters::read_dumps(&dir).expect("read back");
    let frame = Frame::from_dumps(&dumps, WHOLE_PROGRAM_SET).expect("aggregate");
    let mix = fp_mix(&frame);
    println!("observed FP instructions : {}", mix.total());
    println!("SIMD fraction            : {:.1}%", 100.0 * mix.simd_fraction());
    println!(
        "single FMA fraction      : {:.1}%",
        100.0 * mix.fraction(MixCategory::SingleFma)
    );
    println!("achieved MFLOPS per core : {:.2}", mflops_per_core(&frame));

    let csv = stats_csv(&frame);
    let csv_path = dir.join("stencil_counters.csv");
    csv.write(&csv_path).expect("write csv");
    println!("full 512-counter statistics -> {}", csv_path.display());
}
