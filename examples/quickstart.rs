//! Quickstart: instrument a code snippet with the typestate session —
//! the paper's Fig. 4 usage pattern, with the protocol enforced by the
//! type system.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a single simulated Blue Gene/P node, brackets a small DAXPY
//! loop with a `Session` (`build` ≙ `BGP_Initialize`, `start`/`stop`
//! ≙ `BGP_Start`/`BGP_Stop`, `finalize` ≙ `BGP_Finalize`), and prints
//! the interesting counters of the monitored set.

use bgp::arch::events::{CoreEvent, CounterMode};
use bgp::arch::OpMode;
use bgp::counters::WHOLE_PROGRAM_SET;
use bgp::mpi::SemOp;
use bgp::{JobSpec, Machine, Session};

fn main() {
    // One node, one process (SMP/1), UPC in counter mode 0 so we can see
    // core 0's pipeline, FPU and L1/L2 events.
    let machine = Machine::new(JobSpec::new(1, OpMode::Smp1));

    let job = machine.run(|mut ctx| async move {
        let ctx = &mut ctx;
        // BGP_Initialize — the builder programs the UPC. The counter
        // mode is a per-job choice, so it rides on the builder instead
        // of the JobSpec.
        let session = Session::builder(ctx)
            .counter_mode(CounterMode::Mode0)
            .build()
            .expect("BGP_Initialize");

        // BGP_Start — opens the counting window; only now does a
        // `stop()` method exist, and it remembers the set id for us.
        let mut s = session.start(WHOLE_PROGRAM_SET).expect("BGP_Start");

        // --- the monitored snippet: y[i] += a * x[i] over 4096 doubles ---
        let a = 1.5;
        let n = 4096;
        let mut x = s.alloc::<f64>(n);
        let mut y = s.alloc::<f64>(n);
        for i in 0..n {
            s.st(&mut x, i, i as f64).await;
            s.st(&mut y, i, 1.0).await;
        }
        let mut i = 0;
        while i + 1 < n {
            // The modeled compiler decides whether this pair becomes one
            // SIMD FMA + quadword loads or two scalar FMAs.
            let plan = s.plan_pair(true);
            let (x0, x1) = s.ld2(&x, i, plan).await;
            let (y0, y1) = s.ld2(&y, i, plan).await;
            s.fp_pair(plan, SemOp::MulAdd);
            s.st2(&mut y, i, (a * x0 + y0, a * x1 + y1), plan).await;
            i += 2;
        }
        s.overhead(n as u64);
        // ------------------------------------------------------------------

        // BGP_Stop + BGP_Finalize — consuming the session closes the
        // window and hands back the job-wide dump handle.
        s.stop().expect("BGP_Stop").finalize().expect("BGP_Finalize")
    });

    // Post-process the per-node dump exactly like the paper's tools.
    let dumps = job[0].dumps().expect("dumps ready");
    let set = dumps[0].set(WHOLE_PROGRAM_SET).expect("whole-program set");
    println!("per-node dump: {} set(s), {} records", dumps[0].sets.len(), set.records);
    println!("\ncounter                       value");
    println!("---------------------------------------");
    for ev in [
        CoreEvent::InstrCompleted,
        CoreEvent::CycleCount,
        CoreEvent::FpFma,
        CoreEvent::FpSimdFma,
        CoreEvent::Quadload,
        CoreEvent::Quadstore,
        CoreEvent::LoadDouble,
        CoreEvent::L1dHit,
        CoreEvent::L1dMiss,
        CoreEvent::L2PrefetchHit,
    ] {
        let slot = ev.id(0).slot().0 as usize;
        println!("{:<29} {:>9}", ev.id(0).name(), set.counts[slot]);
    }
    let flops = 4 * set.counts[CoreEvent::FpSimdFma.id(0).slot().0 as usize]
        + 2 * set.counts[CoreEvent::FpFma.id(0).slot().0 as usize];
    let cycles = set.counts[CoreEvent::CycleCount.id(0).slot().0 as usize];
    let mflops = flops as f64 / (cycles as f64 / bgp::arch::CORE_CLOCK_HZ as f64) / 1e6;
    println!("\nachieved: {mflops:.1} MFLOPS on core 0");
}
