//! Quickstart: instrument a code snippet with the four library calls —
//! the paper's Fig. 4 usage pattern.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a single simulated Blue Gene/P node, brackets a small DAXPY
//! loop with `BGP_Initialize` / `BGP_Start` / `BGP_Stop` / `BGP_Finalize`,
//! and prints the interesting counters of the monitored set.

use bgp::arch::events::{CoreEvent, CounterMode};
use bgp::arch::OpMode;
use bgp::counters::{CounterLibrary, WHOLE_PROGRAM_SET};
use bgp::mpi::{CounterPolicy, JobSpec, Machine, SemOp};

fn main() {
    // One node, one process (SMP/1), UPC in counter mode 0 so we can see
    // core 0's pipeline, FPU and L1/L2 events.
    let mut spec = JobSpec::new(1, OpMode::Smp1);
    spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
    let machine = Machine::new(spec);
    let lib = CounterLibrary::new(machine.clone());

    let lib2 = lib.clone();
    machine.run(move |ctx| {
        lib2.bgp_initialize(ctx).expect("BGP_Initialize");

        // --- the monitored snippet: y[i] += a * x[i] over 4096 doubles ---
        lib2.bgp_start(ctx, WHOLE_PROGRAM_SET).expect("BGP_Start");
        let a = 1.5;
        let n = 4096;
        let mut x = ctx.alloc::<f64>(n);
        let mut y = ctx.alloc::<f64>(n);
        for i in 0..n {
            ctx.st(&mut x, i, i as f64);
            ctx.st(&mut y, i, 1.0);
        }
        let mut i = 0;
        while i + 1 < n {
            // The modeled compiler decides whether this pair becomes one
            // SIMD FMA + quadword loads or two scalar FMAs.
            let plan = ctx.plan_pair(true);
            let (x0, x1) = ctx.ld2(&x, i, plan);
            let (y0, y1) = ctx.ld2(&y, i, plan);
            ctx.fp_pair(plan, SemOp::MulAdd);
            ctx.st2(&mut y, i, (a * x0 + y0, a * x1 + y1), plan);
            i += 2;
        }
        ctx.overhead(n as u64);
        lib2.bgp_stop(ctx, WHOLE_PROGRAM_SET).expect("BGP_Stop");
        // ------------------------------------------------------------------

        lib2.bgp_finalize(ctx).expect("BGP_Finalize");
    });

    // Post-process the per-node dump exactly like the paper's tools.
    let dumps = lib.dumps().expect("dumps ready");
    let set = dumps[0].set(WHOLE_PROGRAM_SET).expect("whole-program set");
    println!("per-node dump: {} set(s), {} records", dumps[0].sets.len(), set.records);
    println!("\ncounter                       value");
    println!("---------------------------------------");
    for ev in [
        CoreEvent::InstrCompleted,
        CoreEvent::CycleCount,
        CoreEvent::FpFma,
        CoreEvent::FpSimdFma,
        CoreEvent::Quadload,
        CoreEvent::Quadstore,
        CoreEvent::LoadDouble,
        CoreEvent::L1dHit,
        CoreEvent::L1dMiss,
        CoreEvent::L2PrefetchHit,
    ] {
        let slot = ev.id(0).slot().0 as usize;
        println!("{:<29} {:>9}", ev.id(0).name(), set.counts[slot]);
    }
    let flops = 4 * set.counts[CoreEvent::FpSimdFma.id(0).slot().0 as usize]
        + 2 * set.counts[CoreEvent::FpFma.id(0).slot().0 as usize];
    let cycles = set.counts[CoreEvent::CycleCount.id(0).slot().0 as usize];
    let mflops = flops as f64 / (cycles as f64 / bgp::arch::CORE_CLOCK_HZ as f64) / 1e6;
    println!("\nachieved: {mflops:.1} MFLOPS on core 0");
}
