//! Hardware-parameter exploration for a custom application — the §IV
//! use case "monitor the counters for L3 Cache & DDR by varying the L3
//! cache parameters to see their effect on the L3-DDR traffic", applied
//! to your own kernel instead of a NAS benchmark.
//!
//! ```text
//! cargo run --release --example l3_explorer
//! ```
//!
//! Sweeps the L3 from 0 to 8 MB under a blocked matrix-transpose-like
//! workload and prints the per-node DDR traffic for every size.

use bgp::arch::events::CounterMode;
use bgp::arch::{MachineConfig, OpMode};
use bgp::counters::{run_instrumented, WHOLE_PROGRAM_SET};
use bgp::mpi::{CounterPolicy, JobSpec, Machine};
use bgp::postproc::{ddr_traffic_bytes_per_node, l3_miss_ratio, Frame};

/// The user application: a tiled out-of-place transpose of a matrix that
/// is larger than any single cache level.
async fn transpose_workload(mut ctx: bgp::mpi::RankCtx) -> (bgp::mpi::RankCtx, ()) {
    let n = 384; // 384×384 doubles ≈ 1.1 MB per matrix per rank
    let tile = 16;
    let mut a = ctx.alloc::<f64>(n * n);
    let mut b = ctx.alloc::<f64>(n * n);
    for i in 0..n * n {
        ctx.st(&mut a, i, i as f64).await;
    }
    for ti in (0..n).step_by(tile) {
        for tj in (0..n).step_by(tile) {
            for i in ti..ti + tile {
                for j in tj..tj + tile {
                    let v = ctx.ld(&a, i * n + j).await;
                    ctx.st(&mut b, j * n + i, v).await;
                }
            }
            ctx.overhead((tile * tile) as u64);
        }
    }
    // Verify a few entries.
    assert_eq!(b.raw(5 * n + 7), (7 * n + 5) as f64);
    (ctx, ())
}

fn main() {
    println!("l3_mb, ddr_traffic_mb_per_node, l3_miss_ratio");
    for mb in [0usize, 2, 4, 6, 8] {
        let mut spec = JobSpec::new(4, OpMode::VirtualNode); // one full chip
        spec.machine = MachineConfig::default().with_l3_bytes(mb << 20);
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode2);
        let machine = Machine::new(spec);
        let (_, lib) = run_instrumented(&machine, transpose_workload);
        let frame = Frame::from_dumps(&lib.dumps().expect("dumps"), WHOLE_PROGRAM_SET)
            .expect("aggregate");
        println!(
            "{mb}, {:.2}, {:.4}",
            ddr_traffic_bytes_per_node(&frame) / 1e6,
            l3_miss_ratio(&frame),
        );
    }
    println!("\n(expect traffic to collapse once the ~2.2 MB working set fits)");
}
