//! Hybrid MPI+OpenMP — the paper's §IX outlook ("we are also curious to
//! see the performance of using OpenMP with MPI on the multicore nodes").
//!
//! ```text
//! cargo run --release --example hybrid_openmp
//! ```
//!
//! The same total work (a 3-D Jacobi relaxation) runs three ways on two
//! simulated nodes:
//!
//! * **VNM**      — 8 single-threaded MPI ranks (4 per node),
//! * **Dual**     — 4 MPI ranks × 2 OpenMP threads,
//! * **SMP/4**    — 2 MPI ranks × 4 OpenMP threads,
//!
//! and reports per-node execution time and the DDR traffic of each
//! configuration.

use bgp::arch::events::CounterMode;
use bgp::arch::OpMode;
use bgp::counters::{run_instrumented, WHOLE_PROGRAM_SET};
use bgp::mpi::{CounterPolicy, JobSpec, Machine, RankCtx, SemOp};
use bgp::postproc::{ddr_traffic_bytes_per_node, Frame};

/// Per-*node* problem volume: each configuration splits the same number
/// of grid points across its ranks/threads.
const POINTS_PER_NODE: usize = 1 << 17; // 128 Ki points ≈ 3 MB of state
const SWEEPS: usize = 10;

async fn jacobi(mut ctx: RankCtx, points_per_rank: usize) -> (RankCtx, ()) {
    let n = points_per_rank;
    let mut u = ctx.alloc::<f64>(n);
    let mut v = ctx.alloc::<f64>(n);
    for i in 0..n {
        ctx.st(&mut u, i, (i % 97) as f64).await;
    }
    for _ in 0..SWEEPS {
        // Threads split the sweep; each works on its own contiguous
        // stripe through its own core's L1/L2.
        for (t, range) in ctx.omp_chunks(n) {
            ctx.set_thread(t);
            for i in range {
                let um = if i > 0 { ctx.ld(&u, i - 1).await } else { 0.0 };
                let u0 = ctx.ld(&u, i).await;
                let up = if i + 1 < n { ctx.ld(&u, i + 1).await } else { 0.0 };
                if i % 2 == 0 {
                    let plan = ctx.plan_pair(true);
                    ctx.fp_pair(plan, SemOp::Add);
                    ctx.fp_pair(plan, SemOp::MulAdd);
                }
                ctx.st(&mut v, i, (um + up + 2.0 * u0) * 0.25).await;
            }
            ctx.overhead((n / ctx.threads()) as u64);
        }
        ctx.omp_join();
        std::mem::swap(&mut u, &mut v);
        // Rank-level sync each sweep, like a halo exchange would impose.
        ctx.barrier().await;
    }
    // Sanity: values stay bounded (the operator averages).
    assert!(u.raw(n / 2).is_finite());
    (ctx, ())
}

fn main() {
    println!(
        "{:<22} {:>6} {:>8} {:>14} {:>16}",
        "configuration", "ranks", "threads", "node cycles", "ddr MB/node"
    );
    for (label, mode, ranks) in [
        ("VNM (4 ranks/node)", OpMode::VirtualNode, 8usize),
        ("Dual (2r x 2t /node)", OpMode::Dual, 4),
        ("SMP/4 (1r x 4t /node)", OpMode::Smp4, 2),
    ] {
        let mut spec = JobSpec::new(ranks, mode);
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode2);
        let machine = Machine::new(spec);
        assert_eq!(machine.num_nodes(), 2);
        let ppn = mode.processes_per_node();
        let points_per_rank = POINTS_PER_NODE / ppn;
        let (_, lib) = run_instrumented(&machine, move |ctx| jacobi(ctx, points_per_rank));
        let frame = Frame::from_dumps(&lib.dumps().expect("dumps"), WHOLE_PROGRAM_SET)
            .expect("aggregate");
        println!(
            "{:<22} {:>6} {:>8} {:>14} {:>16.2}",
            label,
            ranks,
            mode.threads_per_process(),
            machine.job_cycles(),
            ddr_traffic_bytes_per_node(&frame) / 1e6,
        );
    }
    println!("\nAll three keep every core busy; the differences come from rank-level");
    println!("synchronization granularity and per-thread cache footprints.");
}
