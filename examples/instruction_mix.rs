//! Compiler-flag exploration — the §IV use case "analyze the dynamic
//! instruction profile of the applications for different compiler
//! optimizations and infer their effectiveness", on a small dense
//! matrix-multiply kernel.
//!
//! ```text
//! cargo run --release --example instruction_mix
//! ```

use bgp::arch::events::CounterMode;
use bgp::arch::OpMode;
use bgp::compiler::{CompileOpts, QArch};
use bgp::counters::{run_instrumented, WHOLE_PROGRAM_SET};
use bgp::mpi::{CounterPolicy, JobSpec, Machine, SemOp};
use bgp::postproc::{fp_mix, mflops_per_core, Frame, MixCategory};

async fn matmul(mut ctx: bgp::mpi::RankCtx) -> (bgp::mpi::RankCtx, ()) {
    let n = 64;
    let mut a = ctx.alloc::<f64>(n * n);
    let mut b = ctx.alloc::<f64>(n * n);
    let mut c = ctx.alloc::<f64>(n * n);
    for i in 0..n * n {
        ctx.st(&mut a, i, (i % 17) as f64).await;
        ctx.st(&mut b, i, (i % 11) as f64).await;
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            // The k-loop walks rows of a and (transposed-friendly) b —
            // unit-stride pairs the compiler may SIMD-ize.
            let mut k = 0;
            while k < n {
                let plan = ctx.plan_pair(true);
                let (a0, a1) = ctx.ld2(&a, i * n + k, plan).await;
                let (b0, b1) = ctx.ld2(&b, j * n + k, plan).await;
                ctx.fp_pair(plan, SemOp::MulAdd);
                acc += a0 * b0 + a1 * b1;
                k += 2;
            }
            ctx.st(&mut c, i * n + j, acc).await;
            ctx.overhead(n as u64);
        }
    }
    (ctx, ())
}

fn run_with(compile: CompileOpts) -> (Frame, u64) {
    let mut spec = JobSpec::new(1, OpMode::Smp1);
    spec.compile = compile;
    spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
    let machine = Machine::new(spec);
    let (_, lib) = run_instrumented(&machine, matmul);
    let frame = Frame::from_dumps(&lib.dumps().expect("dumps"), WHOLE_PROGRAM_SET)
        .expect("aggregate");
    let cycles = machine.job_cycles();
    (frame, cycles)
}

fn main() {
    println!(
        "{:<24} {:>10} {:>8} {:>9} {:>9} {:>8}",
        "build", "cycles", "MFLOPS", "FMA%", "SIMD-FMA%", "quadld"
    );
    let mut builds = vec![CompileOpts::baseline()];
    for base in [CompileOpts::o3(), CompileOpts::o4(), CompileOpts::o5()] {
        builds.push(base.with_qarch(QArch::Ppc440));
        builds.push(base);
    }
    for compile in builds {
        let (frame, cycles) = run_with(compile);
        let mix = fp_mix(&frame);
        let quadloads = frame.sum(bgp::arch::events::CoreEvent::Quadload.id(0));
        println!(
            "{:<24} {:>10} {:>8.1} {:>8.1}% {:>8.1}% {:>8}",
            compile.label(),
            cycles,
            mflops_per_core(&frame),
            100.0 * mix.fraction(MixCategory::SingleFma),
            100.0 * mix.fraction(MixCategory::SimdFma),
            quadloads,
        );
    }
    println!("\n(the -qarch=440d builds convert FMA pairs into SIMD FMAs + quadloads,");
    println!(" exactly the effect the paper reads off Figs. 7-10)");
}
