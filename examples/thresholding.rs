//! Thresholding: the UPC feature the paper highlights for dynamic
//! feedback — "raising an interrupt when specific counters reach
//! corresponding thresholds … provides feedback to the various system
//! optimization tasks like data placements".
//!
//! ```text
//! cargo run --release --example thresholding
//! ```
//!
//! A worker walks an array with a cache-hostile stride while an L1-miss
//! threshold is armed. When the interrupt fires, the "runtime" reacts by
//! switching to a sequential layout — and the miss rate collapses. The
//! example also pokes the memory-mapped register file directly, the way
//! a system-service monitoring thread would.

use bgp::arch::events::{CoreEvent, CounterMode};
use bgp::arch::OpMode;
use bgp::mpi::{CounterPolicy, JobSpec, Machine};
use bgp::upc::regfile::{RegFile, OFF_CONTROL};
use bgp::upc::CounterConfig;

fn main() {
    let mut spec = JobSpec::new(1, OpMode::Smp1);
    spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
    let machine = Machine::new(spec);

    // Arm a threshold on core 0's L1-D miss counter.
    let miss_slot = CoreEvent::L1dMiss.id(0).slot().0;
    const THRESHOLD: u64 = 20_000;
    machine.with_node(0, |node| {
        let upc = node.upc_mut();
        upc.configure(miss_slot, CounterConfig { interrupt_enable: true, ..Default::default() });
        upc.set_threshold(miss_slot, THRESHOLD);
        upc.set_enabled(true);
    });

    let m2 = machine.clone();
    machine.run(move |mut ctx| {
        let m2 = m2.clone();
        async move {
        let ctx = &mut ctx;
        let n = 1 << 16; // 64Ki doubles = 512 KB, far beyond L1
        let v = ctx.alloc::<f64>(n);
        let mut layout_bad = true;
        let mut touched = 0u64;
        let mut switched_at = None;
        let stride = 577; // pseudo-random walk, misses constantly
        let mut pos = 0usize;
        for step in 0..200_000u64 {
            if layout_bad {
                pos = (pos + stride) % n;
            } else {
                pos = (pos + 1) % n;
            }
            let _ = ctx.ld(&v, pos).await;
            touched += 1;
            // Poll the interrupt queue every once in a while, like a
            // monitoring thread woken by the UPC interrupt line.
            if step % 1024 == 0 && layout_bad {
                let irqs = m2.with_node(0, |node| node.upc_mut().take_interrupts());
                if let Some(irq) = irqs.first() {
                    println!(
                        "threshold interrupt: {} reached {} (threshold {}) after {} accesses",
                        irq.event.name(),
                        irq.value,
                        irq.threshold,
                        touched
                    );
                    layout_bad = false;
                    switched_at = Some(touched);
                }
            }
        }
        let switched_at = switched_at.expect("the stride walk must trip the threshold");
        println!("switched to streaming layout after {switched_at} accesses");
        }
    });

    // Inspect the final state through the memory-mapped register file,
    // like a system service would.
    machine.with_node(0, |node| {
        let misses = node.upc().read(miss_slot);
        let mut rf = RegFile::new(node.upc_mut());
        let control = rf.load(OFF_CONTROL).expect("control register");
        println!("final L1-D miss counter  : {misses}");
        println!("UPC control register     : {control:#x} (enabled, mode 0)");
        let s = node.mem_stats();
        println!(
            "ground truth: {} hits / {} misses ({:.1}% miss rate over the whole run)",
            s.l1d_hits,
            s.l1d_misses,
            100.0 * s.l1d_misses as f64 / (s.l1d_hits + s.l1d_misses) as f64
        );
    });
}
