//! # bgp — Blue Gene/P performance-counter workload characterization, reproduced
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and DESIGN.md for the paper-to-module map.
//!
//! The short story: [`arch`] is the vocabulary, [`mem`]/[`fpu`]/[`upc`]/
//! [`net`] are the hardware blocks, [`node`] assembles them into a compute
//! node, [`compiler`] models the XL compiler's instruction selection,
//! [`mpi`] runs ranks across nodes, [`counters`] is the paper's interface
//! library, [`postproc`] mines the dumps, [`nas`] holds the NAS parallel
//! benchmark kernels, [`faults`] injects deterministic, seeded
//! failures so collection and aggregation can be tested under fire, and
//! [`trace`] is the deterministic flight recorder: per-rank ring-buffer
//! timelines in simulated cycles, exported as Chrome-trace JSON and
//! per-phase metrics CSV (enable via [`JobSpec`]`::trace` or
//! `Session::builder(ctx).trace(..)`). [`snapshot`] is the checkpoint
//! container: enable periodic snapshots via [`JobSpec`]`::checkpoint`
//! and resume a crashed job byte-identically with `Machine::resume`
//! (or let `counters::supervisor::supervise` do both automatically).
//! [`serve`] turns determinism into a service: a std-only TCP daemon
//! (`bgpc-serve`) that treats submitted [`JobSpec`]s as traffic and
//! deterministic results as cache hits — content-addressed by
//! `(spec fingerprint, seed)`, coalescing identical in-flight jobs,
//! backpressuring with 429-style rejects, and streaming live phase
//! updates (drive it with `bgpc-load`). The shared hand-rolled JSON
//! layer all of this rides on is re-exported as [`json`].
//!
//! ## The Session API
//!
//! Instrumentation goes through the typestate [`Session`]: the
//! initialize → start → stop → finalize protocol of the paper's
//! interface library is enforced by the type system, so out-of-order
//! calls do not compile. One unified [`Error`]/[`Result`] covers the
//! whole workspace (every crate already reports through it).
//!
//! Kernels are `async`: every blocking point (memory walk, message,
//! collective) is an explicit `.await` suspension, so a fixed worker
//! pool can multiplex any number of ranks without one OS thread each.
//!
//! ```
//! use bgp::{JobSpec, Machine, Session};
//! use bgp::arch::OpMode;
//! use bgp::mpi::SemOp;
//!
//! let machine = Machine::new(JobSpec::new(2, OpMode::VirtualNode));
//! let dumps = machine.run(|mut ctx| async move {
//!     let mut session = Session::builder(&mut ctx).build()?.start(0)?;
//!     session.fp1(SemOp::MulAdd); // the measured region
//!     session.stop()?.finalize()
//! });
//! let job = dumps.into_iter().next().unwrap().unwrap();
//! assert_eq!(job.dumps().unwrap().len(), 1);
//! ```
//!
//! ## Migrating from the four-call API
//!
//! The free-standing `bgp_initialize` / `bgp_start` / `bgp_stop` /
//! `bgp_finalize` quadruple on [`counters::CounterLibrary`] has been
//! **removed**; the typestate [`Session`] and the rank-execution entry
//! points (`Machine::run`, `counters::run_instrumented`,
//! `counters::supervisor::supervise`) are the only public ways in.
//! Each old call maps onto one session transition:
//!
//! | Before (removed)               | After                                   |
//! |--------------------------------|-----------------------------------------|
//! | `CounterLibrary::new(machine)` | *(implicit — sessions share the per-machine library)* |
//! | `lib.bgp_initialize(ctx)?`     | `let s = Session::builder(ctx).build()?` |
//! | `lib.bgp_start(ctx, set)?`     | `let s = s.start(set)?`                  |
//! | *(run the measured kernel)*    | run it on `s` (derefs to `RankCtx`) or `s.ctx()` |
//! | `lib.bgp_stop(ctx, set)?`      | `let s = s.stop()?` *(set id from the typestate)* |
//! | `lib.bgp_finalize(ctx)?`       | `let dump = s.finalize()?`               |
//! | `lib.dumps()?`                 | `dump.dumps()?`                          |
//!
//! Whole-program instrumentation (the paper's "link the instrumented
//! MPI library" flow) is `counters::run_instrumented(&machine, |ctx| ...)`,
//! whose kernel takes the [`RankCtx`] by value and hands it back:
//! `move |ctx| kernel.exec(class, ctx)`.
//!
//! What used to be runtime protocol errors — start before initialize,
//! nested sets, mismatched stop, finalize with an open set — are now
//! compile errors: the methods simply do not exist on the wrong state.
//! Runtime errors remain only where the type system cannot see them
//! (divergent SPMD usage across ranks of one node).

#![forbid(unsafe_code)]

pub use bgp_arch as arch;
pub use bgp_compiler as compiler;
pub use bgp_core as counters;
pub use bgp_faults as faults;
pub use bgp_fpu as fpu;
pub use bgp_mem as mem;
pub use bgp_mpi as mpi;
pub use bgp_nas as nas;
pub use bgp_net as net;
pub use bgp_node as node;
pub use bgp_postproc as postproc;
pub use bgp_serve as serve;
pub use bgp_snapshot as snapshot;
pub use bgp_trace as trace;
pub use bgp_upc as upc;

/// The workspace's shared wire-text layer (writer builders + parser),
/// re-exported from [`trace`] where it grew up.
pub use bgp_trace::json;

/// The workspace-wide error type (every crate reports through it).
pub use bgp_arch::BgpError as Error;

/// Workspace-wide result alias over [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

pub use bgp_core::{Counting, Initialized, JobDump, Session, SessionBuilder};
pub use bgp_mpi::{JobSpec, Machine, RankCtx};
