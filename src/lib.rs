//! # bgp — Blue Gene/P performance-counter workload characterization, reproduced
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and DESIGN.md for the paper-to-module map.
//!
//! The short story: [`arch`] is the vocabulary, [`mem`]/[`fpu`]/[`upc`]/
//! [`net`] are the hardware blocks, [`node`] assembles them into a compute
//! node, [`compiler`] models the XL compiler's instruction selection,
//! [`mpi`] runs ranks across nodes, [`counters`] is the paper's interface
//! library, [`postproc`] mines the dumps, [`nas`] holds the NAS parallel
//! benchmark kernels, and [`faults`] injects deterministic, seeded
//! failures so collection and aggregation can be tested under fire.

#![forbid(unsafe_code)]

pub use bgp_arch as arch;
pub use bgp_compiler as compiler;
pub use bgp_core as counters;
pub use bgp_faults as faults;
pub use bgp_fpu as fpu;
pub use bgp_mem as mem;
pub use bgp_mpi as mpi;
pub use bgp_nas as nas;
pub use bgp_net as net;
pub use bgp_node as node;
pub use bgp_postproc as postproc;
pub use bgp_upc as upc;
