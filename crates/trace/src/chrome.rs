//! Chrome-trace / Perfetto JSON timeline exporter.
//!
//! Output follows the Trace Event Format accepted by `chrome://tracing`
//! and [ui.perfetto.dev](https://ui.perfetto.dev): a top-level object
//! with a `traceEvents` array. Streams map onto the viewer's
//! process/thread tree:
//!
//! * `pid 0 / tid 0` — the scheduler stream (phase resolutions,
//!   message deliveries, collective completions);
//! * `pid node+1 / tid rank` — each rank's stream, grouped by its
//!   hosting node.
//!
//! Timestamps (`ts`) are **simulated cycles**, not microseconds — the
//! viewer's absolute time axis reads in cycles. Serialization order is
//! canonical (metadata, scheduler stream, rank streams ascending by
//! rank) and every map is a `Vec`, so the rendered bytes are a pure
//! function of the recorded streams: byte-identical across
//! `BGP_SIM_THREADS` values.

use crate::json::{self, push_str_escaped, Value};
use crate::{ArgValue, EventKind, JobTrace};
use std::fmt::Write as _;

/// Render `trace` as a Chrome-trace JSON document.
pub fn render(trace: &JobTrace) -> String {
    let mut out = String::with_capacity(256 + trace.total_events() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;

    // Metadata: name the scheduler pseudo-process and every node/rank.
    meta(&mut out, &mut first, "process_name", 0, 0, "scheduler");
    meta(&mut out, &mut first, "thread_name", 0, 0, "phase resolver");
    let mut named_nodes: Vec<usize> = Vec::new();
    for rt in &trace.ranks {
        if !named_nodes.contains(&rt.node) {
            named_nodes.push(rt.node);
            meta(
                &mut out,
                &mut first,
                "process_name",
                rt.node as u64 + 1,
                0,
                &format!("node {}", rt.node),
            );
        }
        meta(
            &mut out,
            &mut first,
            "thread_name",
            rt.node as u64 + 1,
            rt.rank as u64,
            &format!("rank {}", rt.rank),
        );
    }

    // Scheduler stream, then rank streams in rank order.
    for e in &trace.sched {
        event(&mut out, &mut first, 0, 0, e.cycle, &e.kind);
    }
    for rt in &trace.ranks {
        for e in &rt.events {
            event(&mut out, &mut first, rt.node as u64 + 1, rt.rank as u64, e.cycle, &e.kind);
        }
    }

    let _ = write!(
        out,
        "\n],\"otherData\":{{\"dropped_events\":{},\"clock\":\"simulated_cycles\"}}}}\n",
        trace.total_dropped()
    );
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn meta(out: &mut String, first: &mut bool, what: &str, pid: u64, tid: u64, name: &str) {
    sep(out, first);
    let _ = write!(out, "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":");
    push_str_escaped(out, name);
    out.push_str("}}");
}

fn event(out: &mut String, first: &mut bool, pid: u64, tid: u64, ts: u64, kind: &EventKind) {
    sep(out, first);
    // Counter samples render as Chrome counter tracks ("C"); everything
    // else is a thread-scoped instant ("i").
    let is_counter =
        matches!(kind, EventKind::CounterSample { .. } | EventKind::MemWindow { .. });
    let ph = if is_counter { "C" } else { "i" };
    out.push_str("{\"name\":\"");
    out.push_str(kind.name());
    let _ = write!(out, "\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}", kind.category());
    if !is_counter {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in kind.args().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        match v {
            ArgValue::Num(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::Text(s) => push_str_escaped(out, s),
        }
    }
    out.push_str("}}");
}

/// One event read back from a Chrome-trace document (metadata events
/// are skipped). Used by the round-trip test and `bgpc-trace` tooling.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedEvent {
    /// Event name (`EventKind::name`).
    pub name: String,
    /// Category (`EventKind::category`).
    pub cat: String,
    /// Phase letter (`"i"` instant, `"C"` counter).
    pub ph: String,
    /// Timestamp in simulated cycles.
    pub ts: u64,
    /// Process id (0 = scheduler, node+1 otherwise).
    pub pid: u64,
    /// Thread id (rank, or 0 for the scheduler stream).
    pub tid: u64,
    /// Arguments in serialization order.
    pub args: Vec<(String, ArgValue)>,
}

/// Parse a Chrome-trace document rendered by [`render`] back into its
/// non-metadata events, preserving order.
///
/// # Errors
/// Returns a description of the first structural problem.
pub fn parse(doc: &str) -> Result<Vec<ParsedEvent>, String> {
    let root = json::parse(doc)?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    let mut out = Vec::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or("event missing ph")?
            .to_string();
        if ph == "M" {
            continue;
        }
        let field_u64 = |key: &str| {
            ev.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event missing numeric {key}"))
        };
        let mut args = Vec::new();
        if let Some(Value::Object(members)) = ev.get("args") {
            for (k, v) in members {
                let arg = match v {
                    Value::Num(_) => ArgValue::Num(
                        v.as_u64().ok_or_else(|| format!("non-u64 arg {k}"))?,
                    ),
                    Value::Str(s) => ArgValue::Text(s.clone()),
                    other => return Err(format!("unexpected arg type for {k}: {other:?}")),
                };
                args.push((k.clone(), arg));
            }
        }
        out.push(ParsedEvent {
            name: ev
                .get("name")
                .and_then(Value::as_str)
                .ok_or("event missing name")?
                .to_string(),
            cat: ev
                .get("cat")
                .and_then(Value::as_str)
                .ok_or("event missing cat")?
                .to_string(),
            ph,
            ts: field_u64("ts")?,
            pid: field_u64("pid")?,
            tid: field_u64("tid")?,
            args,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultEvent, RankTrace, TraceEvent, WaitKind};

    fn sample_trace() -> JobTrace {
        let sched = vec![
            TraceEvent {
                cycle: 900,
                kind: EventKind::MsgDeliver { src: 0, dst: 1, tag: 7, bytes: 4096, queue_cycles: 12 },
            },
            TraceEvent { cycle: 905, kind: EventKind::CollComplete { slot: 1 } },
            TraceEvent {
                cycle: 910,
                kind: EventKind::PhaseResolve {
                    phase: 0,
                    delivered: 1,
                    delivered_bytes: 4096,
                    woken: 2,
                    collectives: 1,
                    peak_link_bytes: 4096,
                    links_loaded: 3,
                },
            },
        ];
        let r0 = vec![
            TraceEvent { cycle: 10, kind: EventKind::SessionInit },
            TraceEvent { cycle: 20, kind: EventKind::SessionStart { set: 2 } },
            TraceEvent {
                cycle: 100,
                kind: EventKind::MsgSend { dst: 1, tag: 7, bytes: 4096 },
            },
            TraceEvent {
                cycle: 150,
                kind: EventKind::RankPark { wait: WaitKind::Collective { slot: 1 } },
            },
            TraceEvent { cycle: 910, kind: EventKind::RankWake },
            TraceEvent {
                cycle: 920,
                kind: EventKind::CounterSample { slot: 3, value: u64::MAX },
            },
            TraceEvent {
                cycle: 930,
                kind: EventKind::MemWindow {
                    window: 4,
                    l3_hits: 100,
                    l3_misses: 7,
                    ddr_reads: 5,
                    ddr_writes: 2,
                },
            },
            TraceEvent {
                cycle: 940,
                kind: EventKind::Fault(FaultEvent::CounterBitFlip { slot: 9, bit: 31 }),
            },
        ];
        let r1 = vec![
            TraceEvent {
                cycle: 90,
                kind: EventKind::RankPark {
                    wait: WaitKind::Recv { src: Some(0), tag: 7 },
                },
            },
            TraceEvent { cycle: 912, kind: EventKind::RankWake },
        ];
        JobTrace {
            ranks: vec![
                RankTrace { rank: 0, node: 0, events: r0, dropped: 0 },
                RankTrace { rank: 1, node: 1, events: r1, dropped: 2 },
            ],
            sched,
            sched_dropped: 0,
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let trace = sample_trace();
        let doc = render(&trace);
        let parsed = parse(&doc).expect("rendered trace parses");

        // Reconstruct the expected flat list in serialization order:
        // sched stream, then ranks ascending.
        let mut expected = Vec::new();
        for e in &trace.sched {
            expected.push((0u64, 0u64, e.clone()));
        }
        for rt in &trace.ranks {
            for e in &rt.events {
                expected.push((rt.node as u64 + 1, rt.rank as u64, e.clone()));
            }
        }
        assert_eq!(parsed.len(), expected.len());
        for (got, (pid, tid, ev)) in parsed.iter().zip(&expected) {
            assert_eq!(got.name, ev.kind.name());
            assert_eq!(got.cat, ev.kind.category());
            assert_eq!(got.ts, ev.cycle);
            assert_eq!(got.pid, *pid);
            assert_eq!(got.tid, *tid);
            let want_args: Vec<(String, ArgValue)> = ev
                .kind
                .args()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            assert_eq!(got.args, want_args, "args diverged for {}", got.name);
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let trace = sample_trace();
        assert_eq!(render(&trace), render(&trace));
    }

    #[test]
    fn counter_samples_render_as_counter_tracks() {
        let doc = render(&sample_trace());
        let parsed = parse(&doc).unwrap();
        let sample = parsed.iter().find(|e| e.name == "counter_sample").unwrap();
        assert_eq!(sample.ph, "C");
        let instant = parsed.iter().find(|e| e.name == "msg_send").unwrap();
        assert_eq!(instant.ph, "i");
    }

    #[test]
    fn dropped_counts_surface_in_other_data() {
        let doc = render(&sample_trace());
        let root = json::parse(&doc).unwrap();
        let dropped = root
            .get("otherData")
            .and_then(|o| o.get("dropped_events"))
            .and_then(Value::as_u64);
        assert_eq!(dropped, Some(2));
    }
}
