//! Binary round-trip codec for trace events and recorder state
//! (checkpoint support).
//!
//! The Chrome-trace/CSV exporters are render-only; checkpointing needs
//! the retained rings back **exactly**, so a resumed job's exported
//! trace is byte-identical to an uninterrupted run's. Every
//! [`EventKind`] variant gets a stable one-byte tag; decoding is strict
//! and fail-closed — an unknown tag or truncated payload is
//! [`bgp_arch::BgpError::Corrupt`], never a best-effort partial event.

use crate::{EventKind, FaultEvent, Recorder, TraceEvent, TraceState, WaitKind};
use bgp_arch::error::Result;
use bgp_arch::wire::{put_bool, put_u32, put_u64, put_u8, Reader};
use bgp_arch::BgpError;

const TAG_PHASE_RESOLVE: u8 = 0;
const TAG_MSG_DELIVER: u8 = 1;
const TAG_COLL_COMPLETE: u8 = 2;
const TAG_RANK_PARK: u8 = 3;
const TAG_RANK_WAKE: u8 = 4;
const TAG_MSG_SEND: u8 = 5;
const TAG_SESSION_INIT: u8 = 6;
const TAG_SESSION_START: u8 = 7;
const TAG_SESSION_STOP: u8 = 8;
const TAG_SESSION_FINALIZE: u8 = 9;
const TAG_COUNTER_DUMP: u8 = 10;
const TAG_COUNTER_SAMPLE: u8 = 11;
const TAG_MEM_WINDOW: u8 = 12;
const TAG_FAULT: u8 = 13;
const TAG_THRESHOLD_INTERRUPT: u8 = 14;
const TAG_COUNTER_ROTATE: u8 = 15;

const FAULT_STRAGGLER: u8 = 0;
const FAULT_ROUTER: u8 = 1;
const FAULT_BITFLIP: u8 = 2;
const FAULT_SATURATE: u8 = 3;

/// Append `ev` to `out` in the stable binary encoding.
pub fn encode_event(ev: &TraceEvent, out: &mut Vec<u8>) {
    put_u64(out, ev.cycle);
    match &ev.kind {
        EventKind::PhaseResolve {
            phase,
            delivered,
            delivered_bytes,
            woken,
            collectives,
            peak_link_bytes,
            links_loaded,
        } => {
            put_u8(out, TAG_PHASE_RESOLVE);
            for v in [phase, delivered, delivered_bytes, woken, collectives, peak_link_bytes, links_loaded] {
                put_u64(out, *v);
            }
        }
        EventKind::MsgDeliver { src, dst, tag, bytes, queue_cycles } => {
            put_u8(out, TAG_MSG_DELIVER);
            put_u32(out, *src);
            put_u32(out, *dst);
            put_u32(out, *tag);
            put_u64(out, *bytes);
            put_u64(out, *queue_cycles);
        }
        EventKind::CollComplete { slot } => {
            put_u8(out, TAG_COLL_COMPLETE);
            put_u8(out, *slot);
        }
        EventKind::RankPark { wait } => {
            put_u8(out, TAG_RANK_PARK);
            match wait {
                WaitKind::Recv { src, tag } => {
                    put_u8(out, 0);
                    put_bool(out, src.is_some());
                    put_u32(out, src.unwrap_or(0));
                    put_u32(out, *tag);
                }
                WaitKind::Collective { slot } => {
                    put_u8(out, 1);
                    put_u8(out, *slot);
                }
            }
        }
        EventKind::RankWake => put_u8(out, TAG_RANK_WAKE),
        EventKind::MsgSend { dst, tag, bytes } => {
            put_u8(out, TAG_MSG_SEND);
            put_u32(out, *dst);
            put_u32(out, *tag);
            put_u64(out, *bytes);
        }
        EventKind::SessionInit => put_u8(out, TAG_SESSION_INIT),
        EventKind::SessionStart { set } => {
            put_u8(out, TAG_SESSION_START);
            put_u32(out, *set);
        }
        EventKind::SessionStop { set } => {
            put_u8(out, TAG_SESSION_STOP);
            put_u32(out, *set);
        }
        EventKind::SessionFinalize => put_u8(out, TAG_SESSION_FINALIZE),
        EventKind::CounterDump { bytes } => {
            put_u8(out, TAG_COUNTER_DUMP);
            put_u64(out, *bytes);
        }
        EventKind::CounterSample { slot, value } => {
            put_u8(out, TAG_COUNTER_SAMPLE);
            put_u8(out, *slot);
            put_u64(out, *value);
        }
        EventKind::MemWindow { window, l3_hits, l3_misses, ddr_reads, ddr_writes } => {
            put_u8(out, TAG_MEM_WINDOW);
            for v in [window, l3_hits, l3_misses, ddr_reads, ddr_writes] {
                put_u64(out, *v);
            }
        }
        EventKind::ThresholdInterrupt { node, slot, value, threshold } => {
            put_u8(out, TAG_THRESHOLD_INTERRUPT);
            put_u32(out, *node);
            put_u8(out, *slot);
            put_u64(out, *value);
            put_u64(out, *threshold);
        }
        EventKind::CounterRotate { node, from, to, phase, dwell } => {
            put_u8(out, TAG_COUNTER_ROTATE);
            put_u32(out, *node);
            put_u8(out, *from);
            put_u8(out, *to);
            put_u64(out, *phase);
            put_u64(out, *dwell);
        }
        EventKind::Fault(f) => {
            put_u8(out, TAG_FAULT);
            match f {
                FaultEvent::Straggler { penalty_cycles } => {
                    put_u8(out, FAULT_STRAGGLER);
                    put_u64(out, *penalty_cycles);
                }
                FaultEvent::RouterDegraded => put_u8(out, FAULT_ROUTER),
                FaultEvent::CounterBitFlip { slot, bit } => {
                    put_u8(out, FAULT_BITFLIP);
                    put_u64(out, u64::from(*slot));
                    put_u32(out, *bit);
                }
                FaultEvent::CounterSaturate { slot } => {
                    put_u8(out, FAULT_SATURATE);
                    put_u64(out, u64::from(*slot));
                }
            }
        }
    }
}

/// Decode one event previously written by [`encode_event`].
///
/// # Errors
/// [`bgp_arch::BgpError::Corrupt`] on truncation or an unknown tag.
pub fn decode_event(r: &mut Reader<'_>) -> Result<TraceEvent> {
    let cycle = r.u64("event cycle")?;
    let tag = r.u8("event tag")?;
    let kind = match tag {
        TAG_PHASE_RESOLVE => EventKind::PhaseResolve {
            phase: r.u64("pr phase")?,
            delivered: r.u64("pr delivered")?,
            delivered_bytes: r.u64("pr delivered_bytes")?,
            woken: r.u64("pr woken")?,
            collectives: r.u64("pr collectives")?,
            peak_link_bytes: r.u64("pr peak_link_bytes")?,
            links_loaded: r.u64("pr links_loaded")?,
        },
        TAG_MSG_DELIVER => EventKind::MsgDeliver {
            src: r.u32("md src")?,
            dst: r.u32("md dst")?,
            tag: r.u32("md tag")?,
            bytes: r.u64("md bytes")?,
            queue_cycles: r.u64("md queue_cycles")?,
        },
        TAG_COLL_COMPLETE => EventKind::CollComplete { slot: r.u8("cc slot")? },
        TAG_RANK_PARK => {
            let wk = r.u8("park wait kind")?;
            let wait = match wk {
                0 => {
                    let has_src = r.bool("park src some")?;
                    let src = r.u32("park src")?;
                    WaitKind::Recv { src: has_src.then_some(src), tag: r.u32("park tag")? }
                }
                1 => WaitKind::Collective { slot: r.u8("park slot")? },
                other => {
                    return Err(BgpError::corrupt(format!("unknown wait kind {other}")))
                }
            };
            EventKind::RankPark { wait }
        }
        TAG_RANK_WAKE => EventKind::RankWake,
        TAG_MSG_SEND => EventKind::MsgSend {
            dst: r.u32("ms dst")?,
            tag: r.u32("ms tag")?,
            bytes: r.u64("ms bytes")?,
        },
        TAG_SESSION_INIT => EventKind::SessionInit,
        TAG_SESSION_START => EventKind::SessionStart { set: r.u32("ss set")? },
        TAG_SESSION_STOP => EventKind::SessionStop { set: r.u32("ss set")? },
        TAG_SESSION_FINALIZE => EventKind::SessionFinalize,
        TAG_COUNTER_DUMP => EventKind::CounterDump { bytes: r.u64("cd bytes")? },
        TAG_COUNTER_SAMPLE => {
            EventKind::CounterSample { slot: r.u8("cs slot")?, value: r.u64("cs value")? }
        }
        TAG_MEM_WINDOW => EventKind::MemWindow {
            window: r.u64("mw window")?,
            l3_hits: r.u64("mw l3_hits")?,
            l3_misses: r.u64("mw l3_misses")?,
            ddr_reads: r.u64("mw ddr_reads")?,
            ddr_writes: r.u64("mw ddr_writes")?,
        },
        TAG_THRESHOLD_INTERRUPT => EventKind::ThresholdInterrupt {
            node: r.u32("ti node")?,
            slot: r.u8("ti slot")?,
            value: r.u64("ti value")?,
            threshold: r.u64("ti threshold")?,
        },
        TAG_COUNTER_ROTATE => EventKind::CounterRotate {
            node: r.u32("cr node")?,
            from: r.u8("cr from")?,
            to: r.u8("cr to")?,
            phase: r.u64("cr phase")?,
            dwell: r.u64("cr dwell")?,
        },
        TAG_FAULT => {
            let fk = r.u8("fault kind")?;
            let fault = match fk {
                FAULT_STRAGGLER => {
                    FaultEvent::Straggler { penalty_cycles: r.u64("fs penalty")? }
                }
                FAULT_ROUTER => FaultEvent::RouterDegraded,
                FAULT_BITFLIP => {
                    let slot = r.u64("fb slot")?;
                    let slot = u16::try_from(slot).map_err(|_| {
                        BgpError::corrupt(format!("fault slot {slot} out of range"))
                    })?;
                    FaultEvent::CounterBitFlip { slot, bit: r.u32("fb bit")? }
                }
                FAULT_SATURATE => {
                    let slot = r.u64("fsat slot")?;
                    let slot = u16::try_from(slot).map_err(|_| {
                        BgpError::corrupt(format!("fault slot {slot} out of range"))
                    })?;
                    FaultEvent::CounterSaturate { slot }
                }
                other => {
                    return Err(BgpError::corrupt(format!("unknown fault kind {other}")))
                }
            };
            EventKind::Fault(fault)
        }
        other => return Err(BgpError::corrupt(format!("unknown event tag {other}"))),
    };
    Ok(TraceEvent { cycle, kind })
}

impl Recorder {
    /// Serialize the retained events and the drop counter (checkpoint
    /// support). The ring capacity is configuration and is not captured.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        let events = self.events();
        put_u64(out, events.len() as u64);
        for e in &events {
            encode_event(e, out);
        }
        put_u64(out, self.dropped());
    }

    /// Restore events previously written by [`Recorder::save_state`].
    ///
    /// # Errors
    /// [`bgp_arch::BgpError::Corrupt`] on truncated or malformed input.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        let n = r.u64("recorder event count")?;
        // Each event is ≥ 9 bytes; reject counts the input cannot hold.
        if n > (r.remaining() as u64) / 9 {
            return Err(BgpError::corrupt(format!("recorder claims {n} events")));
        }
        let mut events = Vec::with_capacity(n as usize);
        for _ in 0..n {
            events.push(decode_event(r)?);
        }
        let dropped = r.u64("recorder dropped")?;
        self.ring.restore(events, dropped);
        Ok(())
    }
}

impl TraceState {
    /// Serialize every retained stream — all rank rings plus the
    /// scheduler ring (checkpoint support). The installed configuration
    /// and the active-rank count are **not** captured: both are
    /// reconstructed by the resumed job's deterministic replay.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.ranks.len() as u64);
        for rec in &self.ranks {
            rec.lock().save_state(out);
        }
        self.sched.lock().save_state(out);
    }

    /// Restore the streams written by [`TraceState::save_state`].
    ///
    /// # Errors
    /// [`bgp_arch::BgpError::Corrupt`] on truncated or malformed input,
    /// or a rank-count mismatch with this job.
    pub fn restore_state(&self, r: &mut Reader<'_>) -> Result<()> {
        let n = r.u64("trace rank count")?;
        if n != self.ranks.len() as u64 {
            return Err(BgpError::corrupt(format!(
                "snapshot has {n} rank trace streams, job has {}",
                self.ranks.len()
            )));
        }
        for rec in &self.ranks {
            rec.lock().restore_state(r)?;
        }
        self.sched.lock().restore_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplars() -> Vec<TraceEvent> {
        let kinds = vec![
            EventKind::PhaseResolve {
                phase: 3,
                delivered: 9,
                delivered_bytes: 4096,
                woken: 7,
                collectives: 1,
                peak_link_bytes: 512,
                links_loaded: 6,
            },
            EventKind::MsgDeliver { src: 1, dst: 2, tag: 77, bytes: 640, queue_cycles: 12 },
            EventKind::CollComplete { slot: 1 },
            EventKind::RankPark { wait: WaitKind::Recv { src: Some(4), tag: 9 } },
            EventKind::RankPark { wait: WaitKind::Recv { src: None, tag: 0 } },
            EventKind::RankPark { wait: WaitKind::Collective { slot: 0 } },
            EventKind::RankWake,
            EventKind::MsgSend { dst: 5, tag: 3, bytes: 32 },
            EventKind::SessionInit,
            EventKind::SessionStart { set: 2 },
            EventKind::SessionStop { set: 2 },
            EventKind::SessionFinalize,
            EventKind::CounterDump { bytes: 2120 },
            EventKind::CounterSample { slot: 200, value: u64::MAX },
            EventKind::MemWindow { window: 8, l3_hits: 1, l3_misses: 2, ddr_reads: 3, ddr_writes: 4 },
            EventKind::ThresholdInterrupt { node: 9, slot: 140, value: 4096, threshold: 1024 },
            EventKind::CounterRotate { node: 9, from: 2, to: 3, phase: 88, dwell: 16 },
            EventKind::Fault(FaultEvent::Straggler { penalty_cycles: 5000 }),
            EventKind::Fault(FaultEvent::RouterDegraded),
            EventKind::Fault(FaultEvent::CounterBitFlip { slot: 255, bit: 31 }),
            EventKind::Fault(FaultEvent::CounterSaturate { slot: 17 }),
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent { cycle: i as u64 * 1000 + 5, kind })
            .collect()
    }

    #[test]
    fn every_event_kind_round_trips() {
        for ev in exemplars() {
            let mut bytes = Vec::new();
            encode_event(&ev, &mut bytes);
            let mut r = Reader::new(&bytes);
            let back = decode_event(&mut r).unwrap();
            assert_eq!(back, ev);
            r.expect_end("event").unwrap();
        }
    }

    #[test]
    fn truncated_or_garbage_events_fail_closed() {
        for ev in exemplars() {
            let mut bytes = Vec::new();
            encode_event(&ev, &mut bytes);
            for cut in 0..bytes.len() {
                let mut r = Reader::new(&bytes[..cut]);
                assert!(decode_event(&mut r).is_err(), "cut at {cut} of {ev}");
            }
        }
        let mut r = Reader::new(&[0u8; 9]); // cycle + tag... truncated body
        assert!(decode_event(&mut r).is_err());
        let mut bad = Vec::new();
        put_u64(&mut bad, 1);
        put_u8(&mut bad, 200); // unknown tag
        let mut r = Reader::new(&bad);
        assert!(decode_event(&mut r).is_err());
    }

    #[test]
    fn recorder_state_round_trips_including_drops() {
        let mut rec = Recorder::new(8);
        for (i, ev) in exemplars().into_iter().enumerate() {
            rec.record(i as u64, ev.kind);
        }
        assert!(rec.dropped() > 0);
        let mut bytes = Vec::new();
        rec.save_state(&mut bytes);
        let mut back = Recorder::new(8);
        let mut r = Reader::new(&bytes);
        back.restore_state(&mut r).unwrap();
        r.expect_end("recorder").unwrap();
        assert_eq!(back.events(), rec.events());
        assert_eq!(back.dropped(), rec.dropped());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        rec.save_state(&mut a);
        back.save_state(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_state_restore_validates_rank_count() {
        let st = TraceState::new(vec![0, 0]);
        st.configure(&crate::TraceConfig::default()).unwrap();
        st.record_rank(0, 1, EventKind::RankWake);
        let mut bytes = Vec::new();
        st.save_state(&mut bytes);

        let same = TraceState::new(vec![0, 0]);
        same.configure(&crate::TraceConfig::default()).unwrap();
        same.restore_state(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(same.events_recorded(), st.events_recorded());

        let smaller = TraceState::new(vec![0]);
        smaller.configure(&crate::TraceConfig::default()).unwrap();
        assert!(smaller.restore_state(&mut Reader::new(&bytes)).is_err());
    }
}
