//! Bounded ring buffer backing every trace recorder.
//!
//! The buffer keeps the **newest** `capacity` entries: when full, a push
//! evicts the oldest entry and counts it as dropped, so a runaway event
//! stream can never exhaust memory — the failure mode degrades to "the
//! timeline starts later", which is exactly what a flight recorder
//! should do. A capacity of zero records nothing (every push drops).

use std::collections::VecDeque;

/// A bounded FIFO that overwrites its oldest entry when full.
#[derive(Clone, Debug)]
pub struct RingBuffer<T> {
    cap: usize,
    buf: VecDeque<T>,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// An empty ring holding at most `capacity` entries. No storage is
    /// allocated until the first push.
    pub fn new(capacity: usize) -> RingBuffer<T> {
        RingBuffer { cap: capacity, buf: VecDeque::new(), dropped: 0 }
    }

    /// Maximum entries retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Change the capacity; excess oldest entries are dropped (counted).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.cap = capacity;
        while self.buf.len() > self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
    }

    /// Append `value`, evicting the oldest entry if the ring is full.
    pub fn push(&mut self, value: T) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Entries evicted (or refused, at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// The retained entries, oldest → newest.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.buf.iter().cloned().collect()
    }

    /// The newest `n` entries, oldest → newest.
    pub fn last_n(&self, n: usize) -> Vec<T>
    where
        T: Clone,
    {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).cloned().collect()
    }

    /// Replace the ring's contents and drop counter wholesale
    /// (checkpoint restore). The capacity is left unchanged; if
    /// `entries` exceeds it, the oldest excess entries are evicted and
    /// counted on top of `dropped`, exactly as live pushes would have.
    pub fn restore(&mut self, entries: Vec<T>, dropped: u64) {
        self.buf.clear();
        self.dropped = dropped;
        for e in entries {
            self.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_below_capacity_keeps_everything() {
        let mut r = RingBuffer::new(4);
        for i in 0..3 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
        assert!(!r.is_empty());
    }

    #[test]
    fn wrap_around_keeps_the_newest_entries() {
        let mut r = RingBuffer::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![7, 8, 9], "oldest evicted first");
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
    }

    #[test]
    fn capacity_zero_records_nothing_but_counts_drops() {
        let mut r = RingBuffer::new(0);
        for i in 0..5 {
            r.push(i);
        }
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 5);
        assert_eq!(r.to_vec(), Vec::<i32>::new());
    }

    #[test]
    fn last_n_returns_the_tail_in_order() {
        let mut r = RingBuffer::new(8);
        for i in 0..6 {
            r.push(i);
        }
        assert_eq!(r.last_n(3), vec![3, 4, 5]);
        assert_eq!(r.last_n(100), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn shrinking_capacity_trims_the_oldest() {
        let mut r = RingBuffer::new(5);
        for i in 0..5 {
            r.push(i);
        }
        r.set_capacity(2);
        assert_eq!(r.to_vec(), vec![3, 4]);
        assert_eq!(r.dropped(), 3);
    }
}
