//! Minimal hand-rolled JSON support (std-only, no external crates).
//!
//! This is the workspace's **shared wire-text module** (re-exported
//! through the facade as `bgp::json`): the writer side is the escape
//! helpers plus the [`Obj`]/[`Arr`] builders used by the Chrome-trace
//! exporter and the `bgp-serve` protocol; the reader side is a small
//! recursive-descent parser used by the round-trip test, the service
//! daemon, and the `bgpc-trace` / `bgpc-dump --json` consumers. Numbers
//! are kept as their **raw token** so 64-bit cycle counts survive a
//! round trip exactly — nothing is funneled through `f64`.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str_escaped(&mut out, s);
    out
}

/// A parsed JSON value. Object member order is preserved; numbers keep
/// their raw source token (see [`Value::as_u64`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw token (e.g. `"184467440737"`, `"-1.5e3"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, members in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if raw.is_empty() || raw == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Incremental writer for a JSON object: `{"k": v, ...}`.
///
/// Keys are escaped; values go in via the typed `field_*` methods or
/// [`Obj::field_raw`] for a pre-serialized JSON fragment (the splice
/// path `bgp-serve` uses to return cached result bytes verbatim).
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Default for Obj {
    fn default() -> Obj {
        Obj::new()
    }
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Obj {
        Obj { buf: String::from("{"), first: true }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_escaped(&mut self.buf, k);
        self.buf.push(':');
        &mut self.buf
    }

    /// Add a string member.
    pub fn field_str(mut self, k: &str, v: &str) -> Obj {
        let buf = self.key(k);
        push_str_escaped(buf, v);
        self
    }

    /// Add an unsigned integer member (exact — no `f64` funnel).
    pub fn field_u64(mut self, k: &str, v: u64) -> Obj {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a finite float member (`{:.N}`-free shortest form).
    pub fn field_f64(mut self, k: &str, v: f64) -> Obj {
        debug_assert!(v.is_finite(), "JSON has no NaN/Inf");
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a boolean member.
    pub fn field_bool(mut self, k: &str, v: bool) -> Obj {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Splice a pre-serialized JSON fragment in as the member value,
    /// byte-for-byte. The caller guarantees `raw` is valid JSON.
    pub fn field_raw(mut self, k: &str, raw: &str) -> Obj {
        self.key(k).push_str(raw);
        self
    }

    /// Close the object and return the document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Incremental writer for a JSON array: `[v, ...]`.
#[derive(Debug)]
pub struct Arr {
    buf: String,
    first: bool,
}

impl Default for Arr {
    fn default() -> Arr {
        Arr::new()
    }
}

impl Arr {
    /// Start an empty array.
    pub fn new() -> Arr {
        Arr { buf: String::from("["), first: true }
    }

    fn sep(&mut self) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        &mut self.buf
    }

    /// Append a string element.
    pub fn push_str(mut self, v: &str) -> Arr {
        let buf = self.sep();
        push_str_escaped(buf, v);
        self
    }

    /// Append an unsigned integer element.
    pub fn push_u64(mut self, v: u64) -> Arr {
        let _ = write!(self.sep(), "{v}");
        self
    }

    /// Append a finite float element.
    pub fn push_f64(mut self, v: f64) -> Arr {
        debug_assert!(v.is_finite(), "JSON has no NaN/Inf");
        let _ = write!(self.sep(), "{v}");
        self
    }

    /// Splice a pre-serialized JSON fragment in as one element.
    pub fn push_raw(mut self, raw: &str) -> Arr {
        self.sep().push_str(raw);
        self
    }

    /// Close the array and return the document.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, {"b": "x\ny"}, true, null], "n": 18446744073709551615}"#)
            .unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(arr[2], Value::Bool(true));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX), "u64::MAX survives");
    }

    #[test]
    fn escaped_string_round_trips() {
        let original = "weird \"stuff\"\t\\ here \u{263a}";
        let doc = format!("{{\"s\": {}}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn obj_and_arr_builders_round_trip_through_the_parser() {
        let inner = Arr::new().push_u64(u64::MAX).push_str("x\ny").push_f64(1.5).finish();
        let doc = Obj::new()
            .field_str("name", "mg \"S\"")
            .field_u64("cycles", u64::MAX)
            .field_bool("ok", true)
            .field_raw("items", &inner)
            .field_raw("null", "null")
            .finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("mg \"S\""));
        assert_eq!(v.get("cycles").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let items = v.get("items").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(u64::MAX));
        assert_eq!(items[1].as_str(), Some("x\ny"));
        assert_eq!(items[2].as_f64(), Some(1.5));
        assert_eq!(v.get("null"), Some(&Value::Null));
    }

    #[test]
    fn empty_builders_produce_empty_containers() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
        assert_eq!(parse(&Obj::new().finish()).unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn raw_splice_is_byte_exact() {
        let cached = r#"{"job_cycles":37719054,"dumps":["00ff"]}"#;
        let doc = Obj::new().field_bool("ok", true).field_raw("result", cached).finish();
        let idx = doc.find("\"result\":").unwrap() + "\"result\":".len();
        assert_eq!(&doc[idx..doc.len() - 1], cached, "splice must not reformat");
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }
}
