//! Per-phase metrics CSV exporter.
//!
//! Every phase resolution records a [`EventKind::PhaseResolve`] summary
//! in the scheduler stream; this module flattens those summaries into a
//! CSV time series — one row per resolved phase — mirroring the paper's
//! post-processing style (raw counters in, derived per-window metrics
//! out).

use crate::{EventKind, JobTrace};
use std::fmt::Write as _;

/// Column header of the per-phase metrics CSV.
pub const HEADER: &str = "phase,resolve_cycle,delivered_msgs,delivered_bytes,woken_ranks,collectives_completed,peak_link_bytes,links_loaded";

/// Render the per-phase metrics table for `trace`.
pub fn render(trace: &JobTrace) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for e in &trace.sched {
        if let EventKind::PhaseResolve {
            phase,
            delivered,
            delivered_bytes,
            woken,
            collectives,
            peak_link_bytes,
            links_loaded,
        } = &e.kind
        {
            let _ = writeln!(
                out,
                "{phase},{},{delivered},{delivered_bytes},{woken},{collectives},{peak_link_bytes},{links_loaded}",
                e.cycle
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RankTrace, TraceEvent};

    #[test]
    fn one_row_per_phase_resolve_in_order() {
        let sched = vec![
            TraceEvent {
                cycle: 500,
                kind: EventKind::MsgDeliver { src: 0, dst: 1, tag: 0, bytes: 8, queue_cycles: 0 },
            },
            TraceEvent {
                cycle: 510,
                kind: EventKind::PhaseResolve {
                    phase: 0,
                    delivered: 1,
                    delivered_bytes: 8,
                    woken: 1,
                    collectives: 0,
                    peak_link_bytes: 8,
                    links_loaded: 1,
                },
            },
            TraceEvent {
                cycle: 900,
                kind: EventKind::PhaseResolve {
                    phase: 1,
                    delivered: 0,
                    delivered_bytes: 0,
                    woken: 4,
                    collectives: 1,
                    peak_link_bytes: 0,
                    links_loaded: 0,
                },
            },
        ];
        let trace = JobTrace {
            ranks: vec![RankTrace { rank: 0, node: 0, events: vec![], dropped: 0 }],
            sched,
            sched_dropped: 0,
        };
        let csv = render(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], HEADER);
        assert_eq!(lines[1], "0,510,1,8,1,0,8,1");
        assert_eq!(lines[2], "1,900,0,0,4,1,0,0");
        assert_eq!(lines.len(), 3, "non-resolve events contribute no rows");
    }
}
