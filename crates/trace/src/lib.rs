//! # bgp-trace — deterministic tracing and metrics for the simulator
//!
//! The paper's library is itself an observability tool: it samples the
//! UPC unit's 256 counters with < 0.1 % overhead. This crate gives the
//! *simulated machine* the same property — a structured flight recorder
//! that is near-free when off and, crucially, **deterministic** when on:
//!
//! * Every event is timestamped in **simulated cycles**, never host
//!   time, so the recorded stream is a function of `(JobSpec, seed)`
//!   alone.
//! * Recorders are **per rank**: a rank only ever writes its own ring,
//!   so no cross-thread interleaving is observable. Scheduler-level
//!   events (phase resolution, message delivery, collective completion)
//!   are recorded by the phase resolver while every rank is parked —
//!   the one moment the machine is quiescent — in canonical order.
//!
//! Together these extend the phase engine's determinism contract to the
//! observability data: traces are **byte-identical for every
//! `BGP_SIM_THREADS` value** (verified in `tests/determinism.rs`).
//!
//! Storage is a bounded [`RingBuffer`] per recorder (default 65 536
//! events): a pathological event flood degrades to "the timeline starts
//! later", never to unbounded memory. Exporters render a collected
//! [`JobTrace`] as a Chrome-trace/Perfetto JSON timeline
//! ([`JobTrace::chrome_json`]) or a per-phase metrics CSV
//! ([`JobTrace::phase_metrics_csv`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod wire;

pub use ring::RingBuffer;

use bgp_arch::sync::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default per-recorder ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Default counter/memory sampling period (quantum windows).
pub const DEFAULT_SAMPLE_EVERY: u64 = 16;

/// Tracing configuration, carried by `JobSpec::trace` (whole-job
/// tracing from cycle 0) or `SessionBuilder::trace` (per-rank runtime
/// enable). All ranks of a job must agree on the configuration; the
/// `enabled` flag is the runtime toggle — a configured-but-disabled
/// job pays only a per-event branch, measured at well under 1 % (see
/// `fig_ext_trace_overhead`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Start recording immediately. `false` arms the recorders but
    /// leaves them off until `RankCtx::set_tracing(true)`.
    pub enabled: bool,
    /// Ring capacity per recorder (events). 0 records nothing.
    pub capacity: usize,
    /// Sample live UPC counters and L3/DDR traffic every this many
    /// quantum windows (0 disables sampling).
    pub sample_every: u64,
    /// UPC counter slots sampled at each interval.
    pub sample_slots: Vec<u8>,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: true,
            capacity: DEFAULT_CAPACITY,
            sample_every: DEFAULT_SAMPLE_EVERY,
            sample_slots: Vec::new(),
        }
    }
}

/// Why a rank parked (mirror of the scheduler's wait state, kept here
/// so lower layers need no dependency on the MPI runtime).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitKind {
    /// Blocked in a receive (`src` = `None` means any source).
    Recv {
        /// Source rank filter.
        src: Option<u32>,
        /// Message tag filter.
        tag: u32,
    },
    /// Blocked on the collective rendezvous slot.
    Collective {
        /// Double-buffer slot index (0 or 1).
        slot: u8,
    },
}

impl fmt::Display for WaitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitKind::Recv { src: Some(s), tag } => write!(f, "recv(src={s}, tag={tag})"),
            WaitKind::Recv { src: None, tag } => write!(f, "recv(any, tag={tag})"),
            WaitKind::Collective { slot } => write!(f, "collective(slot {slot})"),
        }
    }
}

/// A fault-plan event observed by the tracing layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// This rank's node pays extra cycles at every messaging boundary.
    Straggler {
        /// Penalty charged per boundary.
        penalty_cycles: u64,
    },
    /// This rank's node routes through a degraded torus router.
    RouterDegraded,
    /// A counter SRAM bit flipped as a measurement window closed.
    CounterBitFlip {
        /// Affected counter slot.
        slot: u16,
        /// Flipped bit index.
        bit: u32,
    },
    /// A counter was pegged at the saturation ceiling.
    CounterSaturate {
        /// Affected counter slot.
        slot: u16,
    },
}

/// One structured trace event (the `cycle` timestamp lives in
/// [`TraceEvent`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Phase-resolution summary, recorded by the resolver once per
    /// phase: what the merge delivered, woke, and loaded onto the torus.
    PhaseResolve {
        /// Phase index being resolved (0-based).
        phase: u64,
        /// Point-to-point messages delivered.
        delivered: u64,
        /// Total payload bytes delivered.
        delivered_bytes: u64,
        /// Parked ranks woken by the resolution.
        woken: u64,
        /// Collectives completed.
        collectives: u64,
        /// Heaviest per-link byte load of the phase.
        peak_link_bytes: u64,
        /// Distinct torus links that carried traffic.
        links_loaded: u64,
    },
    /// A buffered message was delivered at phase resolution.
    MsgDeliver {
        /// Sender rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
        /// Torus queuing delay added by per-phase link contention.
        queue_cycles: u64,
    },
    /// A collective rendezvous slot completed at phase resolution.
    CollComplete {
        /// Slot index.
        slot: u8,
    },
    /// The rank left the frontier waiting on a communication.
    RankPark {
        /// What it is waiting for.
        wait: WaitKind,
    },
    /// The rank re-entered the frontier after a phase resolution.
    RankWake,
    /// The rank buffered a point-to-point send into its outbox.
    MsgSend {
        /// Destination rank.
        dst: u32,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// `BGP_Initialize` on this rank (session built).
    SessionInit,
    /// `BGP_Start(set)`: a counting window opened.
    SessionStart {
        /// Instrumentation set id.
        set: u32,
    },
    /// `BGP_Stop(set)`: the counting window closed.
    SessionStop {
        /// Instrumentation set id.
        set: u32,
    },
    /// `BGP_Finalize` on this rank.
    SessionFinalize,
    /// The node's binary counter dump was assembled.
    CounterDump {
        /// Encoded dump size in bytes.
        bytes: u64,
    },
    /// Periodic sample of one live UPC counter (the paper's
    /// threshold-interrupt capability, as a time series).
    CounterSample {
        /// Sampled counter slot.
        slot: u8,
        /// Counter value at the sample point.
        value: u64,
    },
    /// Periodic L3/DDR traffic window (deltas since the last sample).
    MemWindow {
        /// Quantum-window index the sample closed.
        window: u64,
        /// L3 hits in the window.
        l3_hits: u64,
        /// L3 misses in the window.
        l3_misses: u64,
        /// DDR read bursts in the window.
        ddr_reads: u64,
        /// DDR write bursts in the window.
        ddr_writes: u64,
    },
    /// A UPC threshold interrupt drained at phase resolution (raised
    /// mid-quantum by a sentinel counter crossing its threshold,
    /// surfaced in canonical node order while the machine is quiescent).
    ThresholdInterrupt {
        /// Node whose UPC unit raised the interrupt.
        node: u32,
        /// Counter slot that crossed its threshold.
        slot: u8,
        /// Counter value when it fired.
        value: u64,
        /// The configured threshold.
        threshold: u64,
    },
    /// The multiplexing scheduler rotated a node's UPC unit to the next
    /// counter mode at a phase boundary.
    CounterRotate {
        /// Node whose unit rotated.
        node: u32,
        /// Mode index rotated out of.
        from: u8,
        /// Mode index rotated into.
        to: u8,
        /// Phase at which the rotation happened.
        phase: u64,
        /// Dwell (phases) chosen for the new mode.
        dwell: u64,
    },
    /// A fault-plan event manifested.
    Fault(FaultEvent),
}

impl EventKind {
    /// Short stable event name (Chrome-trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PhaseResolve { .. } => "phase_resolve",
            EventKind::MsgDeliver { .. } => "msg_deliver",
            EventKind::CollComplete { .. } => "coll_complete",
            EventKind::RankPark { .. } => "rank_park",
            EventKind::RankWake => "rank_wake",
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::SessionInit => "session_init",
            EventKind::SessionStart { .. } => "session_start",
            EventKind::SessionStop { .. } => "session_stop",
            EventKind::SessionFinalize => "session_finalize",
            EventKind::CounterDump { .. } => "counter_dump",
            EventKind::CounterSample { .. } => "counter_sample",
            EventKind::MemWindow { .. } => "mem_window",
            EventKind::ThresholdInterrupt { .. } => "threshold_interrupt",
            EventKind::CounterRotate { .. } => "counter_rotate",
            EventKind::Fault(f) => match f {
                FaultEvent::Straggler { .. } => "fault_straggler",
                FaultEvent::RouterDegraded => "fault_router_degraded",
                FaultEvent::CounterBitFlip { .. } => "fault_counter_bitflip",
                FaultEvent::CounterSaturate { .. } => "fault_counter_saturate",
            },
        }
    }

    /// Event category (Chrome-trace `cat` field).
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::PhaseResolve { .. }
            | EventKind::RankPark { .. }
            | EventKind::RankWake => "sched",
            EventKind::MsgDeliver { .. }
            | EventKind::CollComplete { .. }
            | EventKind::MsgSend { .. } => "mpi",
            EventKind::SessionInit
            | EventKind::SessionStart { .. }
            | EventKind::SessionStop { .. }
            | EventKind::SessionFinalize
            | EventKind::CounterDump { .. } => "session",
            EventKind::CounterSample { .. }
            | EventKind::ThresholdInterrupt { .. }
            | EventKind::CounterRotate { .. } => "upc",
            EventKind::MemWindow { .. } => "mem",
            EventKind::Fault(_) => "fault",
        }
    }

    /// Event arguments as deterministic `(key, value)` pairs.
    pub fn args(&self) -> Vec<(&'static str, ArgValue)> {
        use ArgValue::{Num, Text};
        match self {
            EventKind::PhaseResolve {
                phase,
                delivered,
                delivered_bytes,
                woken,
                collectives,
                peak_link_bytes,
                links_loaded,
            } => vec![
                ("phase", Num(*phase)),
                ("delivered", Num(*delivered)),
                ("delivered_bytes", Num(*delivered_bytes)),
                ("woken", Num(*woken)),
                ("collectives", Num(*collectives)),
                ("peak_link_bytes", Num(*peak_link_bytes)),
                ("links_loaded", Num(*links_loaded)),
            ],
            EventKind::MsgDeliver { src, dst, tag, bytes, queue_cycles } => vec![
                ("src", Num(u64::from(*src))),
                ("dst", Num(u64::from(*dst))),
                ("tag", Num(u64::from(*tag))),
                ("bytes", Num(*bytes)),
                ("queue_cycles", Num(*queue_cycles)),
            ],
            EventKind::CollComplete { slot } => vec![("slot", Num(u64::from(*slot)))],
            EventKind::RankPark { wait } => vec![("wait", Text(wait.to_string()))],
            EventKind::RankWake | EventKind::SessionInit | EventKind::SessionFinalize => {
                Vec::new()
            }
            EventKind::MsgSend { dst, tag, bytes } => vec![
                ("dst", Num(u64::from(*dst))),
                ("tag", Num(u64::from(*tag))),
                ("bytes", Num(*bytes)),
            ],
            EventKind::SessionStart { set } | EventKind::SessionStop { set } => {
                vec![("set", Num(u64::from(*set)))]
            }
            EventKind::CounterDump { bytes } => vec![("bytes", Num(*bytes))],
            EventKind::CounterSample { slot, value } => {
                vec![("slot", Num(u64::from(*slot))), ("value", Num(*value))]
            }
            EventKind::MemWindow { window, l3_hits, l3_misses, ddr_reads, ddr_writes } => {
                vec![
                    ("window", Num(*window)),
                    ("l3_hits", Num(*l3_hits)),
                    ("l3_misses", Num(*l3_misses)),
                    ("ddr_reads", Num(*ddr_reads)),
                    ("ddr_writes", Num(*ddr_writes)),
                ]
            }
            EventKind::ThresholdInterrupt { node, slot, value, threshold } => vec![
                ("node", Num(u64::from(*node))),
                ("slot", Num(u64::from(*slot))),
                ("value", Num(*value)),
                ("threshold", Num(*threshold)),
            ],
            EventKind::CounterRotate { node, from, to, phase, dwell } => {
                vec![
                    ("node", Num(u64::from(*node))),
                    ("from", Num(u64::from(*from))),
                    ("to", Num(u64::from(*to))),
                    ("phase", Num(*phase)),
                    ("dwell", Num(*dwell)),
                ]
            }
            EventKind::Fault(f) => match f {
                FaultEvent::Straggler { penalty_cycles } => {
                    vec![("penalty_cycles", Num(*penalty_cycles))]
                }
                FaultEvent::RouterDegraded => Vec::new(),
                FaultEvent::CounterBitFlip { slot, bit } => {
                    vec![("slot", Num(u64::from(*slot))), ("bit", Num(u64::from(*bit)))]
                }
                FaultEvent::CounterSaturate { slot } => {
                    vec![("slot", Num(u64::from(*slot)))]
                }
            },
        }
    }
}

/// A trace-event argument value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    Num(u64),
    /// Text argument.
    Text(String),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::Num(n) => write!(f, "{n}"),
            ArgValue::Text(s) => write!(f, "{s}"),
        }
    }
}

/// One recorded event: a structured payload at a simulated-cycle
/// timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated-cycle timestamp (the recording rank's core clock; for
    /// scheduler events, the job clock at resolution).
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}", self.cycle, self.kind.name())?;
        let args = self.kind.args();
        if !args.is_empty() {
            write!(f, " {{")?;
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A single event stream: one per rank, plus one for the scheduler.
#[derive(Clone, Debug)]
pub struct Recorder {
    pub(crate) ring: RingBuffer<TraceEvent>,
}

impl Recorder {
    /// A recorder retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Recorder {
        Recorder { ring: RingBuffer::new(capacity) }
    }

    /// Append one event.
    pub fn record(&mut self, cycle: u64, kind: EventKind) {
        self.ring.push(TraceEvent { cycle, kind });
    }

    /// Events retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Resize the backing ring (startup configuration).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.ring.set_capacity(capacity);
    }

    /// All retained events, oldest → newest.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.to_vec()
    }

    /// The newest `n` events, oldest → newest.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        self.ring.last_n(n)
    }
}

/// Shared per-job trace state: one recorder per rank plus the scheduler
/// stream. Owned by the machine; ranks write only their own recorder,
/// so per-rank locks are uncontended and the recorded streams carry no
/// cross-thread ordering.
pub struct TraceState {
    node_of: Vec<usize>,
    config: Mutex<Option<TraceConfig>>,
    /// Ranks currently recording. The scheduler stream records while
    /// this is non-zero; enables/disables land at phase granularity, so
    /// the count observed at any resolution is deterministic.
    active: AtomicUsize,
    pub(crate) ranks: Vec<Mutex<Recorder>>,
    pub(crate) sched: Mutex<Recorder>,
}

impl TraceState {
    /// Unconfigured state for a job whose rank `r` lives on node
    /// `node_of[r]`. Recorders start with capacity 0 (record nothing)
    /// until [`TraceState::configure`] arms them.
    pub fn new(node_of: Vec<usize>) -> TraceState {
        let n = node_of.len();
        TraceState {
            node_of,
            config: Mutex::new(None),
            active: AtomicUsize::new(0),
            ranks: (0..n).map(|_| Mutex::new(Recorder::new(0))).collect(),
            sched: Mutex::new(Recorder::new(0)),
        }
    }

    /// Install `cfg`, or verify it equals the configuration already
    /// installed (all ranks of a job must agree — divergent configs
    /// would make the recorded streams ambiguous).
    ///
    /// # Errors
    /// Returns a description of the divergence.
    pub fn configure(&self, cfg: &TraceConfig) -> Result<(), String> {
        let mut cur = self.config.lock();
        match &*cur {
            None => {
                for r in &self.ranks {
                    r.lock().set_capacity(cfg.capacity);
                }
                self.sched.lock().set_capacity(cfg.capacity);
                *cur = Some(cfg.clone());
                Ok(())
            }
            Some(existing) if existing == cfg => Ok(()),
            Some(existing) => Err(format!(
                "divergent trace config across ranks: {existing:?} vs {cfg:?}"
            )),
        }
    }

    /// The installed configuration, if any.
    pub fn config(&self) -> Option<TraceConfig> {
        self.config.lock().clone()
    }

    /// A rank turned its recording on.
    pub fn rank_enter(&self) {
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// A rank turned its recording off.
    pub fn rank_leave(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Whether the scheduler stream should record (any rank tracing).
    /// Read only at phase resolution, where the machine is quiescent.
    pub fn sched_active(&self) -> bool {
        self.active.load(Ordering::Relaxed) > 0
    }

    /// Record into `rank`'s stream.
    pub fn record_rank(&self, rank: usize, cycle: u64, kind: EventKind) {
        self.ranks[rank].lock().record(cycle, kind);
    }

    /// Record into the scheduler stream.
    pub fn record_sched(&self, cycle: u64, kind: EventKind) {
        self.sched.lock().record(cycle, kind);
    }

    /// Append a batch to the scheduler stream under one lock.
    pub fn extend_sched(&self, events: impl IntoIterator<Item = TraceEvent>) {
        let mut rec = self.sched.lock();
        for e in events {
            rec.record(e.cycle, e.kind);
        }
    }

    /// The newest `n` scheduler events (deadlock forensics).
    pub fn recent_sched(&self, n: usize) -> Vec<TraceEvent> {
        self.sched.lock().recent(n)
    }

    /// Total events currently retained across all streams.
    pub fn events_recorded(&self) -> u64 {
        let ranks: usize = self.ranks.iter().map(|r| r.lock().len()).sum();
        (ranks + self.sched.lock().len()) as u64
    }

    /// Clone the retained streams into an exportable [`JobTrace`].
    /// Returns `None` if tracing was never configured.
    pub fn snapshot(&self) -> Option<JobTrace> {
        self.config.lock().as_ref()?;
        let ranks = self
            .ranks
            .iter()
            .enumerate()
            .map(|(rank, rec)| {
                let rec = rec.lock();
                RankTrace {
                    rank,
                    node: self.node_of[rank],
                    events: rec.events(),
                    dropped: rec.dropped(),
                }
            })
            .collect();
        let sched = self.sched.lock();
        Some(JobTrace { ranks, sched: sched.events(), sched_dropped: sched.dropped() })
    }
}

/// One rank's recorded stream inside a [`JobTrace`].
#[derive(Clone, Debug)]
pub struct RankTrace {
    /// Rank id.
    pub rank: usize,
    /// Hosting node.
    pub node: usize,
    /// Events, oldest → newest.
    pub events: Vec<TraceEvent>,
    /// Events this rank's ring evicted.
    pub dropped: u64,
}

/// A collected job trace: every rank stream plus the scheduler stream,
/// ready for export. Obtained from `Machine::job_trace()`.
#[derive(Clone, Debug)]
pub struct JobTrace {
    /// Per-rank streams in rank order.
    pub ranks: Vec<RankTrace>,
    /// Scheduler stream (phase resolutions, deliveries, collectives).
    pub sched: Vec<TraceEvent>,
    /// Events the scheduler ring evicted.
    pub sched_dropped: u64,
}

impl JobTrace {
    /// Events retained across all streams.
    pub fn total_events(&self) -> usize {
        self.sched.len() + self.ranks.iter().map(|r| r.events.len()).sum::<usize>()
    }

    /// Events evicted across all streams.
    pub fn total_dropped(&self) -> u64 {
        self.sched_dropped + self.ranks.iter().map(|r| r.dropped).sum::<u64>()
    }

    /// Render as a Chrome-trace/Perfetto JSON timeline. The output is a
    /// pure function of the recorded streams: byte-identical for every
    /// thread count.
    pub fn chrome_json(&self) -> String {
        chrome::render(self)
    }

    /// Render the scheduler stream as a per-phase metrics CSV.
    pub fn phase_metrics_csv(&self) -> String {
        metrics::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent { cycle, kind: EventKind::RankWake }
    }

    #[test]
    fn configure_is_set_or_verify() {
        let st = TraceState::new(vec![0, 0]);
        let cfg = TraceConfig::default();
        assert!(st.configure(&cfg).is_ok());
        assert!(st.configure(&cfg).is_ok(), "same config re-arrives from peers");
        let divergent = TraceConfig { sample_every: 99, ..cfg };
        let err = st.configure(&divergent).unwrap_err();
        assert!(err.contains("divergent"), "got: {err}");
    }

    #[test]
    fn unconfigured_state_records_nothing_and_snapshots_none() {
        let st = TraceState::new(vec![0]);
        st.record_rank(0, 5, EventKind::RankWake);
        assert!(st.snapshot().is_none());
        assert_eq!(st.events_recorded(), 0, "capacity-0 rings drop everything");
    }

    #[test]
    fn sched_stream_tracks_active_rank_count() {
        let st = TraceState::new(vec![0, 1]);
        assert!(!st.sched_active());
        st.rank_enter();
        st.rank_enter();
        st.rank_leave();
        assert!(st.sched_active(), "one rank still tracing");
        st.rank_leave();
        assert!(!st.sched_active());
    }

    #[test]
    fn concurrent_per_rank_recorders_are_isolated_and_deterministic() {
        // 8 ranks record 200 events each from their own threads; the
        // interleaving of threads must be invisible: every rank stream
        // comes back exactly as its rank wrote it, in program order.
        let st = Arc::new(TraceState::new((0..8).collect()));
        st.configure(&TraceConfig { capacity: 64, ..TraceConfig::default() }).unwrap();
        std::thread::scope(|s| {
            for rank in 0..8usize {
                let st = Arc::clone(&st);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let kind = if i % 2 == 0 {
                            EventKind::MsgSend { dst: rank as u32, tag: i as u32, bytes: i }
                        } else {
                            EventKind::RankWake
                        };
                        st.record_rank(rank, i * 10 + rank as u64, kind);
                    }
                });
            }
        });
        let snap = st.snapshot().expect("configured");
        for rt in &snap.ranks {
            assert_eq!(rt.events.len(), 64, "ring bounded");
            assert_eq!(rt.dropped, 136);
            // The retained tail is the rank's own last 64 events in
            // program order, regardless of thread scheduling.
            let cycles: Vec<u64> = rt.events.iter().map(|e| e.cycle).collect();
            let expect: Vec<u64> =
                (136..200).map(|i| i * 10 + rt.rank as u64).collect();
            assert_eq!(cycles, expect, "rank {} stream perturbed", rt.rank);
        }
    }

    #[test]
    fn recorder_recent_returns_tail() {
        let mut r = Recorder::new(10);
        for i in 0..5 {
            r.record(i, EventKind::RankWake);
        }
        assert_eq!(r.recent(2), vec![ev(3), ev(4)]);
        assert_eq!(r.events().len(), 5);
    }

    #[test]
    fn event_display_is_compact() {
        let e = TraceEvent {
            cycle: 42,
            kind: EventKind::MsgSend { dst: 3, tag: 7, bytes: 128 },
        };
        assert_eq!(e.to_string(), "@42 msg_send {dst=3, tag=7, bytes=128}");
        assert_eq!(ev(1).to_string(), "@1 rank_wake");
    }
}
