//! # bgp-node — a Blue Gene/P compute node
//!
//! Assembles the hardware blocks into one node (paper §III, Fig. 2):
//! four [`core::Core`]s with their FPUs, the shared [`bgp_mem`] hierarchy,
//! the [`bgp_upc`] performance-counter unit, and the chip Time Base.
//!
//! The node is the unit the interface library instruments: all UPC state
//! is per-node, rank placement assigns processes to its cores per the
//! operating mode, and all counter dumps are per-node files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;

pub use crate::core::{Core, InstrCounts, MemRetire, ISSUE_WIDTH, MISPREDICT_PENALTY};

use bgp_arch::events::{CoreEvent, CounterMode, NUM_COUNTERS};
use bgp_arch::geometry::{AddressLayout, NodeId};
use bgp_arch::{MachineConfig, OpMode, CORES_PER_NODE};
use bgp_mem::{HitLevel, MemorySystem};
use bgp_upc::Upc;

/// Memory-operation width as seen by the instruction set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemWidth {
    /// 4-byte integer word.
    Word,
    /// 8-byte FP double.
    Double,
    /// 16-byte quadword feeding both FPU pipes (`-qarch=440d` codegen).
    Quad,
}

impl MemWidth {
    /// Transfer size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::Word => 4,
            MemWidth::Double => 8,
            MemWidth::Quad => 16,
        }
    }

    const fn event(self, write: bool) -> CoreEvent {
        match (self, write) {
            (MemWidth::Word, false) => CoreEvent::Load,
            (MemWidth::Word, true) => CoreEvent::Store,
            (MemWidth::Double, false) => CoreEvent::LoadDouble,
            (MemWidth::Double, true) => CoreEvent::StoreDouble,
            (MemWidth::Quad, false) => CoreEvent::Quadload,
            (MemWidth::Quad, true) => CoreEvent::Quadstore,
        }
    }
}

/// One queued memory operation of a process, at a process-virtual
/// address — the unit of [`Node::mem_ops`] batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// Process-virtual byte address.
    pub vaddr: u64,
    /// Transfer width.
    pub width: MemWidth,
    /// Store (`true`) or load (`false`).
    pub write: bool,
}

/// Loop-resident code footprint rotated through by the synthetic
/// instruction-fetch stream (16 KB in a reserved high region that never
/// aliases workload data lines).
const CODE_FOOTPRINT: u64 = 16 << 10;
/// L1-I lines the footprint occupies.
const CODE_LINES: u64 = CODE_FOOTPRINT / bgp_arch::L1_LINE_BYTES as u64;

/// One compute node.
pub struct Node {
    id: NodeId,
    mode: OpMode,
    layout: AddressLayout,
    cores: Vec<Core>,
    mem: MemorySystem,
    upc: Upc,
    /// Synthetic instruction-address cursor per core (loop-resident code).
    icursor: [u64; CORES_PER_NODE],
    /// Instruction fetches retired per core (drives the warm-stream
    /// fast path of [`Node::mem_ops`]).
    ifetches: [u64; CORES_PER_NODE],
    /// Whether the L1-I geometry holds the whole code footprint — the
    /// precondition for skipping per-fetch probes once it is resident.
    icache_fits: bool,
    /// Ground-truth mirror of mode-3 (network) event emissions made
    /// while counting was enabled, indexed by mode-3 slot. The network
    /// layer has no per-node accumulator of its own (torus traffic is
    /// per-phase and reset at each resolution), so the node records
    /// what it reported to the UPC independently of the mode the unit
    /// happened to be in — the reference the validation harness checks
    /// counted and reconstructed network events against.
    net_truth: Box<[u64; NUM_COUNTERS]>,
    /// Translated-address scratch buffer reused across batches.
    batch: Vec<bgp_mem::MemAccess>,
}

impl Node {
    /// Build a node.
    ///
    /// `counter_mode` selects which 256 of the 1024 events its UPC unit
    /// observes (the interface library sets this per node parity).
    pub fn new(id: NodeId, cfg: &MachineConfig, op_mode: OpMode, counter_mode: CounterMode) -> Node {
        Node {
            id,
            mode: op_mode,
            layout: AddressLayout::with_memory(op_mode, cfg.memory_bytes),
            cores: (0..CORES_PER_NODE).map(Core::new).collect(),
            mem: MemorySystem::new(cfg),
            upc: Upc::new(counter_mode),
            icursor: [0; CORES_PER_NODE],
            ifetches: [0; CORES_PER_NODE],
            icache_fits: (CODE_LINES as usize).div_ceil(cfg.l1_sets()) <= cfg.l1_ways,
            net_truth: Box::new([0; NUM_COUNTERS]),
            batch: Vec::new(),
        }
    }

    /// Node identifier within the partition.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Operating mode the node was booted in.
    pub fn op_mode(&self) -> OpMode {
        self.mode
    }

    /// Process-virtual → node-physical address translation.
    pub fn layout(&self) -> &AddressLayout {
        &self.layout
    }

    /// The node's UPC unit.
    pub fn upc(&self) -> &Upc {
        &self.upc
    }

    /// Mutable access to the UPC unit (the interface library's handle).
    pub fn upc_mut(&mut self) -> &mut Upc {
        &mut self.upc
    }

    /// One core.
    pub fn core(&self, core: usize) -> &Core {
        &self.cores[core]
    }

    /// Ground-truth memory statistics.
    pub fn mem_stats(&self) -> &bgp_mem::MemStats {
        self.mem.stats()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        self.mem.config()
    }

    /// The chip Time Base as observed by `core`: its own cycle count
    /// (all cores advance concurrently on real hardware; in the
    /// serialized simulation each core carries its own clock).
    pub fn timebase(&self, core: usize) -> u64 {
        self.cores[core].cycles()
    }

    /// Wall-clock cycles of the node: the slowest core.
    pub fn node_cycles(&self) -> u64 {
        self.cores.iter().map(Core::cycles).max().unwrap_or(0)
    }

    /// Retire one load or store of `width` by `core` at process-virtual
    /// address `vaddr` of `process` (node-local process index).
    ///
    /// Walks the cache hierarchy, charges the stall, and reports both the
    /// instruction-class event and the cache events. Returns the level
    /// that satisfied the access.
    pub fn mem_op(
        &mut self,
        core: usize,
        process: usize,
        vaddr: u64,
        width: MemWidth,
        write: bool,
    ) -> HitLevel {
        let paddr = self.layout.physical(process, vaddr);
        // Instruction fetch for the surrounding code: one probe per
        // retirement batch keeps the L1-I warm without per-instruction
        // cost (kernels are loop-resident).
        self.touch_icache(core);
        let outcome = self.mem.access(core, paddr, write, &mut self.upc);
        // A 16-byte quadword can straddle two 32-byte L1 lines only when
        // misaligned; workloads keep quadword data 16-byte aligned, so a
        // single hierarchy access suffices for every width.
        self.cores[core].retire_mem(write, width.event(write), outcome.stall, &mut self.upc);
        self.cores[core].sync_cycle_counter(&mut self.upc);
        outcome.level
    }

    /// Retire a whole slice of loads/stores by `core` as one batch:
    /// exactly equivalent to calling [`Node::mem_op`] per element (the
    /// node differential tests pin this), but with one instruction-fetch
    /// bulk probe, one hierarchy batch walk, one aggregated retirement,
    /// and one cycle-counter sync for the entire slice.
    pub fn mem_ops(&mut self, core: usize, process: usize, ops: &[MemOp]) {
        if ops.is_empty() {
            return;
        }
        self.touch_icache_batch(core, ops.len() as u64);
        self.batch.clear();
        self.batch.reserve(ops.len());
        let mut retire = MemRetire::default();
        for o in ops {
            self.batch.push(bgp_mem::MemAccess {
                addr: self.layout.physical(process, o.vaddr),
                write: o.write,
            });
            match (o.width, o.write) {
                (MemWidth::Word, false) => retire.word_loads += 1,
                (MemWidth::Word, true) => retire.word_stores += 1,
                (MemWidth::Double, false) => retire.load_double += 1,
                (MemWidth::Double, true) => retire.store_double += 1,
                (MemWidth::Quad, false) => retire.quadload += 1,
                (MemWidth::Quad, true) => retire.quadstore += 1,
            }
            if o.write {
                retire.stores += 1;
            } else {
                retire.loads += 1;
            }
        }
        let stall = self.mem.access_batch(core, &self.batch, &mut self.upc);
        self.cores[core].retire_mem_batch(&retire, stall, &mut self.upc);
        self.cores[core].sync_cycle_counter(&mut self.upc);
    }

    /// Retire `n` FP instructions of class `op` on `core`.
    pub fn fp_op(&mut self, core: usize, op: bgp_fpu::FpOp, n: u64) {
        self.cores[core].retire_fp(op, n, &mut self.upc);
        self.cores[core].sync_cycle_counter(&mut self.upc);
    }

    /// Retire `n` integer instructions on `core`.
    pub fn int_op(&mut self, core: usize, n: u64) {
        self.cores[core].retire_int(n, &mut self.upc);
        self.cores[core].sync_cycle_counter(&mut self.upc);
    }

    /// Retire `n` branches with `mispredicted` misses on `core`.
    pub fn branch_op(&mut self, core: usize, n: u64, mispredicted: u64) {
        self.cores[core].retire_branch(n, mispredicted, &mut self.upc);
        self.cores[core].sync_cycle_counter(&mut self.upc);
    }

    /// Advance `core`'s clock to at least `target` cycles — used when the
    /// core waits on an external event (message arrival, collective
    /// completion). No-op if the core is already past `target`.
    pub fn advance_to(&mut self, core: usize, target: u64) {
        let cur = self.cores[core].cycles();
        if target > cur {
            self.cores[core].add_cycles(target - cur);
            self.cores[core].sync_cycle_counter(&mut self.upc);
        }
    }

    /// Charge raw cycles to `core` (network waits, runtime overheads).
    pub fn charge_cycles(&mut self, core: usize, cycles: u64) {
        self.cores[core].add_cycles(cycles);
        self.cores[core].sync_cycle_counter(&mut self.upc);
    }

    /// Report a network event with a count to this node's UPC, and
    /// mirror mode-3 emissions into the node's ground-truth accumulator
    /// (same enabled gating as the counters, but independent of the
    /// unit's current mode — the multiplexing validation reference).
    pub fn emit_event(&mut self, event: bgp_arch::EventId, count: u64) {
        if self.upc.enabled() && event.mode() == CounterMode::Mode3 {
            let slot = event.slot().0 as usize;
            self.net_truth[slot] = self.net_truth[slot].wrapping_add(count);
        }
        self.upc.emit(event, count);
    }

    /// Ground-truth totals of mode-3 (network) events emitted while
    /// counting was enabled, indexed by mode-3 slot.
    pub fn net_truth(&self) -> &[u64; NUM_COUNTERS] {
        &self.net_truth
    }

    fn touch_icache(&mut self, core: usize) {
        // Rotate through the loop-resident code footprint placed in a
        // reserved high region so it never aliases workload data lines.
        let cur = self.icursor[core];
        self.icursor[core] = (cur + 32) % CODE_FOOTPRINT;
        self.ifetches[core] += 1;
        let iaddr = u64::MAX - CODE_FOOTPRINT + cur;
        let stall = self.mem.ifetch(core, iaddr, &mut self.upc);
        if stall > 0 {
            self.cores[core].add_cycles(stall);
        }
    }

    /// `n` instruction fetches for a retirement batch. Once the footprint
    /// has rotated through completely (`CODE_LINES` fetches) and the L1-I
    /// is big enough to hold all of it, every future fetch is a hit —
    /// nothing else ever allocates into or invalidates the L1-I — so the
    /// warm stream is recorded in bulk without per-fetch cache probes.
    fn touch_icache_batch(&mut self, core: usize, n: u64) {
        if self.icache_fits && self.ifetches[core] >= CODE_LINES {
            self.ifetches[core] += n;
            self.icursor[core] = (self.icursor[core] + 32 * n) % CODE_FOOTPRINT;
            self.mem.ifetch_hits(core, n, &mut self.upc);
        } else {
            for _ in 0..n {
                self.touch_icache(core);
            }
        }
    }

    /// Serialize the node's complete runtime state (checkpoint support):
    /// the four cores, the memory system, the UPC unit, and the synthetic
    /// instruction-fetch cursors. Identity, operating mode, address
    /// layout, and the `batch` scratch buffer are configuration or
    /// transient scratch and are not captured.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for c in &self.cores {
            c.save_state(out);
        }
        self.mem.save_state(out);
        self.upc.save_state(out);
        for &v in &self.icursor {
            bgp_arch::wire::put_u64(out, v);
        }
        for &v in &self.ifetches {
            bgp_arch::wire::put_u64(out, v);
        }
        for &v in self.net_truth.iter() {
            bgp_arch::wire::put_u64(out, v);
        }
    }

    /// Restore state previously written by [`Node::save_state`] into a
    /// node built with the same configuration.
    ///
    /// # Errors
    /// [`bgp_arch::BgpError::Corrupt`] on truncated or inconsistent
    /// input.
    pub fn restore_state(
        &mut self,
        r: &mut bgp_arch::wire::Reader<'_>,
    ) -> bgp_arch::error::Result<()> {
        for c in &mut self.cores {
            c.restore_state(r)?;
        }
        self.mem.restore_state(r)?;
        self.upc.restore_state(r)?;
        r.u64_array(&mut self.icursor, "node icursor")?;
        r.u64_array(&mut self.ifetches, "node ifetches")?;
        r.u64_array(&mut *self.net_truth, "node net truth")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::SharedEvent;
    use bgp_fpu::FpOp;

    fn node(counter_mode: CounterMode) -> Node {
        let mut n = Node::new(
            NodeId(0),
            &MachineConfig::default(),
            OpMode::VirtualNode,
            counter_mode,
        );
        n.upc_mut().set_enabled(true);
        n
    }

    #[test]
    fn mem_ops_walk_the_hierarchy_and_charge_stalls() {
        let mut n = node(CounterMode::Mode0);
        let lvl = n.mem_op(0, 0, 0x1000, MemWidth::Double, false);
        assert_eq!(lvl, HitLevel::Ddr);
        assert!(n.core(0).cycles() >= n.config().lat_ddr);
        let lvl = n.mem_op(0, 0, 0x1000, MemWidth::Double, false);
        assert_eq!(lvl, HitLevel::L1);
    }

    #[test]
    fn processes_have_disjoint_physical_footprints() {
        let mut n = node(CounterMode::Mode2);
        // Same virtual address, different processes: no sharing, so the
        // second access is a fresh DDR miss.
        n.mem_op(0, 0, 0x4000, MemWidth::Double, false);
        let before = n.mem_stats().ddr_reads;
        n.mem_op(1, 1, 0x4000, MemWidth::Double, false);
        assert!(n.mem_stats().ddr_reads > before);
    }

    #[test]
    fn upc_mode0_sees_core0_instruction_stream() {
        let mut n = node(CounterMode::Mode0);
        n.fp_op(0, FpOp::SimdFma, 10);
        n.int_op(0, 4);
        n.mem_op(0, 0, 0, MemWidth::Quad, false);
        let upc = n.upc();
        assert_eq!(upc.read_event(CoreEvent::FpSimdFma.id(0)), Some(10));
        assert_eq!(upc.read_event(CoreEvent::IntOp.id(0)), Some(4));
        assert_eq!(upc.read_event(CoreEvent::Quadload.id(0)), Some(1));
        // Shared events are invisible in mode 0 but present in ground truth.
        assert_eq!(upc.read_event(SharedEvent::DdrRead0.id()), None);
        assert_eq!(n.mem_stats().ddr_reads, 1);
    }

    #[test]
    fn cycle_count_event_tracks_core_clock() {
        let mut n = node(CounterMode::Mode0);
        n.int_op(0, 1000);
        let counted = n.upc().read_event(CoreEvent::CycleCount.id(0)).unwrap();
        assert_eq!(counted, n.core(0).cycles());
        assert_eq!(counted, n.timebase(0));
    }

    #[test]
    fn node_cycles_is_the_slowest_core() {
        let mut n = node(CounterMode::Mode0);
        n.int_op(0, 100);
        n.int_op(2, 500);
        assert_eq!(n.node_cycles(), n.core(2).cycles());
    }

    #[test]
    fn icache_stays_warm_for_loop_resident_code() {
        let mut n = node(CounterMode::Mode0);
        for i in 0..10_000u64 {
            n.mem_op(0, 0, (i % 64) * 8, MemWidth::Double, false);
        }
        let s = n.mem_stats();
        // First pass through the 16 KB footprint misses; after that the
        // 32 KB L1-I holds it entirely.
        assert!(s.l1i_misses <= 512 + 8, "l1i misses: {}", s.l1i_misses);
        assert!(s.l1i_hits > 9_000);
    }

    #[test]
    fn batched_mem_ops_match_the_scalar_path() {
        // Differential: the same op stream through per-op `mem_op` and
        // through `mem_ops` slices must leave both nodes byte-identical —
        // memory stats, every core clock, and the full UPC snapshot.
        for mode in [CounterMode::Mode0, CounterMode::Mode2] {
            let mut scalar = node(mode);
            let mut batched = node(mode);
            let mut x = 0x9E3779B97F4A7C15u64;
            let slices: Vec<(usize, usize, Vec<MemOp>)> = (0..120)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let core = (x >> 33) as usize % CORES_PER_NODE;
                    let ops = (0..48)
                        .map(|_| {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let width = match x >> 62 {
                                0 => MemWidth::Word,
                                1 | 2 => MemWidth::Double,
                                _ => MemWidth::Quad,
                            };
                            // Mixed strided/random over 256 KB per process.
                            MemOp {
                                vaddr: ((x >> 13) % (256 << 10)) & !7,
                                width,
                                write: x & 3 == 0,
                            }
                        })
                        .collect();
                    (core, core, ops)
                })
                .collect();
            for (core, process, ops) in &slices {
                for o in ops {
                    scalar.mem_op(*core, *process, o.vaddr, o.width, o.write);
                }
                batched.mem_ops(*core, *process, ops);
            }
            assert_eq!(scalar.mem_stats(), batched.mem_stats());
            for c in 0..CORES_PER_NODE {
                assert_eq!(scalar.core(c).cycles(), batched.core(c).cycles());
                assert_eq!(scalar.core(c).instr_counts(), batched.core(c).instr_counts());
            }
            assert_eq!(scalar.upc().snapshot(), batched.upc().snapshot());
        }
    }

    #[test]
    fn net_truth_mirrors_enabled_mode3_emissions() {
        use bgp_arch::events::NetEvent;
        // Mode 0: the UPC is blind to network events, but the ground
        // truth still records them — that independence is the point.
        let mut n = node(CounterMode::Mode0);
        let ev = NetEvent::TorusBytesSent.id();
        n.emit_event(ev, 100);
        n.upc_mut().set_enabled(false);
        n.emit_event(ev, 7); // outside the window: not truth either
        assert_eq!(n.net_truth()[ev.slot().0 as usize], 100);
        assert_eq!(n.upc().read_event(ev), None);
    }

    #[test]
    fn threshold_interrupts_agree_between_scalar_and_batched_paths() {
        use bgp_upc::CounterConfig;
        // Slot 20 is core 0's L1d-miss counter in mode 0. The scalar
        // path bumps it one miss at a time and fires exactly at the
        // threshold; the batched engine folds a whole walk's misses
        // into one emission and fires at the first fold boundary past
        // it. Raise counts, slots and final counter values must agree;
        // only the captured value-at-fire may differ.
        let mk = || {
            let mut n = node(CounterMode::Mode0);
            let cfg = CounterConfig { interrupt_enable: true, ..CounterConfig::default() };
            n.upc_mut().configure(20, cfg);
            n.upc_mut().set_threshold(20, 10);
            n
        };
        let (mut scalar, mut batched) = (mk(), mk());
        let ops: Vec<MemOp> = (0..2000u64)
            .map(|i| MemOp { vaddr: i * 64, width: MemWidth::Double, write: false })
            .collect();
        for o in &ops {
            scalar.mem_op(0, 0, o.vaddr, o.width, o.write);
        }
        batched.mem_ops(0, 0, &ops);
        assert_eq!(scalar.upc().snapshot(), batched.upc().snapshot());
        assert_eq!(scalar.upc().interrupts_raised(), 1);
        assert_eq!(batched.upc().interrupts_raised(), 1);
        let a = scalar.upc_mut().take_interrupts();
        let b = batched.upc_mut().take_interrupts();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!((a[0].slot, a[0].threshold), (20, 10));
        assert_eq!((b[0].slot, b[0].threshold), (20, 10));
        assert_eq!(a[0].value, 10, "scalar path fires exactly at the threshold");
        assert!(b[0].value >= 10, "batched path fires at a fold boundary");
        // Drain semantics: pending is emptied, the latch stays set, and
        // the (non-frozen) counter kept counting past the threshold.
        assert!(scalar.upc_mut().take_interrupts().is_empty());
        assert!(batched.upc_mut().take_interrupts().is_empty());
        assert!(scalar.upc().read(20) > 10);
    }

    #[test]
    fn charge_cycles_reaches_timebase_and_counter() {
        let mut n = node(CounterMode::Mode0);
        n.charge_cycles(1, 12345);
        assert_eq!(n.timebase(1), 12345);
        assert_eq!(n.upc().read_event(CoreEvent::CycleCount.id(1)), Some(12345));
        // Core 3's clock is only visible in counter mode 1.
        n.charge_cycles(3, 99);
        assert_eq!(n.timebase(3), 99);
        assert_eq!(n.upc().read_event(CoreEvent::CycleCount.id(3)), None);
    }

    #[test]
    fn node_save_restore_resumes_byte_identically() {
        let run = |resume_at: Option<u64>| -> (Vec<u8>, u64) {
            let mut n = node(CounterMode::Mode2);
            let mut restored: Option<Node> = None;
            for i in 0..6000u64 {
                if Some(i) == resume_at {
                    // Snapshot, restore into a fresh node, continue there.
                    let mut bytes = Vec::new();
                    n.save_state(&mut bytes);
                    let mut fresh = node(CounterMode::Mode2);
                    let mut r = bgp_arch::wire::Reader::new(&bytes);
                    fresh.restore_state(&mut r).unwrap();
                    r.expect_end("node section").unwrap();
                    restored = Some(std::mem::replace(&mut n, fresh));
                }
                let core = (i % 4) as usize;
                n.mem_op(core, core, 0x2000 + i * 40, MemWidth::Double, i % 7 == 0);
                n.fp_op(core, FpOp::SimdFma, 3);
                n.int_op(core, 5);
                n.branch_op(core, 2, u64::from(i % 11 == 0));
            }
            drop(restored);
            let mut out = Vec::new();
            n.save_state(&mut out);
            (out, n.node_cycles())
        };
        let (straight, cyc_a) = run(None);
        let (resumed, cyc_b) = run(Some(2500));
        assert_eq!(cyc_a, cyc_b);
        assert_eq!(straight, resumed, "resumed node diverged");
    }
}
