//! One PowerPC 450 **core**: the in-order, 2-way-superscalar issue model
//! and its retirement bookkeeping.
//!
//! The core does not interpret instructions — workloads perform their
//! real arithmetic in Rust and the compiler model *retires* the lowered
//! instruction stream here. The core accounts issue slots, memory and
//! FPU stall cycles, and instruction-class counts, and reports every
//! retirement to the UPC unit.

use bgp_arch::events::CoreEvent;
use bgp_fpu::{FpOp, Fpu};
use bgp_upc::Upc;

/// Issue width of the PPC450 (instructions per cycle).
pub const ISSUE_WIDTH: u64 = 2;

/// Branch misprediction penalty (cycles; 7-stage pipeline refill).
pub const MISPREDICT_PENALTY: u64 = 4;

/// Per-class instruction counters of one core (ground truth mirror of the
/// UPC's mode-limited view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrCounts {
    /// Integer/ALU/address instructions.
    pub int_ops: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Load instructions (all widths).
    pub loads: u64,
    /// Store instructions (all widths).
    pub stores: u64,
    /// 8-byte FP loads.
    pub load_double: u64,
    /// 8-byte FP stores.
    pub store_double: u64,
    /// 16-byte quadloads.
    pub quadload: u64,
    /// 16-byte quadstores.
    pub quadstore: u64,
}

impl InstrCounts {
    /// Total memory instructions.
    pub fn mem_instructions(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Aggregated per-class counts of one retired memory batch, as consumed
/// by [`Core::retire_mem_batch`]. The node builds this while translating
/// a batch so the core can retire the whole slice with a constant number
/// of counter updates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemRetire {
    /// Load instructions of all widths.
    pub loads: u64,
    /// Store instructions of all widths.
    pub stores: u64,
    /// 4-byte loads (the scalar path reports these on the `Load` event a
    /// second time, as the width event).
    pub word_loads: u64,
    /// 4-byte stores (reported on `Store` a second time, as the width
    /// event).
    pub word_stores: u64,
    /// 8-byte FP loads.
    pub load_double: u64,
    /// 8-byte FP stores.
    pub store_double: u64,
    /// 16-byte quadloads.
    pub quadload: u64,
    /// 16-byte quadstores.
    pub quadstore: u64,
}

/// Execution state of one core.
#[derive(Clone, Debug)]
pub struct Core {
    id: usize,
    issued: u64,
    stall_mem: u64,
    stall_fpu: u64,
    extra_cycles: u64,
    instr: InstrCounts,
    fpu: Fpu,
    /// Cycle value at which the UPC `CycleCount` event was last synced.
    upc_cycle_mark: u64,
}

impl Core {
    /// A fresh core with identifier `id` (0–3).
    pub fn new(id: usize) -> Core {
        assert!(id < bgp_arch::CORES_PER_NODE);
        Core {
            id,
            issued: 0,
            stall_mem: 0,
            stall_fpu: 0,
            extra_cycles: 0,
            instr: InstrCounts::default(),
            fpu: Fpu::new(),
            upc_cycle_mark: 0,
        }
    }

    /// Core index within its node.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Cycles elapsed on this core: issue-limited cycles plus stalls plus
    /// directly-charged cycles (network waits, runtime overheads).
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.issued.div_ceil(ISSUE_WIDTH) + self.stall_mem + self.stall_fpu + self.extra_cycles
    }

    /// Ground-truth instruction counters.
    pub fn instr_counts(&self) -> &InstrCounts {
        &self.instr
    }

    /// Ground-truth FPU statistics.
    pub fn fpu(&self) -> &Fpu {
        &self.fpu
    }

    /// Total instructions issued (completed) so far.
    pub fn instructions(&self) -> u64 {
        self.issued
    }

    /// Memory stall cycles accumulated.
    pub fn stall_mem(&self) -> u64 {
        self.stall_mem
    }

    /// FPU stall cycles accumulated.
    pub fn stall_fpu(&self) -> u64 {
        self.stall_fpu
    }

    /// Push the core's cycle progression into the UPC `CycleCount` and
    /// stall counters. Called by the node after every retirement batch so
    /// the counter tracks the core clock.
    pub fn sync_cycle_counter(&mut self, upc: &mut Upc) {
        let now = self.cycles();
        let delta = now - self.upc_cycle_mark;
        if delta > 0 {
            upc.emit(CoreEvent::CycleCount.id(self.id), delta);
            self.upc_cycle_mark = now;
        }
    }

    /// Retire `n` integer-unit instructions.
    pub fn retire_int(&mut self, n: u64, upc: &mut Upc) {
        if n == 0 {
            return;
        }
        self.issued += n;
        self.instr.int_ops += n;
        upc.emit(CoreEvent::IntOp.id(self.id), n);
        upc.emit(CoreEvent::InstrCompleted.id(self.id), n);
    }

    /// Retire `n` branches of which `mispredicted` missed.
    pub fn retire_branch(&mut self, n: u64, mispredicted: u64, upc: &mut Upc) {
        if n == 0 {
            return;
        }
        debug_assert!(mispredicted <= n);
        self.issued += n;
        self.instr.branches += n;
        self.instr.mispredicts += mispredicted;
        self.extra_cycles += mispredicted * MISPREDICT_PENALTY;
        upc.emit(CoreEvent::Branch.id(self.id), n);
        upc.emit(CoreEvent::BranchMispredict.id(self.id), mispredicted);
        upc.emit(CoreEvent::InstrCompleted.id(self.id), n);
    }

    /// Retire `n` FP instructions of class `op`.
    pub fn retire_fp(&mut self, op: FpOp, n: u64, upc: &mut Upc) {
        if n == 0 {
            return;
        }
        self.issued += n;
        let stall = self.fpu.retire(op, n, self.id, upc);
        if stall > 0 {
            self.stall_fpu += stall;
            upc.emit(CoreEvent::StallFpu.id(self.id), stall);
        }
        upc.emit(CoreEvent::InstrCompleted.id(self.id), n);
    }

    /// Account a retired memory instruction (the node performs the actual
    /// cache walk and passes the resulting stall here).
    pub fn retire_mem(
        &mut self,
        write: bool,
        width_event: CoreEvent,
        stall: u64,
        upc: &mut Upc,
    ) {
        self.issued += 1;
        if write {
            self.instr.stores += 1;
            upc.emit(CoreEvent::Store.id(self.id), 1);
        } else {
            self.instr.loads += 1;
            upc.emit(CoreEvent::Load.id(self.id), 1);
        }
        match width_event {
            CoreEvent::LoadDouble => self.instr.load_double += 1,
            CoreEvent::StoreDouble => self.instr.store_double += 1,
            CoreEvent::Quadload => self.instr.quadload += 1,
            CoreEvent::Quadstore => self.instr.quadstore += 1,
            _ => {}
        }
        upc.emit(width_event.id(self.id), 1);
        upc.emit(CoreEvent::InstrCompleted.id(self.id), 1);
        if stall > 0 {
            self.stall_mem += stall;
            upc.emit(CoreEvent::StallMem.id(self.id), stall);
        }
    }

    /// Account a whole batch of retired memory instructions with the
    /// batch's summed stall. Emits exactly the counter totals `n`
    /// successive [`Core::retire_mem`] calls would emit — including the
    /// scalar path's double-count of 4-byte accesses on the `Load`/
    /// `Store` events (`MemWidth::Word` has no dedicated width event) —
    /// but with a constant number of UPC updates.
    pub fn retire_mem_batch(&mut self, r: &MemRetire, stall: u64, upc: &mut Upc) {
        let n = r.loads + r.stores;
        if n == 0 {
            return;
        }
        self.issued += n;
        self.instr.loads += r.loads;
        self.instr.stores += r.stores;
        self.instr.load_double += r.load_double;
        self.instr.store_double += r.store_double;
        self.instr.quadload += r.quadload;
        self.instr.quadstore += r.quadstore;
        let emits = [
            (CoreEvent::Load, r.loads + r.word_loads),
            (CoreEvent::Store, r.stores + r.word_stores),
            (CoreEvent::LoadDouble, r.load_double),
            (CoreEvent::StoreDouble, r.store_double),
            (CoreEvent::Quadload, r.quadload),
            (CoreEvent::Quadstore, r.quadstore),
            (CoreEvent::InstrCompleted, n),
        ];
        for (ev, count) in emits {
            if count > 0 {
                upc.emit(ev.id(self.id), count);
            }
        }
        if stall > 0 {
            self.stall_mem += stall;
            upc.emit(CoreEvent::StallMem.id(self.id), stall);
        }
    }

    /// Charge cycles directly (network waits, runtime call overheads).
    pub fn add_cycles(&mut self, n: u64) {
        self.extra_cycles += n;
    }

    /// Serialize the core's runtime state (checkpoint support). The core
    /// id is configuration, not state, and is not captured.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        use bgp_arch::wire::put_u64;
        put_u64(out, self.issued);
        put_u64(out, self.stall_mem);
        put_u64(out, self.stall_fpu);
        put_u64(out, self.extra_cycles);
        for v in [
            self.instr.int_ops,
            self.instr.branches,
            self.instr.mispredicts,
            self.instr.loads,
            self.instr.stores,
            self.instr.load_double,
            self.instr.store_double,
            self.instr.quadload,
            self.instr.quadstore,
        ] {
            put_u64(out, v);
        }
        self.fpu.save_state(out);
        put_u64(out, self.upc_cycle_mark);
    }

    /// Restore state previously written by [`Core::save_state`].
    ///
    /// # Errors
    /// [`bgp_arch::BgpError::Corrupt`] on truncated input.
    pub fn restore_state(
        &mut self,
        r: &mut bgp_arch::wire::Reader<'_>,
    ) -> bgp_arch::error::Result<()> {
        self.issued = r.u64("core issued")?;
        self.stall_mem = r.u64("core stall_mem")?;
        self.stall_fpu = r.u64("core stall_fpu")?;
        self.extra_cycles = r.u64("core extra_cycles")?;
        self.instr.int_ops = r.u64("core int_ops")?;
        self.instr.branches = r.u64("core branches")?;
        self.instr.mispredicts = r.u64("core mispredicts")?;
        self.instr.loads = r.u64("core loads")?;
        self.instr.stores = r.u64("core stores")?;
        self.instr.load_double = r.u64("core load_double")?;
        self.instr.store_double = r.u64("core store_double")?;
        self.instr.quadload = r.u64("core quadload")?;
        self.instr.quadstore = r.u64("core quadstore")?;
        self.fpu.restore_state(r)?;
        self.upc_cycle_mark = r.u64("core upc_cycle_mark")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::CounterMode;

    fn upc() -> Upc {
        let mut u = Upc::new(CounterMode::Mode0);
        u.set_enabled(true);
        u
    }

    #[test]
    fn dual_issue_halves_cycle_cost() {
        let mut c = Core::new(0);
        let mut u = upc();
        c.retire_int(100, &mut u);
        assert_eq!(c.cycles(), 50);
        c.retire_int(1, &mut u);
        assert_eq!(c.cycles(), 51, "odd instruction rounds up");
    }

    #[test]
    fn mispredicts_cost_pipeline_refills() {
        let mut c = Core::new(1);
        let mut u = upc();
        c.retire_branch(10, 2, &mut u);
        assert_eq!(c.cycles(), 5 + 2 * MISPREDICT_PENALTY);
        assert_eq!(u.read_event(CoreEvent::BranchMispredict.id(1)), Some(2));
    }

    #[test]
    fn fp_divide_stalls_show_up_in_cycles_and_upc() {
        let mut c = Core::new(0);
        let mut u = upc();
        c.retire_fp(FpOp::Div, 1, &mut u);
        assert_eq!(c.stall_fpu(), FpOp::Div.latency() - 1);
        assert_eq!(
            u.read_event(CoreEvent::StallFpu.id(0)),
            Some(FpOp::Div.latency() - 1)
        );
    }

    #[test]
    fn mem_retirement_classifies_widths() {
        let mut c = Core::new(0);
        let mut u = upc();
        c.retire_mem(false, CoreEvent::Quadload, 10, &mut u);
        c.retire_mem(true, CoreEvent::StoreDouble, 0, &mut u);
        let ic = c.instr_counts();
        assert_eq!(ic.quadload, 1);
        assert_eq!(ic.store_double, 1);
        assert_eq!(ic.loads, 1);
        assert_eq!(ic.stores, 1);
        assert_eq!(c.stall_mem(), 10);
        assert_eq!(u.read_event(CoreEvent::Quadload.id(0)), Some(1));
        assert_eq!(u.read_event(CoreEvent::Load.id(0)), Some(1));
    }

    #[test]
    fn cycle_counter_sync_is_incremental() {
        let mut c = Core::new(0);
        let mut u = upc();
        c.retire_int(100, &mut u);
        c.sync_cycle_counter(&mut u);
        assert_eq!(u.read_event(CoreEvent::CycleCount.id(0)), Some(50));
        c.retire_int(10, &mut u);
        c.sync_cycle_counter(&mut u);
        assert_eq!(u.read_event(CoreEvent::CycleCount.id(0)), Some(55));
        // No double counting when nothing advanced.
        c.sync_cycle_counter(&mut u);
        assert_eq!(u.read_event(CoreEvent::CycleCount.id(0)), Some(55));
    }

    #[test]
    fn instr_completed_aggregates_all_classes() {
        let mut c = Core::new(0);
        let mut u = upc();
        c.retire_int(5, &mut u);
        c.retire_branch(2, 0, &mut u);
        c.retire_fp(FpOp::Fma, 3, &mut u);
        c.retire_mem(false, CoreEvent::LoadDouble, 0, &mut u);
        assert_eq!(u.read_event(CoreEvent::InstrCompleted.id(0)), Some(11));
        assert_eq!(c.instructions(), 11);
    }
}
