//! End-to-end benchmarks of the rank runtime and the NAS kernels at
//! class S: the cost of a whole instrumented job, and the messaging
//! layer's collective primitives.

use bgp_arch::events::CounterMode;
use bgp_arch::OpMode;
use bgp_bench::microbench::{bench, group};
use bgp_mpi::{CounterPolicy, JobSpec, Machine};
use bgp_nas::{Class, Kernel};

fn spec(ranks: usize) -> JobSpec {
    let mut s = JobSpec::new(ranks, OpMode::VirtualNode);
    s.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
    s
}

fn bench_kernels_class_s() {
    group("kernel_class_s_x4");
    for kernel in Kernel::ALL {
        let ranks = kernel.clamp_ranks(4, Class::S);
        bench(kernel.name(), || {
            let m = Machine::new(spec(ranks));
            m.enable_all_counters();
            let out = m.run(move |ctx| async move { kernel.exec(Class::S, ctx).await.1 });
            assert!(out.iter().all(|r| r.verified));
            m.job_cycles()
        });
    }
}

fn bench_collectives() {
    group("collectives_x8");
    bench("barrier_x100", || {
        let m = Machine::new(spec(8));
        m.run(|mut ctx| async move {
            for _ in 0..100 {
                ctx.barrier().await;
            }
        });
    });
    bench("allreduce_1k_f64_x20", || {
        let m = Machine::new(spec(8));
        m.run(|mut ctx| async move {
            let v = vec![ctx.rank() as f64; 1024];
            for _ in 0..20 {
                ctx.allreduce_sum_f64(&v).await;
            }
        });
    });
    bench("alltoall_4k_x10", || {
        let m = Machine::new(spec(8));
        m.run(|mut ctx| async move {
            for _ in 0..10 {
                let rows = vec![vec![0u8; 4096]; ctx.size()];
                ctx.alltoall(rows).await;
            }
        });
    });
}

fn bench_turnstile_quantum() {
    // Ablation: the scheduler quantum trades interleaving fidelity
    // against wall-clock simulation speed.
    group("ablation_quantum");
    for quantum in [64u64, 512, 2048, 16384] {
        bench(&format!("quantum_{quantum}"), || {
            let mut s = spec(4);
            s.quantum = quantum;
            let m = Machine::new(s);
            m.run(|mut ctx| async move {
                let mut v = ctx.alloc::<f64>(32 * 1024);
                for i in 0..32 * 1024 {
                    ctx.st(&mut v, i, i as f64).await;
                }
            });
            m.job_cycles()
        });
    }
}

fn main() {
    bench_kernels_class_s();
    bench_collectives();
    bench_turnstile_quantum();
}
