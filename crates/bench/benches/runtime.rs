//! End-to-end benchmarks of the rank runtime and the NAS kernels at
//! class S: the cost of a whole instrumented job, and the messaging
//! layer's collective primitives.

use bgp_arch::events::CounterMode;
use bgp_arch::OpMode;
use bgp_mpi::{CounterPolicy, JobSpec, Machine};
use bgp_nas::{Class, Kernel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn spec(ranks: usize) -> JobSpec {
    let mut s = JobSpec::new(ranks, OpMode::VirtualNode);
    s.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
    s
}

fn bench_kernels_class_s(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_class_s_x4");
    g.sample_size(10);
    for kernel in Kernel::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(kernel.name()), &kernel, |b, &k| {
            let ranks = k.clamp_ranks(4, Class::S);
            b.iter(|| {
                let m = Machine::new(spec(ranks));
                m.enable_all_counters();
                let out = m.run(|ctx| k.run(ctx, Class::S));
                assert!(out.iter().all(|r| r.verified));
                m.job_cycles()
            })
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_x8");
    g.sample_size(20);
    g.bench_function("barrier_x100", |b| {
        b.iter(|| {
            let m = Machine::new(spec(8));
            m.run(|ctx| {
                for _ in 0..100 {
                    ctx.barrier();
                }
            });
        })
    });
    g.bench_function("allreduce_1k_f64_x20", |b| {
        b.iter(|| {
            let m = Machine::new(spec(8));
            m.run(|ctx| {
                let v = vec![ctx.rank() as f64; 1024];
                for _ in 0..20 {
                    ctx.allreduce_sum_f64(&v);
                }
            });
        })
    });
    g.bench_function("alltoall_4k_x10", |b| {
        b.iter(|| {
            let m = Machine::new(spec(8));
            m.run(|ctx| {
                for _ in 0..10 {
                    let rows = vec![vec![0u8; 4096]; ctx.size()];
                    ctx.alltoall(rows);
                }
            });
        })
    });
    g.finish();
}

fn bench_turnstile_quantum(c: &mut Criterion) {
    // Ablation: the scheduler quantum trades interleaving fidelity
    // against wall-clock simulation speed.
    let mut g = c.benchmark_group("ablation_quantum");
    g.sample_size(10);
    for quantum in [64u64, 512, 2048, 16384] {
        g.bench_with_input(BenchmarkId::from_parameter(quantum), &quantum, |b, &q| {
            b.iter(|| {
                let mut s = spec(4);
                s.quantum = q;
                let m = Machine::new(s);
                m.run(|ctx| {
                    let mut v = ctx.alloc::<f64>(32 * 1024);
                    for i in 0..32 * 1024 {
                        ctx.st(&mut v, i, i as f64);
                    }
                });
                m.job_cycles()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels_class_s, bench_collectives, bench_turnstile_quantum);
criterion_main!(benches);
