//! Micro-benchmarks of the memory-hierarchy model itself: how fast the
//! simulator retires accesses under different locality patterns, and
//! what the stream prefetcher costs/saves.

use bgp_arch::events::CounterMode;
use bgp_arch::MachineConfig;
use bgp_bench::microbench::{bench, bench_throughput, group};
use bgp_mem::MemorySystem;
use bgp_upc::Upc;

const N_ACCESSES: u64 = 100_000;

fn bench_patterns() {
    group("mem_access_patterns");
    for (name, stride) in
        [("sequential_8B", 8u64), ("line_stride_128B", 128), ("page_hostile_4165B", 4165)]
    {
        bench_throughput(name, N_ACCESSES, || {
            let mut m = MemorySystem::new(&MachineConfig::default());
            let mut upc = Upc::new(CounterMode::Mode2);
            upc.set_enabled(true);
            let mut stall = 0u64;
            for i in 0..N_ACCESSES {
                stall += m.access(0, (i * stride) % (16 << 20), false, &mut upc).stall;
            }
            stall
        });
    }
}

fn bench_prefetch_depth() {
    group("prefetch_depth");
    for depth in [0usize, 2, 8] {
        let cfg = MachineConfig::default().with_l2_prefetch_depth(depth);
        bench_throughput(&format!("depth_{depth}"), N_ACCESSES, || {
            let mut m = MemorySystem::new(&cfg);
            let mut upc = Upc::new(CounterMode::Mode2);
            upc.set_enabled(true);
            let mut stall = 0u64;
            for i in 0..N_ACCESSES {
                stall += m.access(0, i * 8, false, &mut upc).stall;
            }
            stall
        });
    }
}

fn bench_four_core_interleave() {
    group("four_core_interleave");
    bench("four_core_interleaved_streams", || {
        let mut m = MemorySystem::new(&MachineConfig::default());
        let mut upc = Upc::new(CounterMode::Mode2);
        upc.set_enabled(true);
        let mut stall = 0u64;
        for i in 0..N_ACCESSES {
            let core = (i % 4) as usize;
            let addr = core as u64 * (512 << 20) + (i / 4) * 8;
            stall += m.access(core, addr, i % 7 == 0, &mut upc).stall;
        }
        stall
    });
}

fn main() {
    bench_patterns();
    bench_prefetch_depth();
    bench_four_core_interleave();
}
