//! Micro-benchmarks of the memory-hierarchy model itself: how fast the
//! simulator retires accesses under different locality patterns, and
//! what the stream prefetcher costs/saves.

use bgp_arch::events::CounterMode;
use bgp_arch::MachineConfig;
use bgp_mem::MemorySystem;
use bgp_upc::Upc;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N_ACCESSES: u64 = 100_000;

fn bench_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem_access_patterns");
    g.throughput(Throughput::Elements(N_ACCESSES));
    for (name, stride) in [("sequential_8B", 8u64), ("line_stride_128B", 128), ("page_hostile_4165B", 4165)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = MemorySystem::new(&MachineConfig::default());
                let mut upc = Upc::new(CounterMode::Mode2);
                upc.set_enabled(true);
                let mut stall = 0u64;
                for i in 0..N_ACCESSES {
                    stall += m.access(0, (i * stride) % (16 << 20), false, &mut upc).stall;
                }
                stall
            })
        });
    }
    g.finish();
}

fn bench_prefetch_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetch_depth");
    g.throughput(Throughput::Elements(N_ACCESSES));
    for depth in [0usize, 2, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let cfg = MachineConfig::default().with_l2_prefetch_depth(depth);
            b.iter(|| {
                let mut m = MemorySystem::new(&cfg);
                let mut upc = Upc::new(CounterMode::Mode2);
                upc.set_enabled(true);
                let mut stall = 0u64;
                for i in 0..N_ACCESSES {
                    stall += m.access(0, i * 8, false, &mut upc).stall;
                }
                stall
            })
        });
    }
    g.finish();
}

fn bench_four_core_interleave(c: &mut Criterion) {
    c.bench_function("four_core_interleaved_streams", |b| {
        b.iter(|| {
            let mut m = MemorySystem::new(&MachineConfig::default());
            let mut upc = Upc::new(CounterMode::Mode2);
            upc.set_enabled(true);
            let mut stall = 0u64;
            for i in 0..N_ACCESSES {
                let core = (i % 4) as usize;
                let addr = core as u64 * (512 << 20) + (i / 4) * 8;
                stall += m.access(core, addr, i % 7 == 0, &mut upc).stall;
            }
            stall
        })
    });
}

criterion_group!(benches, bench_patterns, bench_prefetch_depth, bench_four_core_interleave);
criterion_main!(benches);
