//! Micro-benchmarks of the UPC unit model: per-event emit cost (the
//! hottest call in the whole simulator), threshold checking, and the
//! memory-mapped register file.

use bgp_arch::events::{CoreEvent, CounterMode};
use bgp_upc::regfile::{RegFile, OFF_COUNTERS};
use bgp_upc::{CounterConfig, Upc};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const N: u64 = 1_000_000;

fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("upc_emit");
    g.throughput(Throughput::Elements(N));
    g.bench_function("matching_mode", |b| {
        let ev = CoreEvent::L1dHit.id(0);
        b.iter(|| {
            let mut u = Upc::new(CounterMode::Mode0);
            u.set_enabled(true);
            for _ in 0..N {
                u.emit(ev, 1);
            }
            u.read(ev.slot().0)
        })
    });
    g.bench_function("filtered_other_mode", |b| {
        let ev = CoreEvent::L1dHit.id(2); // mode 1 event, unit in mode 0
        b.iter(|| {
            let mut u = Upc::new(CounterMode::Mode0);
            u.set_enabled(true);
            for _ in 0..N {
                u.emit(ev, 1);
            }
            u.read(ev.slot().0)
        })
    });
    g.bench_function("with_armed_threshold", |b| {
        let ev = CoreEvent::L1dHit.id(0);
        b.iter(|| {
            let mut u = Upc::new(CounterMode::Mode0);
            u.set_enabled(true);
            u.configure(
                ev.slot().0,
                CounterConfig { interrupt_enable: true, ..Default::default() },
            );
            u.set_threshold(ev.slot().0, N / 2);
            for _ in 0..N {
                u.emit(ev, 1);
            }
            u.take_interrupts().len()
        })
    });
    g.finish();
}

fn bench_regfile(c: &mut Criterion) {
    c.bench_function("regfile_scan_all_counters", |b| {
        let mut u = Upc::new(CounterMode::Mode0);
        b.iter(|| {
            let mut rf = RegFile::new(&mut u);
            let mut sum = 0u64;
            for slot in 0..256u64 {
                sum += rf.load(OFF_COUNTERS + slot * 8).expect("mapped");
            }
            sum
        })
    });
}

criterion_group!(benches, bench_emit, bench_regfile);
criterion_main!(benches);
