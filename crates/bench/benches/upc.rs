//! Micro-benchmarks of the UPC unit model: per-event emit cost (the
//! hottest call in the whole simulator), threshold checking, and the
//! memory-mapped register file.

use bgp_arch::events::{CoreEvent, CounterMode};
use bgp_bench::microbench::{bench, bench_throughput, group};
use bgp_upc::regfile::{RegFile, OFF_COUNTERS};
use bgp_upc::{CounterConfig, Upc};

const N: u64 = 1_000_000;

fn bench_emit() {
    group("upc_emit");
    bench_throughput("matching_mode", N, || {
        let ev = CoreEvent::L1dHit.id(0);
        let mut u = Upc::new(CounterMode::Mode0);
        u.set_enabled(true);
        for _ in 0..N {
            u.emit(ev, 1);
        }
        u.read(ev.slot().0)
    });
    bench_throughput("filtered_other_mode", N, || {
        let ev = CoreEvent::L1dHit.id(2); // mode 1 event, unit in mode 0
        let mut u = Upc::new(CounterMode::Mode0);
        u.set_enabled(true);
        for _ in 0..N {
            u.emit(ev, 1);
        }
        u.read(ev.slot().0)
    });
    bench_throughput("with_armed_threshold", N, || {
        let ev = CoreEvent::L1dHit.id(0);
        let mut u = Upc::new(CounterMode::Mode0);
        u.set_enabled(true);
        u.configure(ev.slot().0, CounterConfig { interrupt_enable: true, ..Default::default() });
        u.set_threshold(ev.slot().0, N / 2);
        for _ in 0..N {
            u.emit(ev, 1);
        }
        u.take_interrupts().len()
    });
}

fn bench_regfile() {
    group("upc_regfile");
    let mut u = Upc::new(CounterMode::Mode0);
    bench("regfile_scan_all_counters", || {
        let mut rf = RegFile::new(&mut u);
        let mut sum = 0u64;
        for slot in 0..256u64 {
            sum += rf.load(OFF_COUNTERS + slot * 8).expect("mapped");
        }
        sum
    });
}

fn main() {
    bench_emit();
    bench_regfile();
}
