//! A tiny dependency-free micro-benchmark harness for the
//! `crates/bench/benches/*` targets (which use `harness = false`).
//!
//! Each measurement runs the closure once to warm up, then takes a
//! fixed number of timed samples and reports min / mean / max
//! nanoseconds per sample. A black-box sink keeps the optimizer from
//! deleting the measured work. Honors `BGP_BENCH_SAMPLES` to rescale
//! runs (e.g. `BGP_BENCH_SAMPLES=1` in CI smoke runs).

use std::hint::black_box;
use std::time::Instant;

/// Number of timed samples per benchmark (before `BGP_BENCH_SAMPLES`).
pub const DEFAULT_SAMPLES: usize = 10;

fn samples() -> usize {
    std::env::var("BGP_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_SAMPLES)
}

/// Run `f` repeatedly and print a one-line timing summary.
///
/// Returns the mean nanoseconds per sample so callers can assert on or
/// post-process the result if they want to.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    let n = samples();
    black_box(f()); // warm-up, also primes caches/allocator
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_nanos() as f64);
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / n as f64;
    println!(
        "{name:<44} {:>12} ns/iter (min {:>12}, max {:>12}, {n} samples)",
        human(mean),
        human(min),
        human(max)
    );
    mean
}

/// Like [`fn@bench`], but also reports per-element throughput for
/// benchmarks that process `elements` items per sample.
pub fn bench_throughput<R>(name: &str, elements: u64, f: impl FnMut() -> R) -> f64 {
    let mean = bench(name, f);
    if elements > 0 && mean > 0.0 {
        let per = mean / elements as f64;
        let rate = 1e9 / per / 1e6;
        println!("{:<44} {per:>12.2} ns/elem ({rate:.1} Melem/s)", format!("  ↳ {elements} elems"));
    }
    mean
}

/// Print a section header (group of related benchmarks).
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns_positive_mean() {
        let mean = bench("spin", || {
            let mut s = 0u64;
            for i in 0..1000u64 {
                s = s.wrapping_add(i);
            }
            s
        });
        assert!(mean >= 0.0);
    }

    #[test]
    fn human_formats_scale() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("us"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(2e9).ends_with('s'));
    }
}
