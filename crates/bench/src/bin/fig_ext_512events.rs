//! Extension experiment: even/odd-node 512-event coverage vs two runs.
use bgp_bench::{figures, Scale};
fn main() {
    bgp_bench::emit("fig_ext_512events", &figures::fig_ext_512events(Scale::from_args()));
}
