//! Extension: throughput of the batched memory-hierarchy engine — the
//! same access stream through the per-op `Node::mem_op` path (icache
//! probe, hierarchy walk, retirement, counter sync per access) and
//! through `Node::mem_ops` in quantum-sized slices, plus the end-to-end
//! MG job riding the batched engine. Records the comparison (plus host
//! context) in `BENCH_mem.json` at the repo root when run at
//! Default/Paper scale.
//!
//! `--gate` turns the acceptance criterion into an exit code: fail if
//! the batched engine is not at least `GATE_SPEEDUP`× the per-op walk
//! on the microbench. The gate watches the engine-vs-engine ratio, not
//! absolute wall time, so it is host-independent.

use bgp_bench::{figures, Scale};
use std::path::Path;
use std::process::ExitCode;

/// Acceptance threshold: `Node::mem_ops` must beat the per-op
/// `Node::mem_op` walk by at least this factor on the mixed
/// stride/random stream. Steady state measures ~1.9× — the cache-core
/// optimizations (recency-ordered sets, membership filter) speed up
/// *both* engines, so the ratio is floored by the shared miss
/// machinery. The gate sits below typical with a noise margin: it is a
/// regression alarm, not an aspiration.
const GATE_SPEEDUP: f64 = 1.5;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let report = figures::mem_throughput_sweep(scale);

    let mut csv = bgp_postproc::Csv::new(["measure", "value"]);
    csv.row(["scalar_maccesses_per_s".into(), format!("{:.1}", report.scalar_maps)]);
    csv.row(["batched_maccesses_per_s".into(), format!("{:.1}", report.batched_maps)]);
    csv.row(["batch_speedup".into(), format!("{:.2}", report.speedup)]);
    csv.row([
        format!("mg_{:?}_{}_wall_ms", report.mg_class, report.mg_ranks),
        format!("{:.0}", report.mg_wall_ms),
    ]);
    bgp_bench::emit("fig_ext_memthroughput", &csv);

    if scale != Scale::Quick {
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let json = format!(
            "{{\n  \"benchmark\": \"fig_ext_memthroughput (mixed stride/random stream + MG end-to-end, min-of-reps)\",\n  \"scale\": \"{:?}\",\n  \"host_cpus\": {},\n  \"gate\": \"batch_speedup >= {GATE_SPEEDUP}\",\n  \"note\": \"both engines produce byte-identical dumps, traces and MemStats (see crates/mem/tests/batch_differential.rs); only host wall-clock differs\",\n  \"scalar_maccesses_per_s\": {:.1},\n  \"batched_maccesses_per_s\": {:.1},\n  \"batch_speedup\": {:.2},\n  \"mg_class\": \"{:?}\",\n  \"mg_ranks\": {},\n  \"mg_wall_ms\": {:.0}\n}}\n",
            scale,
            host_cpus,
            report.scalar_maps,
            report.batched_maps,
            report.speedup,
            report.mg_class,
            report.mg_ranks,
            report.mg_wall_ms,
        );
        let path = Path::new("BENCH_mem.json");
        std::fs::write(path, json).expect("write BENCH_mem.json");
        println!("==== BENCH_mem.json -> {} ====", path.display());
    }

    if gate {
        // Host scheduling noise can depress a single measurement, so the
        // gate re-measures before failing: any sweep over the limit
        // bounds the true speedup from below.
        let mut speedup = report.speedup;
        for retry in 0..2 {
            if speedup >= GATE_SPEEDUP {
                break;
            }
            eprintln!(
                "gate: batch speedup measured at {:.2}x (limit {GATE_SPEEDUP}x), re-measuring ({}/2)",
                speedup,
                retry + 1
            );
            speedup = speedup.max(figures::mem_throughput_sweep(scale).speedup);
        }
        if speedup < GATE_SPEEDUP {
            eprintln!(
                "fig_ext_memthroughput: GATE FAILED — batched engine only {speedup:.2}x the scalar walk (limit {GATE_SPEEDUP}x)"
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: batched engine is {speedup:.2}x the scalar walk (>= {GATE_SPEEDUP}x)");
    }
    ExitCode::SUCCESS
}
