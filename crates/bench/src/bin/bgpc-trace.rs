//! `bgpc-trace` — run a NAS kernel job with the deterministic tracing
//! layer enabled and export the cycle timeline.
//!
//! ```text
//! bgpc-trace --out DIR [--kernel mg] [--class s] [--ranks 8] [--mode vnm]
//!            [--threads N] [--sample-every N] [--slots 0,1,2] [--capacity N]
//! ```
//!
//! Writes into `DIR`:
//!
//! * `trace.json` — Chrome-trace/Perfetto timeline (load via
//!   `chrome://tracing` or <https://ui.perfetto.dev>); timestamps are
//!   simulated cycles, so the file is byte-identical for every
//!   `BGP_SIM_THREADS`,
//! * `phases.csv` — per-phase scheduler metrics (delivered messages and
//!   bytes, woken ranks, collectives, peak torus-link occupancy),
//! * the per-node `.bgpc` counter dumps, so `bgpc-dump --json` can mine
//!   the same run.

use bgp_arch::OpMode;
use bgp_bench::RunConfig;
use bgp_core::run_instrumented;
use bgp_mpi::Machine;
use bgp_nas::{Class, Kernel};
use bgp_trace::TraceConfig;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    out: PathBuf,
    kernel: Kernel,
    class: Class,
    ranks: usize,
    mode: OpMode,
    threads: Option<usize>,
    config: TraceConfig,
}

const USAGE: &str = "usage: bgpc-trace --out DIR [--kernel mg|ft|ep|cg|is|lu|sp|bt] \
[--class s|w|a] [--ranks N] [--mode smp1|smp4|dual|vnm] [--threads N] \
[--sample-every N] [--slots 0,1,2] [--capacity N]";

fn parse_args() -> Result<Args, String> {
    let mut out = None;
    let mut kernel = Kernel::Mg;
    let mut class = Class::S;
    let mut ranks = 8;
    let mut mode = OpMode::VirtualNode;
    let mut threads = None;
    let mut config = TraceConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--kernel" => {
                kernel = match value("--kernel")?.to_lowercase().as_str() {
                    "mg" => Kernel::Mg,
                    "ft" => Kernel::Ft,
                    "ep" => Kernel::Ep,
                    "cg" => Kernel::Cg,
                    "is" => Kernel::Is,
                    "lu" => Kernel::Lu,
                    "sp" => Kernel::Sp,
                    "bt" => Kernel::Bt,
                    other => return Err(format!("unknown kernel {other}")),
                };
            }
            "--class" => {
                class = match value("--class")?.to_lowercase().as_str() {
                    "s" => Class::S,
                    "w" => Class::W,
                    "a" => Class::A,
                    other => return Err(format!("unknown class {other}")),
                };
            }
            "--ranks" => {
                ranks = value("--ranks")?.parse().map_err(|e| format!("--ranks: {e}"))?;
            }
            "--mode" => {
                mode = match value("--mode")?.to_lowercase().as_str() {
                    "smp1" => OpMode::Smp1,
                    "smp4" => OpMode::Smp4,
                    "dual" => OpMode::Dual,
                    "vnm" | "vn" => OpMode::VirtualNode,
                    other => return Err(format!("unknown mode {other}")),
                };
            }
            "--threads" => {
                threads =
                    Some(value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?);
            }
            "--sample-every" => {
                config.sample_every =
                    value("--sample-every")?.parse().map_err(|e| format!("--sample-every: {e}"))?;
            }
            "--slots" => {
                config.sample_slots = value("--slots")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|e| format!("--slots: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--capacity" => {
                config.capacity =
                    value("--capacity")?.parse().map_err(|e| format!("--capacity: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unexpected argument {other}\n{USAGE}")),
        }
    }
    Ok(Args {
        out: out.ok_or(format!("missing --out DIR\n{USAGE}"))?,
        kernel,
        class,
        ranks,
        mode,
        threads,
        config,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("bgpc-trace: creating {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    let mut cfg = RunConfig::new(args.kernel, args.class, args.ranks);
    cfg.mode = args.mode;
    let mut spec = bgp_mpi::JobSpec::new(cfg.ranks, cfg.mode);
    spec.machine = cfg.machine.clone();
    spec.compile = cfg.compile;
    spec.sim_threads = args.threads;
    spec.trace = Some(args.config);
    let machine = Machine::new(spec);
    let (kernel, class) = (cfg.kernel, cfg.class);
    let (results, lib) = run_instrumented(&machine, move |ctx| kernel.run(ctx, class));
    if !results.iter().all(|r| r.verified) {
        eprintln!("bgpc-trace: kernel verification failed");
        return ExitCode::FAILURE;
    }

    let trace = machine.job_trace().expect("tracing was enabled on the spec");
    let trace_path = args.out.join("trace.json");
    let phases_path = args.out.join("phases.csv");
    if let Err(e) = std::fs::write(&trace_path, trace.chrome_json()) {
        eprintln!("bgpc-trace: writing {}: {e}", trace_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&phases_path, trace.phase_metrics_csv()) {
        eprintln!("bgpc-trace: writing {}: {e}", phases_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = lib.write_dumps(&args.out) {
        eprintln!("bgpc-trace: writing dumps: {e}");
        return ExitCode::FAILURE;
    }

    let phases = trace.sched.iter().filter(|e| e.kind.name() == "phase_resolve").count();
    println!(
        "{} class {} on {} ranks ({}): {} events across {} rank streams ({} dropped), {} phases",
        cfg.kernel,
        cfg.class,
        cfg.ranks,
        cfg.mode,
        trace.total_events(),
        trace.ranks.len(),
        trace.total_dropped(),
        phases
    );
    println!("timeline -> {}", trace_path.display());
    println!("metrics  -> {}", phases_path.display());
    println!("dumps    -> {}", args.out.display());
    ExitCode::SUCCESS
}
