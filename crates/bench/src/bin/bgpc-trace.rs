//! `bgpc-trace` — run a NAS kernel job with the deterministic tracing
//! layer enabled and export the cycle timeline.
//!
//! ```text
//! bgpc-trace --out DIR [--kernel mg] [--class s] [--ranks 8] [--mode vnm]
//!            [--threads N] [--sample-every N] [--slots 0,1,2] [--capacity N]
//! ```
//!
//! Writes into `DIR`:
//!
//! * `trace.json` — Chrome-trace/Perfetto timeline (load via
//!   `chrome://tracing` or <https://ui.perfetto.dev>); timestamps are
//!   simulated cycles, so the file is byte-identical for every
//!   `BGP_SIM_THREADS`,
//! * `phases.csv` — per-phase scheduler metrics (delivered messages and
//!   bytes, woken ranks, collectives, peak torus-link occupancy),
//! * the per-node `.bgpc` counter dumps, so `bgpc-dump --json` can mine
//!   the same run.

use bgp_arch::cli::ArgParser;
use bgp_arch::OpMode;
use bgp_bench::RunConfig;
use bgp_core::run_instrumented;
use bgp_mpi::Machine;
use bgp_nas::{Class, Kernel};
use bgp_serve::proto::{parse_class, parse_kernel, parse_mode, workload_tag};
use bgp_trace::TraceConfig;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    out: PathBuf,
    kernel: Kernel,
    class: Class,
    ranks: usize,
    mode: OpMode,
    threads: Option<usize>,
    config: TraceConfig,
}

const USAGE: &str = "usage: bgpc-trace --out DIR [--kernel mg|ft|ep|cg|is|lu|sp|bt] \
[--class s|w|a] [--ranks N] [--mode smp1|smp4|dual|vnm] [--threads N] \
[--sample-every N] [--slots 0,1,2] [--capacity N]";

fn parse_args() -> Result<Args, String> {
    let mut out = None;
    let mut kernel = Kernel::Mg;
    let mut class = Class::S;
    let mut ranks = 8;
    let mut mode = OpMode::VirtualNode;
    let mut threads = None;
    let mut config = TraceConfig::default();
    let mut p = ArgParser::from_env(USAGE);
    while let Some(a) = p.next_flag()? {
        match a.as_str() {
            "--out" => out = Some(p.path(&a)?),
            "--kernel" => kernel = p.token(&a, "mg|ft|ep|cg|is|lu|sp|bt", parse_kernel)?,
            "--class" => class = p.token(&a, "s|w|a", parse_class)?,
            "--ranks" => ranks = p.parse(&a)?,
            "--mode" => mode = p.token(&a, "smp1|smp4|dual|vnm", parse_mode)?,
            "--threads" | "--sim-threads" => threads = Some(p.parse(&a)?),
            "--sample-every" => config.sample_every = p.parse(&a)?,
            "--slots" => {
                config.sample_slots = p
                    .value(&a)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|e| format!("--slots: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--capacity" => config.capacity = p.parse(&a)?,
            other => return Err(p.unexpected(other)),
        }
    }
    Ok(Args {
        out: out.ok_or_else(|| p.missing("--out DIR"))?,
        kernel,
        class,
        ranks,
        mode,
        threads,
        config,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("bgpc-trace: creating {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    let mut cfg = RunConfig::new(args.kernel, args.class, args.ranks);
    cfg.mode = args.mode;
    let mut spec = bgp_mpi::JobSpec::new(cfg.ranks, cfg.mode);
    spec.workload = Some(workload_tag(cfg.kernel, cfg.class));
    spec.machine = cfg.machine.clone();
    spec.compile = cfg.compile;
    spec.sim_threads = args.threads;
    spec.trace = Some(args.config);
    let machine = Machine::new(spec);
    let (kernel, class) = (cfg.kernel, cfg.class);
    let (results, lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
    if !results.iter().all(|r| r.verified) {
        eprintln!("bgpc-trace: kernel verification failed");
        return ExitCode::FAILURE;
    }

    let trace = machine.job_trace().expect("tracing was enabled on the spec");
    let trace_path = args.out.join("trace.json");
    let phases_path = args.out.join("phases.csv");
    if let Err(e) = std::fs::write(&trace_path, trace.chrome_json()) {
        eprintln!("bgpc-trace: writing {}: {e}", trace_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&phases_path, trace.phase_metrics_csv()) {
        eprintln!("bgpc-trace: writing {}: {e}", phases_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = lib.write_dumps(&args.out) {
        eprintln!("bgpc-trace: writing dumps: {e}");
        return ExitCode::FAILURE;
    }

    let phases = trace.sched.iter().filter(|e| e.kind.name() == "phase_resolve").count();
    println!(
        "{} class {} on {} ranks ({}): {} events across {} rank streams ({} dropped), {} phases",
        cfg.kernel,
        cfg.class,
        cfg.ranks,
        cfg.mode,
        trace.total_events(),
        trace.ranks.len(),
        trace.total_dropped(),
        phases
    );
    println!("timeline -> {}", trace_path.display());
    println!("metrics  -> {}", phases_path.display());
    println!("dumps    -> {}", args.out.display());
    ExitCode::SUCCESS
}
