//! Regenerates the paper's Fig. 3 table (modes of operation).
fn main() {
    bgp_bench::emit("fig03_modes", &bgp_bench::figures::fig03());
}
