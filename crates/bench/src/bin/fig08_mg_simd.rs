//! Fig. 8: MG SIMD instructions across compiler builds.
use bgp_bench::{figures, Scale};
fn main() {
    bgp_bench::emit(
        "fig08_mg_simd",
        &figures::fig_simd_sweep(bgp_nas::Kernel::Mg, Scale::from_args()),
    );
}
