//! Fig. 6: dynamic FP instruction mix of the NAS kernels.
use bgp_bench::{figures, Scale};
fn main() {
    bgp_bench::emit("fig06_instr_mix", &figures::fig06(Scale::from_args()));
}
