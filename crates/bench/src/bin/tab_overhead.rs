//! Regenerates the §IV overhead measurement (196 cycles).
fn main() {
    bgp_bench::emit("tab_overhead", &bgp_bench::figures::tab_overhead());
}
