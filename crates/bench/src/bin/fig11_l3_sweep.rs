//! Fig. 11: DDR traffic vs L3 size (0-8 MB).
use bgp_bench::{figures, Scale};
fn main() {
    bgp_bench::emit("fig11_l3_sweep", &figures::fig11(Scale::from_args()));
}
