//! Fig. 9: execution time vs compiler build (first half of the suite).
use bgp_bench::{figures, Scale};
use bgp_nas::Kernel;
fn main() {
    let csv = figures::fig_exec_time(
        &[Kernel::Mg, Kernel::Ft, Kernel::Ep, Kernel::Cg],
        Scale::from_args(),
    );
    bgp_bench::emit("fig09_exec_time", &csv);
}
