//! Extension: fault-rate sweep — collection coverage and degraded-mode
//! metric drift on MG under seeded fault injection.

use bgp_bench::{figures, Scale};

fn main() {
    bgp_bench::emit("fig_ext_faults", &figures::fig_ext_faults(Scale::from_args()));
}
