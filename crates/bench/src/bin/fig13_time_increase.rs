//! Fig. 13: execution-time increase per node, VNM vs SMP/1.
use bgp_bench::{figures, Scale};
fn main() {
    let rows = figures::mode_comparison(Scale::from_args());
    bgp_bench::emit("fig13_time_increase", &figures::fig13(&rows));
}
