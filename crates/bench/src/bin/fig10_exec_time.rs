//! Fig. 10: execution time vs compiler build (second half of the suite).
use bgp_bench::{figures, Scale};
use bgp_nas::Kernel;
fn main() {
    let csv = figures::fig_exec_time(
        &[Kernel::Is, Kernel::Lu, Kernel::Sp, Kernel::Bt],
        Scale::from_args(),
    );
    bgp_bench::emit("fig10_exec_time", &csv);
}
