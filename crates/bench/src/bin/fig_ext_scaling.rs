//! Extension: wall-clock scaling of the deterministic parallel engine —
//! one MG job per simulation-thread count, dumps verified byte-identical
//! to the serial engine. Also records the sweep (plus host context) in
//! `BENCH_parallel.json` at the repo root.

use bgp_bench::{figures, Scale};
use std::path::Path;

fn main() {
    let scale = Scale::from_args();
    let samples = figures::scaling_sweep(scale);

    let mut csv = bgp_postproc::Csv::new([
        "sim_threads",
        "wall_ms",
        "speedup_vs_serial",
        "job_cycles",
        "dumps_identical_to_serial",
    ]);
    let base_ms = samples[0].wall_ms;
    for s in &samples {
        csv.row([
            s.threads.to_string(),
            format!("{:.1}", s.wall_ms),
            format!("{:.2}", base_ms / s.wall_ms),
            s.job_cycles.to_string(),
            s.dumps_identical.to_string(),
        ]);
    }
    bgp_bench::emit("fig_ext_scaling", &csv);

    assert!(
        samples.iter().all(|s| s.dumps_identical),
        "parallel dumps diverged from serial"
    );

    // Machine context matters for interpreting the sweep: with fewer
    // host CPUs than simulation threads the engine can only pipeline
    // blocked ranks, not overlap compute.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"sim_threads\": {}, \"wall_ms\": {:.1}, \"speedup_vs_serial\": {:.2}, \"job_cycles\": {}, \"dumps_identical_to_serial\": {}}}",
                s.threads,
                s.wall_ms,
                base_ms / s.wall_ms,
                s.job_cycles,
                s.dumps_identical
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"fig_ext_scaling (MG, SMP/1, phase-based parallel engine)\",\n  \"scale\": \"{:?}\",\n  \"host_cpus\": {},\n  \"serial_baseline_prev_engine_ms\": 19900,\n  \"serial_baseline_prev_engine_commit\": \"beab573\",\n  \"note\": \"speedup requires host_cpus >= sim_threads; on a 1-CPU host the sweep verifies determinism and overhead, not parallel speedup\",\n  \"sweep\": [\n{}\n  ]\n}}\n",
        scale,
        host_cpus,
        rows.join(",\n")
    );
    let path = Path::new("BENCH_parallel.json");
    std::fs::write(path, json).expect("write BENCH_parallel.json");
    println!("==== BENCH_parallel.json -> {} ====", path.display());
}
