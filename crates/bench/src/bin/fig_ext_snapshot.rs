//! Extension: wall-clock cost of checkpointing an MG job — snapshots
//! every 64 phases versus none — plus the measured cost of one real
//! resume. Records the comparison in `BENCH_snapshot.json` (repo root,
//! or `$BGP_BENCH_DIR`) after *every* measurement attempt, so a gate
//! retry never hides what was actually measured.
//!
//! `--gate` turns the acceptance criterion into an exit code: fail if
//! checkpointing at `--checkpoint-every 64` costs >= 5 % wall over the
//! uncheckpointed baseline. Host timing noise can exceed that on a
//! loaded box, so the gate re-measures at most [`MAX_RETRIES`] times
//! (logged, and every attempt lands in the JSON) before failing.

use bgp_bench::{figures, Scale};
use std::process::ExitCode;

/// Acceptance threshold: snapshots every 64 phases must stay under this
/// slowdown (percent) relative to no checkpointing at all.
const GATE_PCT: f64 = 5.0;

/// Bound on gate re-measurements after the first one.
const MAX_RETRIES: usize = 2;

fn overhead_pct(sweep: &figures::SnapshotSweep) -> f64 {
    sweep
        .samples
        .iter()
        .find(|s| s.config == "every64")
        .expect("sweep always has an every64 row")
        .overhead_pct
}

fn write_bench(scale: Scale, attempts: &[figures::SnapshotSweep]) {
    let latest = attempts.last().expect("at least one attempt");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows: Vec<String> = latest
        .samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"config\": \"{}\", \"wall_ms\": {:.1}, \"overhead_pct\": {:.2}, \"snapshots\": {}, \"mean_bytes\": {}, \"save_ms\": {:.1}}}",
                s.config, s.wall_ms, s.overhead_pct, s.snapshots, s.mean_bytes, s.save_ms
            )
        })
        .collect();
    let attempt_rows: Vec<String> = attempts
        .iter()
        .map(|a| format!("{:.2}", overhead_pct(a)))
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"fig_ext_snapshot (MG, VNM, min-of-reps)\",\n  \"scale\": \"{:?}\",\n  \"host_cpus\": {},\n  \"gate\": \"every64 overhead_pct < {GATE_PCT}\",\n  \"attempt_overhead_pcts\": [{}],\n  \"resume_ms\": {:.1},\n  \"resume_phase\": {},\n  \"note\": \"snapshot bytes and counts are deterministic; only host wall-clock varies between attempts\",\n  \"configs\": [\n{}\n  ]\n}}\n",
        scale,
        host_cpus,
        attempt_rows.join(", "),
        latest.resume_ms,
        latest.resume_phase,
        rows.join(",\n")
    );
    let path = bgp_bench::bench_json_path("BENCH_snapshot.json");
    std::fs::write(&path, json).expect("write BENCH_snapshot.json");
    println!("==== BENCH_snapshot.json -> {} ====", path.display());
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let mut attempts = vec![figures::snapshot_overhead_sweep(scale)];
    write_bench(scale, &attempts);

    let mut csv = bgp_postproc::Csv::new([
        "config",
        "wall_ms",
        "overhead_pct",
        "snapshots",
        "mean_bytes",
        "save_ms",
    ]);
    for s in &attempts[0].samples {
        csv.row([
            s.config.to_string(),
            format!("{:.1}", s.wall_ms),
            format!("{:.2}", s.overhead_pct),
            s.snapshots.to_string(),
            s.mean_bytes.to_string(),
            format!("{:.1}", s.save_ms),
        ]);
    }
    csv.row([
        "resume".to_string(),
        format!("{:.1}", attempts[0].resume_ms),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    bgp_bench::emit("fig_ext_snapshot", &csv);

    if gate {
        // The overhead is host noise on top of a deterministic job, so
        // any sweep under the limit bounds the true cost; retries are
        // bounded and every attempt is recorded in the JSON above.
        let mut pct = overhead_pct(&attempts[0]);
        for retry in 0..MAX_RETRIES {
            if pct < GATE_PCT {
                break;
            }
            eprintln!(
                "gate: checkpointing measured at {:.2}% (limit {GATE_PCT}%), re-measuring ({}/{MAX_RETRIES})",
                pct,
                retry + 1
            );
            attempts.push(figures::snapshot_overhead_sweep(scale));
            write_bench(scale, &attempts);
            pct = pct.min(overhead_pct(attempts.last().expect("just pushed")));
        }
        if pct >= GATE_PCT {
            eprintln!(
                "fig_ext_snapshot: GATE FAILED — checkpointing every 64 phases costs {pct:.2}% (limit {GATE_PCT}%)"
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: checkpointing every 64 phases costs {pct:.2}% (< {GATE_PCT}%)");
    }
    ExitCode::SUCCESS
}
