//! Extension: wall-clock cost of the deterministic tracing layer on an
//! MG job — tracing absent (`off`), hooks compiled in but switched off
//! (`disabled`), and fully enabled with live counter sampling
//! (`enabled`). Records the comparison (plus host context) in
//! `BENCH_trace.json` at the repo root when run at Default/Paper scale.
//!
//! `--gate` turns the acceptance criterion into an exit code: fail if
//! the `disabled` configuration costs >= 1 % over the `off` baseline
//! (that is the tax every untraced run pays for the instrumentation).

use bgp_bench::{figures, Scale};
use std::path::Path;
use std::process::ExitCode;

/// Acceptance threshold: installed-but-disabled tracing must stay under
/// this slowdown (percent) relative to no tracing at all.
const GATE_PCT: f64 = 1.0;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let samples = figures::trace_overhead_sweep(scale);

    let mut csv = bgp_postproc::Csv::new([
        "trace_config",
        "wall_ms",
        "overhead_pct",
        "events_recorded",
        "events_dropped",
    ]);
    for s in &samples {
        csv.row([
            s.config.to_string(),
            format!("{:.1}", s.wall_ms),
            format!("{:.2}", s.overhead_pct),
            s.events.to_string(),
            s.dropped.to_string(),
        ]);
    }
    bgp_bench::emit("fig_ext_trace_overhead", &csv);

    if scale != Scale::Quick {
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let rows: Vec<String> = samples
            .iter()
            .map(|s| {
                format!(
                    "    {{\"trace_config\": \"{}\", \"wall_ms\": {:.1}, \"overhead_pct\": {:.2}, \"events_recorded\": {}, \"events_dropped\": {}}}",
                    s.config, s.wall_ms, s.overhead_pct, s.events, s.dropped
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"benchmark\": \"fig_ext_trace_overhead (MG, VNM, min-of-reps)\",\n  \"scale\": \"{:?}\",\n  \"host_cpus\": {},\n  \"gate\": \"disabled overhead_pct < {GATE_PCT}\",\n  \"note\": \"timestamps are simulated cycles, so the trace itself is deterministic; only host wall-clock varies between reps\",\n  \"configs\": [\n{}\n  ]\n}}\n",
            scale,
            host_cpus,
            rows.join(",\n")
        );
        let path = Path::new("BENCH_trace.json");
        std::fs::write(path, json).expect("write BENCH_trace.json");
        println!("==== BENCH_trace.json -> {} ====", path.display());
    }

    if gate {
        let disabled_pct = |samples: &[figures::TraceOverheadSample]| {
            samples
                .iter()
                .find(|s| s.config == "disabled")
                .expect("sweep always has a disabled row")
                .overhead_pct
        };
        // Host timing noise on a loaded box can exceed the 1 % threshold
        // even with warm-up + min-of-reps, so the gate re-measures before
        // failing: any sweep under the limit bounds the true cost.
        let mut pct = disabled_pct(&samples);
        for retry in 0..2 {
            if pct < GATE_PCT {
                break;
            }
            eprintln!(
                "gate: disabled tracing measured at {:.2}% (limit {GATE_PCT}%), re-measuring ({}/2)",
                pct,
                retry + 1
            );
            pct = pct.min(disabled_pct(&figures::trace_overhead_sweep(scale)));
        }
        if pct >= GATE_PCT {
            eprintln!(
                "fig_ext_trace_overhead: GATE FAILED — disabled tracing costs {pct:.2}% (limit {GATE_PCT}%)"
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: disabled tracing costs {pct:.2}% (< {GATE_PCT}%)");
    }
    ExitCode::SUCCESS
}
