//! Extension: wall-clock cost of the deterministic tracing layer on an
//! MG job — tracing absent (`off`), hooks compiled in but switched off
//! (`disabled`), and fully enabled with live counter sampling
//! (`enabled`). Records the comparison (plus host context) in
//! `BENCH_trace.json` (repo root, or `$BGP_BENCH_DIR`) after *every*
//! measurement attempt, so a gate retry never hides what was actually
//! measured.
//!
//! `--gate` turns the acceptance criterion into an exit code: fail if
//! the `disabled` configuration costs >= 1 % over the `off` baseline
//! (that is the tax every untraced run pays for the instrumentation).
//! Host timing noise can exceed the threshold on a loaded box, so the
//! gate re-measures at most [`MAX_RETRIES`] times (logged, and every
//! attempt lands in the JSON) before failing.

use bgp_bench::{figures, Scale};
use std::process::ExitCode;

/// Acceptance threshold: installed-but-disabled tracing must stay under
/// this slowdown (percent) relative to no tracing at all.
const GATE_PCT: f64 = 1.0;

/// Bound on gate re-measurements after the first one.
const MAX_RETRIES: usize = 2;

fn disabled_pct(samples: &[figures::TraceOverheadSample]) -> f64 {
    samples
        .iter()
        .find(|s| s.config == "disabled")
        .expect("sweep always has a disabled row")
        .overhead_pct
}

fn write_bench(scale: Scale, attempts: &[Vec<figures::TraceOverheadSample>]) {
    let latest = attempts.last().expect("at least one attempt");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows: Vec<String> = latest
        .iter()
        .map(|s| {
            format!(
                "    {{\"trace_config\": \"{}\", \"wall_ms\": {:.1}, \"overhead_pct\": {:.2}, \"events_recorded\": {}, \"events_dropped\": {}}}",
                s.config, s.wall_ms, s.overhead_pct, s.events, s.dropped
            )
        })
        .collect();
    let attempt_rows: Vec<String> = attempts
        .iter()
        .map(|a| format!("{:.2}", disabled_pct(a)))
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"fig_ext_trace_overhead (MG, VNM, min-of-reps)\",\n  \"scale\": \"{:?}\",\n  \"host_cpus\": {},\n  \"gate\": \"disabled overhead_pct < {GATE_PCT}\",\n  \"attempt_overhead_pcts\": [{}],\n  \"note\": \"timestamps are simulated cycles, so the trace itself is deterministic; only host wall-clock varies between reps\",\n  \"configs\": [\n{}\n  ]\n}}\n",
        scale,
        host_cpus,
        attempt_rows.join(", "),
        rows.join(",\n")
    );
    let path = bgp_bench::bench_json_path("BENCH_trace.json");
    std::fs::write(&path, json).expect("write BENCH_trace.json");
    println!("==== BENCH_trace.json -> {} ====", path.display());
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let mut attempts = vec![figures::trace_overhead_sweep(scale)];
    write_bench(scale, &attempts);

    let mut csv = bgp_postproc::Csv::new([
        "trace_config",
        "wall_ms",
        "overhead_pct",
        "events_recorded",
        "events_dropped",
    ]);
    for s in &attempts[0] {
        csv.row([
            s.config.to_string(),
            format!("{:.1}", s.wall_ms),
            format!("{:.2}", s.overhead_pct),
            s.events.to_string(),
            s.dropped.to_string(),
        ]);
    }
    bgp_bench::emit("fig_ext_trace_overhead", &csv);

    if gate {
        // Host timing noise on a loaded box can exceed the 1 % threshold
        // even with warm-up + min-of-reps, so the gate re-measures before
        // failing: any sweep under the limit bounds the true cost.
        // Retries are bounded and every attempt is recorded in the JSON.
        let mut pct = disabled_pct(&attempts[0]);
        for retry in 0..MAX_RETRIES {
            if pct < GATE_PCT {
                break;
            }
            eprintln!(
                "gate: disabled tracing measured at {:.2}% (limit {GATE_PCT}%), re-measuring ({}/{MAX_RETRIES})",
                pct,
                retry + 1
            );
            attempts.push(figures::trace_overhead_sweep(scale));
            write_bench(scale, &attempts);
            pct = pct.min(disabled_pct(attempts.last().expect("just pushed")));
        }
        if pct >= GATE_PCT {
            eprintln!(
                "fig_ext_trace_overhead: GATE FAILED — disabled tracing costs {pct:.2}% (limit {GATE_PCT}%)"
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: disabled tracing costs {pct:.2}% (< {GATE_PCT}%)");
    }
    ExitCode::SUCCESS
}
