//! Fig. 12: DDR-traffic ratio, VNM vs SMP/1.
use bgp_bench::{figures, Scale};
fn main() {
    let rows = figures::mode_comparison(Scale::from_args());
    bgp_bench::emit("fig12_ddr_ratio", &figures::fig12(&rows));
}
