//! Extension: **ground-truth event validation**. For MG and CG, run
//! each counter mode exactly (`Fixed(m)` × 4), once under the adaptive
//! multiplexing policy, and once multiplexed with injected counter
//! faults — then check every derivable event against the simulator's
//! independent bookkeeping (`bgp-fpu` flop classes, per-core
//! instruction counts, `MemStats` cache/DDR families, the node's
//! always-on network mirror). Emits the per-event accuracy tables
//! (CSV), a summary CSV, and `BENCH_validation.json` at Default/Paper
//! scale.
//!
//! `--gate` turns the acceptance criteria into an exit code:
//!
//! * every exact-run event matches truth bit-for-bit (0% error),
//! * the multiplexed run is byte-identical between 1 and 4 simulator
//!   worker threads (dump bytes compared, not summaries),
//! * at Default/Paper scale only: the multiplexed reconstruction's
//!   **median** relative error over significant events stays within
//!   [`GATE_MUX_MEDIAN`] and the rotation recovers full 1024-event
//!   coverage. Quick runs are too short for the rotation to sample
//!   every mode meaningfully (a handful of rotations per node), so
//!   reconstruction quality is reported but not gated there.

use bgp_arch::events::{CounterMode, NUM_MODES};
use bgp_bench::{measure_with_truth, RunConfig, Scale};
use bgp_core::dump::NodeDump;
use bgp_core::WHOLE_PROGRAM_SET;
use bgp_faults::{FaultPlan, FaultSpec};
use bgp_mpi::CounterPolicy;
use bgp_nas::Kernel;
use bgp_postproc::ValidationReport;
use std::process::ExitCode;
use std::sync::Arc;

/// Median relative reconstruction error allowed over significant events.
const GATE_MUX_MEDIAN: f64 = 0.05;

/// Rotation baseline dwell (phases) used by the validation runs.
const BASE_DWELL: u32 = 12;

struct KernelValidation {
    kernel: Kernel,
    report: ValidationReport,
    mux_rotations: u64,
    thread_invariant: bool,
    fixed_cycles: u64,
    mux_cycles: u64,
}

fn validate_kernel(kernel: Kernel, scale: Scale) -> KernelValidation {
    let cfg = RunConfig::new(kernel, scale.class(), scale.ranks());
    let mux_policy =
        CounterPolicy::Multiplexed { first: CounterMode::Mode0, base_dwell: BASE_DWELL };

    // Exact legs: one Fixed run per mode. Determinism makes the four
    // runs views of the same execution, so one run's ground truth
    // stands for all (asserted below).
    let mut exact: [Vec<NodeDump>; NUM_MODES] = [vec![], vec![], vec![], vec![]];
    let mut truth = None;
    let mut fixed_cycles = 0u64;
    for (m, slot) in exact.iter_mut().enumerate() {
        let mode = CounterMode::from_index(m).expect("mode index");
        let r = measure_with_truth(&cfg, CounterPolicy::Fixed(mode), None, None);
        fixed_cycles += r.job_cycles;
        match &truth {
            None => truth = Some(r.truth),
            Some(t) => assert_eq!(
                t.len(),
                r.truth.len(),
                "fixed runs must see the same machine"
            ),
        }
        *slot = r.dumps;
    }
    let truth = truth.expect("at least one exact run");

    // Multiplexed leg, twice: pinned to 1 and 4 workers. The dumps
    // must be byte-identical — the gate's determinism check.
    let mux1 = measure_with_truth(&cfg, mux_policy, None, Some(1));
    let mux4 = measure_with_truth(&cfg, mux_policy, None, Some(4));
    let thread_invariant = mux1.encoded == mux4.encoded;

    // Fault-degraded leg: every node suffers a counter bit flip as its
    // window closes.
    let fault_spec = FaultSpec { counter_bitflip_rate: 1.0, ..FaultSpec::none() };
    let nodes = mux1.dumps.len();
    let plan = Arc::new(FaultPlan::new(fault_spec, 7, nodes));
    let degraded = measure_with_truth(&cfg, mux_policy, Some(plan), None);

    let label = format!("{} class {:?} x {} ranks", kernel, cfg.class, cfg.ranks);
    let report = ValidationReport::build(
        &label,
        &truth,
        &exact,
        &mux1.dumps,
        Some(&degraded.dumps),
        WHOLE_PROGRAM_SET,
    );
    let mux_rotations = mux1.mux.as_ref().map_or(0, |s| s.rotations);
    KernelValidation {
        kernel,
        report,
        mux_rotations,
        thread_invariant,
        fixed_cycles: fixed_cycles / NUM_MODES as u64,
        mux_cycles: mux1.job_cycles,
    }
}

fn emit_per_event(kernel: Kernel, report: &ValidationReport) {
    let name = format!("fig_ext_validation_{}", kernel.name().to_lowercase());
    bgp_bench::emit(&name, &report.to_csv());
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let kernels = [Kernel::Mg, Kernel::Cg];

    let mut rows = Vec::new();
    let mut summary = bgp_postproc::Csv::new([
        "kernel",
        "exact_checked",
        "exact_matches",
        "mux_median_err",
        "mux_max_err",
        "coverage",
        "rotations",
        "thread_invariant",
        "fixed_mode_cycles",
        "mux_cycles",
    ]);
    for kernel in kernels {
        let v = validate_kernel(kernel, scale);
        emit_per_event(kernel, &v.report);
        summary.row([
            format!("{kernel}"),
            v.report.exact_checked.to_string(),
            v.report.exact_matches.to_string(),
            format!("{:.4}", v.report.mux_median_err),
            format!("{:.4}", v.report.mux_max_err),
            format!("{:.4}", v.report.coverage),
            v.mux_rotations.to_string(),
            v.thread_invariant.to_string(),
            v.fixed_cycles.to_string(),
            v.mux_cycles.to_string(),
        ]);
        rows.push(v);
    }
    bgp_bench::emit("fig_ext_validation", &summary);

    if scale != Scale::Quick {
        let mut json = String::from("{\n  \"benchmark\": \"fig_ext_validation (exact / multiplexed-reconstructed / fault-degraded counts vs simulator ground truth)\",\n");
        json.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
        json.push_str(&format!(
            "  \"gate\": \"exact events 0% error; mux median relative error <= {GATE_MUX_MEDIAN}; full coverage; thread-invariant dumps\",\n"
        ));
        json.push_str("  \"kernels\": [\n");
        for (i, v) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"exact_checked\": {}, \"exact_matches\": {}, \
                 \"mux_median_err\": {:.6}, \"mux_max_err\": {:.6}, \"coverage\": {:.4}, \
                 \"rotations\": {}, \"thread_invariant\": {}, \"fixed_mode_cycles\": {}, \
                 \"mux_cycles\": {},\n     \"report\": {}}}{}\n",
                v.kernel,
                v.report.exact_checked,
                v.report.exact_matches,
                v.report.mux_median_err,
                v.report.mux_max_err,
                v.report.coverage,
                v.mux_rotations,
                v.thread_invariant,
                v.fixed_cycles,
                v.mux_cycles,
                indent_json(&v.report.to_json(), 5),
                if i + 1 == rows.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        let path = bgp_bench::bench_json_path("BENCH_validation.json");
        std::fs::write(&path, json).expect("write BENCH_validation.json");
        println!("==== BENCH_validation.json -> {} ====", path.display());
    }

    if gate {
        let full = scale != Scale::Quick;
        let mut failed = false;
        for v in &rows {
            if !v.report.exact_ok() {
                eprintln!(
                    "fig_ext_validation: GATE FAILED — {}: {}/{} exact events diverge from ground truth",
                    v.kernel,
                    v.report.exact_checked - v.report.exact_matches,
                    v.report.exact_checked
                );
                failed = true;
            }
            if !v.thread_invariant {
                eprintln!(
                    "fig_ext_validation: GATE FAILED — {}: multiplexed dumps differ between 1 and 4 sim threads",
                    v.kernel
                );
                failed = true;
            }
            if full && v.report.mux_median_err > GATE_MUX_MEDIAN {
                eprintln!(
                    "fig_ext_validation: GATE FAILED — {}: mux median error {:.4} (limit {GATE_MUX_MEDIAN})",
                    v.kernel, v.report.mux_median_err
                );
                failed = true;
            }
            if full && v.report.coverage < 1.0 {
                eprintln!(
                    "fig_ext_validation: GATE FAILED — {}: rotation covered {:.1}% of events",
                    v.kernel,
                    v.report.coverage * 100.0
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        if full {
            println!(
                "gate ok: exact events 0% error, mux median error within {GATE_MUX_MEDIAN}, full coverage, thread-invariant dumps"
            );
        } else {
            println!(
                "gate ok: exact events 0% error, thread-invariant dumps (reconstruction quality gated at Default scale)"
            );
        }
    }
    ExitCode::SUCCESS
}

/// Re-indent a pretty-printed JSON block so it nests inside the outer
/// document.
fn indent_json(block: &str, levels: usize) -> String {
    let pad = "  ".repeat(levels);
    let mut out = String::new();
    for (i, line) in block.trim_end().lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(&pad);
        }
        out.push_str(line);
    }
    out
}
