//! Extension experiment: the same job in all four operating modes.
use bgp_bench::{figures, Scale};
fn main() {
    bgp_bench::emit("fig_ext_modes_all4", &figures::fig_ext_modes(Scale::from_args()));
}
