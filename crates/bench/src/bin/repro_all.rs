//! Regenerates every table and figure in one invocation and writes the
//! CSVs into `results/` (used to refresh EXPERIMENTS.md).
use bgp_bench::{emit, figures, Scale};
use bgp_nas::Kernel;

fn main() {
    let scale = Scale::from_args();
    eprintln!("[repro_all] scale: {scale:?}");
    emit("fig03_modes", &figures::fig03());
    eprintln!("[repro_all] fig03 done");
    emit("tab_overhead", &figures::tab_overhead());
    eprintln!("[repro_all] overhead done");
    emit("fig06_instr_mix", &figures::fig06(scale));
    eprintln!("[repro_all] fig06 done");
    emit("fig07_ft_simd", &figures::fig_simd_sweep(Kernel::Ft, scale));
    eprintln!("[repro_all] fig07 done");
    emit("fig08_mg_simd", &figures::fig_simd_sweep(Kernel::Mg, scale));
    eprintln!("[repro_all] fig08 done");
    emit(
        "fig09_exec_time",
        &figures::fig_exec_time(&[Kernel::Mg, Kernel::Ft, Kernel::Ep, Kernel::Cg], scale),
    );
    eprintln!("[repro_all] fig09 done");
    emit(
        "fig10_exec_time",
        &figures::fig_exec_time(&[Kernel::Is, Kernel::Lu, Kernel::Sp, Kernel::Bt], scale),
    );
    eprintln!("[repro_all] fig10 done");
    emit("fig11_l3_sweep", &figures::fig11(scale));
    eprintln!("[repro_all] fig11 done");
    let rows = figures::mode_comparison(scale);
    emit("fig12_ddr_ratio", &figures::fig12(&rows));
    emit("fig13_time_increase", &figures::fig13(&rows));
    emit("fig14_mflops_chip", &figures::fig14(&rows));
    eprintln!("[repro_all] figs12-14 done");
    emit("fig_ext_prefetch", &figures::fig_ext_prefetch(scale));
    emit("fig_ext_modes_all4", &figures::fig_ext_modes(scale));
    emit("fig_ext_512events", &figures::fig_ext_512events(scale));
    emit("fig_ext_faults", &figures::fig_ext_faults(scale));
    emit("fig_ext_scaling", &figures::fig_ext_scaling(scale));
    emit("fig_ext_trace_overhead", &figures::fig_ext_trace_overhead(scale));
    emit("fig_ext_memthroughput", &figures::fig_ext_memthroughput(scale));
    emit("fig_ext_fullmachine", &figures::fig_ext_fullmachine(scale));
    eprintln!("[repro_all] extensions done");
}
