//! Fig. 7: FT SIMD instructions across compiler builds.
use bgp_bench::{figures, Scale};
fn main() {
    bgp_bench::emit(
        "fig07_ft_simd",
        &figures::fig_simd_sweep(bgp_nas::Kernel::Ft, Scale::from_args()),
    );
}
