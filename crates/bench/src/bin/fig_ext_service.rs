//! Extension: the counter service under load — jobs as traffic,
//! deterministic results as cache hits. Spawns an in-process
//! `bgp-serve` daemon on loopback, drives a ≥10k-request mix through
//! the real TCP protocol with `bgp_serve::run_load`, and records
//! throughput, hit rate, and latency percentiles in `BENCH_serve.json`
//! (repo root, or `$BGP_BENCH_DIR`).
//!
//! `--gate` turns the service contract into an exit code:
//!
//! * every request satisfied, none lost or duplicated,
//! * every repeat response **byte-identical** to the first for its key,
//! * rejects only via the backpressure path (zero other failures),
//! * exactly one job run per distinct key — coalescing plus the
//!   write-once store mean `misses == distinct`, everything else is
//!   hits/joins.
//!
//! Latency and throughput are host-dependent and are recorded, not
//! gated.

use bgp_bench::Scale;
use bgp_serve::{run_load, LoadConfig, QueueConfig, Server, ServerConfig};
use bgp_trace::json::Obj;
use std::process::ExitCode;
use std::time::Duration;

struct Shape {
    requests: u64,
    distinct: u64,
    concurrency: usize,
    workers: usize,
}

fn shape(scale: Scale) -> Shape {
    match scale {
        // CI smoke: small but still far more requests than keys.
        Scale::Quick => Shape { requests: 2_000, distinct: 8, concurrency: 8, workers: 4 },
        // The committed BENCH_serve.json: >= 10k requests (ISSUE floor).
        Scale::Default => {
            Shape { requests: 12_000, distinct: 16, concurrency: 8, workers: 4 }
        }
        Scale::Paper => Shape { requests: 20_000, distinct: 32, concurrency: 16, workers: 8 },
    }
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let shape = shape(scale);

    let server = Server::spawn(ServerConfig {
        workers: shape.workers,
        queue: QueueConfig { capacity: 64, age_to_boost: Duration::from_millis(500) },
        quiet: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let cfg = LoadConfig {
        addr: server.addr(),
        requests: shape.requests,
        concurrency: shape.concurrency,
        distinct: shape.distinct,
        ..LoadConfig::standard(server.addr())
    };
    let report = run_load(&cfg).expect("load run against in-process server");
    server.shutdown();

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = Obj::new()
        .field_str(
            "benchmark",
            "fig_ext_service (bgpc-serve loopback, MG class S submissions)",
        )
        .field_str("scale", &format!("{scale:?}"))
        .field_u64("host_cpus", host_cpus as u64)
        .field_str(
            "gate",
            "contract_held (all satisfied, byte-identical replays, \
             backpressure-only rejects) and misses == distinct_keys",
        )
        .field_u64("workers", shape.workers as u64)
        .field_u64("concurrency", shape.concurrency as u64)
        .field_raw("report", &report.to_json())
        .finish();
    let path = bgp_bench::bench_json_path("BENCH_serve.json");
    std::fs::write(&path, json + "\n").expect("write BENCH_serve.json");
    println!("==== BENCH_serve.json -> {} ====", path.display());

    let mut csv = bgp_postproc::Csv::new(["metric", "value"]);
    for (metric, value) in [
        ("requests", report.requests.to_string()),
        ("satisfied", report.satisfied.to_string()),
        ("hits", report.hits.to_string()),
        ("misses", report.misses.to_string()),
        ("joined", report.joined.to_string()),
        ("rejects", report.rejects.to_string()),
        ("hit_rate", format!("{:.4}", report.hit_rate())),
        ("throughput_rps", format!("{:.0}", report.throughput_rps)),
        ("p50_us", report.p50_us.to_string()),
        ("p90_us", report.p90_us.to_string()),
        ("p99_us", report.p99_us.to_string()),
        ("wall_ms", report.wall_ms.to_string()),
    ] {
        csv.row([metric.to_string(), value]);
    }
    bgp_bench::emit("fig_ext_service", &csv);
    println!(
        "{} requests: {:.0} req/s, hit rate {:.3}, {} misses over {} keys, \
         p50 {} µs, p99 {} µs",
        report.satisfied,
        report.throughput_rps,
        report.hit_rate(),
        report.misses,
        report.distinct,
        report.p50_us,
        report.p99_us
    );

    if gate {
        let one_run_per_key = report.misses == report.distinct;
        if !report.contract_held() || !one_run_per_key {
            eprintln!(
                "fig_ext_service: GATE FAILED — satisfied {}/{}, failures {}, \
                 byte_identical {}, misses {} (want exactly {} distinct keys)",
                report.satisfied,
                report.requests,
                report.failures,
                report.byte_identical,
                report.misses,
                report.distinct
            );
            return ExitCode::FAILURE;
        }
        println!(
            "gate ok: {} requests satisfied, byte-identical replays, \
             one run per key ({} misses)",
            report.satisfied, report.misses
        );
    }
    ExitCode::SUCCESS
}
