//! Fig. 14: MFLOPS per chip, VNM vs SMP/1.
use bgp_bench::{figures, Scale};
fn main() {
    let rows = figures::mode_comparison(Scale::from_args());
    bgp_bench::emit("fig14_mflops_chip", &figures::fig14(&rows));
}
