//! Extension: full-machine scaling of the multiplexed rank runtime —
//! VNM jobs from 1,024 nodes up to the 73,728-node / 294,912-rank
//! Blue Gene/P full machine, every rank a resumable state machine over
//! a fixed worker pool (never one OS thread per rank). Records nodes,
//! ranks, wall time, peak RSS, per-rank RSS and events/sec in
//! `BENCH_fullmachine.json` (repo root, or `$BGP_BENCH_DIR`), and
//! enforces the ≤ 10 KB/rank idle-overhead budget.

use bgp_bench::{figures, Scale};

/// Per-rank peak-RSS budget (bytes). The probe kernel keeps every
/// simulated cache cold, so anything above this is runtime overhead.
const RANK_RSS_BUDGET: f64 = 10.0 * 1024.0;

fn main() {
    let scale = Scale::from_args();
    let samples = figures::fullmachine_sweep(scale);

    let mut csv = bgp_postproc::Csv::new([
        "nodes",
        "ranks",
        "wall_ms",
        "peak_rss_mb",
        "rss_per_rank_kb",
        "events_per_sec",
        "job_cycles",
        "verified",
    ]);
    for s in &samples {
        csv.row([
            s.nodes.to_string(),
            s.ranks.to_string(),
            format!("{:.0}", s.wall_ms),
            format!("{:.1}", s.peak_rss_bytes as f64 / 1e6),
            format!("{:.2}", s.rss_per_rank_bytes / 1024.0),
            format!("{:.0}", s.events_per_sec),
            s.job_cycles.to_string(),
            s.verified.to_string(),
        ]);
    }
    bgp_bench::emit("fig_ext_fullmachine", &csv);

    assert!(samples.iter().all(|s| s.verified), "rank-sum verification failed");
    let last = samples.last().expect("non-empty sweep");
    // VmHWM is a process-lifetime high water mark; the sweep ascends, so
    // the final (largest) point dominates it and the gate is an upper
    // bound on that run's true footprint.
    assert!(
        last.rss_per_rank_bytes <= RANK_RSS_BUDGET,
        "per-rank peak RSS {:.2} KB exceeds the {:.0} KB budget at {} ranks",
        last.rss_per_rank_bytes / 1024.0,
        RANK_RSS_BUDGET / 1024.0,
        last.ranks
    );

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"nodes\": {}, \"ranks\": {}, \"wall_ms\": {:.0}, \"peak_rss_mb\": {:.1}, \"rss_per_rank_kb\": {:.2}, \"events_per_sec\": {:.0}, \"job_cycles\": {}, \"verified\": {}}}",
                s.nodes,
                s.ranks,
                s.wall_ms,
                s.peak_rss_bytes as f64 / 1e6,
                s.rss_per_rank_bytes / 1024.0,
                s.events_per_sec,
                s.job_cycles,
                s.verified
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"fig_ext_fullmachine (VNM, FP+collective probe, multiplexed rank runtime)\",\n  \"scale\": \"{:?}\",\n  \"host_cpus\": {},\n  \"rank_rss_budget_kb\": 10,\n  \"note\": \"ranks are resumable state machines over a fixed worker pool; the probe kernel keeps simulated caches cold so rss_per_rank_kb measures runtime overhead, not workload state\",\n  \"sweep\": [\n{}\n  ]\n}}\n",
        scale,
        host_cpus,
        rows.join(",\n")
    );
    let path = bgp_bench::bench_json_path("BENCH_fullmachine.json");
    std::fs::write(&path, json).expect("write BENCH_fullmachine.json");
    println!("==== BENCH_fullmachine.json -> {} ====", path.display());
}
