//! `bgpc-run` — supervised NAS kernel jobs with checkpoint/restart.
//!
//! ```text
//! bgpc-run --out DIR [--kernel mg] [--class s] [--ranks 8] [--mode vnm]
//!          [--policy fixed0|fixed1|fixed2|fixed3|evenodd|mux[:dwell]]
//!          [--threads N] [--trace]
//!          [--checkpoint-every N] [--checkpoint-dir DIR] [--retain N]
//!          [--resume DIR] [--crash-at-phase N]
//!          [--wall-budget-ms N] [--cycle-budget N] [--max-retries N]
//! ```
//!
//! `--policy` selects the counter instrumentation policy: a fixed
//! counter mode on every node, the paper's even/odd split (the
//! default), or adaptive multiplexing (`mux`, optionally with a
//! baseline dwell in phases, e.g. `mux:8`). The policy is recorded in
//! `run.json`, and multiplexed runs additionally record the rotation
//! schedule summary (rotations, interrupt-driven dwell extensions,
//! early rotations, per-mode phase and cycle occupancy) so
//! post-processing can audit the schedule that produced the dumps.
//!
//! The job runs under [`bgp_core::supervisor::supervise`]: wall-clock
//! and simulated-cycle budgets, watchdog kills, and bounded
//! resume-from-checkpoint retries. `--crash-at-phase N` is the crash
//! drill used by `scripts/ci.sh`: the first attempt dies
//! deterministically at phase `N`; with `--max-retries 0` the process
//! exits non-zero, leaving the snapshot directory behind for a later
//! `--resume DIR` invocation to continue byte-identically.
//!
//! Writes into `--out DIR`: the per-node `.bgpc` counter dumps,
//! `run.json` (simulated clocks — identical for an uninterrupted and a
//! killed-and-resumed job), and with `--trace` the `trace.json` /
//! `phases.csv` timeline exports.

use bgp_arch::cli::ArgParser;
use bgp_arch::events::CounterMode;
use bgp_arch::OpMode;
use bgp_bench::RunConfig;
use bgp_core::supervisor::{supervise, AttemptOutcome, SupervisorConfig};
use bgp_mpi::machine::CheckpointConfig;
use bgp_mpi::CounterPolicy;
use bgp_nas::{Class, Kernel};
use bgp_serve::proto::{parse_class, parse_kernel, parse_mode, workload_tag};
use bgp_trace::TraceConfig;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    out: PathBuf,
    kernel: Kernel,
    class: Class,
    ranks: usize,
    mode: OpMode,
    policy: Option<CounterPolicy>,
    threads: Option<usize>,
    trace: bool,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    retain: usize,
    resume: Option<PathBuf>,
    crash_at_phase: Option<u64>,
    wall_budget_ms: Option<u64>,
    cycle_budget: Option<u64>,
    max_retries: u32,
}

const USAGE: &str = "usage: bgpc-run --out DIR [--kernel mg|ft|ep|cg|is|lu|sp|bt] \
[--class s|w|a] [--ranks N] [--mode smp1|smp4|dual|vnm] \
[--policy fixed0|fixed1|fixed2|fixed3|evenodd|mux[:dwell]] [--threads N] [--trace] \
[--checkpoint-every N] [--checkpoint-dir DIR] [--retain N] [--resume DIR] \
[--crash-at-phase N] [--wall-budget-ms N] [--cycle-budget N] [--max-retries N]";

/// Baseline dwell (phases per mode) a bare `--policy mux` uses — the
/// value the validation suite's reconstruction gate is tuned at.
const DEFAULT_MUX_DWELL: u32 = 12;

fn parse_policy(s: &str) -> Option<CounterPolicy> {
    let mode = |i: usize| CounterMode::from_index(i).expect("mode index in range");
    match s {
        "fixed0" => Some(CounterPolicy::Fixed(mode(0))),
        "fixed1" => Some(CounterPolicy::Fixed(mode(1))),
        "fixed2" => Some(CounterPolicy::Fixed(mode(2))),
        "fixed3" => Some(CounterPolicy::Fixed(mode(3))),
        "evenodd" => Some(CounterPolicy::EvenOdd { even: mode(0), odd: mode(1) }),
        "mux" => Some(CounterPolicy::Multiplexed {
            first: mode(0),
            base_dwell: DEFAULT_MUX_DWELL,
        }),
        other => {
            let dwell: u32 = other.strip_prefix("mux:")?.parse().ok()?;
            (dwell > 0).then_some(CounterPolicy::Multiplexed {
                first: mode(0),
                base_dwell: dwell,
            })
        }
    }
}

/// Short tag naming the policy in `run.json` and the stdout summary.
fn policy_tag(p: &CounterPolicy) -> String {
    match p {
        CounterPolicy::Fixed(m) => format!("fixed{}", m.index()),
        CounterPolicy::EvenOdd { even, odd } => {
            format!("evenodd({},{})", even.index(), odd.index())
        }
        CounterPolicy::Multiplexed { first, base_dwell } => {
            format!("mux(first={},dwell={base_dwell})", first.index())
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::new(),
        kernel: Kernel::Mg,
        class: Class::S,
        ranks: 8,
        mode: OpMode::VirtualNode,
        policy: None,
        threads: None,
        trace: false,
        checkpoint_every: None,
        checkpoint_dir: None,
        retain: 3,
        resume: None,
        crash_at_phase: None,
        wall_budget_ms: None,
        cycle_budget: None,
        max_retries: 0,
    };
    let mut out = None;
    let mut p = ArgParser::from_env(USAGE);
    while let Some(a) = p.next_flag()? {
        match a.as_str() {
            "--out" => out = Some(p.path(&a)?),
            "--kernel" => {
                args.kernel = p.token(&a, "mg|ft|ep|cg|is|lu|sp|bt", parse_kernel)?;
            }
            "--class" => args.class = p.token(&a, "s|w|a", parse_class)?,
            "--ranks" => args.ranks = p.parse(&a)?,
            "--mode" => args.mode = p.token(&a, "smp1|smp4|dual|vnm", parse_mode)?,
            "--policy" => {
                args.policy = Some(p.token(
                    &a,
                    "fixed0|fixed1|fixed2|fixed3|evenodd|mux[:dwell]",
                    parse_policy,
                )?);
            }
            "--threads" | "--sim-threads" => args.threads = Some(p.parse(&a)?),
            "--trace" => args.trace = true,
            "--checkpoint-every" => args.checkpoint_every = Some(p.parse(&a)?),
            "--checkpoint-dir" => args.checkpoint_dir = Some(p.path(&a)?),
            "--retain" => args.retain = p.parse(&a)?,
            "--resume" => args.resume = Some(p.path(&a)?),
            "--crash-at-phase" => args.crash_at_phase = Some(p.parse(&a)?),
            "--wall-budget-ms" => args.wall_budget_ms = Some(p.parse(&a)?),
            "--cycle-budget" => args.cycle_budget = Some(p.parse(&a)?),
            "--max-retries" => args.max_retries = p.parse(&a)?,
            other => return Err(p.unexpected(other)),
        }
    }
    args.out = out.ok_or_else(|| p.missing("--out DIR"))?;
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("bgpc-run: creating {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    // Rank panics inside a supervised run are expected control flow
    // (watchdog kills, crash drills, budget violations): keep stderr to
    // one line each and drop the peer-abort echoes entirely. Anything
    // unrecognized still gets the default hook (it is a real bug).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if msg.contains(bgp_mpi::machine::ABORT_ECHO) {
            return;
        }
        if msg.contains("supervisor watchdog")
            || msg.contains("MPI deadlock")
            || msg.contains("simulated-cycle budget exceeded")
        {
            eprintln!("bgpc-run: rank died: {msg}");
            return;
        }
        default_hook(info);
    }));

    // Checkpoint placement: `--resume DIR` implies that directory;
    // otherwise `--checkpoint-dir` (default `<out>/checkpoints`). A
    // non-empty directory without `--resume` is refused rather than
    // silently ignored — stale snapshots of the same experiment would
    // otherwise be resumable by the *next* invocation only, which makes
    // runs order-dependent.
    let cp_dir = args
        .resume
        .clone()
        .or_else(|| args.checkpoint_dir.clone())
        .unwrap_or_else(|| args.out.join("checkpoints"));
    let checkpointing = args.checkpoint_every.is_some() || args.resume.is_some();
    if args.resume.is_none() && checkpointing {
        let stale = std::fs::read_dir(&cp_dir)
            .map(|d| d.filter_map(|e| e.ok()).count())
            .unwrap_or(0);
        if stale != 0 {
            eprintln!(
                "bgpc-run: checkpoint dir {} is not empty; pass --resume {} to \
                 continue from it, or clean it for a cold start",
                cp_dir.display(),
                cp_dir.display()
            );
            return ExitCode::FAILURE;
        }
    }

    let mut run_cfg = RunConfig::new(args.kernel, args.class, args.ranks);
    run_cfg.mode = args.mode;
    let mut spec = bgp_mpi::JobSpec::new(run_cfg.ranks, run_cfg.mode);
    // Same workload tag as the service, so the cache key printed below
    // names the same entry a `submit` of this job would.
    spec.workload = Some(workload_tag(run_cfg.kernel, run_cfg.class));
    spec.machine = run_cfg.machine.clone();
    spec.compile = run_cfg.compile;
    if let Some(policy) = args.policy {
        spec.counter_policy = policy;
    }
    spec.sim_threads = args.threads;
    spec.cycle_budget = args.cycle_budget;
    if args.trace {
        spec.trace = Some(TraceConfig::default());
    }
    if checkpointing {
        spec.checkpoint = Some(CheckpointConfig {
            every: args.checkpoint_every.unwrap_or(64).max(1),
            dir: cp_dir.clone(),
            retain: args.retain.max(1),
        });
    }

    let sup = SupervisorConfig {
        // 0 disables the watchdog, same convention as bgpc-serve.
        wall_budget: args.wall_budget_ms.filter(|&ms| ms > 0).map(Duration::from_millis),
        max_retries: args.max_retries,
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_secs(2),
        inject_kill_at_phase: args.crash_at_phase,
    };
    let (kernel, class) = (run_cfg.kernel, run_cfg.class);
    let run = match supervise(&spec, &sup, move |ctx| kernel.exec(class, ctx)) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("bgpc-run: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (i, a) in run.attempts.iter().enumerate() {
        let from = match a.resumed_from {
            Some(p) => format!("resumed from phase {p}"),
            None => "cold start".to_string(),
        };
        match &a.outcome {
            AttemptOutcome::Completed => println!("attempt {}: {from}, completed", i + 1),
            AttemptOutcome::Failed { message, .. } => {
                println!("attempt {}: {from}, died: {message}", i + 1);
            }
        }
    }
    if !run.results.iter().all(|r| r.verified) {
        eprintln!("bgpc-run: kernel verification failed");
        return ExitCode::FAILURE;
    }

    if let Err(e) = run.library.write_dumps(&args.out) {
        eprintln!("bgpc-run: writing dumps: {e}");
        return ExitCode::FAILURE;
    }
    // Simulated clocks + cache identity only: byte-identical across
    // kill/resume (the fingerprint excludes checkpoint placement and
    // budgets), so the ci.sh crash drill can diff this file against an
    // uninterrupted run, and the counter service would serve both from
    // one cache entry.
    let cache_key =
        bgp_snapshot::CacheKey { spec: spec.fingerprint(), seed: 0 };
    let mut run_json = format!(
        "{{\n  \"kernel\": \"{}\",\n  \"class\": \"{}\",\n  \"ranks\": {},\n  \
         \"mode\": \"{}\",\n  \"policy\": \"{}\",\n  \"spec_hash\": \"{:#018x}\",\n  \
         \"seed\": {},\n  \"job_cycles\": {},\n  \"phases\": {}",
        run_cfg.kernel,
        run_cfg.class,
        run_cfg.ranks,
        run_cfg.mode,
        policy_tag(&spec.counter_policy),
        cache_key.spec,
        cache_key.seed,
        run.machine.job_cycles(),
        run.machine.phases()
    );
    // Multiplexed jobs also record the rotation schedule the adaptive
    // scheduler actually ran, so the dumps' synthetic sets can be
    // audited without re-running the job.
    if let Some(mux) = run.machine.mux_summary() {
        run_json.push_str(&format!(
            ",\n  \"mux\": {{\"base_dwell\": {}, \"rotations\": {}, \"irq_extends\": {}, \
             \"early_rotates\": {}, \"irq_drained\": {}, \"occupancy\": {:?}, \
             \"cycle_occupancy\": {:?}}}",
            mux.base_dwell,
            mux.rotations,
            mux.irq_extends,
            mux.early_rotates,
            mux.irq_drained,
            mux.occupancy,
            mux.cycle_occupancy
        ));
    }
    run_json.push_str("\n}\n");
    if let Err(e) = std::fs::write(args.out.join("run.json"), run_json) {
        eprintln!("bgpc-run: writing run.json: {e}");
        return ExitCode::FAILURE;
    }
    if args.trace {
        let trace = run.machine.job_trace().expect("tracing was enabled");
        for (name, body) in
            [("trace.json", trace.chrome_json()), ("phases.csv", trace.phase_metrics_csv())]
        {
            if let Err(e) = std::fs::write(args.out.join(name), body) {
                eprintln!("bgpc-run: writing {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let stats = run.machine.snapshot_stats();
    println!(
        "{} class {} on {} ranks ({}, policy {}): {} cycles, {} phases, {} attempt(s)",
        run_cfg.kernel,
        run_cfg.class,
        run_cfg.ranks,
        run_cfg.mode,
        policy_tag(&spec.counter_policy),
        run.machine.job_cycles(),
        run.machine.phases(),
        run.attempts.len()
    );
    if stats.written > 0 {
        println!(
            "snapshots: {} written ({} bytes, {:.1} ms total save time) -> {}",
            stats.written,
            stats.bytes,
            stats.save_nanos as f64 / 1e6,
            cp_dir.display()
        );
    }
    println!("cache key {} {cache_key}", cache_key.hex());
    println!("outputs  -> {}", args.out.display());
    ExitCode::SUCCESS
}
