//! Extension experiment: L2 prefetch-depth sweep (paper SIX future work).
use bgp_bench::{figures, Scale};
fn main() {
    bgp_bench::emit("fig_ext_prefetch", &figures::fig_ext_prefetch(Scale::from_args()));
}
