//! Extension: **adaptive multiplexing coverage/cost**. Compares the
//! classical strategy for full 1024-event coverage — re-running the
//! application once per counter mode — against a single run under
//! `CounterPolicy::Multiplexed`, across base dwell settings. Reports
//! the rotation statistics (rotations, interrupt-driven dwell
//! extensions, early rotates from derivative collapse), the occupancy
//! balance across the four modes, and the reconstruction quality of
//! the multiplexed estimates against simulator ground truth.

use bgp_arch::events::{CounterMode, NUM_MODES};
use bgp_bench::{measure_with_truth, RunConfig, Scale};
use bgp_core::dump::NodeDump;
use bgp_core::WHOLE_PROGRAM_SET;
use bgp_mpi::CounterPolicy;
use bgp_nas::Kernel;
use bgp_postproc::{Csv, ValidationReport};

/// Base dwell settings (phases per rotation quantum) swept per kernel.
const DWELLS: [u32; 3] = [4, 8, 16];

fn main() {
    let scale = Scale::from_args();
    let kernels = [Kernel::Mg, Kernel::Cg];

    let mut csv = Csv::new([
        "kernel",
        "base_dwell",
        "runs_needed",
        "cycles_fixed_total",
        "cycles_mux",
        "rotations",
        "irq_extends",
        "early_rotates",
        "irq_drained",
        "occ_mode0",
        "occ_mode1",
        "occ_mode2",
        "occ_mode3",
        "coverage",
        "mux_median_err",
    ]);

    for kernel in kernels {
        let cfg = RunConfig::new(kernel, scale.class(), scale.ranks());

        // Exact baseline: one run per mode, total cost = 4 runs.
        let mut exact: [Vec<NodeDump>; NUM_MODES] = [vec![], vec![], vec![], vec![]];
        let mut truth = None;
        let mut cycles_fixed_total = 0u64;
        for (m, slot) in exact.iter_mut().enumerate() {
            let mode = CounterMode::from_index(m).expect("mode index");
            let r = measure_with_truth(&cfg, CounterPolicy::Fixed(mode), None, None);
            cycles_fixed_total += r.job_cycles;
            if truth.is_none() {
                truth = Some(r.truth);
            }
            *slot = r.dumps;
        }
        let truth = truth.expect("exact baseline ran");

        for dwell in DWELLS {
            let policy =
                CounterPolicy::Multiplexed { first: CounterMode::Mode0, base_dwell: dwell };
            let mux = measure_with_truth(&cfg, policy, None, None);
            let summary = mux.mux.expect("multiplexed run has a summary");
            let label = format!("{kernel} dwell {dwell}");
            let report = ValidationReport::build(
                &label,
                &truth,
                &exact,
                &mux.dumps,
                None,
                WHOLE_PROGRAM_SET,
            );
            csv.row([
                kernel.name().to_string(),
                dwell.to_string(),
                format!("{NUM_MODES}"),
                cycles_fixed_total.to_string(),
                mux.job_cycles.to_string(),
                summary.rotations.to_string(),
                summary.irq_extends.to_string(),
                summary.early_rotates.to_string(),
                summary.irq_drained.to_string(),
                summary.occupancy[0].to_string(),
                summary.occupancy[1].to_string(),
                summary.occupancy[2].to_string(),
                summary.occupancy[3].to_string(),
                format!("{:.4}", report.coverage),
                format!("{:.4}", report.mux_median_err),
            ]);
            println!(
                "{kernel} dwell {dwell}: {} rotations ({} irq-extended, {} early), \
                 coverage {:.0}%, median err {:.2}%, 1 run vs {NUM_MODES} \
                 ({} vs {} cycles)",
                summary.rotations,
                summary.irq_extends,
                summary.early_rotates,
                report.coverage * 100.0,
                report.mux_median_err * 100.0,
                mux.job_cycles,
                cycles_fixed_total,
            );
        }
    }

    bgp_bench::emit("fig_ext_multiplex", &csv);
}
