//! # bgp-bench — the experiment harness
//!
//! One binary per table/figure of the paper (`src/bin/fig*.rs`), plus the
//! dependency-free micro-benchmarks in `benches/`. This library holds the
//! shared machinery: run a NAS kernel job under whole-program
//! instrumentation, post-process the dumps into a [`Frame`], and extract
//! the metrics the figures plot.
//!
//! Because a node's UPC unit observes one counter mode per run, every
//! *full* measurement is two runs — exactly the methodology the paper's
//! even/odd-node trick optimizes: one run with
//! [`CounterPolicy::EvenOdd`]`(mode0, mode1)` for the per-core events
//! (instruction mix, cycles, flops) and one with mode 2 for the shared
//! L3/DDR events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod microbench;

use bgp_arch::events::{CoreEvent, CounterMode, NetEvent, SharedEvent};
use bgp_arch::{MachineConfig, OpMode, CORES_PER_NODE};
use bgp_compiler::CompileOpts;
use bgp_core::dump::NodeDump;
use bgp_core::{run_instrumented, WHOLE_PROGRAM_SET};
use bgp_faults::FaultPlan;
use bgp_fpu::FpOp;
use bgp_mpi::{CounterPolicy, JobSpec, Machine, MuxSummary};
use bgp_nas::{Class, Kernel};
use bgp_node::Node;
use bgp_postproc::{Frame, NodeTruth, TruthEntry};
use std::path::PathBuf;

/// Everything that identifies one measured job.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Kernel under test.
    pub kernel: Kernel,
    /// Problem class.
    pub class: Class,
    /// MPI ranks.
    pub ranks: usize,
    /// Node operating mode.
    pub mode: OpMode,
    /// Compiler build.
    pub compile: CompileOpts,
    /// Node hardware.
    pub machine: MachineConfig,
}

impl RunConfig {
    /// Paper-default configuration for a kernel at the given scale.
    pub fn new(kernel: Kernel, class: Class, ranks: usize) -> RunConfig {
        RunConfig {
            kernel,
            class,
            ranks: kernel.clamp_ranks(ranks, class),
            mode: OpMode::VirtualNode,
            compile: CompileOpts::o5(),
            machine: MachineConfig::default(),
        }
    }

    fn spec(&self, policy: CounterPolicy) -> JobSpec {
        let mut spec = JobSpec::new(self.ranks, self.mode);
        spec.machine = self.machine.clone();
        spec.compile = self.compile;
        spec.counter_policy = policy;
        spec
    }
}

/// Outcome of one instrumented run under one counter policy.
pub struct Measured {
    /// Aggregated whole-program counter frame.
    pub frame: Frame,
    /// Wall-clock cycles of the job (slowest core).
    pub job_cycles: u64,
    /// Whether every rank's kernel verification passed.
    pub verified: bool,
}

/// Run the kernel once with the given counter policy.
pub fn measure(cfg: &RunConfig, policy: CounterPolicy) -> Measured {
    let machine = Machine::new(cfg.spec(policy));
    let kernel = cfg.kernel;
    let class = cfg.class;
    let (results, lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
    let verified = results.iter().all(|r| r.verified);
    assert!(
        verified,
        "{} class {} on {} ranks failed verification",
        cfg.kernel, cfg.class, cfg.ranks
    );
    let dumps = lib.dumps().expect("all nodes finalized");
    let frame = Frame::from_dumps(&dumps, WHOLE_PROGRAM_SET).expect("valid dumps");
    Measured { frame, job_cycles: machine.job_cycles(), verified }
}

/// Run with the even/odd mode-0/1 policy: per-core events (FPU mix,
/// cycle counters) across all four cores of the chip.
pub fn measure_cores(cfg: &RunConfig) -> Measured {
    measure(
        cfg,
        CounterPolicy::EvenOdd { even: CounterMode::Mode0, odd: CounterMode::Mode1 },
    )
}

/// Run with mode 2 everywhere: shared L3/DDR events.
pub fn measure_memory(cfg: &RunConfig) -> Measured {
    measure(cfg, CounterPolicy::Fixed(CounterMode::Mode2))
}

/// Run with mode 3 everywhere: network events.
pub fn measure_network(cfg: &RunConfig) -> Measured {
    measure(cfg, CounterPolicy::Fixed(CounterMode::Mode3))
}

/// Outcome of one instrumented run kept at dump granularity, with the
/// simulator's independent ground truth — the raw material of the
/// validation harness ([`bgp_postproc::validate`]).
pub struct TruthMeasured {
    /// Decoded per-node dumps (synthetic mux sets included when the
    /// policy rotated).
    pub dumps: Vec<NodeDump>,
    /// Encoded dump bytes per node, for byte-identity checks.
    pub encoded: Vec<Vec<u8>>,
    /// Independent per-node ground truth read from the machine after
    /// the run.
    pub truth: Vec<NodeTruth>,
    /// Wall-clock cycles of the job (slowest core).
    pub job_cycles: u64,
    /// Rotation statistics, when the policy multiplexed.
    pub mux: Option<MuxSummary>,
}

/// Run the kernel once under `policy`, keeping dumps, encoded bytes,
/// and ground truth. `faults` arms the job's fault plan (the degraded
/// leg of the validation figures); `sim_threads` pins the simulator's
/// worker pool (results are thread-invariant — pinning lets the
/// validation gate prove it by byte comparison).
pub fn measure_with_truth(
    cfg: &RunConfig,
    policy: CounterPolicy,
    faults: Option<std::sync::Arc<FaultPlan>>,
    sim_threads: Option<usize>,
) -> TruthMeasured {
    let mut spec = cfg.spec(policy);
    spec.faults = faults;
    if sim_threads.is_some() {
        spec.sim_threads = sim_threads;
    }
    let machine = Machine::new(spec);
    let kernel = cfg.kernel;
    let class = cfg.class;
    let (results, lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
    assert!(
        results.iter().all(|r| r.verified),
        "{} class {} on {} ranks failed verification",
        cfg.kernel,
        cfg.class,
        cfg.ranks
    );
    let dumps = lib.dumps().expect("all nodes finalized");
    let encoded = (0..machine.num_nodes())
        .map(|i| lib.encoded_dump(i).expect("node finalized"))
        .collect();
    let truth = ground_truth(&machine);
    TruthMeasured {
        dumps,
        encoded,
        truth,
        job_cycles: machine.job_cycles(),
        mux: machine.mux_summary(),
    }
}

/// Read every node's independent ground truth off the machine. Valid
/// for whole-program instrumentation only: the truth mirrors are
/// cumulative, so the counting window must have covered all retirement.
pub fn ground_truth(machine: &Machine) -> Vec<NodeTruth> {
    (0..machine.num_nodes())
        .map(|i| machine.with_node(i, |n| node_truth(i as u32, n)))
        .collect()
}

fn entry(name: String, events: Vec<bgp_arch::EventId>, truth: u64) -> TruthEntry {
    TruthEntry { name, events: events.into_iter().map(|e| e.index()).collect(), truth }
}

/// Every derivable quantity of one node. Per-core instruction, FPU and
/// stall events have per-event truth; cache/DDR families only exist in
/// aggregate (`MemStats` is node-level, the L3/DDR events are banked);
/// mode-3 events check against the node's always-on network mirror.
/// Slots with no independent source (cycle counters, snoops, L3
/// allocations, prefetch stream allocations) are not emitted.
fn node_truth(id: u32, n: &Node) -> NodeTruth {
    let mut entries = Vec::new();
    for c in 0..CORES_PER_NODE {
        let core = n.core(c);
        let ic = core.instr_counts();
        let word_loads = ic.loads - ic.load_double - ic.quadload;
        let word_stores = ic.stores - ic.store_double - ic.quadstore;
        let per_core: [(CoreEvent, u64); 16] = [
            (CoreEvent::InstrCompleted, core.instructions()),
            (CoreEvent::IntOp, ic.int_ops),
            (CoreEvent::Branch, ic.branches),
            (CoreEvent::BranchMispredict, ic.mispredicts),
            // The scalar path reports a 4-byte access on `Load`/`Store`
            // twice (once as the class, once as the width event).
            (CoreEvent::Load, ic.loads + word_loads),
            (CoreEvent::Store, ic.stores + word_stores),
            (CoreEvent::LoadDouble, ic.load_double),
            (CoreEvent::StoreDouble, ic.store_double),
            (CoreEvent::Quadload, ic.quadload),
            (CoreEvent::Quadstore, ic.quadstore),
            (CoreEvent::StallMem, core.stall_mem()),
            (CoreEvent::StallFpu, core.stall_fpu()),
            (CoreEvent::FpMove, core.fpu().count(FpOp::Move)),
            (CoreEvent::FpAddSub, core.fpu().count(FpOp::AddSub)),
            (CoreEvent::FpMult, core.fpu().count(FpOp::Mult)),
            (CoreEvent::FpDiv, core.fpu().count(FpOp::Div)),
        ];
        for (ev, truth) in per_core {
            let eid = ev.id(c);
            entries.push(entry(eid.name(), vec![eid], truth));
        }
        for (ev, op) in [
            (CoreEvent::FpFma, FpOp::Fma),
            (CoreEvent::FpSimdAddSub, FpOp::SimdAddSub),
            (CoreEvent::FpSimdMult, FpOp::SimdMult),
            (CoreEvent::FpSimdDiv, FpOp::SimdDiv),
            (CoreEvent::FpSimdFma, FpOp::SimdFma),
        ] {
            let eid = ev.id(c);
            entries.push(entry(eid.name(), vec![eid], core.fpu().count(op)));
        }
    }
    // Whole-chip FP arithmetic family (the per-class rows above already
    // pin each weight of the flops formula, so this aggregate plus
    // those implies `bgp_fpu::Fpu::flops` agreement).
    let mut flop_events = Vec::new();
    for c in 0..CORES_PER_NODE {
        for ev in [
            CoreEvent::FpAddSub,
            CoreEvent::FpMult,
            CoreEvent::FpDiv,
            CoreEvent::FpFma,
            CoreEvent::FpSimdAddSub,
            CoreEvent::FpSimdMult,
            CoreEvent::FpSimdDiv,
            CoreEvent::FpSimdFma,
        ] {
            flop_events.push(ev.id(c));
        }
    }
    let fp_arith: u64 = (0..CORES_PER_NODE)
        .map(|c| {
            let f = n.core(c).fpu();
            FpOp::ALL
                .iter()
                .filter(|&&op| op != FpOp::Move)
                .map(|&op| f.count(op))
                .sum::<u64>()
        })
        .sum();
    entries.push(entry("fp_arith_instructions".into(), flop_events, fp_arith));
    // Node-level memory-hierarchy families.
    let ms = n.mem_stats();
    let per_core_family = |ev: CoreEvent| -> Vec<bgp_arch::EventId> {
        (0..CORES_PER_NODE).map(|c| ev.id(c)).collect()
    };
    for (name, ev, truth) in [
        ("l1d_hits", CoreEvent::L1dHit, ms.l1d_hits),
        ("l1d_misses", CoreEvent::L1dMiss, ms.l1d_misses),
        ("l1d_writebacks", CoreEvent::L1dWriteback, ms.l1d_writebacks),
        ("l1i_hits", CoreEvent::L1iHit, ms.l1i_hits),
        ("l1i_misses", CoreEvent::L1iMiss, ms.l1i_misses),
        ("l2_hits", CoreEvent::L2Hit, ms.l2_hits),
        ("l2_misses", CoreEvent::L2Miss, ms.l2_misses),
        ("l2_prefetch_hits", CoreEvent::L2PrefetchHit, ms.l2_prefetch_hits),
        ("l2_prefetches_issued", CoreEvent::L2PrefetchIssued, ms.l2_prefetches_issued),
    ] {
        entries.push(entry(name.into(), per_core_family(ev), truth));
    }
    for (name, evs, truth) in [
        ("l3_hits", vec![SharedEvent::L3Hit0, SharedEvent::L3Hit1], ms.l3_hits),
        ("l3_misses", vec![SharedEvent::L3Miss0, SharedEvent::L3Miss1], ms.l3_misses),
        (
            "l3_writebacks",
            vec![SharedEvent::L3Writeback0, SharedEvent::L3Writeback1],
            ms.l3_writebacks,
        ),
        ("ddr_reads", vec![SharedEvent::DdrRead0, SharedEvent::DdrRead1], ms.ddr_reads),
        ("ddr_writes", vec![SharedEvent::DdrWrite0, SharedEvent::DdrWrite1], ms.ddr_writes),
        (
            "ddr_conflicts",
            vec![SharedEvent::DdrConflict0, SharedEvent::DdrConflict1],
            ms.ddr_conflicts,
        ),
    ] {
        entries.push(entry(name.into(), evs.into_iter().map(|e| e.id()).collect(), truth));
    }
    // Network events against the node's always-on mode-3 mirror.
    for &ev in NetEvent::ALL {
        let eid = ev.id();
        let truth = n.net_truth()[eid.slot().0 as usize];
        entries.push(entry(eid.name(), vec![eid], truth));
    }
    NodeTruth { node: id, entries }
}

/// Experiment scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny smoke-test scale (class S, 8 ranks).
    Quick,
    /// Default reproduction scale (class A, 16 ranks over 4 VNM nodes —
    /// sized for single-host simulation; use `--paper` for the paper's
    /// process counts).
    Default,
    /// The paper's process counts (class A, 128 ranks / 121 for SP & BT).
    Paper,
}

impl Scale {
    /// Parse from argv: `--quick` or `--paper`, default otherwise.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Default
        }
    }

    /// Problem class at this scale.
    pub fn class(self) -> Class {
        match self {
            Scale::Quick => Class::S,
            _ => Class::A,
        }
    }

    /// Target rank count (kernels clamp to their nearest legal count).
    pub fn ranks(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Default => 16,
            Scale::Paper => 128,
        }
    }
}

/// Directory figure binaries write their CSVs into (`results/`).
pub fn results_dir() -> PathBuf {
    let p = std::env::var("BGP_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(p);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Where `BENCH_*.json` machine-performance records go: the repo root
/// by default (they are committed artifacts), or `$BGP_BENCH_DIR` so CI
/// smoke runs at Quick scale can write somewhere disposable instead of
/// clobbering the committed Default-scale numbers.
pub fn bench_json_path(name: &str) -> PathBuf {
    let dir = std::env::var("BGP_BENCH_DIR").unwrap_or_else(|_| ".".into());
    PathBuf::from(dir).join(name)
}

/// Print a banner + the CSV body to stdout and persist it.
pub fn emit(name: &str, csv: &bgp_postproc::Csv) {
    let path = results_dir().join(format!("{name}.csv"));
    csv.write(&path).expect("write csv");
    println!("==== {name} -> {} ====", path.display());
    print!("{}", csv.render());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::CoreEvent;
    use bgp_postproc::{fp_mix, MixCategory};

    #[test]
    fn measure_cores_sees_all_four_cores_in_vnm() {
        let cfg = RunConfig::new(Kernel::Ep, Class::S, 8);
        let m = measure_cores(&cfg);
        assert!(m.verified);
        for core in 0..4 {
            assert!(
                m.frame.sum(CoreEvent::CycleCount.id(core)) > 0,
                "core {core} cycle counter empty"
            );
        }
        let mix = fp_mix(&m.frame);
        assert!(mix.count(MixCategory::SingleFma) > 0);
    }

    #[test]
    fn measure_memory_sees_ddr_traffic() {
        let cfg = RunConfig::new(Kernel::Mg, Class::S, 8);
        let m = measure_memory(&cfg);
        assert!(bgp_postproc::ddr_traffic_bytes_per_node(&m.frame) > 0.0);
        assert!(m.job_cycles > 0);
    }

    #[test]
    fn scale_parsing_defaults() {
        assert_eq!(Scale::Default.ranks(), 16);
        assert_eq!(Scale::Paper.ranks(), 128);
        assert_eq!(Scale::Quick.class(), Class::S);
    }
}
