//! # bgp-bench — the experiment harness
//!
//! One binary per table/figure of the paper (`src/bin/fig*.rs`), plus the
//! dependency-free micro-benchmarks in `benches/`. This library holds the
//! shared machinery: run a NAS kernel job under whole-program
//! instrumentation, post-process the dumps into a [`Frame`], and extract
//! the metrics the figures plot.
//!
//! Because a node's UPC unit observes one counter mode per run, every
//! *full* measurement is two runs — exactly the methodology the paper's
//! even/odd-node trick optimizes: one run with
//! [`CounterPolicy::EvenOdd`]`(mode0, mode1)` for the per-core events
//! (instruction mix, cycles, flops) and one with mode 2 for the shared
//! L3/DDR events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod microbench;

use bgp_arch::events::CounterMode;
use bgp_arch::{MachineConfig, OpMode};
use bgp_compiler::CompileOpts;
use bgp_core::{run_instrumented, WHOLE_PROGRAM_SET};
use bgp_mpi::{CounterPolicy, JobSpec, Machine};
use bgp_nas::{Class, Kernel};
use bgp_postproc::Frame;
use std::path::PathBuf;

/// Everything that identifies one measured job.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Kernel under test.
    pub kernel: Kernel,
    /// Problem class.
    pub class: Class,
    /// MPI ranks.
    pub ranks: usize,
    /// Node operating mode.
    pub mode: OpMode,
    /// Compiler build.
    pub compile: CompileOpts,
    /// Node hardware.
    pub machine: MachineConfig,
}

impl RunConfig {
    /// Paper-default configuration for a kernel at the given scale.
    pub fn new(kernel: Kernel, class: Class, ranks: usize) -> RunConfig {
        RunConfig {
            kernel,
            class,
            ranks: kernel.clamp_ranks(ranks, class),
            mode: OpMode::VirtualNode,
            compile: CompileOpts::o5(),
            machine: MachineConfig::default(),
        }
    }

    fn spec(&self, policy: CounterPolicy) -> JobSpec {
        let mut spec = JobSpec::new(self.ranks, self.mode);
        spec.machine = self.machine.clone();
        spec.compile = self.compile;
        spec.counter_policy = policy;
        spec
    }
}

/// Outcome of one instrumented run under one counter policy.
pub struct Measured {
    /// Aggregated whole-program counter frame.
    pub frame: Frame,
    /// Wall-clock cycles of the job (slowest core).
    pub job_cycles: u64,
    /// Whether every rank's kernel verification passed.
    pub verified: bool,
}

/// Run the kernel once with the given counter policy.
pub fn measure(cfg: &RunConfig, policy: CounterPolicy) -> Measured {
    let machine = Machine::new(cfg.spec(policy));
    let kernel = cfg.kernel;
    let class = cfg.class;
    let (results, lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
    let verified = results.iter().all(|r| r.verified);
    assert!(
        verified,
        "{} class {} on {} ranks failed verification",
        cfg.kernel, cfg.class, cfg.ranks
    );
    let dumps = lib.dumps().expect("all nodes finalized");
    let frame = Frame::from_dumps(&dumps, WHOLE_PROGRAM_SET).expect("valid dumps");
    Measured { frame, job_cycles: machine.job_cycles(), verified }
}

/// Run with the even/odd mode-0/1 policy: per-core events (FPU mix,
/// cycle counters) across all four cores of the chip.
pub fn measure_cores(cfg: &RunConfig) -> Measured {
    measure(
        cfg,
        CounterPolicy::EvenOdd { even: CounterMode::Mode0, odd: CounterMode::Mode1 },
    )
}

/// Run with mode 2 everywhere: shared L3/DDR events.
pub fn measure_memory(cfg: &RunConfig) -> Measured {
    measure(cfg, CounterPolicy::Fixed(CounterMode::Mode2))
}

/// Run with mode 3 everywhere: network events.
pub fn measure_network(cfg: &RunConfig) -> Measured {
    measure(cfg, CounterPolicy::Fixed(CounterMode::Mode3))
}

/// Experiment scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny smoke-test scale (class S, 8 ranks).
    Quick,
    /// Default reproduction scale (class A, 16 ranks over 4 VNM nodes —
    /// sized for single-host simulation; use `--paper` for the paper's
    /// process counts).
    Default,
    /// The paper's process counts (class A, 128 ranks / 121 for SP & BT).
    Paper,
}

impl Scale {
    /// Parse from argv: `--quick` or `--paper`, default otherwise.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Default
        }
    }

    /// Problem class at this scale.
    pub fn class(self) -> Class {
        match self {
            Scale::Quick => Class::S,
            _ => Class::A,
        }
    }

    /// Target rank count (kernels clamp to their nearest legal count).
    pub fn ranks(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Default => 16,
            Scale::Paper => 128,
        }
    }
}

/// Directory figure binaries write their CSVs into (`results/`).
pub fn results_dir() -> PathBuf {
    let p = std::env::var("BGP_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(p);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Where `BENCH_*.json` machine-performance records go: the repo root
/// by default (they are committed artifacts), or `$BGP_BENCH_DIR` so CI
/// smoke runs at Quick scale can write somewhere disposable instead of
/// clobbering the committed Default-scale numbers.
pub fn bench_json_path(name: &str) -> PathBuf {
    let dir = std::env::var("BGP_BENCH_DIR").unwrap_or_else(|_| ".".into());
    PathBuf::from(dir).join(name)
}

/// Print a banner + the CSV body to stdout and persist it.
pub fn emit(name: &str, csv: &bgp_postproc::Csv) {
    let path = results_dir().join(format!("{name}.csv"));
    csv.write(&path).expect("write csv");
    println!("==== {name} -> {} ====", path.display());
    print!("{}", csv.render());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::CoreEvent;
    use bgp_postproc::{fp_mix, MixCategory};

    #[test]
    fn measure_cores_sees_all_four_cores_in_vnm() {
        let cfg = RunConfig::new(Kernel::Ep, Class::S, 8);
        let m = measure_cores(&cfg);
        assert!(m.verified);
        for core in 0..4 {
            assert!(
                m.frame.sum(CoreEvent::CycleCount.id(core)) > 0,
                "core {core} cycle counter empty"
            );
        }
        let mix = fp_mix(&m.frame);
        assert!(mix.count(MixCategory::SingleFma) > 0);
    }

    #[test]
    fn measure_memory_sees_ddr_traffic() {
        let cfg = RunConfig::new(Kernel::Mg, Class::S, 8);
        let m = measure_memory(&cfg);
        assert!(bgp_postproc::ddr_traffic_bytes_per_node(&m.frame) > 0.0);
        assert!(m.job_cycles > 0);
    }

    #[test]
    fn scale_parsing_defaults() {
        assert_eq!(Scale::Default.ranks(), 16);
        assert_eq!(Scale::Paper.ranks(), 128);
        assert_eq!(Scale::Quick.class(), Class::S);
    }
}
