//! One function per table/figure of the paper. The `src/bin/fig*`
//! binaries are thin wrappers; `repro_all` calls everything in sequence.

use crate::{measure_cores, measure_memory, RunConfig, Scale};
use bgp_arch::events::{CoreEvent, CounterMode};
use bgp_arch::{modes::OpMode, CORE_CLOCK_HZ};
use bgp_compiler::{CompileOpts, QArch};
use bgp_core::{Session, INIT_CYCLES, START_CYCLES, STOP_CYCLES, TOTAL_OVERHEAD_CYCLES};
use bgp_mpi::{CounterPolicy, SemOp};
use bgp_nas::{Class, Kernel};
use bgp_postproc::{
    ddr_traffic_bytes_per_node, fp_mix, l3_miss_ratio, mflops_per_chip, Csv, MixCategory,
};

/// Fig. 3: the modes-of-operation table.
pub fn fig03() -> Csv {
    let mut csv = Csv::new(["mode", "processes_per_node", "threads_per_process"]);
    for m in OpMode::ALL {
        csv.row([
            m.label().to_string(),
            m.processes_per_node().to_string(),
            m.threads_per_process().to_string(),
        ]);
    }
    csv
}

/// §IV overhead table: the interface-library call costs in cycles,
/// measured against the Time Base exactly like the paper (and the
/// constants they decompose into).
pub fn tab_overhead() -> Csv {
    // Measure: instrument an empty snippet on a 1-rank machine.
    let mut spec = bgp_mpi::JobSpec::new(1, OpMode::Smp1);
    spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
    let machine = bgp_mpi::Machine::new(spec);
    let measured = machine.run(|mut ctx| async move {
        let ctx = &mut ctx;
        let t0 = ctx.cycles();
        let s = Session::builder(ctx).build().expect("init");
        let s = s.start(0).expect("start");
        let s = s.stop().expect("stop");
        let t_total = s.cycles() - t0;
        // Marginal start/stop pair for an already-initialized unit.
        let t1 = s.cycles();
        let s = s.start(1).expect("start");
        let s = s.stop().expect("stop");
        let t_pair = s.cycles() - t1;
        s.finalize().expect("finalize");
        (t_total, t_pair)
    })[0];
    let mut csv = Csv::new(["quantity", "cycles"]);
    csv.row(["measured initialize+start+stop".into(), measured.0.to_string()]);
    csv.row(["measured marginal start+stop pair".into(), measured.1.to_string()]);
    csv.row(["model BGP_Initialize".into(), INIT_CYCLES.to_string()]);
    csv.row(["model BGP_Start".into(), START_CYCLES.to_string()]);
    csv.row(["model BGP_Stop".into(), STOP_CYCLES.to_string()]);
    csv.row(["paper total (196)".into(), TOTAL_OVERHEAD_CYCLES.to_string()]);
    csv
}

/// Fig. 6: dynamic FP instruction mix of all eight kernels
/// (VNM, `-O5 -qarch=440d`, the paper's configuration).
pub fn fig06(scale: Scale) -> Csv {
    let mut csv = Csv::new([
        "kernel",
        "ranks",
        "single add-sub",
        "single mult",
        "single FMA",
        "single div",
        "SIMD add-sub",
        "SIMD FMA",
        "SIMD mult",
    ]);
    for kernel in Kernel::ALL {
        let cfg = RunConfig::new(kernel, scale.class(), scale.ranks());
        let m = measure_cores(&cfg);
        let mix = fp_mix(&m.frame);
        let mut row = vec![kernel.name().to_string(), cfg.ranks.to_string()];
        for cat in MixCategory::ALL {
            row.push(format!("{:.4}", mix.fraction(cat)));
        }
        csv.row(row);
    }
    csv
}

/// Figs. 7/8: SIMD instruction counts of one kernel across compiler
/// builds, ±`-qarch=440d`.
pub fn fig_simd_sweep(kernel: Kernel, scale: Scale) -> Csv {
    let mut csv = Csv::new([
        "build",
        "SIMD add-sub",
        "SIMD FMA",
        "SIMD mult",
        "quadload",
        "quadstore",
        "total FP instr",
    ]);
    let mut builds: Vec<CompileOpts> = Vec::new();
    for base in CompileOpts::paper_sweep() {
        builds.push(base.with_qarch(QArch::Ppc440));
        builds.push(base.with_qarch(QArch::Ppc440d));
    }
    for compile in builds {
        let mut cfg = RunConfig::new(kernel, scale.class(), scale.ranks());
        cfg.compile = compile;
        let m = measure_cores(&cfg);
        let mix = fp_mix(&m.frame);
        let quadload: u64 = (0..4).map(|c| m.frame.sum(CoreEvent::Quadload.id(c))).sum();
        let quadstore: u64 = (0..4).map(|c| m.frame.sum(CoreEvent::Quadstore.id(c))).sum();
        csv.row([
            compile.label(),
            mix.count(MixCategory::SimdAddSub).to_string(),
            mix.count(MixCategory::SimdFma).to_string(),
            mix.count(MixCategory::SimdMult).to_string(),
            quadload.to_string(),
            quadstore.to_string(),
            mix.total().to_string(),
        ]);
    }
    csv
}

/// Figs. 9/10: execution time (cycles and seconds) of a set of kernels
/// across the four builds of the paper's sweep; `norm_vs_baseline`
/// column shows the fraction of baseline time.
pub fn fig_exec_time(kernels: &[Kernel], scale: Scale) -> Csv {
    let mut csv = Csv::new(["kernel", "build", "cycles", "seconds", "norm_vs_baseline"]);
    for &kernel in kernels {
        let mut baseline = None;
        for compile in CompileOpts::paper_sweep() {
            let mut cfg = RunConfig::new(kernel, scale.class(), scale.ranks());
            cfg.compile = compile;
            let m = measure_cores(&cfg);
            let cycles = m.job_cycles;
            let base = *baseline.get_or_insert(cycles);
            csv.row([
                kernel.name().to_string(),
                compile.label(),
                cycles.to_string(),
                format!("{:.6}", cycles as f64 / CORE_CLOCK_HZ as f64),
                format!("{:.4}", cycles as f64 / base as f64),
            ]);
        }
    }
    csv
}

/// Fig. 11: DDR traffic per node vs L3 size (0–8 MB in 2 MB steps).
pub fn fig11(scale: Scale) -> Csv {
    let mut csv = Csv::new([
        "kernel",
        "l3_mb",
        "ddr_traffic_bytes_per_node",
        "l3_miss_ratio",
        "norm_vs_no_l3",
    ]);
    for kernel in Kernel::ALL {
        let mut no_l3 = None;
        for mb in [0usize, 2, 4, 6, 8] {
            let mut cfg = RunConfig::new(kernel, scale.class(), scale.ranks());
            cfg.machine = cfg.machine.with_l3_bytes(mb << 20);
            let m = measure_memory(&cfg);
            let traffic = ddr_traffic_bytes_per_node(&m.frame);
            let base = *no_l3.get_or_insert(traffic);
            csv.row([
                kernel.name().to_string(),
                mb.to_string(),
                format!("{traffic:.0}"),
                format!("{:.4}", l3_miss_ratio(&m.frame)),
                format!("{:.4}", traffic / base.max(1.0)),
            ]);
        }
    }
    csv
}

/// One kernel's VNM-vs-SMP/1 comparison (feeds Figs. 12, 13 and 14).
pub struct ModeRow {
    /// Kernel.
    pub kernel: Kernel,
    /// DDR traffic per chip, Virtual Node Mode (4 ranks/chip).
    pub vnm_traffic: f64,
    /// DDR traffic per chip, SMP/1 with the 2 MB fairness L3.
    pub smp_traffic: f64,
    /// Job cycles, VNM.
    pub vnm_cycles: u64,
    /// Job cycles, SMP/1.
    pub smp_cycles: u64,
    /// Achieved MFLOPS per chip, VNM.
    pub vnm_mflops: f64,
    /// Achieved MFLOPS per chip, SMP/1.
    pub smp_mflops: f64,
}

/// Run the §VIII comparison for every kernel: the same ranks packed
/// 4-per-chip (VNM) versus 1-per-chip (SMP/1, L3 limited to 2 MB per the
/// paper's fairness boot option).
pub fn mode_comparison(scale: Scale) -> Vec<ModeRow> {
    let mut rows = Vec::new();
    for kernel in Kernel::ALL {
        let vnm = RunConfig::new(kernel, scale.class(), scale.ranks());
        let mut smp = vnm.clone();
        smp.mode = OpMode::Smp1;
        smp.machine = smp.machine.with_l3_bytes(2 << 20);

        let vnm_mem = measure_memory(&vnm);
        let smp_mem = measure_memory(&smp);
        let vnm_core = measure_cores(&vnm);
        let smp_core = measure_cores(&smp);
        rows.push(ModeRow {
            kernel,
            vnm_traffic: ddr_traffic_bytes_per_node(&vnm_mem.frame),
            smp_traffic: ddr_traffic_bytes_per_node(&smp_mem.frame),
            vnm_cycles: vnm_mem.job_cycles,
            smp_cycles: smp_mem.job_cycles,
            vnm_mflops: mflops_per_chip(&vnm_core.frame, 4),
            smp_mflops: mflops_per_chip(&smp_core.frame, 1),
        });
    }
    rows
}

/// Fig. 12: per-chip DDR-traffic ratio, VNM ÷ SMP/1.
pub fn fig12(rows: &[ModeRow]) -> Csv {
    let mut csv = Csv::new(["kernel", "vnm_bytes_per_chip", "smp_bytes_per_chip", "ratio"]);
    let mut sum = 0.0;
    for r in rows {
        let ratio = r.vnm_traffic / r.smp_traffic.max(1.0);
        sum += ratio;
        csv.row([
            r.kernel.name().to_string(),
            format!("{:.0}", r.vnm_traffic),
            format!("{:.0}", r.smp_traffic),
            format!("{ratio:.3}"),
        ]);
    }
    csv.row([
        "MEAN".into(),
        String::new(),
        String::new(),
        format!("{:.3}", sum / rows.len() as f64),
    ]);
    csv
}

/// Fig. 13: execution-time increase per node, VNM vs SMP/1 (percent).
pub fn fig13(rows: &[ModeRow]) -> Csv {
    let mut csv = Csv::new(["kernel", "vnm_cycles", "smp_cycles", "increase_percent"]);
    let mut sum = 0.0;
    for r in rows {
        let inc = (r.vnm_cycles as f64 / r.smp_cycles as f64 - 1.0) * 100.0;
        sum += inc;
        csv.row([
            r.kernel.name().to_string(),
            r.vnm_cycles.to_string(),
            r.smp_cycles.to_string(),
            format!("{inc:.2}"),
        ]);
    }
    csv.row([
        "MEAN".into(),
        String::new(),
        String::new(),
        format!("{:.2}", sum / rows.len() as f64),
    ]);
    csv
}

/// Fig. 14: achieved MFLOPS per chip, VNM vs SMP/1.
pub fn fig14(rows: &[ModeRow]) -> Csv {
    let mut csv = Csv::new(["kernel", "vnm_mflops_per_chip", "smp_mflops_per_chip", "ratio"]);
    let mut sum = 0.0;
    for r in rows {
        let ratio = r.vnm_mflops / r.smp_mflops.max(1e-9);
        sum += ratio;
        csv.row([
            r.kernel.name().to_string(),
            format!("{:.1}", r.vnm_mflops),
            format!("{:.1}", r.smp_mflops),
            format!("{ratio:.3}"),
        ]);
    }
    csv.row([
        "MEAN".into(),
        String::new(),
        String::new(),
        format!("{:.3}", sum / rows.len() as f64),
    ]);
    csv
}

/// Extension (§IX future work): sweep the L2 prefetch depth and observe
/// execution time and DDR traffic for the streaming kernels.
pub fn fig_ext_prefetch(scale: Scale) -> Csv {
    let mut csv = Csv::new(["kernel", "prefetch_depth", "cycles", "ddr_traffic_bytes_per_node"]);
    for kernel in [Kernel::Mg, Kernel::Cg] {
        for depth in [0usize, 2, 8] {
            let mut cfg = RunConfig::new(kernel, scale.class(), scale.ranks());
            cfg.machine = cfg.machine.with_l2_prefetch_depth(depth);
            let m = measure_memory(&cfg);
            csv.row([
                kernel.name().to_string(),
                depth.to_string(),
                m.job_cycles.to_string(),
                format!("{:.0}", ddr_traffic_bytes_per_node(&m.frame)),
            ]);
        }
    }
    csv
}

/// Extension: all four operating modes of Fig. 3 running the same MPI
/// job (threads beyond one per process idle, as for any MPI-only code).
pub fn fig_ext_modes(scale: Scale) -> Csv {
    let mut csv = Csv::new(["kernel", "mode", "nodes", "cycles", "mflops_per_chip"]);
    for kernel in [Kernel::Cg, Kernel::Mg] {
        for mode in OpMode::ALL {
            let mut cfg = RunConfig::new(kernel, scale.class(), scale.ranks() / 2);
            cfg.mode = mode;
            let m = measure_cores(&cfg);
            let spec_nodes = cfg.ranks.div_ceil(mode.processes_per_node());
            csv.row([
                kernel.name().to_string(),
                mode.label().to_string(),
                spec_nodes.to_string(),
                m.job_cycles.to_string(),
                format!("{:.1}", mflops_per_chip(&m.frame, mode.processes_per_node())),
            ]);
        }
    }
    csv
}

/// Extension: the §IV even/odd-node trick — 512 events in one run versus
/// two fixed-mode runs.
pub fn fig_ext_512events(scale: Scale) -> Csv {
    let kernel = Kernel::Cg;
    let cfg = RunConfig::new(kernel, scale.class(), scale.ranks());
    // One run, even/odd policy.
    let eo = measure_cores(&cfg);
    let eo_events = eo.frame.all_stats().len();
    // Two runs, fixed policies.
    let m0 = crate::measure(&cfg, CounterPolicy::Fixed(CounterMode::Mode0));
    let m1 = crate::measure(&cfg, CounterPolicy::Fixed(CounterMode::Mode1));
    let fixed_events = m0.frame.all_stats().len() + m1.frame.all_stats().len();
    let mut csv = Csv::new(["strategy", "runs", "events_observed"]);
    csv.row(["even/odd nodes (the paper's)".into(), "1".into(), eo_events.to_string()]);
    csv.row(["two fixed-mode runs".into(), "2".into(), fixed_events.to_string()]);
    csv
}

/// Extension (robustness): sweep fault-injection rates on an MG run and
/// watch collection coverage and the degraded-mode DDR-traffic metric
/// drift against the fault-free baseline. Every row uses the same seed,
/// so the sweep is reproducible bit-for-bit.
pub fn fig_ext_faults(scale: Scale) -> Csv {
    use bgp_core::collect::{collect_dumps, RetryPolicy};
    use bgp_core::{run_instrumented, WHOLE_PROGRAM_SET};
    use bgp_faults::{FaultPlan, FaultSpec};
    use bgp_postproc::{AggregateOptions, DegradedFrame};
    use std::sync::Arc;

    let kernel = Kernel::Mg;
    let class = scale.class();
    let ranks = kernel.clamp_ranks(scale.ranks(), class);
    let mut csv = Csv::new([
        "node_loss_rate",
        "nodes",
        "nodes_delivered",
        "collection_coverage",
        "frame_coverage",
        "retry_backoff_cycles",
        "ddr_traffic_bytes_per_node",
        "deviation_pct_vs_clean",
        "sanity_flags",
    ]);
    let mut clean_metric: Option<f64> = None;
    for loss in [0.0, 0.05, 0.10, 0.20] {
        // Dump corruption, counter damage, and collection timeouts all
        // scale with the node-loss level; the first row is fault-free.
        let fspec = if loss == 0.0 {
            FaultSpec::none()
        } else {
            FaultSpec {
                node_loss_rate: loss,
                straggler_rate: loss,
                straggler_penalty_cycles: 2_000,
                collection_timeout_rate: 0.15,
                counter_bitflip_rate: loss / 2.0,
                counter_saturate_rate: loss / 4.0,
                dump_truncate_rate: loss / 4.0,
                dump_byteflip_rate: loss / 4.0,
                dump_missing_rate: loss / 8.0,
                ..FaultSpec::none()
            }
        };
        let mut spec = bgp_mpi::JobSpec::new(ranks, OpMode::VirtualNode);
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode2);
        let nodes = spec.nodes();
        let plan = Arc::new(FaultPlan::new(fspec, 0xFA17_5EED, nodes));
        spec.faults = Some(Arc::clone(&plan));
        let machine = bgp_mpi::Machine::new(spec);
        let (_, lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
        let coll = collect_dumps(&lib, &plan, &RetryPolicy::default());
        let frame = DegradedFrame::from_dumps(
            &coll.dumps,
            WHOLE_PROGRAM_SET,
            AggregateOptions::fixed(CounterMode::Mode2, nodes),
        );
        let metric = frame
            .reliable_frame()
            .map_or(f64::NAN, |f| ddr_traffic_bytes_per_node(&f));
        let clean = *clean_metric.get_or_insert(metric);
        let deviation =
            if clean > 0.0 { (metric - clean) / clean * 100.0 } else { 0.0 };
        csv.row([
            format!("{loss:.2}"),
            nodes.to_string(),
            coll.dumps.len().to_string(),
            format!("{:.3}", coll.coverage()),
            format!("{:.3}", frame.coverage()),
            coll.total_backoff_cycles().to_string(),
            format!("{metric:.0}"),
            format!("{deviation:.2}"),
            frame.sanity().len().to_string(),
        ]);
    }
    csv
}

/// One row of the parallel-engine thread sweep (feeds
/// [`fig_ext_scaling`] and `BENCH_parallel.json`).
pub struct ScalingSample {
    /// Simulation threads requested (`JobSpec::sim_threads`).
    pub threads: usize,
    /// Host wall-clock milliseconds for `Machine::run`.
    pub wall_ms: f64,
    /// Simulated job cycles (must not vary with `threads`).
    pub job_cycles: u64,
    /// Encoded dumps byte-identical to the serial run.
    pub dumps_identical: bool,
}

/// Run the sweep behind Fig. ext-scaling: one MG job per thread count,
/// timed on the host, with every run's per-node dumps compared
/// byte-for-byte against the serial engine's.
pub fn scaling_sweep(scale: Scale) -> Vec<ScalingSample> {
    use bgp_core::run_instrumented;
    use std::time::Instant;

    let kernel = Kernel::Mg;
    let class = scale.class();
    // SMP/1: one rank per node, so Default scale is the issue's
    // 16-node MG and every frontier rank is a parallelism opportunity.
    let ranks = kernel.clamp_ranks(scale.ranks(), class);
    let mut serial: Option<(Vec<Vec<u8>>, u64)> = None;
    let mut samples = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut spec = bgp_mpi::JobSpec::new(ranks, OpMode::Smp1);
        spec.sim_threads = Some(threads);
        let machine = bgp_mpi::Machine::new(spec);
        let t0 = Instant::now();
        let (_, lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let dumps: Vec<Vec<u8>> = (0..machine.num_nodes())
            .map(|n| lib.encoded_dump(n).expect("node finalized"))
            .collect();
        let job_cycles = machine.job_cycles();
        let (base_dumps, base_cycles) = serial.get_or_insert((dumps.clone(), job_cycles));
        samples.push(ScalingSample {
            threads,
            wall_ms,
            job_cycles,
            dumps_identical: dumps == *base_dumps && job_cycles == *base_cycles,
        });
    }
    samples
}

/// Extension (parallel engine): wall-clock scaling of the phase-based
/// deterministic scheduler on an MG job, threads ∈ {1,2,4,8}, with a
/// byte-identity column proving results never depend on thread count.
pub fn fig_ext_scaling(scale: Scale) -> Csv {
    let samples = scaling_sweep(scale);
    let base_ms = samples[0].wall_ms;
    let mut csv = Csv::new([
        "sim_threads",
        "wall_ms",
        "speedup_vs_serial",
        "job_cycles",
        "dumps_identical_to_serial",
    ]);
    for s in &samples {
        csv.row([
            s.threads.to_string(),
            format!("{:.1}", s.wall_ms),
            format!("{:.2}", base_ms / s.wall_ms),
            s.job_cycles.to_string(),
            s.dumps_identical.to_string(),
        ]);
    }
    csv
}

/// One row of the tracing-overhead comparison (feeds
/// [`fig_ext_trace_overhead`] and `BENCH_trace.json`).
pub struct TraceOverheadSample {
    /// Configuration label: `off` (no `TraceConfig` on the spec),
    /// `disabled` (config installed, `enabled: false`), or `enabled`.
    pub config: &'static str,
    /// Best-of-reps host wall-clock milliseconds for the job.
    pub wall_ms: f64,
    /// Slowdown relative to the `off` baseline, percent, clamped at 0
    /// (host timing noise can make an instrumented run *faster*).
    pub overhead_pct: f64,
    /// Trace events retained across every ring buffer after the job.
    pub events: u64,
    /// Events evicted from full ring buffers.
    pub dropped: u64,
}

/// Run the tracing-overhead comparison behind Fig. ext-trace-overhead:
/// the same MG job with tracing absent, installed-but-disabled, and
/// fully enabled (counter sampling every 16 windows on slots 0–2).
/// Wall-clock is min-of-reps to cut host noise; the `disabled` row is
/// the one the <1 % acceptance gate watches, because that is the cost
/// every untraced run pays for the instrumentation hooks.
pub fn trace_overhead_sweep(scale: Scale) -> Vec<TraceOverheadSample> {
    use bgp_core::run_instrumented;
    use bgp_trace::TraceConfig;
    use std::time::Instant;

    let kernel = Kernel::Mg;
    let class = scale.class();
    let ranks = kernel.clamp_ranks(scale.ranks(), class);
    let reps = match scale {
        Scale::Quick => 5,
        Scale::Default => 3,
        Scale::Paper => 1,
    };
    let configs: [(&'static str, Option<TraceConfig>); 3] = [
        ("off", None),
        ("disabled", Some(TraceConfig { enabled: false, ..TraceConfig::default() })),
        (
            "enabled",
            Some(TraceConfig { sample_slots: vec![0, 1, 2], ..TraceConfig::default() }),
        ),
    ];
    let run_once = |trace: &Option<TraceConfig>| {
        let mut spec = bgp_mpi::JobSpec::new(ranks, OpMode::VirtualNode);
        spec.trace = trace.clone();
        let machine = bgp_mpi::Machine::new(spec);
        let t0 = Instant::now();
        let (_, _lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let counts =
            machine.job_trace().map_or((0, 0), |t| (t.total_events() as u64, t.total_dropped()));
        (wall_ms, counts)
    };
    // One untimed warm-up job so the first timed rep does not pay for
    // cold caches / allocator growth, then the reps interleave the
    // configurations round-robin so host drift hits all three equally.
    run_once(&configs[0].1);
    let mut best = [f64::INFINITY; 3];
    let mut counts = [(0u64, 0u64); 3];
    for _ in 0..reps {
        for (i, (_, trace)) in configs.iter().enumerate() {
            let (wall_ms, c) = run_once(trace);
            best[i] = best[i].min(wall_ms);
            counts[i] = c;
        }
    }
    let base_ms = best[0];
    configs
        .iter()
        .enumerate()
        .map(|(i, (label, _))| TraceOverheadSample {
            config: label,
            wall_ms: best[i],
            overhead_pct: ((best[i] - base_ms) / base_ms * 100.0).max(0.0),
            events: counts[i].0,
            dropped: counts[i].1,
        })
        .collect()
}

/// One measured configuration of the checkpoint-overhead sweep.
#[derive(Debug)]
pub struct SnapshotOverheadSample {
    /// Configuration label (`off` / `every64`).
    pub config: &'static str,
    /// Best-of-reps wall time.
    pub wall_ms: f64,
    /// Slowdown over the `off` baseline, percent (clamped at 0).
    pub overhead_pct: f64,
    /// Snapshot files written by one run.
    pub snapshots: u64,
    /// Mean snapshot file size in bytes.
    pub mean_bytes: u64,
    /// Wall time one run spent serializing and writing snapshots.
    pub save_ms: f64,
}

/// Result of [`snapshot_overhead_sweep`]: the off/on comparison plus
/// the measured cost of an actual resume (load newest snapshot, replay
/// to its phase, go live, finish the job).
#[derive(Debug)]
pub struct SnapshotSweep {
    /// Per-configuration measurements (`off` first).
    pub samples: Vec<SnapshotOverheadSample>,
    /// Wall time of the resumed run.
    pub resume_ms: f64,
    /// Phase the resumed run continued from.
    pub resume_phase: u64,
}

/// Checkpoint overhead on an MG job (feeds `fig_ext_snapshot` and
/// `BENCH_snapshot.json`). The acceptance criterion gated in
/// `scripts/ci.sh` is that snapshots every 64 phases cost < 5 % wall
/// over no checkpointing; the sweep also measures one real resume so
/// the restore path has a recorded cost.
pub fn snapshot_overhead_sweep(scale: Scale) -> SnapshotSweep {
    use bgp_core::run_instrumented;
    use bgp_mpi::machine::CheckpointConfig;
    use bgp_snapshot::SnapshotStore;
    use std::time::Instant;

    let kernel = Kernel::Mg;
    let class = scale.class();
    let ranks = kernel.clamp_ranks(scale.ranks(), class);
    let reps = match scale {
        Scale::Quick => 5,
        Scale::Default => 3,
        Scale::Paper => 1,
    };
    let dir = std::env::temp_dir()
        .join(format!("bgp-snapbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec_for = |checkpointed: bool| {
        let mut spec = bgp_mpi::JobSpec::new(ranks, OpMode::VirtualNode);
        if checkpointed {
            spec.checkpoint = Some(CheckpointConfig { every: 64, dir: dir.clone(), retain: 2 });
        }
        spec
    };
    let run_once = |checkpointed: bool| {
        let machine = bgp_mpi::Machine::new(spec_for(checkpointed));
        let t0 = Instant::now();
        let (results, _lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(results.iter().all(|r| r.verified), "MG verification failed");
        (wall_ms, machine.snapshot_stats())
    };

    // Warm-up, then round-robin reps so host drift hits both configs
    // equally (same discipline as the trace-overhead sweep).
    run_once(false);
    let mut best = [f64::INFINITY; 2];
    let mut stats = bgp_mpi::machine::SnapshotStats::default();
    for _ in 0..reps {
        best[0] = best[0].min(run_once(false).0);
        let (wall_ms, s) = run_once(true);
        best[1] = best[1].min(wall_ms);
        stats = s;
    }

    // One real resume from the newest snapshot the sweep left behind.
    let spec = spec_for(true);
    let outcome = SnapshotStore::new(&dir, 2)
        .load_latest_valid(spec.fingerprint())
        .expect("snapshot store readable");
    let (snap, _) = outcome.snapshot.expect("sweep wrote snapshots");
    let resume_phase = snap.phase;
    let machine = bgp_mpi::Machine::new(spec);
    machine.resume(snap).expect("snapshot accepted");
    let t0 = Instant::now();
    let (results, _lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
    let resume_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(results.iter().all(|r| r.verified), "resumed MG verification failed");
    let _ = std::fs::remove_dir_all(&dir);

    let base_ms = best[0];
    let mean_bytes = stats.bytes / stats.written.max(1);
    SnapshotSweep {
        samples: vec![
            SnapshotOverheadSample {
                config: "off",
                wall_ms: best[0],
                overhead_pct: 0.0,
                snapshots: 0,
                mean_bytes: 0,
                save_ms: 0.0,
            },
            SnapshotOverheadSample {
                config: "every64",
                wall_ms: best[1],
                overhead_pct: ((best[1] - base_ms) / base_ms * 100.0).max(0.0),
                snapshots: stats.written,
                mean_bytes,
                save_ms: stats.save_nanos as f64 / 1e6,
            },
        ],
        resume_ms,
        resume_phase,
    }
}

/// Memory-engine throughput comparison (feeds [`fig_ext_memthroughput`]
/// and `BENCH_mem.json`): the same access stream driven through the
/// per-op [`bgp_node::Node::mem_op`] path — icache probe, hierarchy
/// walk, retirement and counter sync per access — and through
/// [`bgp_node::Node::mem_ops`] in quantum-sized slices, plus the
/// end-to-end MG job that rides the batched engine.
pub struct MemThroughputReport {
    /// Simulated accesses per host second, per-op `mem_op` loop.
    pub scalar_maps: f64,
    /// Simulated accesses per host second, `mem_ops` slices.
    pub batched_maps: f64,
    /// `batched_maps / scalar_maps`.
    pub speedup: f64,
    /// Best-of-reps wall time for the end-to-end MG job below.
    pub mg_wall_ms: f64,
    /// MG problem class at this scale.
    pub mg_class: Class,
    /// MG rank count at this scale.
    pub mg_ranks: usize,
}

/// Run the memory-engine throughput comparison. The microbench stream
/// mirrors the NAS mix — three unit-stride double sweeps for every
/// random-footprint burst — so the same-line run memoization is
/// exercised at its real duty cycle, not a best case. Both engines see
/// identical streams on fresh [`bgp_mem::MemorySystem`]s; wall time is
/// min-of-reps after one warm-up, like the tracing sweep.
pub fn mem_throughput_sweep(scale: Scale) -> MemThroughputReport {
    use bgp_arch::events::CounterMode as CMode;
    use bgp_arch::{MachineConfig, NodeId};
    use bgp_core::run_instrumented;
    use bgp_node::{MemOp, MemWidth, Node};
    use std::time::Instant;

    let (n_accesses, reps) = match scale {
        Scale::Quick => (1usize << 20, 5),
        Scale::Default => (1 << 22, 3),
        Scale::Paper => (1 << 22, 1),
    };
    // The kernels' dominant pattern: a 5-point stencil sweeping three
    // fields (u read with spatial reuse, rhs streamed, res written) —
    // mostly L1 hits with unit-stride runs, as in the MG/LU/SP inner
    // loops — broken up by scattered accesses (index vectors,
    // histograms) at roughly their NAS duty cycle.
    let mut stream = Vec::with_capacity(n_accesses + 8);
    let mut x = 0x1234_5678_9ABC_DEF0u64;
    const NX: u64 = 512;
    const U: u64 = 0;
    const RHS: u64 = 16 << 20;
    const RES: u64 = 32 << 20;
    let mut idx = NX + 1;
    while stream.len() < n_accesses {
        for _ in 0..16 {
            let p = (idx % (1 << 20)) * 8;
            for off in [p - NX * 8, p - 8, p, p + 8, p + NX * 8] {
                stream.push(MemOp { vaddr: U + off, width: MemWidth::Double, write: false });
            }
            stream.push(MemOp { vaddr: RHS + p, width: MemWidth::Double, write: false });
            stream.push(MemOp { vaddr: RES + p, width: MemWidth::Double, write: true });
            idx += 1;
        }
        for _ in 0..14 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            stream.push(MemOp {
                vaddr: ((x >> 9) % (8 << 20)) & !7,
                width: MemWidth::Double,
                write: x & 7 == 0,
            });
        }
    }
    stream.truncate(n_accesses);

    let fresh_node = || {
        let mut n =
            Node::new(NodeId(0), &MachineConfig::default(), OpMode::VirtualNode, CMode::Mode2);
        n.upc_mut().set_enabled(true);
        n
    };
    let scalar_once = || {
        let mut node = fresh_node();
        let t0 = Instant::now();
        for op in &stream {
            node.mem_op(0, 0, op.vaddr, op.width, op.write);
        }
        std::hint::black_box(node.core(0).cycles());
        t0.elapsed().as_secs_f64()
    };
    let batched_once = || {
        let mut node = fresh_node();
        let t0 = Instant::now();
        for c in stream.chunks(2048) {
            node.mem_ops(0, 0, c);
        }
        std::hint::black_box(node.core(0).cycles());
        t0.elapsed().as_secs_f64()
    };
    scalar_once();
    batched_once();
    let (mut scalar_s, mut batched_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        scalar_s = scalar_s.min(scalar_once());
        batched_s = batched_s.min(batched_once());
    }
    let scalar_maps = n_accesses as f64 / scalar_s / 1e6;
    let batched_maps = n_accesses as f64 / batched_s / 1e6;

    // End-to-end: the acceptance job (MG class A on 16 VNM ranks at
    // Default scale) on the batched engine.
    let kernel = Kernel::Mg;
    let class = scale.class();
    let ranks = kernel.clamp_ranks(scale.ranks(), class);
    let mg_once = || {
        let spec = bgp_mpi::JobSpec::new(ranks, OpMode::VirtualNode);
        let machine = bgp_mpi::Machine::new(spec);
        let t0 = Instant::now();
        let (out, _lib) = run_instrumented(&machine, move |ctx| kernel.exec(class, ctx));
        assert!(out.iter().all(|r| r.verified), "MG failed verification");
        t0.elapsed().as_secs_f64() * 1e3
    };
    let mg_reps = match scale {
        Scale::Quick => 3,
        _ => 2,
    };
    let mut mg_wall_ms = f64::INFINITY;
    for _ in 0..mg_reps {
        mg_wall_ms = mg_wall_ms.min(mg_once());
    }

    MemThroughputReport {
        scalar_maps,
        batched_maps,
        speedup: batched_maps / scalar_maps,
        mg_wall_ms,
        mg_class: class,
        mg_ranks: ranks,
    }
}

/// Extension (performance): simulator throughput of the batched memory
/// engine vs. the per-op scalar walk, plus the end-to-end MG wall time.
pub fn fig_ext_memthroughput(scale: Scale) -> Csv {
    let r = mem_throughput_sweep(scale);
    let mut csv = Csv::new(["measure", "value"]);
    csv.row(["scalar_maccesses_per_s".into(), format!("{:.1}", r.scalar_maps)]);
    csv.row(["batched_maccesses_per_s".into(), format!("{:.1}", r.batched_maps)]);
    csv.row(["batch_speedup".into(), format!("{:.2}", r.speedup)]);
    csv.row([
        format!("mg_{:?}_{}_wall_ms", r.mg_class, r.mg_ranks),
        format!("{:.0}", r.mg_wall_ms),
    ]);
    csv
}

/// One point of the full-machine scaling sweep (feeds
/// [`fig_ext_fullmachine`] and `BENCH_fullmachine.json`).
pub struct FullMachineSample {
    /// Compute nodes simulated.
    pub nodes: usize,
    /// MPI ranks (4 per node in VNM).
    pub ranks: usize,
    /// Host wall-clock milliseconds for build + run.
    pub wall_ms: f64,
    /// Process high-water RSS (`VmHWM`) after the run, bytes.
    pub peak_rss_bytes: u64,
    /// `peak_rss_bytes / ranks` — the per-rank memory gate.
    pub rss_per_rank_bytes: f64,
    /// Simulated rank events (FP retirements + collective
    /// participations) per host wall-second.
    pub events_per_sec: f64,
    /// Simulated job cycles.
    pub job_cycles: u64,
    /// The global allreduce produced the closed-form rank sum.
    pub verified: bool,
}

/// FP charges per rank in the full-machine probe kernel.
const FULLMACHINE_FP: u64 = 32;
/// Collective participations per rank (one allreduce, one barrier).
const FULLMACHINE_COLLS: u64 = 2;

/// Read the process peak resident set (`VmHWM`) in bytes; 0 where
/// `/proc/self/status` is unavailable (non-Linux hosts).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The probe rank body: pure FP plus collectives, **no array traffic**,
/// so every node's caches stay in their cold (unmaterialized) state and
/// the sweep measures the runtime's true per-rank overhead.
async fn fullmachine_rank(mut ctx: bgp_mpi::RankCtx) -> bool {
    for _ in 0..FULLMACHINE_FP {
        ctx.fp1(SemOp::MulAdd);
    }
    let n = ctx.size() as f64;
    let sum = ctx.allreduce_sum_f64(&[ctx.rank() as f64]).await;
    ctx.barrier().await;
    sum[0] == n * (n - 1.0) / 2.0
}

/// Run the full-machine sweep: VNM jobs from 1k nodes up to the
/// 73,728-node / 294,912-rank Blue Gene/P full machine (72 racks), all
/// multiplexed over the fixed worker pool — never one OS thread per
/// rank. `--quick` stops at 4,096 nodes.
pub fn fullmachine_sweep(scale: Scale) -> Vec<FullMachineSample> {
    use std::time::Instant;
    let node_counts: &[usize] = match scale {
        Scale::Quick => &[1024, 4096],
        _ => &[1024, 4096, 16384, 73_728],
    };
    let mut samples = Vec::new();
    for &nodes in node_counts {
        let ranks = nodes * OpMode::VirtualNode.processes_per_node();
        let mut spec = bgp_mpi::JobSpec::new(ranks, OpMode::VirtualNode);
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
        let t0 = Instant::now();
        let machine = bgp_mpi::Machine::new(spec);
        let out = machine.run(fullmachine_rank);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let peak = peak_rss_bytes();
        let events = ranks as u64 * (FULLMACHINE_FP + FULLMACHINE_COLLS);
        samples.push(FullMachineSample {
            nodes,
            ranks,
            wall_ms,
            peak_rss_bytes: peak,
            rss_per_rank_bytes: peak as f64 / ranks as f64,
            events_per_sec: events as f64 / (wall_ms / 1e3),
            job_cycles: machine.job_cycles(),
            verified: out.iter().all(|&ok| ok),
        });
    }
    samples
}

/// Extension (scale): rank-count scaling of the multiplexed runtime up
/// to the full 73,728-node machine, with the per-rank RSS column that
/// gates the ≤ 10 KB idle-rank overhead budget.
pub fn fig_ext_fullmachine(scale: Scale) -> Csv {
    let samples = fullmachine_sweep(scale);
    let mut csv = Csv::new([
        "nodes",
        "ranks",
        "wall_ms",
        "peak_rss_mb",
        "rss_per_rank_kb",
        "events_per_sec",
        "job_cycles",
        "verified",
    ]);
    for s in &samples {
        csv.row([
            s.nodes.to_string(),
            s.ranks.to_string(),
            format!("{:.0}", s.wall_ms),
            format!("{:.1}", s.peak_rss_bytes as f64 / 1e6),
            format!("{:.2}", s.rss_per_rank_bytes / 1024.0),
            format!("{:.0}", s.events_per_sec),
            s.job_cycles.to_string(),
            s.verified.to_string(),
        ]);
    }
    csv
}

/// Extension (tracing): cost of the deterministic trace layer on an MG
/// job — off vs. installed-but-disabled vs. fully enabled.
pub fn fig_ext_trace_overhead(scale: Scale) -> Csv {
    let samples = trace_overhead_sweep(scale);
    let mut csv =
        Csv::new(["trace_config", "wall_ms", "overhead_pct", "events_recorded", "events_dropped"]);
    for s in &samples {
        csv.row([
            s.config.to_string(),
            format!("{:.1}", s.wall_ms),
            format!("{:.2}", s.overhead_pct),
            s.events.to_string(),
            s.dropped.to_string(),
        ]);
    }
    csv
}
