//! Content-addressed result store: deterministic runs as cache entries.
//!
//! The simulator is a pure function of its [`JobSpec`] fingerprint and
//! the fault seed — run the same job twice and every output byte is
//! identical. That turns a *completed* run into an infinitely cacheable
//! artifact: the counter service (`bgp-serve`) keys finished results by
//! [`CacheKey`]` = (spec fingerprint, seed)` and serves repeats without
//! touching the machine model. This module is the store behind that
//! cache: an in-memory map fronting an optional on-disk directory of
//! checksummed blob files with the same fail-closed discipline as the
//! snapshot container (atomic temp+rename writes, corrupt files treated
//! as misses, never partial reads).
//!
//! Entries are **write-once**: the first `put` for a key wins and every
//! later `put` returns the canonical first bytes. Determinism makes a
//! differing second write a *bug*, and the store surfaces it loudly
//! (see [`BlobStore::put`]) instead of silently serving two truths.
//!
//! [`JobSpec`]: ../bgp_mpi/machine/struct.JobSpec.html

use bgp_arch::error::Result;
use bgp_arch::sync::Mutex;
use bgp_arch::wire::{self, Reader};
use bgp_arch::BgpError;
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Blob file magic: "BGPB".
pub const BLOB_MAGIC: [u8; 4] = *b"BGPB";
/// Blob envelope version.
pub const BLOB_VERSION: u32 = 1;
/// File extension of blob entries.
pub const BLOB_EXTENSION: &str = "bgpb";

/// Largest blob file the loader will read (256 MiB) — a corrupted
/// length field must not drive a giant allocation.
const MAX_BLOB_BYTES: u64 = 256 << 20;

/// Identity of a completed deterministic run: the job-spec fingerprint
/// (see `JobSpec::fingerprint`) plus the fault-plan seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Canonical spec fingerprint — covers every outcome-relevant spec
    /// field, excludes cosmetic ones (checkpoint placement,
    /// `sim_threads`, `cycle_budget`).
    pub spec: u64,
    /// Fault-plan seed (0 = no faults).
    pub seed: u64,
}

impl CacheKey {
    /// The key as 32 lowercase hex digits (`spec` then `seed`), the
    /// form the service protocol and file names use.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.spec, self.seed)
    }

    /// Parse the [`CacheKey::hex`] form back.
    pub fn parse_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let spec = u64::from_str_radix(&s[..16], 16).ok()?;
        let seed = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey { spec, seed })
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(spec {:#018x}, seed {})", self.spec, self.seed)
    }
}

/// Encode one blob with its checksummed envelope.
fn encode_blob(key: CacheKey, bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(48 + bytes.len());
    out.extend_from_slice(&BLOB_MAGIC);
    wire::put_u32(&mut out, BLOB_VERSION);
    wire::put_u64(&mut out, key.spec);
    wire::put_u64(&mut out, key.seed);
    wire::put_bytes(&mut out, bytes);
    let total = wire::checksum(&out);
    wire::put_u64(&mut out, total);
    out
}

/// Decode a blob file, verifying envelope, key and checksum.
fn decode_blob(key: CacheKey, bytes: &[u8]) -> Result<Vec<u8>> {
    if bytes.len() < BLOB_MAGIC.len() + 8 {
        return Err(BgpError::corrupt("blob shorter than its envelope"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let actual = wire::checksum(body);
    if stored != actual {
        return Err(BgpError::corrupt(format!(
            "blob checksum mismatch: stored {stored:#x}, computed {actual:#x}"
        )));
    }
    let mut r = Reader::new(body);
    let raw_magic = r.take(4, "blob magic")?;
    if raw_magic != BLOB_MAGIC {
        return Err(BgpError::corrupt(format!("bad blob magic {raw_magic:02x?}")));
    }
    let version = r.u32("blob version")?;
    if version != BLOB_VERSION {
        return Err(BgpError::corrupt(format!(
            "unsupported blob version {version} (expected {BLOB_VERSION})"
        )));
    }
    let spec = r.u64("blob spec hash")?;
    let seed = r.u64("blob seed")?;
    if (CacheKey { spec, seed }) != key {
        return Err(BgpError::corrupt(format!(
            "blob key (spec {spec:#018x}, seed {seed}) does not match its file name {key}"
        )));
    }
    let payload = r.bytes("blob payload")?.to_vec();
    r.expect_end("blob envelope")?;
    Ok(payload)
}

/// A content-addressed blob store: in-memory map, optionally backed by
/// a directory so cached results survive a daemon restart.
#[derive(Debug, Default)]
pub struct BlobStore {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<CacheKey, Arc<Vec<u8>>>>,
}

impl BlobStore {
    /// A purely in-memory store (dies with the process).
    pub fn in_memory() -> BlobStore {
        BlobStore { dir: None, mem: Mutex::new(HashMap::new()) }
    }

    /// A store backed by `dir`; entries written there are found again
    /// after a restart. The directory is created on first `put`.
    pub fn persistent(dir: impl Into<PathBuf>) -> BlobStore {
        BlobStore { dir: Some(dir.into()), mem: Mutex::new(HashMap::new()) }
    }

    /// The backing directory, if this store is persistent.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// Number of entries currently resident in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().len()
    }

    /// Whether no entry is resident in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn path_of(&self, key: CacheKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{}.{BLOB_EXTENSION}", key.hex())))
    }

    /// Look `key` up: memory first, then (for persistent stores) disk.
    /// A disk hit is verified against its envelope checksum and pulled
    /// into memory; a corrupt or foreign file is a miss, never an error.
    pub fn get(&self, key: CacheKey) -> Option<Arc<Vec<u8>>> {
        if let Some(hit) = self.mem.lock().get(&key) {
            return Some(Arc::clone(hit));
        }
        let path = self.path_of(key)?;
        let meta = fs::metadata(&path).ok()?;
        if meta.len() > MAX_BLOB_BYTES {
            return None;
        }
        let raw = fs::read(&path).ok()?;
        let payload = decode_blob(key, &raw).ok()?;
        let arc = Arc::new(payload);
        self.mem
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::clone(&arc));
        Some(arc)
    }

    /// Insert the result bytes for `key`, first write wins: if an entry
    /// already exists the **existing** bytes are returned (and kept),
    /// so every consumer observes one canonical payload per key. A
    /// racing second writer producing *different* bytes indicates a
    /// determinism bug; the divergence is reported on stderr but the
    /// canonical entry still wins.
    ///
    /// # Errors
    /// [`BgpError::Io`] when the persistent backing write fails (the
    /// in-memory entry is still installed — serving continues, only
    /// restart durability is lost).
    pub fn put(&self, key: CacheKey, bytes: Vec<u8>) -> Result<Arc<Vec<u8>>> {
        let arc = Arc::new(bytes);
        let canonical = {
            let mut mem = self.mem.lock();
            match mem.get(&key) {
                Some(existing) => {
                    if **existing != *arc {
                        eprintln!(
                            "blobstore: determinism violation: key {key} written twice \
                             with different bytes ({} vs {}); keeping the first",
                            existing.len(),
                            arc.len()
                        );
                    }
                    return Ok(Arc::clone(existing));
                }
                None => {
                    mem.insert(key, Arc::clone(&arc));
                    arc
                }
            }
        };
        if let Some(path) = self.path_of(key) {
            if !path.exists() {
                let dir = self.dir.as_ref().expect("persistent store has a dir");
                fs::create_dir_all(dir)?;
                let tmp = path.with_extension("tmp");
                {
                    let mut f = fs::File::create(&tmp)?;
                    f.write_all(&encode_blob(key, &canonical))?;
                }
                fs::rename(&tmp, &path)?;
            }
        }
        Ok(canonical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(spec: u64, seed: u64) -> CacheKey {
        CacheKey { spec, seed }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bgpb-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let k = key(0xdead_beef_0123_4567, 42);
        assert_eq!(k.hex().len(), 32);
        assert_eq!(CacheKey::parse_hex(&k.hex()), Some(k));
        assert_eq!(CacheKey::parse_hex("xyz"), None);
        assert_eq!(CacheKey::parse_hex(&"g".repeat(32)), None);
        assert_eq!(CacheKey::parse_hex(&k.hex()[..31]), None);
    }

    #[test]
    fn memory_store_put_get_and_first_write_wins() {
        let store = BlobStore::in_memory();
        let k = key(1, 0);
        assert!(store.get(k).is_none());
        let a = store.put(k, b"alpha".to_vec()).unwrap();
        assert_eq!(&**a, b"alpha");
        // Second write (even different — a simulated determinism bug)
        // returns the canonical first bytes.
        let b = store.put(k, b"beta".to_vec()).unwrap();
        assert_eq!(&**b, b"alpha");
        assert_eq!(&**store.get(k).unwrap(), b"alpha");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn persistent_store_survives_a_restart() {
        let dir = tempdir("persist");
        {
            let store = BlobStore::persistent(&dir);
            store.put(key(7, 3), b"result-bytes".to_vec()).unwrap();
        }
        let fresh = BlobStore::persistent(&dir);
        assert_eq!(fresh.len(), 0, "nothing resident before the first get");
        assert_eq!(&**fresh.get(key(7, 3)).unwrap(), b"result-bytes");
        assert_eq!(fresh.len(), 1, "disk hit pulled into memory");
        assert!(fresh.get(key(7, 4)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_are_misses_not_errors() {
        let dir = tempdir("corrupt");
        let store = BlobStore::persistent(&dir);
        let k = key(9, 9);
        store.put(k, b"payload".to_vec()).unwrap();
        let path = store.path_of(k).unwrap();
        let clean = fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x20;
            fs::write(&path, &bad).unwrap();
            let fresh = BlobStore::persistent(&dir);
            assert!(fresh.get(k).is_none(), "flip at byte {i} served");
        }
        for cut in 0..clean.len() {
            fs::write(&path, &clean[..cut]).unwrap();
            let fresh = BlobStore::persistent(&dir);
            assert!(fresh.get(k).is_none(), "truncation to {cut} served");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_key_under_the_right_name_is_rejected() {
        let dir = tempdir("foreign");
        let store = BlobStore::persistent(&dir);
        let right = key(1, 2);
        let wrong = key(3, 4);
        store.put(wrong, b"payload".to_vec()).unwrap();
        // A file renamed to another key's name must not serve.
        fs::rename(
            store.path_of(wrong).unwrap(),
            store.path_of(right).unwrap(),
        )
        .unwrap();
        let fresh = BlobStore::persistent(&dir);
        assert!(fresh.get(right).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
