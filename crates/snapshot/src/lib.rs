//! # bgp-snapshot — the checkpoint container format and snapshot store
//!
//! Long characterization campaigns (the paper's §VII multi-rack runs
//! took machine-days) must survive preemption and crashes. This crate
//! holds the *container* half of the simulator's checkpoint/restart:
//! a [`Snapshot`] is a versioned, checksummed bag of **named opaque
//! sections** — each subsystem (nodes, communicator, trace rings,
//! counter library) serializes itself with `bgp_arch::wire` and hands
//! the bytes here, so this crate depends on nothing but `bgp-arch` and
//! never learns subsystem internals.
//!
//! The on-disk discipline mirrors the dump-format-v2 rules:
//!
//! * **Fail closed.** Every section carries a position-weighted
//!   checksum and the whole file a second one; any mismatch, truncation
//!   or oversized length is [`BgpError::Corrupt`] with a byte offset —
//!   never a partial snapshot.
//! * **Atomic replacement.** [`SnapshotStore::save`] writes to a
//!   `.tmp` name and renames into place, so a kill mid-write leaves
//!   either the old set of snapshots or the new one, never a torn file.
//! * **Quarantine, don't delete.** [`SnapshotStore::load_latest_valid`]
//!   walks snapshots newest-first; an invalid file is renamed aside
//!   with a human-readable report and the walk falls back to the next
//!   older one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blob;

pub use blob::{BlobStore, CacheKey};

use bgp_arch::error::Result;
use bgp_arch::wire::{self, Reader};
use bgp_arch::BgpError;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic: "BGPS".
pub const MAGIC: [u8; 4] = *b"BGPS";
/// Container format version.
pub const VERSION: u32 = 1;
/// File extension of live snapshots.
pub const EXTENSION: &str = "bgps";

/// Largest snapshot file the loader will consider (1 GiB) — a
/// corrupted length field must not drive a giant allocation.
const MAX_FILE_BYTES: u64 = 1 << 30;

/// A versioned, checksummed set of named opaque state sections captured
/// at one phase boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Job-configuration fingerprint: a snapshot may only be restored
    /// into a job whose spec hashes to the same value.
    pub fingerprint: u64,
    /// Phase counter at the capture point.
    pub phase: u64,
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot for the job identified by `fingerprint`,
    /// captured at `phase`.
    pub fn new(fingerprint: u64, phase: u64) -> Snapshot {
        Snapshot { fingerprint, phase, sections: Vec::new() }
    }

    /// Append a named section. Names must be unique within a snapshot.
    ///
    /// # Panics
    /// Panics if `name` is already present (a capture-logic bug).
    pub fn add_section(&mut self, name: &str, bytes: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate snapshot section {name:?}"
        );
        self.sections.push((name.to_string(), bytes));
    }

    /// The payload of section `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, b)| b.as_slice())
    }

    /// The payload of section `name`, failing closed when absent.
    ///
    /// # Errors
    /// [`BgpError::Corrupt`] if the section is missing.
    pub fn section_required(&self, name: &str) -> Result<&[u8]> {
        self.section(name)
            .ok_or_else(|| BgpError::corrupt(format!("snapshot missing section {name:?}")))
    }

    /// Section names in capture order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Total payload bytes across all sections.
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|(_, b)| b.len()).sum()
    }

    /// Serialize to the on-disk container encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.payload_bytes());
        out.extend_from_slice(&MAGIC);
        wire::put_u32(&mut out, VERSION);
        wire::put_u64(&mut out, self.fingerprint);
        wire::put_u64(&mut out, self.phase);
        wire::put_u64(&mut out, self.sections.len() as u64);
        for (name, bytes) in &self.sections {
            wire::put_bytes(&mut out, name.as_bytes());
            wire::put_bytes(&mut out, bytes);
            wire::put_u64(&mut out, wire::checksum(bytes));
        }
        let total = wire::checksum(&out);
        wire::put_u64(&mut out, total);
        out
    }

    /// Decode a container previously produced by [`Snapshot::encode`].
    ///
    /// # Errors
    /// [`BgpError::Corrupt`] (with a byte offset) on bad magic, an
    /// unsupported version, truncation, or any checksum mismatch.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(BgpError::corrupt("snapshot shorter than its envelope"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored_total = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let actual_total = wire::checksum(body);
        if stored_total != actual_total {
            return Err(BgpError::Corrupt(
                bgp_arch::error::Context::new(format!(
                    "snapshot file checksum mismatch: stored {stored_total:#x}, computed {actual_total:#x}"
                ))
                .at_offset(body.len() as u64),
            ));
        }
        let mut r = Reader::new(body);
        let raw_magic = r.take(4, "snapshot magic")?;
        if raw_magic != MAGIC {
            return Err(BgpError::corrupt(format!("bad snapshot magic {raw_magic:02x?}")));
        }
        let version = r.u32("snapshot version")?;
        if version != VERSION {
            return Err(BgpError::corrupt(format!(
                "unsupported snapshot version {version} (expected {VERSION})"
            )));
        }
        let fingerprint = r.u64("snapshot fingerprint")?;
        let phase = r.u64("snapshot phase")?;
        let nsections = r.u64("snapshot section count")?;
        let mut sections = Vec::new();
        for _ in 0..nsections {
            let name = r.bytes("section name")?;
            let name = String::from_utf8(name.to_vec())
                .map_err(|_| BgpError::corrupt("section name is not UTF-8"))?;
            let payload = r.bytes("section payload")?.to_vec();
            let stored = r.u64("section checksum")?;
            let actual = wire::checksum(&payload);
            if stored != actual {
                return Err(BgpError::corrupt(format!(
                    "section {name:?} checksum mismatch: stored {stored:#x}, computed {actual:#x}"
                )));
            }
            if sections.iter().any(|(n, _): &(String, _)| *n == name) {
                return Err(BgpError::corrupt(format!("duplicate section {name:?}")));
            }
            sections.push((name, payload));
        }
        r.expect_end("snapshot container")?;
        Ok(Snapshot { fingerprint, phase, sections })
    }
}

/// A snapshot that `load_latest_valid` set aside as unusable.
#[derive(Debug)]
pub struct Quarantined {
    /// Where the bad file was moved to.
    pub path: PathBuf,
    /// Why it was rejected.
    pub reason: String,
}

/// Outcome of a latest-valid load: the newest usable snapshot (if any)
/// and every file quarantined along the way.
#[derive(Debug, Default)]
pub struct LoadOutcome {
    /// Newest valid snapshot and its path.
    pub snapshot: Option<(Snapshot, PathBuf)>,
    /// Files set aside as corrupt/mismatched, newest first.
    pub quarantined: Vec<Quarantined>,
}

/// A rotation-capped directory of snapshots for one job.
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    retain: usize,
}

impl SnapshotStore {
    /// A store rooted at `dir`, keeping at most `retain` snapshots
    /// (`retain` is clamped to ≥ 1: rotation must never delete the only
    /// recovery point).
    pub fn new(dir: impl Into<PathBuf>, retain: usize) -> SnapshotStore {
        SnapshotStore { dir: dir.into(), retain: retain.max(1) }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(phase: u64) -> String {
        format!("snap-{phase:020}.{EXTENSION}")
    }

    /// Write `snap` atomically (`.tmp` + rename) and prune the oldest
    /// snapshots beyond the retention cap. Returns the final path.
    ///
    /// # Errors
    /// [`BgpError::Io`] on filesystem failure.
    pub fn save(&self, snap: &Snapshot) -> Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let final_path = self.dir.join(Self::file_name(snap.phase));
        let tmp_path = final_path.with_extension("tmp");
        let bytes = snap.encode();
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Prune beyond the cap, oldest first; the file just written is
        // the newest and therefore always survives.
        let mut files = self.list()?;
        while files.len() > self.retain {
            let victim = files.remove(0);
            fs::remove_file(&victim)?;
        }
        Ok(final_path)
    }

    /// Live snapshot files, oldest → newest (by phase, which the naming
    /// scheme makes lexicographic).
    ///
    /// # Errors
    /// [`BgpError::Io`] on filesystem failure. A missing directory is
    /// an empty store, not an error.
    pub fn list(&self) -> Result<Vec<PathBuf>> {
        let rd = match fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut files: Vec<PathBuf> = rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().and_then(|e| e.to_str()) == Some(EXTENSION)
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("snap-"))
            })
            .collect();
        files.sort();
        Ok(files)
    }

    /// Load the newest valid snapshot whose fingerprint matches
    /// `fingerprint`, quarantining (rename + report file) every newer
    /// file that fails to decode or belongs to a different job.
    ///
    /// # Errors
    /// [`BgpError::Io`] on filesystem failure; corrupt *files* are
    /// quarantined and reported in the outcome, not returned as errors.
    pub fn load_latest_valid(&self, fingerprint: u64) -> Result<LoadOutcome> {
        let mut outcome = LoadOutcome::default();
        let mut files = self.list()?;
        while let Some(path) = files.pop() {
            let verdict = self.try_load(&path, fingerprint);
            match verdict {
                Ok(snap) => {
                    outcome.snapshot = Some((snap, path));
                    return Ok(outcome);
                }
                Err(e) => {
                    let reason = e.to_string();
                    let quarantine_path = path.with_extension("quarantined");
                    fs::rename(&path, &quarantine_path)?;
                    let report = quarantine_path.with_extension("quarantine.txt");
                    let _ = fs::write(
                        &report,
                        format!(
                            "quarantined snapshot: {}\nreason: {reason}\n",
                            path.display()
                        ),
                    );
                    outcome.quarantined.push(Quarantined { path: quarantine_path, reason });
                }
            }
        }
        Ok(outcome)
    }

    fn try_load(&self, path: &Path, fingerprint: u64) -> Result<Snapshot> {
        let meta = fs::metadata(path)?;
        if meta.len() > MAX_FILE_BYTES {
            return Err(BgpError::corrupt(format!(
                "snapshot file is {} bytes, larger than the {MAX_FILE_BYTES}-byte cap",
                meta.len()
            )));
        }
        let bytes = fs::read(path)?;
        let snap = Snapshot::decode(&bytes)?;
        if snap.fingerprint != fingerprint {
            return Err(BgpError::corrupt(format!(
                "snapshot fingerprint {:#x} does not match job fingerprint {fingerprint:#x}",
                snap.fingerprint
            )));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(phase: u64) -> Snapshot {
        let mut s = Snapshot::new(0xfeed_f00d, phase);
        s.add_section("meta", vec![1, 2, 3]);
        s.add_section("nodes", (0..200u8).collect());
        s.add_section("empty", Vec::new());
        s
    }

    #[test]
    fn container_round_trips() {
        let s = sample(42);
        let bytes = s.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.section("nodes").unwrap().len(), 200);
        assert_eq!(back.section_names().collect::<Vec<_>>(), vec!["meta", "nodes", "empty"]);
        assert!(back.section("missing").is_none());
        assert!(back.section_required("missing").is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample(7).encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Snapshot::decode(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample(7).encode();
        for cut in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..cut]).is_err(), "truncation to {cut} accepted");
        }
    }

    #[test]
    fn store_rotates_and_keeps_the_newest() {
        let dir = std::env::temp_dir().join(format!("bgps-rot-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(&dir, 3);
        for phase in [10, 20, 30, 40, 50] {
            store.save(&sample(phase)).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.len(), 3);
        let phases: Vec<u64> = files
            .iter()
            .map(|p| Snapshot::decode(&fs::read(p).unwrap()).unwrap().phase)
            .collect();
        assert_eq!(phases, vec![30, 40, 50]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_falls_back_past_corruption_and_quarantines() {
        let dir = std::env::temp_dir().join(format!("bgps-q-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(&dir, 10);
        store.save(&sample(1)).unwrap();
        store.save(&sample(2)).unwrap();
        let p3 = store.save(&sample(3)).unwrap();
        // Corrupt the newest in place.
        let mut bytes = fs::read(&p3).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&p3, &bytes).unwrap();

        let out = store.load_latest_valid(0xfeed_f00d).unwrap();
        let (snap, path) = out.snapshot.expect("fallback snapshot");
        assert_eq!(snap.phase, 2);
        assert!(path.to_string_lossy().contains("snap-"));
        assert_eq!(out.quarantined.len(), 1);
        assert!(out.quarantined[0].path.exists());
        assert!(!p3.exists(), "corrupt file moved aside");
        let report = out.quarantined[0].path.with_extension("quarantine.txt");
        let text = fs::read_to_string(report).unwrap();
        assert!(text.contains("checksum"), "report explains: {text}");
        // The walk is repeatable: quarantined files are no longer live.
        let again = store.load_latest_valid(0xfeed_f00d).unwrap();
        assert_eq!(again.snapshot.unwrap().0.phase, 2);
        assert!(again.quarantined.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_rejected_and_quarantined() {
        let dir = std::env::temp_dir().join(format!("bgps-fp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(&dir, 10);
        store.save(&sample(5)).unwrap();
        let out = store.load_latest_valid(0xdead_beef).unwrap();
        assert!(out.snapshot.is_none());
        assert_eq!(out.quarantined.len(), 1);
        assert!(out.quarantined[0].reason.contains("fingerprint"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_loads_nothing() {
        let dir = std::env::temp_dir().join(format!("bgps-none-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(&dir, 3);
        let out = store.load_latest_valid(1).unwrap();
        assert!(out.snapshot.is_none());
        assert!(out.quarantined.is_empty());
    }
}
