//! # bgp-faults — deterministic fault injection for the simulated machine
//!
//! A [`FaultPlan`] is a *pure function of `(spec, seed, nodes)`*: every
//! query it answers — "is node 7 lost?", "does the dump of node 3 get a
//! byte flipped?" — is derived by hashing the seed with a per-domain
//! salt and the node id. Two consequences fall out of that design:
//!
//! 1. **Reproducibility.** The same seed produces the byte-identical
//!    fault schedule on every run, on every host. Experiments that
//!    sweep fault rates are replayable, and a failure seen once can be
//!    re-run under a debugger.
//! 2. **Schedule stability.** Each fault domain draws from its own salt,
//!    so raising the dump-corruption rate does not reshuffle *which*
//!    nodes are lost — the set of lost nodes at 5% is a subset of the
//!    set at 10%. That makes rate sweeps monotone and comparisons
//!    between rates meaningful.
//!
//! The plan is advisory: it decides *what* goes wrong, and the machine
//! layers (`bgp-net`, `bgp-mpi`, `bgp-upc`, `bgp-core`) consult it at
//! the points where those faults physically manifest. Nothing in this
//! crate touches the simulator directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bgp_arch::rng::splitmix64;

/// Per-domain salts. Distinct constants keep the fault domains'
/// pseudo-random draws statistically independent of each other.
mod salt {
    pub const NODE_LOSS: u64 = 0x6e6f_6465_6c6f_7373; // "nodeloss"
    pub const STRAGGLER: u64 = 0x7374_7261_6767_6c65; // "straggle"
    pub const LINK: u64 = 0x6c69_6e6b_6465_6772; // "linkdegr"
    pub const TIMEOUT: u64 = 0x7469_6d65_6f75_7421; // "timeout!"
    pub const BITFLIP: u64 = 0x6269_7466_6c69_7070; // "bitflipp"
    pub const SATURATE: u64 = 0x7361_7475_7261_7465; // "saturate"
    pub const DUMP: u64 = 0x6475_6d70_6661_756c; // "dumpfaul"
}

/// Fault *rates* and magnitudes for one experiment.
///
/// All `*_rate` fields are probabilities in `[0, 1]` applied
/// independently per node (or per `(node, attempt)` for timeouts). The
/// default is the all-zero spec: no faults at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probability a node dies mid-run (its counters are never
    /// collected and its ranks stop making progress at a fault point).
    pub node_loss_rate: f64,
    /// Probability a node is a straggler (all of its ranks run slow).
    pub straggler_rate: f64,
    /// Extra cycles a straggler node's ranks pay at every scheduling
    /// boundary.
    pub straggler_penalty_cycles: u64,
    /// Probability a node's torus router is degraded.
    pub link_degrade_rate: f64,
    /// Latency multiplier applied to every hop through a degraded
    /// router (1 = no slowdown).
    pub link_slowdown: u64,
    /// Probability one collection attempt against a node times out.
    /// Independent per attempt, so retries help.
    pub collection_timeout_rate: f64,
    /// Probability a node's counter file suffers a single-bit flip.
    pub counter_bitflip_rate: f64,
    /// Probability a node's UPC is switched into saturating mode with
    /// one counter preset near `u64::MAX` (models overflow clamping).
    pub counter_saturate_rate: f64,
    /// Probability a node's dump file is truncated.
    pub dump_truncate_rate: f64,
    /// Probability a single byte of a node's dump file is corrupted.
    pub dump_byteflip_rate: f64,
    /// Probability a node's dump file goes missing entirely.
    pub dump_missing_rate: f64,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec::none()
    }
}

impl FaultSpec {
    /// The all-zero spec: nothing ever goes wrong.
    pub const fn none() -> FaultSpec {
        FaultSpec {
            node_loss_rate: 0.0,
            straggler_rate: 0.0,
            straggler_penalty_cycles: 0,
            link_degrade_rate: 0.0,
            link_slowdown: 1,
            collection_timeout_rate: 0.0,
            counter_bitflip_rate: 0.0,
            counter_saturate_rate: 0.0,
            dump_truncate_rate: 0.0,
            dump_byteflip_rate: 0.0,
            dump_missing_rate: 0.0,
        }
    }

    /// A moderately hostile spec exercising every fault domain at once;
    /// the default configuration of the `fig_ext_faults` experiment.
    pub fn hostile() -> FaultSpec {
        FaultSpec {
            node_loss_rate: 0.05,
            straggler_rate: 0.10,
            straggler_penalty_cycles: 2_000,
            link_degrade_rate: 0.05,
            link_slowdown: 4,
            collection_timeout_rate: 0.20,
            counter_bitflip_rate: 0.02,
            counter_saturate_rate: 0.02,
            dump_truncate_rate: 0.01,
            dump_byteflip_rate: 0.01,
            dump_missing_rate: 0.01,
        }
    }
}

/// A deterministic fault affecting one UPC counter of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterFault {
    /// Flip bit `bit` of counter `slot` when the measurement window
    /// closes (a single-event upset in the counter SRAM).
    BitFlip {
        /// Counter slot, `0..256`.
        slot: usize,
        /// Bit index, `0..64`.
        bit: u32,
    },
    /// Switch the UPC into saturating mode and preset `slot` near
    /// `u64::MAX`, so real traffic clamps it to the ceiling.
    Saturate {
        /// Counter slot, `0..256`.
        slot: usize,
    },
}

/// A deterministic fault affecting one node's on-disk counter dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DumpFault {
    /// The file was never written (node died before flushing).
    Missing,
    /// The file is cut short. The kept prefix is `num % len` bytes.
    Truncate {
        /// Raw draw; reduce modulo the file length for the cut point.
        num: u64,
    },
    /// One byte at `pos % len` is XORed with `mask` (always non-zero).
    ByteFlip {
        /// Raw draw; reduce modulo the file length for the position.
        pos: u64,
        /// XOR mask, guaranteed non-zero.
        mask: u8,
    },
}

impl DumpFault {
    /// Apply this fault to an encoded dump, returning `None` for
    /// [`DumpFault::Missing`] (the caller should drop the file).
    pub fn apply(self, mut bytes: Vec<u8>) -> Option<Vec<u8>> {
        if bytes.is_empty() {
            return match self {
                DumpFault::Missing => None,
                _ => Some(bytes),
            };
        }
        match self {
            DumpFault::Missing => None,
            DumpFault::Truncate { num } => {
                let keep = (num % bytes.len() as u64) as usize;
                bytes.truncate(keep);
                Some(bytes)
            }
            DumpFault::ByteFlip { pos, mask } => {
                let at = (pos % bytes.len() as u64) as usize;
                bytes[at] ^= mask;
                Some(bytes)
            }
        }
    }
}

/// A sealed, seeded fault schedule for a machine of `nodes` nodes.
///
/// Construction is cheap; all per-node decisions are recomputed on
/// demand from the seed (no per-node state is stored), which is what
/// makes the schedule a pure function of `(spec, seed, nodes)`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
    nodes: usize,
}

/// Turn a 64-bit hash into a uniform `f64` in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Seal a plan for a machine with `nodes` nodes.
    pub fn new(spec: FaultSpec, seed: u64, nodes: usize) -> FaultPlan {
        FaultPlan { spec, seed, nodes }
    }

    /// A plan that injects nothing; handy as a neutral default.
    pub fn inert(nodes: usize) -> FaultPlan {
        FaultPlan::new(FaultSpec::none(), 0, nodes)
    }

    /// The spec this plan was sealed with.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The seed this plan was sealed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of nodes the plan covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// One deterministic draw for `(domain salt, node, stream index)`.
    fn draw(&self, salt: u64, node: u32, idx: u64) -> u64 {
        let mut s = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((node as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(idx.wrapping_mul(0x94D0_49BB_1331_11EB));
        splitmix64(&mut s)
    }

    fn hit(&self, salt: u64, node: u32, rate: f64) -> bool {
        rate > 0.0 && unit(self.draw(salt, node, 0)) < rate
    }

    /// Is `node` lost mid-run? Lost nodes never deliver their dumps and
    /// every collection attempt against them fails fatally.
    pub fn node_lost(&self, node: u32) -> bool {
        self.hit(salt::NODE_LOSS, node, self.spec.node_loss_rate)
    }

    /// Extra cycles `node`'s ranks pay per scheduling boundary
    /// (0 for non-stragglers).
    pub fn straggler_penalty(&self, node: u32) -> u64 {
        if self.hit(salt::STRAGGLER, node, self.spec.straggler_rate) {
            self.spec.straggler_penalty_cycles
        } else {
            0
        }
    }

    /// Is `node`'s torus router degraded?
    pub fn router_degraded(&self, node: u32) -> bool {
        self.hit(salt::LINK, node, self.spec.link_degrade_rate)
    }

    /// Hop-latency multiplier for a transfer between `src` and `dst`
    /// (1 when neither endpoint's router is degraded).
    pub fn link_slowdown(&self, src: u32, dst: u32) -> u64 {
        if self.router_degraded(src) || self.router_degraded(dst) {
            self.spec.link_slowdown.max(1)
        } else {
            1
        }
    }

    /// Does collection attempt `attempt` (0-based) against `node` time
    /// out? Draws are independent per attempt, so retrying helps.
    pub fn collection_timeout(&self, node: u32, attempt: u32) -> bool {
        self.spec.collection_timeout_rate > 0.0
            && unit(self.draw(salt::TIMEOUT, node, 1 + attempt as u64))
                < self.spec.collection_timeout_rate
    }

    /// Counter faults for `node`, in application order.
    pub fn counter_faults(&self, node: u32) -> Vec<CounterFault> {
        let mut out = Vec::new();
        if self.hit(salt::BITFLIP, node, self.spec.counter_bitflip_rate) {
            let slot = (self.draw(salt::BITFLIP, node, 1) % 256) as usize;
            let bit = (self.draw(salt::BITFLIP, node, 2) % 64) as u32;
            out.push(CounterFault::BitFlip { slot, bit });
        }
        if self.hit(salt::SATURATE, node, self.spec.counter_saturate_rate) {
            let slot = (self.draw(salt::SATURATE, node, 1) % 256) as usize;
            out.push(CounterFault::Saturate { slot });
        }
        out
    }

    /// The dump-file fault for `node`, if any. At most one fault per
    /// file; `Missing` wins over `Truncate` wins over `ByteFlip`.
    pub fn dump_fault(&self, node: u32) -> Option<DumpFault> {
        if self.hit(salt::DUMP, node, self.spec.dump_missing_rate) {
            return Some(DumpFault::Missing);
        }
        // Separate stream indices keep the three sub-draws independent.
        if self.spec.dump_truncate_rate > 0.0
            && unit(self.draw(salt::DUMP, node, 1)) < self.spec.dump_truncate_rate
        {
            return Some(DumpFault::Truncate { num: self.draw(salt::DUMP, node, 2) });
        }
        if self.spec.dump_byteflip_rate > 0.0
            && unit(self.draw(salt::DUMP, node, 3)) < self.spec.dump_byteflip_rate
        {
            let pos = self.draw(salt::DUMP, node, 4);
            let mask = (self.draw(salt::DUMP, node, 5) % 255 + 1) as u8;
            return Some(DumpFault::ByteFlip { pos, mask });
        }
        None
    }

    /// Nodes the plan declares lost, in ascending order.
    pub fn lost_nodes(&self) -> Vec<u32> {
        (0..self.nodes as u32).filter(|&n| self.node_lost(n)).collect()
    }

    /// Human-readable summary of every fault scheduled against `node`
    /// (empty when the node is clean). Used by deadlock forensics and
    /// trace reports.
    pub fn node_fault_summary(&self, node: u32) -> Vec<String> {
        let mut out = Vec::new();
        if self.node_lost(node) {
            out.push("node lost".to_string());
        }
        let penalty = self.straggler_penalty(node);
        if penalty > 0 {
            out.push(format!("straggler (+{penalty} cycles/boundary)"));
        }
        if self.router_degraded(node) {
            out.push(format!("router degraded (x{} hop latency)", self.spec.link_slowdown.max(1)));
        }
        for f in self.counter_faults(node) {
            match f {
                CounterFault::BitFlip { slot, bit } => {
                    out.push(format!("counter bit-flip (slot {slot}, bit {bit})"));
                }
                CounterFault::Saturate { slot } => {
                    out.push(format!("counter saturation (slot {slot})"));
                }
            }
        }
        match self.dump_fault(node) {
            Some(DumpFault::Missing) => out.push("dump missing".to_string()),
            Some(DumpFault::Truncate { .. }) => out.push("dump truncated".to_string()),
            Some(DumpFault::ByteFlip { .. }) => out.push("dump byte-flip".to_string()),
            None => {}
        }
        out
    }

    /// Canonical byte encoding of the entire fault schedule.
    ///
    /// Two plans with the same `(spec, seed, nodes)` produce identical
    /// bytes; this is the artifact reproducibility tests compare.
    pub fn schedule_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.nodes * 16);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.nodes as u64).to_le_bytes());
        for node in 0..self.nodes as u32 {
            out.push(self.node_lost(node) as u8);
            out.extend_from_slice(&self.straggler_penalty(node).to_le_bytes());
            out.push(self.router_degraded(node) as u8);
            for f in self.counter_faults(node) {
                match f {
                    CounterFault::BitFlip { slot, bit } => {
                        out.push(1);
                        out.extend_from_slice(&(slot as u32).to_le_bytes());
                        out.extend_from_slice(&bit.to_le_bytes());
                    }
                    CounterFault::Saturate { slot } => {
                        out.push(2);
                        out.extend_from_slice(&(slot as u32).to_le_bytes());
                    }
                }
            }
            match self.dump_fault(node) {
                None => out.push(0),
                Some(DumpFault::Missing) => out.push(3),
                Some(DumpFault::Truncate { num }) => {
                    out.push(4);
                    out.extend_from_slice(&num.to_le_bytes());
                }
                Some(DumpFault::ByteFlip { pos, mask }) => {
                    out.push(5);
                    out.extend_from_slice(&pos.to_le_bytes());
                    out.push(mask);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::new(FaultSpec::hostile(), seed, 64)
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(plan(42).schedule_bytes(), plan(42).schedule_bytes());
        assert_eq!(plan(42).lost_nodes(), plan(42).lost_nodes());
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(plan(1).schedule_bytes(), plan(2).schedule_bytes());
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let p = FaultPlan::inert(128);
        for n in 0..128u32 {
            assert!(!p.node_lost(n));
            assert_eq!(p.straggler_penalty(n), 0);
            assert_eq!(p.link_slowdown(n, (n + 1) % 128), 1);
            assert!(!p.collection_timeout(n, 0));
            assert!(p.counter_faults(n).is_empty());
            assert!(p.dump_fault(n).is_none());
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        // 5% node loss over 2000 nodes: expect ~100, accept a wide band.
        let p = FaultPlan::new(
            FaultSpec { node_loss_rate: 0.05, ..FaultSpec::none() },
            7,
            2000,
        );
        let lost = p.lost_nodes().len();
        assert!((40..=180).contains(&lost), "lost {lost} of 2000 at 5%");
    }

    #[test]
    fn raising_one_rate_does_not_reshuffle_another_domain() {
        let a = FaultPlan::new(
            FaultSpec { node_loss_rate: 0.05, dump_byteflip_rate: 0.0, ..FaultSpec::none() },
            9,
            256,
        );
        let b = FaultPlan::new(
            FaultSpec { node_loss_rate: 0.05, dump_byteflip_rate: 0.5, ..FaultSpec::none() },
            9,
            256,
        );
        assert_eq!(a.lost_nodes(), b.lost_nodes());
    }

    #[test]
    fn loss_sets_nest_as_rate_rises() {
        let lo = FaultPlan::new(
            FaultSpec { node_loss_rate: 0.05, ..FaultSpec::none() },
            11,
            512,
        );
        let hi = FaultPlan::new(
            FaultSpec { node_loss_rate: 0.20, ..FaultSpec::none() },
            11,
            512,
        );
        let hi_set: std::collections::HashSet<u32> = hi.lost_nodes().into_iter().collect();
        for n in lo.lost_nodes() {
            assert!(hi_set.contains(&n), "node {n} lost at 5% but not at 20%");
        }
    }

    #[test]
    fn timeout_draws_independent_per_attempt() {
        let p = FaultPlan::new(
            FaultSpec { collection_timeout_rate: 0.5, ..FaultSpec::none() },
            13,
            1,
        );
        // With p=0.5 per attempt, 64 attempts virtually surely contain
        // both outcomes.
        let hits: Vec<bool> = (0..64).map(|a| p.collection_timeout(0, a)).collect();
        assert!(hits.iter().any(|&h| h));
        assert!(hits.iter().any(|&h| !h));
    }

    #[test]
    fn dump_fault_apply() {
        let bytes = vec![0xAAu8; 100];
        assert!(DumpFault::Missing.apply(bytes.clone()).is_none());
        let t = DumpFault::Truncate { num: 37 }.apply(bytes.clone()).unwrap();
        assert_eq!(t.len(), 37);
        let f = DumpFault::ByteFlip { pos: 205, mask: 0x01 }.apply(bytes.clone()).unwrap();
        assert_eq!(f.len(), 100);
        assert_eq!(f[5], 0xAB);
        assert_eq!(f.iter().filter(|&&b| b != 0xAA).count(), 1);
        // Empty input never panics.
        assert_eq!(DumpFault::Truncate { num: 3 }.apply(Vec::new()).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn byteflip_mask_is_never_zero() {
        for seed in 0..50u64 {
            let p = FaultPlan::new(
                FaultSpec { dump_byteflip_rate: 1.0, ..FaultSpec::none() },
                seed,
                32,
            );
            for n in 0..32 {
                match p.dump_fault(n) {
                    Some(DumpFault::ByteFlip { mask, .. }) => assert_ne!(mask, 0),
                    other => panic!("expected byteflip, got {other:?}"),
                }
            }
        }
    }
}
