//! # bgp-fpu — the PPC450 "double hummer" floating-point unit
//!
//! Each Blue Gene/P core is coupled to a dual-pipeline SIMD FPU: two
//! floating-point register files and two execution pipes that are
//! independently addressable but can be jointly driven by SIMD
//! instructions (paper §III). SIMD execution halves the number of
//! instructions fetched/issued/completed while doubling the operations
//! retired per instruction — the effect the paper's compiler experiments
//! (Figs. 6–10) measure.
//!
//! This crate models the unit at the retirement level: [`FpOp`] is the
//! instruction vocabulary, [`Fpu`] accounts issued operations, flops, and
//! stall cycles, and reports every retirement to the node's UPC unit via
//! the per-core FPU events of the catalog.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bgp_arch::error::Result;
use bgp_arch::events::CoreEvent;
use bgp_arch::wire;
use bgp_upc::Upc;

/// A floating-point instruction class of the PPC450 double-hummer unit.
///
/// "Simd" variants drive both pipes with a single instruction; scalar
/// variants use the primary pipe only.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpOp {
    /// Scalar add or subtract.
    AddSub,
    /// Scalar multiply.
    Mult,
    /// Scalar divide (long-latency, unpipelined).
    Div,
    /// Scalar fused multiply-add (`fmadd`/`fmsub` family): 2 flops.
    Fma,
    /// SIMD add/subtract (`fpadd`/`fpsub`): 2 flops, both pipes.
    SimdAddSub,
    /// SIMD multiply (`fpmul`): 2 flops.
    SimdMult,
    /// SIMD divide: 2 flops, unpipelined in both pipes.
    SimdDiv,
    /// SIMD fused multiply-add (`fpmadd` family): 4 flops.
    SimdFma,
    /// Register move / cross-pipe transfer (`fsmr` etc.): 0 flops.
    Move,
}

impl FpOp {
    /// All instruction classes.
    pub const ALL: [FpOp; 9] = [
        FpOp::AddSub,
        FpOp::Mult,
        FpOp::Div,
        FpOp::Fma,
        FpOp::SimdAddSub,
        FpOp::SimdMult,
        FpOp::SimdDiv,
        FpOp::SimdFma,
        FpOp::Move,
    ];

    /// Double-precision flops retired by one instruction of this class.
    #[inline]
    pub const fn flops(self) -> u64 {
        match self {
            FpOp::Move => 0,
            FpOp::AddSub | FpOp::Mult | FpOp::Div => 1,
            FpOp::Fma | FpOp::SimdAddSub | FpOp::SimdMult | FpOp::SimdDiv => 2,
            FpOp::SimdFma => 4,
        }
    }

    /// Whether the instruction drives both pipes.
    #[inline]
    pub const fn is_simd(self) -> bool {
        matches!(
            self,
            FpOp::SimdAddSub | FpOp::SimdMult | FpOp::SimdDiv | FpOp::SimdFma
        )
    }

    /// Result latency in cycles.
    ///
    /// The pipelined ops (add/mult/FMA) have a 5-cycle latency fully
    /// hidden by the in-order dual-issue front end under normal scheduling;
    /// divides iterate in the pipe and block it.
    #[inline]
    pub const fn latency(self) -> u64 {
        match self {
            FpOp::Move => 2,
            FpOp::Div | FpOp::SimdDiv => 30,
            _ => 5,
        }
    }

    /// Extra stall cycles a retirement of this class charges beyond its
    /// single issue slot (unpipelined ops occupy the pipe for their whole
    /// latency).
    #[inline]
    pub const fn stall_cycles(self) -> u64 {
        match self {
            FpOp::Div | FpOp::SimdDiv => FpOp::Div.latency() - 1,
            _ => 0,
        }
    }

    /// The per-core UPC event this class retires as.
    #[inline]
    pub const fn event(self) -> CoreEvent {
        match self {
            FpOp::AddSub => CoreEvent::FpAddSub,
            FpOp::Mult => CoreEvent::FpMult,
            FpOp::Div => CoreEvent::FpDiv,
            FpOp::Fma => CoreEvent::FpFma,
            FpOp::SimdAddSub => CoreEvent::FpSimdAddSub,
            FpOp::SimdMult => CoreEvent::FpSimdMult,
            FpOp::SimdDiv => CoreEvent::FpSimdDiv,
            FpOp::SimdFma => CoreEvent::FpSimdFma,
            FpOp::Move => CoreEvent::FpMove,
        }
    }

    /// Index of this class in [`FpOp::ALL`] (stable, used for compact
    /// per-class arrays).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FpOp::AddSub => 0,
            FpOp::Mult => 1,
            FpOp::Div => 2,
            FpOp::Fma => 3,
            FpOp::SimdAddSub => 4,
            FpOp::SimdMult => 5,
            FpOp::SimdDiv => 6,
            FpOp::SimdFma => 7,
            FpOp::Move => 8,
        }
    }
}

/// Retirement-level model of one core's FPU.
///
/// Tracks per-class instruction counts and flop totals, and forwards
/// every retirement to the UPC unit.
#[derive(Clone, Debug, Default)]
pub struct Fpu {
    counts: [u64; FpOp::ALL.len()],
    flops: u64,
    stall_cycles: u64,
}

impl Fpu {
    /// A fresh unit with zeroed statistics.
    pub fn new() -> Fpu {
        Fpu::default()
    }

    /// Retire `n` instructions of class `op` on core `core`, reporting to
    /// `upc`. Returns the extra stall cycles the batch charges the core.
    #[inline]
    pub fn retire(&mut self, op: FpOp, n: u64, core: usize, upc: &mut Upc) -> u64 {
        if n == 0 {
            return 0;
        }
        self.counts[op.index()] += n;
        self.flops += op.flops() * n;
        let stall = op.stall_cycles() * n;
        self.stall_cycles += stall;
        upc.emit(op.event().id(core), n);
        stall
    }

    /// Instructions retired of one class.
    #[inline]
    pub fn count(&self, op: FpOp) -> u64 {
        self.counts[op.index()]
    }

    /// Total FP instructions retired (including moves).
    pub fn total_instructions(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total double-precision flops retired.
    #[inline]
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Total FPU-induced stall cycles.
    #[inline]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Fraction of retired FP arithmetic instructions that were SIMD.
    pub fn simd_fraction(&self) -> f64 {
        let simd: u64 = FpOp::ALL
            .iter()
            .filter(|o| o.is_simd())
            .map(|&o| self.count(o))
            .sum();
        let arith: u64 = FpOp::ALL
            .iter()
            .filter(|o| o.flops() > 0)
            .map(|&o| self.count(o))
            .sum();
        if arith == 0 {
            0.0
        } else {
            simd as f64 / arith as f64
        }
    }

    /// Zero all statistics.
    pub fn reset(&mut self) {
        *self = Fpu::default();
    }

    /// Serialize the unit's runtime statistics (checkpoint support).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for &c in &self.counts {
            wire::put_u64(out, c);
        }
        wire::put_u64(out, self.flops);
        wire::put_u64(out, self.stall_cycles);
    }

    /// Restore statistics previously written by [`Fpu::save_state`].
    ///
    /// # Errors
    /// [`bgp_arch::BgpError::Corrupt`] on truncated input.
    pub fn restore_state(&mut self, r: &mut wire::Reader<'_>) -> Result<()> {
        r.u64_array(&mut self.counts, "fpu counts")?;
        self.flops = r.u64("fpu flops")?;
        self.stall_cycles = r.u64("fpu stall cycles")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::CounterMode;

    fn upc0() -> Upc {
        let mut u = Upc::new(CounterMode::Mode0);
        u.set_enabled(true);
        u
    }

    #[test]
    fn flop_accounting_matches_class_definitions() {
        // A SIMD FMA is 4 flops: 2 lanes × (mul + add).
        assert_eq!(FpOp::SimdFma.flops(), 4);
        assert_eq!(FpOp::Fma.flops(), 2);
        assert_eq!(FpOp::SimdAddSub.flops(), 2);
        assert_eq!(FpOp::AddSub.flops(), 1);
        assert_eq!(FpOp::Move.flops(), 0);

        let mut fpu = Fpu::new();
        let mut upc = upc0();
        fpu.retire(FpOp::SimdFma, 10, 0, &mut upc);
        fpu.retire(FpOp::AddSub, 5, 0, &mut upc);
        assert_eq!(fpu.flops(), 45);
        assert_eq!(fpu.total_instructions(), 15);
    }

    #[test]
    fn retirements_reach_the_upc() {
        let mut fpu = Fpu::new();
        let mut upc = upc0();
        fpu.retire(FpOp::SimdFma, 7, 1, &mut upc);
        assert_eq!(upc.read_event(CoreEvent::FpSimdFma.id(1)), Some(7));
        // Core 2's events live in mode 1 — invisible to this unit,
        // but still tracked by the local Fpu stats.
        fpu.retire(FpOp::Mult, 3, 2, &mut upc);
        assert_eq!(fpu.count(FpOp::Mult), 3);
        assert_eq!(upc.read_event(CoreEvent::FpMult.id(2)), None);
    }

    #[test]
    fn divides_stall_the_pipe() {
        let mut fpu = Fpu::new();
        let mut upc = upc0();
        let s = fpu.retire(FpOp::Div, 2, 0, &mut upc);
        assert_eq!(s, 2 * (FpOp::Div.latency() - 1));
        assert_eq!(fpu.stall_cycles(), s);
        assert_eq!(fpu.retire(FpOp::Fma, 100, 0, &mut upc), 0);
    }

    #[test]
    fn simd_fraction_ignores_moves() {
        let mut fpu = Fpu::new();
        let mut upc = upc0();
        fpu.retire(FpOp::SimdFma, 3, 0, &mut upc);
        fpu.retire(FpOp::Fma, 1, 0, &mut upc);
        fpu.retire(FpOp::Move, 100, 0, &mut upc);
        assert!((fpu.simd_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_retirement_is_free() {
        let mut fpu = Fpu::new();
        let mut upc = upc0();
        assert_eq!(fpu.retire(FpOp::Div, 0, 0, &mut upc), 0);
        assert_eq!(fpu.total_instructions(), 0);
        assert_eq!(fpu.simd_fraction(), 0.0);
    }

    #[test]
    fn index_is_consistent_with_all() {
        for (i, &op) in FpOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }
}
