//! Ground-truth **event validation**: cross-check every derivable
//! counter event against the simulator's independent bookkeeping.
//!
//! The simulator keeps ground truth the UPC unit never sees — per-core
//! `bgp_node::core::InstrCounts` and FPU class counts, node-level
//! `MemStats`, and the node's always-on mode-3 mirror — so every event
//! with an independent source can be checked three ways:
//!
//! * **exact** — a `Fixed(mode)` run's counter value must equal the
//!   truth bit-for-bit (the 0%-error families),
//! * **multiplexed** — the rotation's occupancy-weighted reconstruction
//!   `est = raw × total_weight / weight(mode)` must land within a small
//!   relative error, with a per-event error bar of
//!   `est × (1 − weight/total)` (the un-observed fraction). Weights are
//!   the per-mode *enabled job cycles* from the rotation's schedule set
//!   (see [`bgp_core::dump::MUX_SCHED_BASE`]) — dwell phases vary wildly
//!   in length, so phase counts alone mis-weight short, hot phases —
//!   falling back to phase counts when the schedule set is absent,
//! * **degraded** — a fault-injected run's values, reported so the
//!   damage is visible next to the clean numbers.
//!
//! Truth entries are produced by the harness (`bgp-bench`, which can
//! reach into the machine) as [`TruthEntry`] lists per node; this module
//! owns the comparison, the reconstruction arithmetic, and the report
//! (CSV + JSON).

use crate::csv::Csv;
use bgp_arch::events::{EventId, NUM_COUNTERS, NUM_MODES};
use bgp_core::dump::{mux_sched_id, mux_set_id, NodeDump};

/// One independently-derivable quantity on one node: the sum of the
/// listed events must equal `truth`. Single-event entries validate one
/// counter; multi-event entries validate a family whose truth only
/// exists in aggregate (e.g. the two L3 banks against `MemStats`).
#[derive(Clone, Debug)]
pub struct TruthEntry {
    /// Row label (event mnemonic, or a family name like `ddr_reads`).
    pub name: String,
    /// Flat 0–1023 event indices summed on the measured side.
    pub events: Vec<usize>,
    /// The independently-derived count.
    pub truth: u64,
}

/// All truth entries of one node.
#[derive(Clone, Debug)]
pub struct NodeTruth {
    /// Node id within the partition.
    pub node: u32,
    /// The node's checkable quantities.
    pub entries: Vec<TruthEntry>,
}

/// Occupancy-weighted reconstruction of a full-coverage count from one
/// mode's raw count: `raw × total / occ`, rounded to nearest. Returns
/// `None` when the mode never occupied a phase (the event was never
/// observed).
pub fn reconstruct(raw: u64, occ: u64, total: u64) -> Option<u64> {
    if occ == 0 {
        return None;
    }
    let est = (u128::from(raw) * u128::from(total) + u128::from(occ) / 2) / u128::from(occ);
    Some(est.min(u128::from(u64::MAX)) as u64)
}

/// Half-width of the reconstruction's error bar: the estimate scaled by
/// the fraction of the window the mode did *not* observe.
pub fn error_bar(est: u64, occ: u64, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    est as f64 * (1.0 - occ as f64 / total as f64)
}

/// Relative error of `got` against `truth` (denominator floored at 1 so
/// a zero truth with a zero measurement reads as exact).
pub fn rel_err(got: u64, truth: u64) -> f64 {
    (got.abs_diff(truth)) as f64 / (truth.max(1)) as f64
}

/// One validated quantity, aggregated across all nodes.
#[derive(Clone, Debug)]
pub struct EventAccuracy {
    /// Row label.
    pub name: String,
    /// Ground truth, summed over nodes.
    pub truth: u64,
    /// Value from the exact `Fixed(mode)` runs, if those runs covered
    /// every event of the entry.
    pub exact: Option<u64>,
    /// Relative error of `exact`.
    pub exact_err: Option<f64>,
    /// Occupancy-weighted estimate from the multiplexed run.
    pub mux_est: Option<u64>,
    /// Relative error of `mux_est`.
    pub mux_err: Option<f64>,
    /// Half-width of the reconstruction error bar (absolute counts).
    pub mux_bar: f64,
    /// Estimate from the fault-degraded run, reconstructed the same way.
    pub degraded_est: Option<u64>,
    /// Relative error of `degraded_est`.
    pub degraded_err: Option<f64>,
}

/// Summary + per-event rows of one kernel's validation.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Kernel label (free-form, lands in the report header).
    pub label: String,
    /// Per-quantity rows, in truth-entry order.
    pub rows: Vec<EventAccuracy>,
    /// Rows whose truth meets [`ValidationReport::MIN_TRUTH`] (the
    /// population the median is taken over).
    pub significant: usize,
    /// Exact rows checked / exact rows that matched bit-for-bit.
    pub exact_checked: usize,
    /// Exact rows equal to truth.
    pub exact_matches: usize,
    /// Largest exact relative error (0.0 when everything matched).
    pub exact_max_err: f64,
    /// Median mux relative error over significant rows.
    pub mux_median_err: f64,
    /// Largest mux relative error over significant rows.
    pub mux_max_err: f64,
    /// Fraction of the 1024 events the rotation observed at least once
    /// (occupancy > 0 for their mode), averaged over nodes.
    pub coverage: f64,
}

impl ValidationReport {
    /// Truth floor for a row to join the median-error population: tiny
    /// counts make relative error meaningless (one phase of drift on a
    /// count of 3 reads as 33%).
    pub const MIN_TRUTH: u64 = 100;

    /// Build a report from per-node truth and the measured dumps.
    ///
    /// * `exact` — one dump set per counter mode, `exact[m]` from a
    ///   `Fixed(mode m)` run (slices may be empty when a mode was not
    ///   measured).
    /// * `mux` — dumps of a `Multiplexed` run (synthetic per-mode sets
    ///   present, see [`bgp_core::dump::MUX_SET_BASE`]).
    /// * `degraded` — optional dumps of a fault-injected multiplexed
    ///   run.
    /// * `set` — the user set to validate (whole-program runs use
    ///   [`bgp_core::WHOLE_PROGRAM_SET`]).
    pub fn build(
        label: &str,
        truth: &[NodeTruth],
        exact: &[Vec<NodeDump>; NUM_MODES],
        mux: &[NodeDump],
        degraded: Option<&[NodeDump]>,
        set: u32,
    ) -> ValidationReport {
        let mux_weights = partition_weights(mux, set);
        let deg_weights =
            degraded.map_or([0; NUM_MODES], |d| partition_weights(d, set));
        let mut rows: Vec<EventAccuracy> = Vec::new();
        for nt in truth {
            let node = nt.node as usize;
            let mux_node = mux.get(node);
            let deg_node = degraded.and_then(|d| d.get(node));
            for entry in &nt.entries {
                let exact_v = sum_exact(entry, node, exact, set);
                let (mux_v, bar) = sum_mux(entry, mux_node, &mux_weights, set);
                let (deg_v, _) = sum_mux(entry, deg_node, &deg_weights, set);
                merge_row(&mut rows, entry, exact_v, mux_v, bar, deg_v);
            }
        }
        for r in &mut rows {
            r.exact_err = r.exact.map(|x| rel_err(x, r.truth));
            r.mux_err = r.mux_est.map(|x| rel_err(x, r.truth));
            r.degraded_err = r.degraded_est.map(|x| rel_err(x, r.truth));
        }
        let mut report = ValidationReport {
            label: label.to_string(),
            significant: 0,
            exact_checked: 0,
            exact_matches: 0,
            exact_max_err: 0.0,
            mux_median_err: 0.0,
            mux_max_err: 0.0,
            coverage: coverage(mux, set),
            rows,
        };
        let mut mux_errs: Vec<f64> = Vec::new();
        for r in &report.rows {
            if let Some(e) = r.exact_err {
                report.exact_checked += 1;
                if e == 0.0 {
                    report.exact_matches += 1;
                }
                report.exact_max_err = report.exact_max_err.max(e);
            }
            if r.truth >= Self::MIN_TRUTH {
                report.significant += 1;
                // An unobserved event counts as a full miss, not a gap.
                let e = r.mux_err.unwrap_or(1.0);
                mux_errs.push(e);
                report.mux_max_err = report.mux_max_err.max(e);
            }
        }
        report.mux_median_err = median(&mut mux_errs);
        report
    }

    /// The exact-family acceptance: every checked row matched truth.
    pub fn exact_ok(&self) -> bool {
        self.exact_checked > 0 && self.exact_matches == self.exact_checked
    }

    /// Render the per-event accuracy table.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new([
            "event", "truth", "exact", "exact_err", "mux_est", "mux_err", "mux_bar",
            "degraded_est", "degraded_err",
        ]);
        for r in &self.rows {
            csv.row([
                r.name.clone(),
                r.truth.to_string(),
                opt_u64(r.exact),
                opt_err(r.exact_err),
                opt_u64(r.mux_est),
                opt_err(r.mux_err),
                format!("{:.1}", r.mux_bar),
                opt_u64(r.degraded_est),
                opt_err(r.degraded_err),
            ]);
        }
        csv
    }

    /// Render the report as a JSON object (summary + per-event rows).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"label\": \"{}\",\n", self.label));
        out.push_str(&format!("  \"rows\": {},\n", self.rows.len()));
        out.push_str(&format!("  \"significant\": {},\n", self.significant));
        out.push_str(&format!("  \"exact_checked\": {},\n", self.exact_checked));
        out.push_str(&format!("  \"exact_matches\": {},\n", self.exact_matches));
        out.push_str(&format!("  \"exact_max_err\": {:.6},\n", self.exact_max_err));
        out.push_str(&format!("  \"mux_median_err\": {:.6},\n", self.mux_median_err));
        out.push_str(&format!("  \"mux_max_err\": {:.6},\n", self.mux_max_err));
        out.push_str(&format!("  \"coverage\": {:.4},\n", self.coverage));
        out.push_str("  \"events\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"truth\": {}, \"exact\": {}, \"mux_est\": {}, \
                 \"mux_err\": {}, \"mux_bar\": {:.1}, \"degraded_est\": {}}}{}\n",
                r.name,
                r.truth,
                json_u64(r.exact),
                json_u64(r.mux_est),
                json_err(r.mux_err),
                r.mux_bar,
                json_u64(r.degraded_est),
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Exact value of an entry: sum of the event's counters over the
/// per-mode `Fixed` runs; `None` when any needed run is missing.
fn sum_exact(
    entry: &TruthEntry,
    node: usize,
    exact: &[Vec<NodeDump>; NUM_MODES],
    set: u32,
) -> Option<u64> {
    let mut total = 0u64;
    for &e in &entry.events {
        let id = EventId::from_index(e)?;
        let dump = exact[id.mode().index()].get(node)?;
        let s = dump.set(set)?;
        total = total.wrapping_add(s.counts[id.slot().0 as usize]);
    }
    Some(total)
}

/// Per-mode reconstruction weights pooled over the whole partition: the
/// schedule sets' enabled job cycles when present and usable on every
/// node, else the synthetic sets' phase counts. Pooling matters because
/// the rotation staggers across nodes — at any phase the nodes occupy
/// *different* modes, so the partition's mode-`m` windows tile the
/// program and per-node extrapolation would re-introduce the phase-
/// structure bias the stagger exists to cancel. A mode that occupied
/// phases but accrued no cycles would zero-divide the reconstruction,
/// so any such mode (or any node missing its schedule set) forces the
/// phase fallback wholesale — mixing bases would skew the grand total.
fn partition_weights(dumps: &[NodeDump], set: u32) -> [u64; NUM_MODES] {
    let mut cycles = [0u64; NUM_MODES];
    let mut phases = [0u64; NUM_MODES];
    let mut cycles_ok = true;
    for dump in dumps {
        for (m, p) in phases.iter_mut().enumerate() {
            *p += dump.set(mux_set_id(set, m)).map_or(0, |s| u64::from(s.records));
        }
        match dump.set(mux_sched_id(set)) {
            Some(sched) => {
                for (m, c) in cycles.iter_mut().enumerate() {
                    *c += sched.counts[m];
                }
            }
            None => cycles_ok = false,
        }
    }
    let usable = cycles_ok
        && cycles.iter().sum::<u64>() > 0
        && (0..NUM_MODES).all(|m| phases[m] == 0 || cycles[m] > 0);
    if usable {
        cycles
    } else {
        phases
    }
}

/// Reconstructed value of an entry from a multiplexed run's synthetic
/// sets, scaled by the partition-pooled `weights`, plus the summed
/// error-bar half-width. `None` when the dump (or any event's
/// occupancy) is missing.
fn sum_mux(
    entry: &TruthEntry,
    dump: Option<&NodeDump>,
    weights: &[u64; NUM_MODES],
    set: u32,
) -> (Option<u64>, f64) {
    let Some(dump) = dump else { return (None, 0.0) };
    let mut total = 0u64;
    let mut bar = 0.0f64;
    let grand: u64 = weights.iter().sum();
    for &e in &entry.events {
        let Some(id) = EventId::from_index(e) else { return (None, bar) };
        let m = id.mode().index();
        let Some(s) = dump.set(mux_set_id(set, m)) else { return (None, bar) };
        let raw = s.counts[id.slot().0 as usize];
        match reconstruct(raw, weights[m], grand) {
            Some(est) => {
                total = total.wrapping_add(est);
                bar += error_bar(est, weights[m], grand);
            }
            None => return (None, bar),
        }
    }
    (Some(total), bar)
}

/// Accumulate one node's entry into the cross-node row with its name.
fn merge_row(
    rows: &mut Vec<EventAccuracy>,
    entry: &TruthEntry,
    exact: Option<u64>,
    mux: Option<u64>,
    bar: f64,
    degraded: Option<u64>,
) {
    let row = match rows.iter_mut().find(|r| r.name == entry.name) {
        Some(r) => r,
        None => {
            rows.push(EventAccuracy {
                name: entry.name.clone(),
                truth: 0,
                exact: Some(0),
                exact_err: None,
                mux_est: Some(0),
                mux_err: None,
                mux_bar: 0.0,
                degraded_est: Some(0),
                degraded_err: None,
            });
            rows.last_mut().expect("just pushed")
        }
    };
    row.truth = row.truth.wrapping_add(entry.truth);
    row.exact = row.exact.zip(exact).map(|(a, b)| a.wrapping_add(b));
    row.mux_est = row.mux_est.zip(mux).map(|(a, b)| a.wrapping_add(b));
    row.mux_bar += bar;
    row.degraded_est = row.degraded_est.zip(degraded).map(|(a, b)| a.wrapping_add(b));
}

/// Fraction of counter slots the rotation observed (mode occupancy > 0),
/// averaged over nodes. With any occupancy in all four modes this is
/// 1.0 — the rotation recovered full 1024-event coverage.
fn coverage(mux: &[NodeDump], set: u32) -> f64 {
    if mux.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for d in mux {
        let seen: usize = (0..NUM_MODES)
            .filter(|&m| d.set(mux_set_id(set, m)).is_some_and(|s| s.records > 0))
            .count();
        sum += (seen * NUM_COUNTERS) as f64 / (NUM_MODES * NUM_COUNTERS) as f64;
    }
    sum / mux.len() as f64
}

/// Median of `xs` (which is sorted in place); 0.0 when empty.
pub fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "-".into(), |v| v.to_string())
}

fn opt_err(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |v| format!("{v:.4}"))
}

fn json_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |v| v.to_string())
}

fn json_err(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), |v| format!("{v:.6}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::CounterMode;
    use bgp_core::dump::SetDump;

    fn dump_with(node: u32, mode: CounterMode, sets: Vec<SetDump>) -> NodeDump {
        NodeDump { node, mode, sets }
    }

    fn counts_with(slot: usize, v: u64) -> Vec<u64> {
        let mut c = vec![0u64; NUM_COUNTERS];
        c[slot] = v;
        c
    }

    #[test]
    fn reconstruction_scales_by_occupancy() {
        // Observed 250 counts during the 1/4 of the window this mode
        // occupied: the estimate extrapolates to the full window.
        assert_eq!(reconstruct(250, 25, 100), Some(1000));
        assert_eq!(reconstruct(0, 25, 100), Some(0));
        assert_eq!(reconstruct(250, 0, 100), None, "never observed");
        // Full occupancy is exact with a zero bar.
        assert_eq!(reconstruct(77, 100, 100), Some(77));
        assert_eq!(error_bar(77, 100, 100), 0.0);
        assert!(error_bar(1000, 25, 100) > 0.0);
    }

    #[test]
    fn report_checks_exact_and_reconstructed_values() {
        let ev = EventId::new(CounterMode::Mode0, 4).index();
        let truth = vec![NodeTruth {
            node: 0,
            entries: vec![TruthEntry { name: "load".into(), events: vec![ev], truth: 1000 }],
        }];
        // Exact mode-0 run saw precisely the truth.
        let exact: [Vec<NodeDump>; NUM_MODES] = [
            vec![dump_with(
                0,
                CounterMode::Mode0,
                vec![SetDump { id: 0, records: 1, counts: counts_with(4, 1000) }],
            )],
            vec![],
            vec![],
            vec![],
        ];
        // Mux run without a schedule set: the phase fallback sees mode 0
        // occupy 5 of 20 phases with 240 counts — reconstructs to 960, a
        // 4% error.
        let mut sets = vec![SetDump { id: 0, records: 1, counts: vec![0; NUM_COUNTERS] }];
        for m in 0..NUM_MODES {
            sets.push(SetDump {
                id: mux_set_id(0, m),
                records: 5,
                counts: if m == 0 { counts_with(4, 240) } else { vec![0; NUM_COUNTERS] },
            });
        }
        let mux = vec![dump_with(0, CounterMode::Mode0, sets)];
        let report = ValidationReport::build("test", &truth, &exact, &mux, None, 0);
        assert_eq!(report.rows.len(), 1);
        let r = &report.rows[0];
        assert_eq!(r.exact, Some(1000));
        assert_eq!(r.exact_err, Some(0.0));
        assert_eq!(r.mux_est, Some(960));
        assert!(report.exact_ok());
        assert!((report.mux_median_err - 0.04).abs() < 1e-9);
        assert!((report.coverage - 1.0).abs() < 1e-9);
        let csv = report.to_csv().render();
        assert!(csv.contains("load,1000,1000,0.0000,960,0.0400"));
        let json = report.to_json();
        assert!(json.contains("\"exact_matches\": 1"));
        assert!(json.contains("\"mux_est\": 960"));
    }

    #[test]
    fn schedule_set_cycles_outweigh_phase_counts() {
        let ev = EventId::new(CounterMode::Mode0, 4).index();
        let truth = vec![NodeTruth {
            node: 0,
            entries: vec![TruthEntry { name: "load".into(), events: vec![ev], truth: 500 }],
        }];
        let exact: [Vec<NodeDump>; NUM_MODES] = [vec![], vec![], vec![], vec![]];
        // Equal phase counts, but mode 0's phases spanned half the job's
        // cycles: the schedule set must drive the weighting. Phase
        // weighting would read 240 × 20/5 = 960; cycle weighting reads
        // 240 × 1000/500 = 480.
        let mut sets = Vec::new();
        for m in 0..NUM_MODES {
            sets.push(SetDump {
                id: mux_set_id(0, m),
                records: 5,
                counts: if m == 0 { counts_with(4, 240) } else { vec![0; NUM_COUNTERS] },
            });
        }
        let mut sched = vec![0u64; NUM_COUNTERS];
        sched[..NUM_MODES].copy_from_slice(&[500, 300, 100, 100]);
        sched[NUM_MODES..2 * NUM_MODES].copy_from_slice(&[5, 5, 5, 5]);
        sets.push(SetDump { id: mux_sched_id(0), records: 1, counts: sched });
        let mux = vec![dump_with(0, CounterMode::Mode0, sets)];
        let report = ValidationReport::build("test", &truth, &exact, &mux, None, 0);
        assert_eq!(report.rows[0].mux_est, Some(480));
        assert!((report.mux_median_err - 0.04).abs() < 1e-9);

        // A schedule set that starves an active mode of cycles falls
        // back to phase counts wholesale.
        let mut bad = mux.clone();
        let sched = bad[0]
            .sets
            .iter_mut()
            .find(|s| s.id == mux_sched_id(0))
            .expect("sched set");
        sched.counts[0] = 0;
        let report = ValidationReport::build("test", &truth, &exact, &bad, None, 0);
        assert_eq!(report.rows[0].mux_est, Some(960), "phase fallback");
    }

    #[test]
    fn family_entries_sum_events_and_unobserved_modes_count_as_misses() {
        let e0 = EventId::new(CounterMode::Mode2, 8).index(); // DdrRead0
        let e1 = EventId::new(CounterMode::Mode2, 9).index(); // DdrRead1
        let truth = vec![NodeTruth {
            node: 0,
            entries: vec![TruthEntry {
                name: "ddr_reads".into(),
                events: vec![e0, e1],
                truth: 500,
            }],
        }];
        let exact: [Vec<NodeDump>; NUM_MODES] = [vec![], vec![], vec![], vec![]];
        // Mode 2 never occupied a phase: the event was never observed.
        let mut sets = Vec::new();
        for m in 0..NUM_MODES {
            sets.push(SetDump {
                id: mux_set_id(0, m),
                records: if m == 2 { 0 } else { 4 },
                counts: vec![0; NUM_COUNTERS],
            });
        }
        let mux = vec![dump_with(0, CounterMode::Mode0, sets)];
        let report = ValidationReport::build("test", &truth, &exact, &mux, None, 0);
        let r = &report.rows[0];
        assert_eq!(r.exact, None, "no exact runs supplied");
        assert_eq!(r.mux_est, None, "unobserved mode");
        assert_eq!(report.exact_checked, 0);
        assert!(!report.exact_ok());
        assert_eq!(report.mux_median_err, 1.0, "unobserved significant row is a full miss");
        assert!(report.coverage < 1.0);
    }
}
