//! # bgp-postproc — post-processing and data mining for counter dumps
//!
//! The paper ships post-processing tools that read the per-node binary
//! files, sanity-check them, compute per-counter statistics (minimum,
//! maximum, arithmetic mean) across all nodes, derive user-defined
//! metrics (MFLOPS from the FPU counters, L3-DDR traffic from the L3/DDR
//! counters), and print `.csv` records per application (§IV). This crate
//! is those tools:
//!
//! * [`frame::Frame`] — aggregation + integrity checks,
//! * [`degraded::DegradedFrame`] — degraded-mode aggregation over the
//!   nodes that survived a faulted run, with per-event coverage,
//! * [`metrics`] — MFLOPS, DDR traffic/bandwidth, L3 miss ratio, and the
//!   Fig. 6 instruction-mix categories,
//! * [`csv`] — CSV emission, including the "all 512 counters" option,
//! * [`validate`] — ground-truth event validation: exact,
//!   multiplexed-reconstructed, and fault-degraded counts checked
//!   against the simulator's independent bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod degraded;
pub mod frame;
pub mod metrics;
pub mod report;
pub mod validate;

pub use csv::{stats_csv, Csv};
pub use degraded::{AggregateOptions, DegradedEventStats, DegradedFrame};
pub use frame::{EventStats, Frame};
pub use validate::{NodeTruth, TruthEntry, ValidationReport};
pub use report::render as render_report;
pub use metrics::{
    ddr_bandwidth_mb_s, ddr_bursts_per_node, ddr_traffic_bytes_per_node, fp_mix, l3_miss_ratio,
    mean_core_cycles, mflops_per_chip, mflops_per_core, observed_cores, FpMix, MixCategory,
};
