//! Minimal CSV emission — the paper's tools print "the relevant metrics
//! selected by the user … as a record for each application into .csv
//! files, which can be used with Microsoft Excel or Open office calc".

use crate::frame::Frame;
use std::fmt::Write as _;
use std::path::Path;

/// A growing CSV document with a fixed header.
#[derive(Clone, Debug)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Start a document with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Csv {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty());
        Csv { header, rows: Vec::new() }
    }

    /// Append one row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Csv {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the document has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to CSV text (RFC-4180-style quoting of commas/quotes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(out, "{}", self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write the document to a file.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

/// The "print the statistics of all counters" option: one row per
/// observed event with min/max/mean over nodes.
pub fn stats_csv(frame: &Frame) -> Csv {
    let mut csv = Csv::new(["event", "mnemonic", "min", "max", "mean", "sum", "nodes"]);
    for (ev, st) in frame.all_stats() {
        csv.row([
            ev.index().to_string(),
            ev.name(),
            st.min.to_string(),
            st.max.to_string(),
            format!("{:.3}", st.mean),
            st.sum.to_string(),
            st.nodes.to_string(),
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::{CounterMode, NUM_COUNTERS};
    use bgp_core::dump::{NodeDump, SetDump};

    #[test]
    fn render_quotes_special_cells() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["plain", "with,comma"]);
        c.row(["with\"quote", "x"]);
        let s = c.render();
        assert!(s.contains("\"with,comma\""));
        assert!(s.contains("\"with\"\"quote\""));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_are_rejected() {
        Csv::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn stats_csv_lists_every_observed_event() {
        let d = NodeDump {
            node: 0,
            mode: CounterMode::Mode0,
            sets: vec![SetDump { id: 0, records: 1, counts: vec![1; NUM_COUNTERS] }],
        };
        let f = Frame::from_dumps(&[d], 0).unwrap();
        let csv = stats_csv(&f);
        assert_eq!(csv.len(), NUM_COUNTERS);
        assert!(csv.render().starts_with("event,mnemonic,min,max,mean,sum,nodes"));
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("bgp_csv_{}", std::process::id()));
        let path = dir.join("sub/out.csv");
        let mut c = Csv::new(["x"]);
        c.row(["1"]);
        c.write(&path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("x\n1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
