//! **Degraded-mode aggregation**: counter statistics over whatever
//! nodes survived.
//!
//! The strict [`Frame`] refuses to aggregate anything
//! suspicious — a missing set, a record-count mismatch — because on a
//! healthy machine those are integrity bugs. After faults, they are
//! Tuesday. [`DegradedFrame`] aggregates what actually arrived:
//!
//! * nodes whose dumps never made it simply don't contribute;
//! * every event carries a **coverage** fraction — surviving observers
//!   over the [`AggregateOptions::expected_nodes_in_mode`] census — and
//!   events below the [`AggregateOptions::coverage_floor`] are marked
//!   unreliable;
//! * per-node values wildly above the node median (a counter bit flip
//!   in a high bit, a saturated counter) are dropped as outliers before
//!   the mean, so one flipped bit doesn't poison a 64-node average;
//! * a [`DegradedFrame::sanity`] pass reports saturated counters,
//!   quarantine-level coverage, and dropped outliers in prose.
//!
//! [`DegradedFrame::reliable_frame`] then re-packages the events that
//! met the floor as an ordinary [`Frame`], so every
//! downstream metric (MFLOPS, DDR traffic, instruction mix) works
//! unchanged on degraded data.

use crate::frame::{EventStats, Frame};
use bgp_arch::events::{CounterMode, EventId, NUM_COUNTERS};
use bgp_core::dump::NodeDump;
use std::collections::HashMap;

/// Values at or above this are treated as saturation artifacts by the
/// sanity pass (no real counter of a finite run reaches 2^62).
pub const SATURATION_SUSPECT: u64 = 1 << 62;

/// Knobs of degraded aggregation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggregateOptions {
    /// How many nodes *should* be reporting in each counter mode (the
    /// job's census, from its counter policy) — the denominator of
    /// every coverage fraction.
    pub expected_nodes_in_mode: [usize; 4],
    /// Events covered by fewer than this fraction of their expected
    /// nodes are marked unreliable and excluded from
    /// [`DegradedFrame::reliable_frame`].
    pub coverage_floor: f64,
    /// A per-node value greater than `outlier_factor × median +
    /// outlier_slack` is dropped before the mean (needs ≥ 3 observers).
    pub outlier_factor: u64,
    /// Additive slack of the outlier rule, so tiny medians don't make
    /// every small fluctuation an outlier.
    pub outlier_slack: u64,
}

impl AggregateOptions {
    /// Defaults: 50% coverage floor, `8×median + 1024` outlier rule.
    pub fn new(expected_nodes_in_mode: [usize; 4]) -> AggregateOptions {
        AggregateOptions {
            expected_nodes_in_mode,
            coverage_floor: 0.5,
            outlier_factor: 8,
            outlier_slack: 1024,
        }
    }

    /// Census for a fixed-mode job: all `nodes` report in `mode`.
    pub fn fixed(mode: CounterMode, nodes: usize) -> AggregateOptions {
        let mut expected = [0usize; 4];
        expected[mode.index()] = nodes;
        AggregateOptions::new(expected)
    }

    /// Census for the even/odd policy over `nodes` nodes.
    pub fn even_odd(even: CounterMode, odd: CounterMode, nodes: usize) -> AggregateOptions {
        let mut expected = [0usize; 4];
        expected[even.index()] += nodes.div_ceil(2);
        expected[odd.index()] += nodes / 2;
        AggregateOptions::new(expected)
    }
}

/// Statistics of one event over the nodes that delivered it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradedEventStats {
    /// Min/max/mean/sum over surviving, non-outlier observers.
    pub stats: EventStats,
    /// Surviving observers over expected observers, in `[0, 1]`.
    pub coverage: f64,
    /// Whether coverage met the floor (only reliable events make it
    /// into [`DegradedFrame::reliable_frame`]).
    pub reliable: bool,
    /// Per-node values discarded by the outlier rule.
    pub outliers_dropped: usize,
    /// Largest per-node value seen *before* outlier rejection (what the
    /// sanity pass checks against [`SATURATION_SUSPECT`]).
    pub raw_max: u64,
}

/// Aggregated view of one set across the surviving nodes of a faulted
/// run. Construction never fails: zero dumps is simply zero coverage.
#[derive(Clone, Debug)]
pub struct DegradedFrame {
    set: u32,
    per_event: HashMap<EventId, DegradedEventStats>,
    observed_by_mode: [usize; 4],
    opts: AggregateOptions,
    records: u32,
}

impl DegradedFrame {
    /// Aggregate `set` over whatever `dumps` survived collection.
    ///
    /// Tolerates everything the strict path rejects: nodes missing the
    /// set contribute nothing, record-count disagreements resolve to
    /// the most common value, malformed sets are skipped.
    pub fn from_dumps(dumps: &[NodeDump], set: u32, opts: AggregateOptions) -> DegradedFrame {
        let mut observed_by_mode = [0usize; 4];
        // event → per-node raw values.
        let mut values: HashMap<EventId, Vec<u64>> = HashMap::new();
        let mut record_votes: HashMap<u32, usize> = HashMap::new();
        for d in dumps {
            let Some(s) = d.set(set) else { continue };
            if s.counts.len() != NUM_COUNTERS {
                continue; // malformed set: quarantine silently here
            }
            observed_by_mode[d.mode.index()] += 1;
            *record_votes.entry(s.records).or_insert(0) += 1;
            for (slot, &v) in s.counts.iter().enumerate() {
                values.entry(EventId::new(d.mode, slot as u8)).or_default().push(v);
            }
        }
        let records = record_votes
            .into_iter()
            .max_by_key(|&(records, votes)| (votes, records))
            .map_or(0, |(r, _)| r);
        let mut per_event = HashMap::with_capacity(values.len());
        for (ev, mut vs) in values {
            let raw_max = vs.iter().copied().max().unwrap_or(0);
            let before = vs.len();
            if vs.len() >= 3 {
                let mut sorted = vs.clone();
                sorted.sort_unstable();
                let median = sorted[sorted.len() / 2];
                let cap = median
                    .saturating_mul(opts.outlier_factor)
                    .saturating_add(opts.outlier_slack);
                vs.retain(|&v| v <= cap);
            }
            let outliers_dropped = before - vs.len();
            let expected = opts.expected_nodes_in_mode[ev.mode().index()];
            let coverage = if expected == 0 {
                1.0
            } else {
                (vs.len() as f64 / expected as f64).min(1.0)
            };
            let stats = EventStats {
                min: vs.iter().copied().min().unwrap_or(0),
                max: vs.iter().copied().max().unwrap_or(0),
                mean: if vs.is_empty() {
                    0.0
                } else {
                    vs.iter().map(|&v| v as f64).sum::<f64>() / vs.len() as f64
                },
                sum: vs.iter().copied().fold(0u64, u64::wrapping_add),
                nodes: vs.len(),
            };
            per_event.insert(
                ev,
                DegradedEventStats {
                    stats,
                    coverage,
                    reliable: coverage >= opts.coverage_floor,
                    outliers_dropped,
                    raw_max,
                },
            );
        }
        DegradedFrame { set, per_event, observed_by_mode, opts, records }
    }

    /// The set this frame aggregates.
    pub fn set(&self) -> u32 {
        self.set
    }

    /// Modal record count among surviving nodes (0 when nothing survived).
    pub fn records(&self) -> u32 {
        self.records
    }

    /// Surviving nodes observed in `mode`.
    pub fn observed_in_mode(&self, mode: CounterMode) -> usize {
        self.observed_by_mode[mode.index()]
    }

    /// Per-event degraded statistics.
    pub fn stats(&self, ev: EventId) -> Option<&DegradedEventStats> {
        self.per_event.get(&ev)
    }

    /// Coverage of one event (0 when no node delivered it).
    pub fn coverage_of(&self, ev: EventId) -> f64 {
        self.per_event.get(&ev).map_or(0.0, |s| s.coverage)
    }

    /// Overall node coverage: surviving observers over the expected
    /// census, across all modes. 1.0 on a fault-free run.
    pub fn coverage(&self) -> f64 {
        let expected: usize = self.opts.expected_nodes_in_mode.iter().sum();
        if expected == 0 {
            return 1.0;
        }
        let observed: usize = self.observed_by_mode.iter().sum();
        (observed as f64 / expected as f64).min(1.0)
    }

    /// Events that failed the coverage floor, sorted by event index.
    pub fn unreliable_events(&self) -> Vec<EventId> {
        let mut v: Vec<EventId> = self
            .per_event
            .iter()
            .filter(|(_, s)| !s.reliable)
            .map(|(&e, _)| e)
            .collect();
        v.sort_by_key(|e| e.index());
        v
    }

    /// Sanity pass over the degraded data: saturated/implausible
    /// counters, coverage below the floor, and outlier drops, as
    /// human-readable complaints (sorted, deterministic).
    pub fn sanity(&self) -> Vec<String> {
        let mut out = Vec::new();
        let expected: usize = self.opts.expected_nodes_in_mode.iter().sum();
        let observed: usize = self.observed_by_mode.iter().sum();
        if observed < expected {
            out.push(format!(
                "set {}: only {observed} of {expected} expected nodes delivered data \
                 (coverage {:.2})",
                self.set,
                self.coverage()
            ));
        }
        for (ev, st) in &self.per_event {
            if st.raw_max >= SATURATION_SUSPECT {
                out.push(format!(
                    "{}: value {:#x} looks saturated/implausible",
                    ev.name(),
                    st.raw_max
                ));
            }
            if st.outliers_dropped > 0 {
                out.push(format!(
                    "{}: dropped {} outlier node value(s) before the mean",
                    ev.name(),
                    st.outliers_dropped
                ));
            }
            if !st.reliable {
                out.push(format!(
                    "{}: coverage {:.2} below floor {:.2} — unreliable",
                    ev.name(),
                    st.coverage,
                    self.opts.coverage_floor
                ));
            }
        }
        out.sort();
        out
    }

    /// Re-package the events that met the coverage floor as a strict
    /// [`Frame`], scaled to the surviving census so per-node and
    /// per-core metrics stay comparable with a fault-free run.
    ///
    /// Returns `None` when nothing survived at all.
    pub fn reliable_frame(&self) -> Option<Frame> {
        if self.observed_by_mode.iter().sum::<usize>() == 0 {
            return None;
        }
        let mut per_event = HashMap::new();
        for (&ev, st) in &self.per_event {
            if !st.reliable {
                continue;
            }
            let observed = self.observed_by_mode[ev.mode().index()];
            // Rescale the mean over kept observers to the surviving
            // node census, so event sums and `nodes_in_mode` agree.
            per_event.insert(
                ev,
                EventStats {
                    min: st.stats.min,
                    max: st.stats.max,
                    mean: st.stats.mean,
                    sum: (st.stats.mean * observed as f64).round() as u64,
                    nodes: observed,
                },
            );
        }
        Some(Frame::from_parts(self.set, per_event, self.observed_by_mode, self.records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_core::dump::SetDump;

    fn dump(node: u32, mode: CounterMode, fill: u64) -> NodeDump {
        NodeDump {
            node,
            mode,
            sets: vec![SetDump { id: 0, records: 1, counts: vec![fill; NUM_COUNTERS] }],
        }
    }

    fn opts(nodes: usize) -> AggregateOptions {
        AggregateOptions::fixed(CounterMode::Mode2, nodes)
    }

    #[test]
    fn full_survival_matches_strict_aggregation() {
        let dumps = vec![dump(0, CounterMode::Mode2, 10), dump(1, CounterMode::Mode2, 30)];
        let d = DegradedFrame::from_dumps(&dumps, 0, opts(2));
        assert_eq!(d.coverage(), 1.0);
        let ev = EventId::new(CounterMode::Mode2, 5);
        let st = d.stats(ev).unwrap();
        assert!(st.reliable);
        assert_eq!(st.stats.sum, 40);
        assert!((st.stats.mean - 20.0).abs() < 1e-12);
        assert!(d.sanity().is_empty());
        let f = d.reliable_frame().unwrap();
        assert_eq!(f.sum(ev), 40);
        assert_eq!(f.nodes_in_mode(CounterMode::Mode2), 2);
    }

    #[test]
    fn missing_nodes_reduce_coverage_not_correctness() {
        // 4 expected, 3 delivered.
        let dumps = vec![
            dump(0, CounterMode::Mode2, 12),
            dump(1, CounterMode::Mode2, 12),
            dump(3, CounterMode::Mode2, 12),
        ];
        let d = DegradedFrame::from_dumps(&dumps, 0, opts(4));
        assert!((d.coverage() - 0.75).abs() < 1e-12);
        let st = d.stats(EventId::new(CounterMode::Mode2, 0)).unwrap();
        assert!(st.reliable, "75% beats the 50% floor");
        assert!((st.stats.mean - 12.0).abs() < 1e-12, "mean unchanged by loss");
        assert!(d.sanity().iter().any(|s| s.contains("3 of 4")));
    }

    #[test]
    fn coverage_floor_marks_events_unreliable() {
        let dumps = vec![dump(0, CounterMode::Mode2, 5)];
        let d = DegradedFrame::from_dumps(&dumps, 0, opts(4)); // 25% < 50%
        let st = d.stats(EventId::new(CounterMode::Mode2, 0)).unwrap();
        assert!(!st.reliable);
        assert_eq!(d.unreliable_events().len(), NUM_COUNTERS);
        // Unreliable events are excluded from the reliable frame.
        let f = d.reliable_frame().unwrap();
        assert!(f.stats(EventId::new(CounterMode::Mode2, 0)).is_none());
    }

    #[test]
    fn bitflipped_outlier_is_dropped_from_the_mean() {
        let mut bad = dump(2, CounterMode::Mode2, 100);
        bad.sets[0].counts[7] = 100 + (1 << 55); // high-bit flip
        let dumps =
            vec![dump(0, CounterMode::Mode2, 100), dump(1, CounterMode::Mode2, 100), bad];
        let d = DegradedFrame::from_dumps(&dumps, 0, opts(3));
        let st = d.stats(EventId::new(CounterMode::Mode2, 7)).unwrap();
        assert_eq!(st.outliers_dropped, 1);
        assert!((st.stats.mean - 100.0).abs() < 1e-12, "mean survives the flip");
        assert_eq!(st.raw_max, 100 + (1 << 55), "raw max remembers the flip");
        assert!(d.sanity().iter().any(|s| s.contains("outlier")));
    }

    #[test]
    fn saturated_counter_is_flagged() {
        let mut bad = dump(0, CounterMode::Mode2, 50);
        bad.sets[0].counts[3] = u64::MAX;
        let dumps = vec![bad, dump(1, CounterMode::Mode2, 50), dump(2, CounterMode::Mode2, 50)];
        let d = DegradedFrame::from_dumps(&dumps, 0, opts(3));
        assert!(d.sanity().iter().any(|s| s.contains("saturated")));
    }

    #[test]
    fn zero_dumps_is_zero_coverage_not_a_panic() {
        let d = DegradedFrame::from_dumps(&[], 0, opts(4));
        assert_eq!(d.coverage(), 0.0);
        assert!(d.reliable_frame().is_none());
        assert!(d.sanity().iter().any(|s| s.contains("0 of 4")));
    }

    #[test]
    fn record_disagreements_resolve_to_the_mode() {
        let mut odd = dump(2, CounterMode::Mode2, 1);
        odd.sets[0].records = 9;
        let dumps = vec![dump(0, CounterMode::Mode2, 1), dump(1, CounterMode::Mode2, 1), odd];
        let d = DegradedFrame::from_dumps(&dumps, 0, opts(3));
        assert_eq!(d.records(), 1);
    }

    #[test]
    fn even_odd_census_splits_expected_nodes() {
        let o = AggregateOptions::even_odd(CounterMode::Mode0, CounterMode::Mode1, 5);
        assert_eq!(o.expected_nodes_in_mode, [3, 2, 0, 0]);
    }
}
