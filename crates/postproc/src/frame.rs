//! Aggregation of per-node dumps into a **counter frame**: the
//! min/max/mean statistics the paper's post-processing tools compute over
//! all nodes of a run (§IV), with the integrity checks it describes
//! ("checked based on the number of records and the length of each
//! record and also for the range of values").

use bgp_arch::events::{CounterMode, EventId, NUM_COUNTERS};
use bgp_arch::{error::Result, BgpError};
use bgp_core::dump::NodeDump;
use std::collections::HashMap;

/// Across-node statistics of one event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventStats {
    /// Smallest per-node value.
    pub min: u64,
    /// Largest per-node value.
    pub max: u64,
    /// Arithmetic mean over observing nodes.
    pub mean: f64,
    /// Sum over observing nodes.
    pub sum: u64,
    /// Number of nodes that observed the event (were in its mode).
    pub nodes: usize,
}

/// Aggregated view of one instrumentation set across all nodes.
#[derive(Clone, Debug)]
pub struct Frame {
    set: u32,
    per_event: HashMap<EventId, EventStats>,
    nodes_by_mode: [usize; 4],
    records: u32,
}

impl Frame {
    /// Build a frame for `set` from per-node dumps, performing the
    /// paper's sanity checks. Every node must carry the set with the same
    /// record count.
    pub fn from_dumps(dumps: &[NodeDump], set: u32) -> Result<Frame> {
        if dumps.is_empty() {
            return Err(BgpError::Corrupt("no dumps to aggregate".into()));
        }
        let mut per_event: HashMap<EventId, EventStats> = HashMap::new();
        let mut nodes_by_mode = [0usize; 4];
        let mut records: Option<u32> = None;
        for d in dumps {
            let s = d.set(set).ok_or_else(|| {
                BgpError::corrupt(format!("node {} is missing set {set}", d.node))
            })?;
            if s.counts.len() != NUM_COUNTERS {
                return Err(BgpError::corrupt(format!(
                    "node {}: set {set} has {} counters (want {NUM_COUNTERS})",
                    d.node,
                    s.counts.len()
                )));
            }
            match records {
                None => records = Some(s.records),
                Some(r) if r == s.records => {}
                Some(r) => {
                    return Err(BgpError::corrupt(format!(
                        "node {}: set {set} has {} records, others have {r}",
                        d.node, s.records
                    )));
                }
            }
            nodes_by_mode[d.mode.index()] += 1;
            for (slot, &v) in s.counts.iter().enumerate() {
                let ev = EventId::new(d.mode, slot as u8);
                per_event
                    .entry(ev)
                    .and_modify(|st| {
                        st.min = st.min.min(v);
                        st.max = st.max.max(v);
                        st.sum += v;
                        st.nodes += 1;
                    })
                    .or_insert(EventStats { min: v, max: v, mean: 0.0, sum: v, nodes: 1 });
            }
        }
        for st in per_event.values_mut() {
            st.mean = st.sum as f64 / st.nodes as f64;
        }
        Ok(Frame {
            set,
            per_event,
            nodes_by_mode,
            records: records.expect("dumps is non-empty"),
        })
    }

    /// Assemble a frame directly from precomputed parts — the degraded
    /// aggregation path reconstructing a reliable frame out of the
    /// events that met their coverage floor.
    pub(crate) fn from_parts(
        set: u32,
        per_event: HashMap<EventId, EventStats>,
        nodes_by_mode: [usize; 4],
        records: u32,
    ) -> Frame {
        Frame { set, per_event, nodes_by_mode, records }
    }

    /// The set this frame aggregates.
    pub fn set(&self) -> u32 {
        self.set
    }

    /// Start/stop pairs accumulated into the set (identical across nodes).
    pub fn records(&self) -> u32 {
        self.records
    }

    /// How many nodes observed each counter mode.
    pub fn nodes_in_mode(&self, mode: CounterMode) -> usize {
        self.nodes_by_mode[mode.index()]
    }

    /// Statistics of one event, if any node observed it.
    pub fn stats(&self, ev: EventId) -> Option<&EventStats> {
        self.per_event.get(&ev)
    }

    /// Sum of an event over all observing nodes (0 if unobserved).
    pub fn sum(&self, ev: EventId) -> u64 {
        self.per_event.get(&ev).map_or(0, |s| s.sum)
    }

    /// Mean of an event over observing nodes (0 if unobserved).
    pub fn mean(&self, ev: EventId) -> f64 {
        self.per_event.get(&ev).map_or(0.0, |s| s.mean)
    }

    /// All observed events with their statistics, sorted by event index
    /// (for the "print the statistics of all 512 counters" CSV option).
    pub fn all_stats(&self) -> Vec<(EventId, EventStats)> {
        let mut v: Vec<_> = self.per_event.iter().map(|(&e, &s)| (e, s)).collect();
        v.sort_by_key(|(e, _)| e.index());
        v
    }

    /// Range-style anomaly scan: returns human-readable complaints for
    /// suspicious data (all-zero frames, wildly skewed per-node values of
    /// events that should be SPMD-symmetric).
    pub fn anomalies(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.per_event.values().all(|s| s.sum == 0) {
            out.push(format!("set {}: every counter is zero", self.set));
        }
        for (ev, st) in &self.per_event {
            if st.nodes > 1 && st.min == 0 && st.max > 1_000_000 {
                out.push(format!(
                    "{}: node spread 0..{} looks asymmetric for an SPMD code",
                    ev.name(),
                    st.max
                ));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_core::dump::SetDump;

    fn dump(node: u32, mode: CounterMode, fill: u64) -> NodeDump {
        NodeDump {
            node,
            mode,
            sets: vec![SetDump { id: 0, records: 1, counts: vec![fill; NUM_COUNTERS] }],
        }
    }

    #[test]
    fn min_max_mean_over_nodes() {
        let dumps = vec![
            dump(0, CounterMode::Mode2, 10),
            dump(1, CounterMode::Mode2, 30),
        ];
        let f = Frame::from_dumps(&dumps, 0).unwrap();
        let ev = EventId::new(CounterMode::Mode2, 5);
        let st = f.stats(ev).unwrap();
        assert_eq!((st.min, st.max, st.sum, st.nodes), (10, 30, 40, 2));
        assert!((st.mean - 20.0).abs() < 1e-12);
        assert_eq!(f.nodes_in_mode(CounterMode::Mode2), 2);
        assert_eq!(f.nodes_in_mode(CounterMode::Mode0), 0);
    }

    #[test]
    fn mixed_modes_partition_the_event_space() {
        let dumps = vec![
            dump(0, CounterMode::Mode0, 7),
            dump(1, CounterMode::Mode1, 9),
        ];
        let f = Frame::from_dumps(&dumps, 0).unwrap();
        assert_eq!(f.sum(EventId::new(CounterMode::Mode0, 0)), 7);
        assert_eq!(f.sum(EventId::new(CounterMode::Mode1, 0)), 9);
        assert_eq!(f.sum(EventId::new(CounterMode::Mode2, 0)), 0);
        assert_eq!(f.all_stats().len(), 512, "two modes → 512 observed events");
    }

    #[test]
    fn missing_set_is_an_integrity_error() {
        let d0 = dump(0, CounterMode::Mode0, 1);
        let mut d1 = dump(1, CounterMode::Mode0, 1);
        d1.sets[0].id = 3;
        assert!(Frame::from_dumps(&[d0, d1], 0).is_err());
    }

    #[test]
    fn record_count_mismatch_is_an_integrity_error() {
        let d0 = dump(0, CounterMode::Mode0, 1);
        let mut d1 = dump(1, CounterMode::Mode0, 1);
        d1.sets[0].records = 2;
        assert!(Frame::from_dumps(&[d0, d1], 0).is_err());
    }

    #[test]
    fn anomaly_scan_flags_all_zero_and_asymmetric_data() {
        let f = Frame::from_dumps(&[dump(0, CounterMode::Mode0, 0)], 0).unwrap();
        assert!(f.anomalies().iter().any(|a| a.contains("every counter is zero")));

        let mut d1 = dump(1, CounterMode::Mode0, 0);
        d1.sets[0].counts[3] = 5_000_000;
        let f = Frame::from_dumps(&[dump(0, CounterMode::Mode0, 0), d1], 0).unwrap();
        assert!(f.anomalies().iter().any(|a| a.contains("asymmetric")));
    }
}
