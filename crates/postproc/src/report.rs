//! Human-readable **run reports**: the one-page text summary an analyst
//! wants before diving into CSVs — per-node integrity, the derived
//! metrics of §IV, and the instruction-mix breakdown.

use crate::frame::Frame;
use crate::metrics::{
    ddr_traffic_bytes_per_node, fp_mix, l3_miss_ratio, mean_core_cycles, mflops_per_core,
    observed_cores, MixCategory,
};
use bgp_arch::events::CounterMode;
use bgp_arch::CORE_CLOCK_HZ;
use bgp_core::dump::NodeDump;
use std::fmt::Write as _;

/// Render a text report for one instrumentation set across all nodes.
pub fn render(dumps: &[NodeDump], frame: &Frame) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "UPC counter report — set {}, {} node(s)", frame.set(), dumps.len());
    let _ = writeln!(out, "{}", "=".repeat(60));

    // Node roster.
    let mut by_mode = [0usize; 4];
    for d in dumps {
        by_mode[d.mode.index()] += 1;
    }
    let _ = writeln!(
        out,
        "counter modes: {}",
        CounterMode::ALL
            .iter()
            .filter(|m| by_mode[m.index()] > 0)
            .map(|m| format!("{} × {}", by_mode[m.index()], m))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "records per set: {}", frame.records());

    // Integrity.
    let anomalies = frame.anomalies();
    if anomalies.is_empty() {
        let _ = writeln!(out, "integrity: clean");
    } else {
        let _ = writeln!(out, "integrity: {} finding(s)", anomalies.len());
        for a in &anomalies {
            let _ = writeln!(out, "  ! {a}");
        }
    }

    // Execution metrics (need per-core events).
    let cores = observed_cores(frame);
    if cores > 0 {
        let cycles = mean_core_cycles(frame);
        let _ = writeln!(out, "\nexecution ({} observed core(s)):", cores);
        let _ = writeln!(out, "  mean core cycles : {cycles:.0}");
        let _ = writeln!(
            out,
            "  mean core time   : {:.3} ms",
            cycles / CORE_CLOCK_HZ as f64 * 1e3
        );
        let _ = writeln!(out, "  MFLOPS per core  : {:.1}", mflops_per_core(frame));

        let mix = fp_mix(frame);
        if mix.total() > 0 {
            let _ = writeln!(out, "\nFP instruction mix ({} instructions):", mix.total());
            for cat in MixCategory::ALL {
                let f = mix.fraction(cat);
                if f > 0.0005 {
                    let bar = "#".repeat((f * 40.0).round() as usize);
                    let _ = writeln!(out, "  {:<14} {:>5.1}% {bar}", cat.label(), f * 100.0);
                }
            }
            let _ = writeln!(out, "  SIMD fraction  {:>6.1}%", mix.simd_fraction() * 100.0);
        }
    }

    // Memory metrics (need mode-2 events).
    if frame.nodes_in_mode(CounterMode::Mode2) > 0 {
        let _ = writeln!(out, "\nmemory system (per node):");
        let _ = writeln!(
            out,
            "  L3→DDR traffic  : {:.2} MB",
            ddr_traffic_bytes_per_node(frame) / 1e6
        );
        let _ = writeln!(out, "  L3 miss ratio   : {:.1}%", l3_miss_ratio(frame) * 100.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::{CoreEvent, NUM_COUNTERS};
    use bgp_core::dump::SetDump;

    fn core_dump() -> NodeDump {
        let mut counts = vec![0u64; NUM_COUNTERS];
        counts[CoreEvent::FpSimdFma.id(0).slot().0 as usize] = 700;
        counts[CoreEvent::FpFma.id(0).slot().0 as usize] = 300;
        counts[CoreEvent::CycleCount.id(0).slot().0 as usize] = 850_000;
        NodeDump {
            node: 0,
            mode: CounterMode::Mode0,
            sets: vec![SetDump { id: 0, records: 1, counts }],
        }
    }

    #[test]
    fn report_contains_the_headline_numbers() {
        let dumps = vec![core_dump()];
        let frame = Frame::from_dumps(&dumps, 0).unwrap();
        let r = render(&dumps, &frame);
        assert!(r.contains("set 0, 1 node(s)"));
        assert!(r.contains("SIMD FMA"));
        assert!(r.contains("SIMD fraction"));
        assert!(r.contains("MFLOPS per core"));
        assert!(r.contains("70.0%"), "simd share of the mix:\n{r}");
    }

    #[test]
    fn report_skips_absent_sections() {
        // A mode-3-only frame has neither core nor memory sections.
        let d = NodeDump {
            node: 1,
            mode: CounterMode::Mode3,
            sets: vec![SetDump { id: 0, records: 1, counts: vec![0; NUM_COUNTERS] }],
        };
        let dumps = vec![d];
        let frame = Frame::from_dumps(&dumps, 0).unwrap();
        let r = render(&dumps, &frame);
        assert!(!r.contains("MFLOPS"));
        assert!(!r.contains("L3 miss"));
        assert!(r.contains("every counter is zero"), "anomaly surfaced:\n{r}");
    }
}
