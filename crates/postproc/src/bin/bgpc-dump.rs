//! `bgpc-dump` — inspect the per-node binary counter dumps the interface
//! library writes (the command-line face of the paper's post-processing
//! tools).
//!
//! ```text
//! bgpc-dump <dir-or-file> [--set N] [--csv out.csv] [--all] [--top K] [--json]
//! ```
//!
//! * default: summary per node + across-node statistics of the set's
//!   busiest counters,
//! * `--set N`: select an instrumentation set (default 0),
//! * `--all`: print every observed counter (the paper's "statistics of
//!   all the 512 counters" option),
//! * `--top K`: how many counters the summary shows (default 20),
//! * `--csv PATH`: also write the statistics as CSV,
//! * `--report`: print the one-page human-readable report instead of the
//!   raw counter table,
//! * `--json`: emit the node summaries, warnings, and statistics as one
//!   JSON document on stdout (machine-readable, shares the toolchain
//!   with `bgpc-trace` timelines).
//!
//! Dumps produced under `CounterPolicy::Multiplexed` carry synthetic
//! sets next to each user set: four per-mode blocks and one schedule
//! set recording the rotation's per-mode cycle/phase weights. Set
//! listings label them (`mux[set.mN]`, `sched[set]`) instead of
//! printing the raw high-bit ids, and `--json` adds a `mux_schedule`
//! object (weights pooled across nodes) plus the counter `policy`
//! recorded in `run.json` when present.

use bgp_arch::events::{EventId, NUM_MODES};
use bgp_core::dump::NodeDump;
use bgp_postproc::{stats_csv, EventStats, Frame};
use bgp_trace::json::escape;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    input: PathBuf,
    set: u32,
    csv: Option<PathBuf>,
    all: bool,
    report: bool,
    json: bool,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut set = 0;
    let mut csv = None;
    let mut all = false;
    let mut report = false;
    let mut json = false;
    let mut top = 20;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--set" => {
                set = it
                    .next()
                    .ok_or("--set needs a value")?
                    .parse()
                    .map_err(|e| format!("--set: {e}"))?;
            }
            "--csv" => csv = Some(PathBuf::from(it.next().ok_or("--csv needs a path")?)),
            "--all" => all = true,
            "--report" => report = true,
            "--json" => json = true,
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: bgpc-dump <dir-or-file> [--set N] [--csv out.csv] [--all] [--top K] [--json]"
                    .into());
            }
            other if input.is_none() => input = Some(PathBuf::from(other)),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    Ok(Args {
        input: input.ok_or("missing input path (a .bgpc file or a directory of them)")?,
        set,
        csv,
        all,
        report,
        json,
        top,
    })
}

/// Run metadata `bgpc-run` records next to the dumps in `run.json`:
/// the `(spec-hash, seed)` cache identity — the same key the counter
/// service (`bgpc-serve`) addresses results by, so a dump directory
/// can be matched to its cache entry — and the counter policy the job
/// ran under, when recorded.
struct RunMeta {
    spec: String,
    seed: u64,
    policy: Option<String>,
}

fn run_meta(input: &Path) -> Option<RunMeta> {
    let text = std::fs::read_to_string(input.join("run.json")).ok()?;
    let v = bgp_trace::json::parse(&text).ok()?;
    let spec = v.get("spec_hash")?.as_str()?.to_string();
    let seed = v.get("seed").and_then(bgp_trace::json::Value::as_u64).unwrap_or(0);
    let policy = v.get("policy").and_then(|p| p.as_str()).map(str::to_string);
    Some(RunMeta { spec, seed, policy })
}

/// Human-readable label for a set id: user sets print as plain
/// numbers, synthetic multiplexing sets as `mux[set.mN]`, rotation
/// schedule sets as `sched[set]`.
fn set_label(id: u32) -> String {
    if let Some((user, mode)) = bgp_core::dump::mux_set_parts(id) {
        format!("mux[{user}.m{mode}]")
    } else if bgp_core::dump::is_mux_sched(id) {
        format!("sched[{}]", id & !bgp_core::dump::MUX_SCHED_BASE)
    } else {
        id.to_string()
    }
}

/// Rotation-schedule weights for `set`, pooled over every node that
/// carries a schedule set (multiplexed dumps only).
fn pooled_schedule(dumps: &[NodeDump], set: u32) -> Option<([u64; NUM_MODES], [u64; NUM_MODES])> {
    let sched_id = bgp_core::dump::mux_sched_id(set);
    let mut cycles = [0u64; NUM_MODES];
    let mut phases = [0u64; NUM_MODES];
    let mut seen = false;
    for d in dumps {
        if let Some(s) = d.set(sched_id) {
            seen = true;
            for m in 0..NUM_MODES {
                cycles[m] += s.counts.get(m).copied().unwrap_or(0);
                phases[m] += s.counts.get(NUM_MODES + m).copied().unwrap_or(0);
            }
        }
    }
    seen.then_some((cycles, phases))
}

/// Render dumps + statistics as one JSON document (stable key order).
fn render_json(
    dumps: &[NodeDump],
    frame: &Frame,
    set: u32,
    meta: Option<&RunMeta>,
    stats: &[(EventId, EventStats)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"set\": {set},");
    if let Some(m) = meta {
        let _ = writeln!(out, "  \"spec_hash\": {},", escape(&m.spec));
        let _ = writeln!(out, "  \"seed\": {},", m.seed);
        if let Some(policy) = &m.policy {
            let _ = writeln!(out, "  \"policy\": {},", escape(policy));
        }
    }
    if let Some((cycles, phases)) = pooled_schedule(dumps, set) {
        let join = |w: &[u64]| {
            w.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
        };
        let _ = writeln!(
            out,
            "  \"mux_schedule\": {{\"cycles\": [{}], \"phases\": [{}]}},",
            join(&cycles),
            join(&phases)
        );
    }
    out.push_str("  \"nodes\": [\n");
    for (i, d) in dumps.iter().enumerate() {
        let sets: Vec<String> = d
            .sets
            .iter()
            .map(|s| {
                format!(
                    "{{\"id\": {}, \"label\": {}, \"records\": {}}}",
                    s.id,
                    escape(&set_label(s.id)),
                    s.records
                )
            })
            .collect();
        let _ = write!(
            out,
            "    {{\"node\": {}, \"mode\": {}, \"sets\": [{}]}}",
            d.node,
            escape(&d.mode.to_string()),
            sets.join(", ")
        );
        out.push_str(if i + 1 < dumps.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"warnings\": [");
    let warnings: Vec<String> =
        frame.anomalies().iter().map(|a| escape(&a.to_string())).collect();
    out.push_str(&warnings.join(", "));
    out.push_str("],\n  \"counters\": [\n");
    for (i, (ev, s)) in stats.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"event\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"nodes\": {}}}",
            escape(&ev.name()),
            s.min,
            s.max,
            s.mean,
            s.nodes
        );
        out.push_str(if i + 1 < stats.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn load(input: &Path) -> Result<Vec<NodeDump>, String> {
    if input.is_dir() {
        bgp_core::read_dumps(input).map_err(|e| e.to_string())
    } else {
        let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
        Ok(vec![bgp_core::dump::decode(&bytes).map_err(|e| e.to_string())?])
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let dumps = match load(&args.input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bgpc-dump: {e}");
            return ExitCode::FAILURE;
        }
    };

    let frame = match Frame::from_dumps(&dumps, args.set) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bgpc-dump: {e}");
            return ExitCode::FAILURE;
        }
    };

    let meta = args.input.is_dir().then(|| run_meta(&args.input)).flatten();

    if args.json {
        let mut stats = frame.all_stats();
        if !args.all {
            stats.sort_by_key(|(_, s)| std::cmp::Reverse(s.sum));
            stats.truncate(args.top);
        }
        print!("{}", render_json(&dumps, &frame, args.set, meta.as_ref(), &stats));
        if let Some(path) = args.csv {
            if let Err(e) = stats_csv(&frame).write(&path) {
                eprintln!("bgpc-dump: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    println!("{} node dump(s)", dumps.len());
    if let Some(m) = &meta {
        println!("cache key: spec {}, seed {}", m.spec, m.seed);
        if let Some(policy) = &m.policy {
            println!("counter policy: {policy}");
        }
    }
    for d in &dumps {
        let sets: Vec<String> = d
            .sets
            .iter()
            .map(|s| format!("{} ({} records)", set_label(s.id), s.records))
            .collect();
        println!("  node {:>5}  {}  sets: [{}]", d.node, d.mode, sets.join(", "));
    }
    if let Some((cycles, phases)) = pooled_schedule(&dumps, args.set) {
        println!("mux schedule (pooled): cycles {cycles:?}, phases {phases:?}");
    }
    for a in frame.anomalies() {
        println!("warning: {a}");
    }

    if args.report {
        println!("\n{}", bgp_postproc::render_report(&dumps, &frame));
        return ExitCode::SUCCESS;
    }

    let mut stats = frame.all_stats();
    if !args.all {
        stats.sort_by_key(|(_, s)| std::cmp::Reverse(s.sum));
        stats.truncate(args.top);
    }
    println!(
        "\nset {} — {} counters{}:",
        args.set,
        stats.len(),
        if args.all { "" } else { " (by total, use --all for every slot)" }
    );
    println!("{:<32} {:>14} {:>14} {:>16} {:>6}", "event", "min", "max", "mean", "nodes");
    for (ev, s) in &stats {
        println!(
            "{:<32} {:>14} {:>14} {:>16.1} {:>6}",
            ev.name(),
            s.min,
            s.max,
            s.mean,
            s.nodes
        );
    }

    if let Some(path) = args.csv {
        if let Err(e) = stats_csv(&frame).write(&path) {
            eprintln!("bgpc-dump: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("\nstatistics written to {}", path.display());
    }
    ExitCode::SUCCESS
}
