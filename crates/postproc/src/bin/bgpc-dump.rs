//! `bgpc-dump` — inspect the per-node binary counter dumps the interface
//! library writes (the command-line face of the paper's post-processing
//! tools).
//!
//! ```text
//! bgpc-dump <dir-or-file> [--set N] [--csv out.csv] [--all] [--top K]
//! ```
//!
//! * default: summary per node + across-node statistics of the set's
//!   busiest counters,
//! * `--set N`: select an instrumentation set (default 0),
//! * `--all`: print every observed counter (the paper's "statistics of
//!   all the 512 counters" option),
//! * `--top K`: how many counters the summary shows (default 20),
//! * `--csv PATH`: also write the statistics as CSV,
//! * `--report`: print the one-page human-readable report instead of the
//!   raw counter table.

use bgp_core::dump::NodeDump;
use bgp_postproc::{stats_csv, Frame};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    input: PathBuf,
    set: u32,
    csv: Option<PathBuf>,
    all: bool,
    report: bool,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut set = 0;
    let mut csv = None;
    let mut all = false;
    let mut report = false;
    let mut top = 20;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--set" => {
                set = it
                    .next()
                    .ok_or("--set needs a value")?
                    .parse()
                    .map_err(|e| format!("--set: {e}"))?;
            }
            "--csv" => csv = Some(PathBuf::from(it.next().ok_or("--csv needs a path")?)),
            "--all" => all = true,
            "--report" => report = true,
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: bgpc-dump <dir-or-file> [--set N] [--csv out.csv] [--all] [--top K]"
                    .into());
            }
            other if input.is_none() => input = Some(PathBuf::from(other)),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    Ok(Args {
        input: input.ok_or("missing input path (a .bgpc file or a directory of them)")?,
        set,
        csv,
        all,
        report,
        top,
    })
}

fn load(input: &Path) -> Result<Vec<NodeDump>, String> {
    if input.is_dir() {
        bgp_core::read_dumps(input).map_err(|e| e.to_string())
    } else {
        let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
        Ok(vec![bgp_core::dump::decode(&bytes).map_err(|e| e.to_string())?])
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let dumps = match load(&args.input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bgpc-dump: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{} node dump(s)", dumps.len());
    for d in &dumps {
        let sets: Vec<String> = d
            .sets
            .iter()
            .map(|s| format!("{} ({} records)", s.id, s.records))
            .collect();
        println!("  node {:>5}  {}  sets: [{}]", d.node, d.mode, sets.join(", "));
    }

    let frame = match Frame::from_dumps(&dumps, args.set) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bgpc-dump: {e}");
            return ExitCode::FAILURE;
        }
    };
    for a in frame.anomalies() {
        println!("warning: {a}");
    }

    if args.report {
        println!("\n{}", bgp_postproc::render_report(&dumps, &frame));
        return ExitCode::SUCCESS;
    }

    let mut stats = frame.all_stats();
    if !args.all {
        stats.sort_by_key(|(_, s)| std::cmp::Reverse(s.sum));
        stats.truncate(args.top);
    }
    println!(
        "\nset {} — {} counters{}:",
        args.set,
        stats.len(),
        if args.all { "" } else { " (by total, use --all for every slot)" }
    );
    println!("{:<32} {:>14} {:>14} {:>16} {:>6}", "event", "min", "max", "mean", "nodes");
    for (ev, s) in &stats {
        println!(
            "{:<32} {:>14} {:>14} {:>16.1} {:>6}",
            ev.name(),
            s.min,
            s.max,
            s.mean,
            s.nodes
        );
    }

    if let Some(path) = args.csv {
        if let Err(e) = stats_csv(&frame).write(&path) {
            eprintln!("bgpc-dump: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("\nstatistics written to {}", path.display());
    }
    ExitCode::SUCCESS
}
