//! `bgpc-diff` — compare the counter dumps of two runs ("when users
//! execute multiple experiments, this adds an extra dimension of
//! complexity" — §II; this tool is the across-experiment view).
//!
//! ```text
//! bgpc-diff <dir-a> <dir-b> [--set N] [--threshold PCT]
//! ```
//!
//! Prints every event whose across-node mean changed by more than the
//! threshold (default 5%), sorted by relative change; useful for
//! before/after comparisons of a flag, cache size, or mode switch.

use bgp_postproc::Frame;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut positional = Vec::new();
    let mut set = 0u32;
    let mut threshold = 5.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--set" => set = it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--threshold" => {
                threshold = it.next().and_then(|v| v.parse().ok()).unwrap_or(5.0)
            }
            other => positional.push(PathBuf::from(other)),
        }
    }
    if positional.len() != 2 {
        eprintln!("usage: bgpc-diff <dir-a> <dir-b> [--set N] [--threshold PCT]");
        return ExitCode::FAILURE;
    }

    let frames: Vec<Frame> = match positional
        .iter()
        .map(|p| {
            bgp_core::read_dumps(p)
                .and_then(|d| Frame::from_dumps(&d, set))
                .map_err(|e| format!("{}: {e}", p.display()))
        })
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bgpc-diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (a, b) = (&frames[0], &frames[1]);

    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for (ev, sa) in a.all_stats() {
        let mb = b.mean(ev);
        let ma = sa.mean;
        if ma == 0.0 && mb == 0.0 {
            continue;
        }
        let change = if ma == 0.0 {
            f64::INFINITY
        } else {
            (mb - ma) / ma * 100.0
        };
        if change.abs() >= threshold {
            rows.push((ev.name(), ma, mb, change));
        }
    }
    rows.sort_by(|x, y| y.3.abs().partial_cmp(&x.3.abs()).expect("no NaNs here"));

    if rows.is_empty() {
        println!("no event changed by more than {threshold}% (set {set})");
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<32} {:>16} {:>16} {:>10}",
        "event", "mean A", "mean B", "change"
    );
    for (name, ma, mb, change) in rows {
        println!("{name:<32} {ma:>16.1} {mb:>16.1} {change:>+9.1}%");
    }
    ExitCode::SUCCESS
}
