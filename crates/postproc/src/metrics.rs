//! **Derived metrics**: the user-defined quantities the paper computes
//! from raw counters — MFLOPS from the FPU counters, L3-DDR traffic from
//! the L3/DDR counters, and the dynamic FP instruction mix of Fig. 6.

use crate::frame::Frame;
use bgp_arch::events::{CoreEvent, CounterMode, SharedEvent};
use bgp_arch::{CORES_PER_NODE, CORE_CLOCK_HZ, LINE_BYTES};

/// The seven FP instruction categories of the paper's Fig. 6.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MixCategory {
    /// Scalar add/subtract.
    SingleAddSub,
    /// Scalar multiply.
    SingleMult,
    /// Scalar fused multiply-add.
    SingleFma,
    /// Scalar divide.
    SingleDiv,
    /// SIMD add/subtract.
    SimdAddSub,
    /// SIMD fused multiply-add.
    SimdFma,
    /// SIMD multiply.
    SimdMult,
}

impl MixCategory {
    /// Categories in the paper's legend order.
    pub const ALL: [MixCategory; 7] = [
        MixCategory::SingleAddSub,
        MixCategory::SingleMult,
        MixCategory::SingleFma,
        MixCategory::SingleDiv,
        MixCategory::SimdAddSub,
        MixCategory::SimdFma,
        MixCategory::SimdMult,
    ];

    /// Label used in figures/CSV.
    pub const fn label(self) -> &'static str {
        match self {
            MixCategory::SingleAddSub => "single add-sub",
            MixCategory::SingleMult => "single mult",
            MixCategory::SingleFma => "single FMA",
            MixCategory::SingleDiv => "single div",
            MixCategory::SimdAddSub => "SIMD add-sub",
            MixCategory::SimdFma => "SIMD FMA",
            MixCategory::SimdMult => "SIMD mult",
        }
    }

    const fn event(self) -> CoreEvent {
        match self {
            MixCategory::SingleAddSub => CoreEvent::FpAddSub,
            MixCategory::SingleMult => CoreEvent::FpMult,
            MixCategory::SingleFma => CoreEvent::FpFma,
            MixCategory::SingleDiv => CoreEvent::FpDiv,
            MixCategory::SimdAddSub => CoreEvent::FpSimdAddSub,
            MixCategory::SimdFma => CoreEvent::FpSimdFma,
            MixCategory::SimdMult => CoreEvent::FpSimdMult,
        }
    }

    /// Flops retired per instruction of this category.
    pub const fn flops_per_instr(self) -> u64 {
        match self {
            MixCategory::SingleAddSub | MixCategory::SingleMult | MixCategory::SingleDiv => 1,
            MixCategory::SingleFma | MixCategory::SimdAddSub | MixCategory::SimdMult => 2,
            MixCategory::SimdFma => 4,
        }
    }
}

/// Dynamic FP instruction mix (summed over all observed cores).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FpMix {
    counts: [u64; 7],
}

impl FpMix {
    /// Instruction count of one category.
    pub fn count(&self, c: MixCategory) -> u64 {
        self.counts[c as usize]
    }

    /// Total FP arithmetic instructions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of one category (0 if the mix is empty).
    pub fn fraction(&self, c: MixCategory) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(c) as f64 / t as f64
        }
    }

    /// Total flops represented by the mix.
    pub fn flops(&self) -> u64 {
        MixCategory::ALL
            .iter()
            .map(|&c| self.count(c) * c.flops_per_instr())
            .sum()
    }

    /// Fraction of instructions that were SIMD.
    pub fn simd_fraction(&self) -> f64 {
        self.fraction(MixCategory::SimdAddSub)
            + self.fraction(MixCategory::SimdFma)
            + self.fraction(MixCategory::SimdMult)
    }
}

/// Sum the FP instruction mix over every core observed by the frame
/// (cores 0–1 from mode-0 nodes, cores 2–3 from mode-1 nodes).
pub fn fp_mix(frame: &Frame) -> FpMix {
    let mut mix = FpMix::default();
    for (i, &cat) in MixCategory::ALL.iter().enumerate() {
        for core in 0..CORES_PER_NODE {
            mix.counts[i] += frame.sum(cat.event().id(core));
        }
    }
    mix
}

/// Number of cores whose private events the frame observed.
pub fn observed_cores(frame: &Frame) -> usize {
    2 * (frame.nodes_in_mode(CounterMode::Mode0) + frame.nodes_in_mode(CounterMode::Mode1))
}

/// Mean cycle count over all observed cores (the run's execution time in
/// cycles for an SPMD code).
pub fn mean_core_cycles(frame: &Frame) -> f64 {
    let cores = observed_cores(frame);
    if cores == 0 {
        return 0.0;
    }
    let total: u64 = (0..CORES_PER_NODE)
        .map(|c| frame.sum(CoreEvent::CycleCount.id(c)))
        .sum();
    total as f64 / cores as f64
}

/// Achieved MFLOPS per **core**: observed flops per observed core over
/// mean execution time.
pub fn mflops_per_core(frame: &Frame) -> f64 {
    let cores = observed_cores(frame);
    let cycles = mean_core_cycles(frame);
    if cores == 0 || cycles == 0.0 {
        return 0.0;
    }
    let flops_per_core = fp_mix(frame).flops() as f64 / cores as f64;
    let seconds = cycles / CORE_CLOCK_HZ as f64;
    flops_per_core / seconds / 1e6
}

/// Achieved MFLOPS per **chip** given how many cores the operating mode
/// keeps busy (4 in VNM, 1 in SMP/1).
pub fn mflops_per_chip(frame: &Frame, active_cores_per_chip: usize) -> f64 {
    mflops_per_core(frame) * active_cores_per_chip as f64
}

/// DDR read+write bursts per mode-2 node (mean).
pub fn ddr_bursts_per_node(frame: &Frame) -> f64 {
    let nodes = frame.nodes_in_mode(CounterMode::Mode2);
    if nodes == 0 {
        return 0.0;
    }
    let total: u64 = [
        SharedEvent::DdrRead0,
        SharedEvent::DdrRead1,
        SharedEvent::DdrWrite0,
        SharedEvent::DdrWrite1,
    ]
    .iter()
    .map(|e| frame.sum(e.id()))
    .sum();
    total as f64 / nodes as f64
}

/// The paper's "L3-DDR traffic" metric: bytes moved between the L3 and
/// DDR per node (mean across mode-2 nodes).
pub fn ddr_traffic_bytes_per_node(frame: &Frame) -> f64 {
    ddr_bursts_per_node(frame) * LINE_BYTES as f64
}

/// DDR bandwidth in MB/s per node, using the mean core cycle count of a
/// companion core-mode frame as the time base.
pub fn ddr_bandwidth_mb_s(traffic_frame: &Frame, cycles: f64) -> f64 {
    if cycles == 0.0 {
        return 0.0;
    }
    let seconds = cycles / CORE_CLOCK_HZ as f64;
    ddr_traffic_bytes_per_node(traffic_frame) / seconds / 1e6
}

/// L3 miss ratio (misses / (hits+misses)) per mode-2 node.
pub fn l3_miss_ratio(frame: &Frame) -> f64 {
    let hits = frame.sum(SharedEvent::L3Hit0.id()) + frame.sum(SharedEvent::L3Hit1.id());
    let misses = frame.sum(SharedEvent::L3Miss0.id()) + frame.sum(SharedEvent::L3Miss1.id());
    if hits + misses == 0 {
        return 0.0;
    }
    misses as f64 / (hits + misses) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::NUM_COUNTERS;
    use bgp_core::dump::{NodeDump, SetDump};

    fn dump_with(node: u32, mode: CounterMode, slots: &[(usize, u64)]) -> NodeDump {
        let mut counts = vec![0u64; NUM_COUNTERS];
        for &(s, v) in slots {
            counts[s] = v;
        }
        NodeDump { node, mode, sets: vec![SetDump { id: 0, records: 1, counts }] }
    }

    #[test]
    fn mix_aggregates_all_observed_cores() {
        let slot = |ev: CoreEvent, core: usize| ev.id(core).slot().0 as usize;
        let d0 = dump_with(
            0,
            CounterMode::Mode0,
            &[(slot(CoreEvent::FpFma, 0), 10), (slot(CoreEvent::FpFma, 1), 20)],
        );
        let d1 = dump_with(
            1,
            CounterMode::Mode1,
            &[(slot(CoreEvent::FpSimdFma, 2), 5), (slot(CoreEvent::FpAddSub, 3), 1)],
        );
        let f = Frame::from_dumps(&[d0, d1], 0).unwrap();
        let mix = fp_mix(&f);
        assert_eq!(mix.count(MixCategory::SingleFma), 30);
        assert_eq!(mix.count(MixCategory::SimdFma), 5);
        assert_eq!(mix.count(MixCategory::SingleAddSub), 1);
        assert_eq!(mix.total(), 36);
        assert_eq!(mix.flops(), 30 * 2 + 5 * 4 + 1);
        assert!((mix.fraction(MixCategory::SingleFma) - 30.0 / 36.0).abs() < 1e-12);
        assert_eq!(observed_cores(&f), 4);
    }

    #[test]
    fn mflops_math_is_dimensionally_right() {
        // One core, 850e6 cycles = 1 second, 425e6 FMA instrs = 850e6 flops.
        let slot = |ev: CoreEvent, core: usize| ev.id(core).slot().0 as usize;
        let d = dump_with(
            0,
            CounterMode::Mode0,
            &[
                (slot(CoreEvent::FpFma, 0), 425_000_000),
                (slot(CoreEvent::CycleCount, 0), 850_000_000),
            ],
        );
        let f = Frame::from_dumps(&[d], 0).unwrap();
        // Observed cores = 2 (core 1 idle). flops/core = 425e6, mean
        // cycles = 425e6 → 425e6 flops in 0.5 s = 850 MFLOPS... per core.
        let per_core = mflops_per_core(&f);
        assert!((per_core - 850.0).abs() < 1.0, "got {per_core}");
        assert!((mflops_per_chip(&f, 4) - 3400.0).abs() < 4.0);
    }

    #[test]
    fn traffic_metric_counts_reads_and_writes_in_bytes() {
        let d = dump_with(
            0,
            CounterMode::Mode2,
            &[
                (SharedEvent::DdrRead0.id().slot().0 as usize, 100),
                (SharedEvent::DdrRead1.id().slot().0 as usize, 50),
                (SharedEvent::DdrWrite0.id().slot().0 as usize, 25),
            ],
        );
        let f = Frame::from_dumps(&[d], 0).unwrap();
        assert_eq!(ddr_bursts_per_node(&f), 175.0);
        assert_eq!(ddr_traffic_bytes_per_node(&f), 175.0 * 128.0);
        // 175 bursts over 850e6 cycles (1 s) = 22400 B/s.
        assert!((ddr_bandwidth_mb_s(&f, 850_000_000.0) - 175.0 * 128.0 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn l3_miss_ratio_is_bounded() {
        let d = dump_with(
            0,
            CounterMode::Mode2,
            &[
                (SharedEvent::L3Hit0.id().slot().0 as usize, 90),
                (SharedEvent::L3Miss0.id().slot().0 as usize, 10),
            ],
        );
        let f = Frame::from_dumps(&[d], 0).unwrap();
        assert!((l3_miss_ratio(&f) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_frames_yield_zero_metrics() {
        let d = dump_with(0, CounterMode::Mode3, &[]);
        let f = Frame::from_dumps(&[d], 0).unwrap();
        assert_eq!(fp_mix(&f).total(), 0);
        assert_eq!(mflops_per_core(&f), 0.0);
        assert_eq!(ddr_traffic_bytes_per_node(&f), 0.0);
        assert_eq!(l3_miss_ratio(&f), 0.0);
    }
}
