//! **Instruction selection**: how a compiler invocation lowers semantic
//! floating-point work onto the PPC450 + double-hummer instruction set.
//!
//! Workload kernels are written against semantic element operations
//! (multiply-add a pair, add a pair, …). [`CodeGen`] decides, per element
//! pair, whether the pair becomes one SIMD instruction plus quadword
//! memory ops (possible only under `-qarch=440d` on loops with data
//! parallelism) or two scalar instructions with double-word memory ops,
//! whether a multiply-add fuses, and how many overhead (integer, branch,
//! redundant-memory) instructions surround the useful work.
//!
//! All fractional coverage decisions use deterministic Bresenham
//! accumulators, so the same build of the same kernel always produces
//! the same instruction stream.

use crate::opts::{CompileOpts, OptLevel};

/// Deterministic fractional selector: `next()` returns `true` with
/// long-run frequency `num/den`, with no RNG.
#[derive(Clone, Debug)]
pub struct FractionSelector {
    num: u32,
    den: u32,
    acc: u32,
}

impl FractionSelector {
    /// Selector with frequency `num/den` (clamped to ≤ 1).
    pub fn new(num: u32, den: u32) -> FractionSelector {
        assert!(den > 0);
        FractionSelector { num: num.min(den), den, acc: 0 }
    }

    /// Selector from a float fraction with 1/1024 resolution.
    pub fn from_fraction(f: f64) -> FractionSelector {
        let num = (f.clamp(0.0, 1.0) * 1024.0).round() as u32;
        FractionSelector::new(num, 1024)
    }

    /// Next decision in the deterministic sequence.
    // Not an Iterator: the sequence is infinite and yields bare bools,
    // so `Option<bool>` would only add an unreachable `None` arm.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> bool {
        self.acc += self.num;
        if self.acc >= self.den {
            self.acc -= self.den;
            true
        } else {
            false
        }
    }
}

/// Numeric parameters a [`CompileOpts`] expands to.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CodeGenParams {
    /// Fuse multiply-add chains into FMA instructions.
    pub fma_fusion: bool,
    /// SIMD-ize vectorizable element pairs (requires `-qarch=440d`, ≥O3).
    pub simdize: bool,
    /// Fraction of vectorizable pairs actually SIMD-ized (loop-analysis
    /// quality grows with the optimization level).
    pub simd_coverage: f64,
    /// Overhead integer instructions per element of useful work
    /// (address arithmetic, spills, uneliminated subexpressions).
    pub int_overhead_per_elem: f64,
    /// Extra (redundant) memory instructions per useful memory op —
    /// poor register allocation at low optimization levels.
    pub redundant_mem_frac: f64,
    /// Loop unroll factor: one branch per `unroll` elements.
    pub unroll: u32,
    /// Branch misprediction frequency (fraction of branches).
    pub mispredict_frac: f64,
}

impl CodeGenParams {
    /// Expand a flag set into lowering parameters.
    pub fn from_opts(o: &CompileOpts) -> CodeGenParams {
        let (int_ovh, red_mem, unroll, mispred) = match o.opt {
            OptLevel::O2 => (0.60, 0.40, 1, 1.0 / 48.0),
            OptLevel::O3 => (0.30, 0.15, 2, 1.0 / 64.0),
            OptLevel::O4 => (0.20, 0.08, 4, 1.0 / 128.0),
            OptLevel::O5 => (0.12, 0.05, 4, 1.0 / 128.0),
        };
        // -qhot's loop restructuring trims further overhead;
        // -qtune improves schedule (fewer mispredicted exits).
        let hot = if o.qhot { 0.8 } else { 1.0 };
        let tune = if o.qtune { 0.75 } else { 1.0 };
        CodeGenParams {
            fma_fusion: o.fma_enabled(),
            simdize: o.simd_enabled(),
            simd_coverage: match o.opt {
                OptLevel::O2 => 0.0,
                OptLevel::O3 => 0.55,
                OptLevel::O4 => 0.80,
                OptLevel::O5 => 0.95,
            },
            int_overhead_per_elem: int_ovh * hot,
            redundant_mem_frac: red_mem * hot,
            unroll,
            mispredict_frac: mispred * tune,
        }
    }
}

/// Instruction budget of one scalar math-library evaluation (`ln`,
/// `sqrt`, `exp`, …) under a given build.
///
/// Baseline `-O -qstrict` builds call a generic softfloat-careful libm
/// (function-call overhead, full-precision polynomial, two divides);
/// higher levels inline hardware-aware sequences and at `-O4`/`-O5` the
/// XL stack substitutes MASS-library kernels (Newton iterations on FMA,
/// a single divide).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LibmProfile {
    /// Fused multiply-adds per evaluation.
    pub fma: u64,
    /// Plain multiplies per evaluation.
    pub mul: u64,
    /// Divides per evaluation (long-latency).
    pub div: u64,
    /// Integer instructions (call linkage, range reduction).
    pub int_ops: u64,
}

/// How one element pair's arithmetic is lowered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairPlan {
    /// One SIMD instruction covers both elements; memory traffic moves as
    /// quadwords.
    Simd,
    /// Two scalar instructions; memory traffic moves as doubles.
    Scalar,
}

/// Overhead instructions to retire alongside a batch of useful work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Overhead {
    /// Integer/address instructions.
    pub int_ops: u64,
    /// Branches.
    pub branches: u64,
    /// Of which mispredicted.
    pub mispredicts: u64,
}

/// Stateful instruction-selection engine for one compiled kernel.
///
/// ```
/// use bgp_compiler::{CodeGen, CompileOpts, PairPlan};
///
/// // The paper's baseline build never SIMD-izes or fuses…
/// let mut base = CodeGen::new(CompileOpts::baseline());
/// assert!(!base.fma());
/// assert_eq!(base.plan_pair(true), PairPlan::Scalar);
///
/// // …while -O5 -qarch=440d covers ~95% of vectorizable pairs.
/// let mut best = CodeGen::new(CompileOpts::o5());
/// let simd = (0..100).filter(|_| best.plan_pair(true) == PairPlan::Simd).count();
/// assert!(simd >= 90);
/// ```
#[derive(Clone, Debug)]
pub struct CodeGen {
    opts: CompileOpts,
    params: CodeGenParams,
    simd_sel: FractionSelector,
    red_mem_sel: FractionSelector,
    int_acc: FractionSelector,
    mispred_sel: FractionSelector,
    branch_rem: u32,
}

impl CodeGen {
    /// Instruction selection under `opts`.
    pub fn new(opts: CompileOpts) -> CodeGen {
        let params = CodeGenParams::from_opts(&opts);
        CodeGen {
            simd_sel: FractionSelector::from_fraction(if params.simdize {
                params.simd_coverage
            } else {
                0.0
            }),
            red_mem_sel: FractionSelector::from_fraction(params.redundant_mem_frac),
            int_acc: FractionSelector::from_fraction(
                params.int_overhead_per_elem.fract().max(0.0),
            ),
            mispred_sel: FractionSelector::from_fraction(params.mispredict_frac),
            branch_rem: 0,
            opts,
            params,
        }
    }

    /// The flag set this engine lowers for.
    pub fn opts(&self) -> &CompileOpts {
        &self.opts
    }

    /// The expanded parameters.
    pub fn params(&self) -> &CodeGenParams {
        &self.params
    }

    /// Whether multiply-adds fuse into FMA instructions.
    #[inline]
    pub fn fma(&self) -> bool {
        self.params.fma_fusion
    }

    /// Decide how to lower the next element pair of a loop whose data
    /// parallelism the compiler can (`vectorizable`) or cannot see.
    #[inline]
    pub fn plan_pair(&mut self, vectorizable: bool) -> PairPlan {
        if vectorizable && self.params.simdize && self.simd_sel.next() {
            PairPlan::Simd
        } else {
            PairPlan::Scalar
        }
    }

    /// Cost of one scalar math-library call under this build (see
    /// [`LibmProfile`]).
    pub fn libm(&self) -> LibmProfile {
        match self.opts.opt {
            OptLevel::O2 => LibmProfile { fma: 22, mul: 6, div: 2, int_ops: 12 },
            OptLevel::O3 => LibmProfile { fma: 16, mul: 4, div: 2, int_ops: 4 },
            OptLevel::O4 => LibmProfile { fma: 12, mul: 3, div: 1, int_ops: 2 },
            OptLevel::O5 => LibmProfile { fma: 10, mul: 2, div: 1, int_ops: 1 },
        }
    }

    /// Whether the next memory operation is duplicated by a redundant
    /// spill/reload (charged as an extra scalar load by the caller).
    #[inline]
    pub fn redundant_mem(&mut self) -> bool {
        self.red_mem_sel.next()
    }

    /// Overhead instructions accompanying `elements` of useful loop work.
    pub fn overhead(&mut self, elements: u64) -> Overhead {
        let whole = self.params.int_overhead_per_elem.trunc() as u64;
        let mut int_ops = whole * elements;
        for _ in 0..elements {
            if self.int_acc.next() {
                int_ops += 1;
            }
        }
        let mut branches = 0;
        let mut mispredicts = 0;
        let unroll = self.params.unroll;
        for _ in 0..elements {
            self.branch_rem += 1;
            if self.branch_rem >= unroll {
                self.branch_rem = 0;
                branches += 1;
                if self.mispred_sel.next() {
                    mispredicts += 1;
                }
            }
        }
        Overhead { int_ops, branches, mispredicts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::QArch;

    #[test]
    fn fraction_selector_hits_its_frequency() {
        let mut s = FractionSelector::new(3, 10);
        let hits = (0..10_000).filter(|_| s.next()).count();
        assert_eq!(hits, 3_000);
    }

    #[test]
    fn fraction_selector_extremes() {
        let mut zero = FractionSelector::from_fraction(0.0);
        assert!((0..100).all(|_| !zero.next()));
        let mut one = FractionSelector::from_fraction(1.0);
        assert!((0..100).all(|_| one.next()));
    }

    #[test]
    fn baseline_never_simdizes_or_fuses() {
        let mut cg = CodeGen::new(CompileOpts::baseline());
        assert!(!cg.fma());
        for _ in 0..1000 {
            assert_eq!(cg.plan_pair(true), PairPlan::Scalar);
        }
    }

    #[test]
    fn o5_440d_simdizes_most_vectorizable_pairs() {
        let mut cg = CodeGen::new(CompileOpts::o5());
        let simd = (0..10_000)
            .filter(|_| cg.plan_pair(true) == PairPlan::Simd)
            .count();
        assert!((9_400..=9_600).contains(&simd), "simd pairs: {simd}");
        // Non-vectorizable loops never SIMD-ize regardless of flags.
        assert_eq!(cg.plan_pair(false), PairPlan::Scalar);
    }

    #[test]
    fn simd_coverage_grows_with_level() {
        let count = |opts: CompileOpts| {
            let mut cg = CodeGen::new(opts);
            (0..10_000).filter(|_| cg.plan_pair(true) == PairPlan::Simd).count()
        };
        let o3 = count(CompileOpts::o3());
        let o4 = count(CompileOpts::o4());
        let o5 = count(CompileOpts::o5());
        assert!(o3 < o4 && o4 < o5, "{o3} {o4} {o5}");
        assert_eq!(count(CompileOpts::o5().with_qarch(QArch::Ppc440)), 0);
    }

    #[test]
    fn overhead_shrinks_with_optimization() {
        let total = |opts: CompileOpts| {
            let mut cg = CodeGen::new(opts);
            let o = cg.overhead(10_000);
            o.int_ops + o.branches
        };
        let base = total(CompileOpts::baseline());
        let o3 = total(CompileOpts::o3());
        let o5 = total(CompileOpts::o5());
        assert!(base > o3 && o3 > o5, "{base} {o3} {o5}");
    }

    #[test]
    fn unrolling_reduces_branch_count() {
        let branches = |opts: CompileOpts| CodeGen::new(opts).overhead(1024).branches;
        assert_eq!(branches(CompileOpts::baseline()), 1024);
        assert_eq!(branches(CompileOpts::o3()), 512);
        assert_eq!(branches(CompileOpts::o5()), 256);
    }

    #[test]
    fn determinism_same_opts_same_stream() {
        let run = || {
            let mut cg = CodeGen::new(CompileOpts::o4());
            let plans: Vec<_> = (0..500).map(|i| cg.plan_pair(i % 3 != 0)).collect();
            let ovh = cg.overhead(1000);
            (plans, ovh)
        };
        assert_eq!(run(), run());
    }
}
