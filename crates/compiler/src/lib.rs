//! # bgp-compiler — the XL compiler optimization model
//!
//! The paper compiles the NAS benchmarks with IBM's XL compilers at
//! `-O -qstrict`, `-O3`, `-O4` and `-O5`, with and without
//! `-qarch=440d`, and reads the consequences off the UPC counters
//! (§VI, Figs. 6–10). Without those proprietary compilers, this crate
//! models the *decisions* that matter to the counters: FMA fusion,
//! SIMD-ization of data-parallel loops onto the double-hummer FPU
//! (including quadload/quadstore selection), loop unrolling, and the
//! residual overhead instructions of each level.
//!
//! [`opts::CompileOpts`] is the flag vocabulary; [`lowering::CodeGen`]
//! makes the per-element-pair instruction-selection decisions that the
//! workload layer turns into retired instructions on a simulated core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lowering;
pub mod opts;

pub use lowering::{CodeGen, CodeGenParams, FractionSelector, LibmProfile, Overhead, PairPlan};
pub use opts::{CompileOpts, OptLevel, QArch};
