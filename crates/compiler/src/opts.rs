//! The XL compiler **flag model**: optimization levels and the `-q`
//! options the paper sweeps (§VI).
//!
//! | flag         | modeled effect                                        |
//! |--------------|-------------------------------------------------------|
//! | `-O` (+`-qstrict`) | baseline: CSE/code motion only; `-qstrict` forbids FMA fusion (it changes rounding) |
//! | `-O3`        | FMA fusion, strength reduction, unrolling ×2          |
//! | `-O4`        | `-O3` + `-qarch -qtune -qcache -qhot`: deeper unrolling, loop optimization, less overhead |
//! | `-O5`        | `-O4` + interprocedural analysis: minimal overhead, best SIMD coverage |
//! | `-qarch=440d`| enables double-hummer SIMD instruction selection plus quadload/quadstore |
//! | `-qarch=440` | plain PPC440 code generation (no SIMD FPU use)        |

use core::fmt;

/// Optimization level of the XL compiler invocation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OptLevel {
    /// `-O` — the default optimization level.
    O2,
    /// `-O3`.
    O3,
    /// `-O4` (implies `-qarch -qtune -qcache -qhot`).
    O4,
    /// `-O5` (adds interprocedural analysis).
    O5,
}

impl OptLevel {
    /// All levels in ascending aggressiveness.
    pub const ALL: [OptLevel; 4] = [OptLevel::O2, OptLevel::O3, OptLevel::O4, OptLevel::O5];
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptLevel::O2 => "-O",
            OptLevel::O3 => "-O3",
            OptLevel::O4 => "-O4",
            OptLevel::O5 => "-O5",
        })
    }
}

/// Target-architecture selection (`-qarch`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum QArch {
    /// Generic PowerPC; scalar FPU only.
    #[default]
    Generic,
    /// `-qarch=440`: PPC440 tuning, still scalar FPU.
    Ppc440,
    /// `-qarch=440d`: exploit the double-hummer SIMD FPU.
    Ppc440d,
}

impl fmt::Display for QArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QArch::Generic => "",
            QArch::Ppc440 => "-qarch=440",
            QArch::Ppc440d => "-qarch=440d",
        })
    }
}

/// A complete compiler invocation for one benchmark build.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CompileOpts {
    /// Optimization level.
    pub opt: OptLevel,
    /// `-qstrict`: forbid optimizations that change program semantics
    /// (most importantly FMA fusion, which changes rounding).
    pub qstrict: bool,
    /// `-qarch` target.
    pub qarch: QArch,
    /// `-qtune`: processor-specific scheduling (implied by `-O4`).
    pub qtune: bool,
    /// `-qcache`: cache-geometry-aware optimization (implied by `-O4`).
    pub qcache: bool,
    /// `-qhot`: high-order loop transformations (implied by `-O4`).
    pub qhot: bool,
}

impl CompileOpts {
    /// The paper's baseline build: `-O -qstrict`.
    pub fn baseline() -> CompileOpts {
        CompileOpts {
            opt: OptLevel::O2,
            qstrict: true,
            qarch: QArch::Ppc440,
            qtune: false,
            qcache: false,
            qhot: false,
        }
    }

    /// `-O3 -qarch=440d`.
    pub fn o3() -> CompileOpts {
        CompileOpts {
            opt: OptLevel::O3,
            qstrict: false,
            qarch: QArch::Ppc440d,
            qtune: false,
            qcache: false,
            qhot: false,
        }
    }

    /// `-O4` (implies `-qarch=440d -qtune -qcache -qhot`).
    pub fn o4() -> CompileOpts {
        CompileOpts {
            opt: OptLevel::O4,
            qstrict: false,
            qarch: QArch::Ppc440d,
            qtune: true,
            qcache: true,
            qhot: true,
        }
    }

    /// `-O5` (everything `-O4` does plus interprocedural analysis).
    pub fn o5() -> CompileOpts {
        CompileOpts { opt: OptLevel::O5, ..CompileOpts::o4() }
    }

    /// The four builds of the paper's Figs. 9–10 sweep, in order.
    pub fn paper_sweep() -> [CompileOpts; 4] {
        [CompileOpts::baseline(), CompileOpts::o3(), CompileOpts::o4(), CompileOpts::o5()]
    }

    /// Copy with a different `-qarch` (Figs. 7–8 compare ±`440d`).
    pub fn with_qarch(mut self, qarch: QArch) -> CompileOpts {
        self.qarch = qarch;
        self
    }

    /// Whether SIMD instruction selection is active: needs `-qarch=440d`
    /// and at least `-O3` (the paper notes 440d "is used along with O3,
    /// O4 and O5").
    pub fn simd_enabled(&self) -> bool {
        self.qarch == QArch::Ppc440d && self.opt >= OptLevel::O3
    }

    /// Whether FMA fusion is active (`-qstrict` forbids it).
    pub fn fma_enabled(&self) -> bool {
        !self.qstrict
    }

    /// Render as a command-line-like label for CSV output.
    pub fn label(&self) -> String {
        let mut s = self.opt.to_string();
        if self.qstrict {
            s.push_str(" -qstrict");
        }
        if self.qarch != QArch::Generic {
            s.push(' ');
            s.push_str(&self.qarch.to_string());
        }
        if self.qhot && self.opt < OptLevel::O4 {
            s.push_str(" -qhot");
        }
        s
    }
}

impl fmt::Display for CompileOpts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_strict_and_scalar() {
        let b = CompileOpts::baseline();
        assert!(!b.fma_enabled(), "-qstrict forbids FMA fusion");
        assert!(!b.simd_enabled());
        assert_eq!(b.label(), "-O -qstrict -qarch=440");
    }

    #[test]
    fn simd_needs_both_level_and_arch() {
        assert!(CompileOpts::o3().simd_enabled());
        assert!(CompileOpts::o5().simd_enabled());
        assert!(!CompileOpts::o3().with_qarch(QArch::Ppc440).simd_enabled());
        // -O with 440d still cannot SIMD-ize (no loop analysis).
        let low = CompileOpts { opt: OptLevel::O2, ..CompileOpts::o3() };
        assert!(!low.simd_enabled());
    }

    #[test]
    fn o4_implies_the_q_family() {
        let o4 = CompileOpts::o4();
        assert!(o4.qtune && o4.qcache && o4.qhot);
        assert_eq!(o4.qarch, QArch::Ppc440d);
    }

    #[test]
    fn sweep_is_ordered_and_distinct() {
        let s = CompileOpts::paper_sweep();
        assert_eq!(s.len(), 4);
        for w in s.windows(2) {
            assert!(w[0].opt < w[1].opt);
        }
    }

    #[test]
    fn labels_are_unique_within_the_sweep() {
        let s = CompileOpts::paper_sweep();
        let labels: std::collections::HashSet<_> = s.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
