//! Property tests of the instruction-selection model.

use bgp_compiler::{CodeGen, CompileOpts, FractionSelector, OptLevel, PairPlan, QArch};
use proptest::prelude::*;

fn arb_opts() -> impl Strategy<Value = CompileOpts> {
    (
        0usize..4,
        any::<bool>(),
        0usize..3,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(opt, qstrict, qarch, qtune, qcache, qhot)| CompileOpts {
            opt: [OptLevel::O2, OptLevel::O3, OptLevel::O4, OptLevel::O5][opt],
            qstrict,
            qarch: [QArch::Generic, QArch::Ppc440, QArch::Ppc440d][qarch],
            qtune,
            qcache,
            qhot,
        })
}

proptest! {
    /// The fraction selector's long-run rate equals its fraction exactly
    /// over whole multiples of the denominator.
    #[test]
    fn selector_rate_is_exact(num in 0u32..=64, rounds in 1usize..20) {
        let den = 64;
        let mut s = FractionSelector::new(num, den);
        let hits = (0..rounds * den as usize).filter(|_| s.next()).count();
        prop_assert_eq!(hits, rounds * num as usize);
    }

    /// SIMD plans appear only when the build enables SIMD-ization, and
    /// never on non-vectorizable loops.
    #[test]
    fn simd_gating(opts in arb_opts(), n in 1usize..500) {
        let mut cg = CodeGen::new(opts);
        let mut any_simd = false;
        for i in 0..n {
            let vectorizable = i % 3 != 0;
            let plan = cg.plan_pair(vectorizable);
            if plan == PairPlan::Simd {
                any_simd = true;
                prop_assert!(vectorizable, "SIMD plan for a non-vectorizable pair");
                prop_assert!(opts.simd_enabled(), "SIMD plan under {opts:?}");
            }
        }
        // At O4/O5 with 440d, a long vectorizable run must produce SIMD.
        if opts.simd_enabled() && opts.opt >= OptLevel::O4 && n > 10 {
            prop_assert!(any_simd);
        }
    }

    /// Overhead is monotone in the element count and linear-ish: charging
    /// two batches equals charging one combined batch.
    #[test]
    fn overhead_is_additive(opts in arb_opts(), a in 1u64..2_000, b in 1u64..2_000) {
        let mut cg1 = CodeGen::new(opts);
        let o1 = cg1.overhead(a);
        let o2 = cg1.overhead(b);
        let mut cg2 = CodeGen::new(opts);
        let o = cg2.overhead(a + b);
        prop_assert_eq!(o.int_ops, o1.int_ops + o2.int_ops);
        prop_assert_eq!(o.branches, o1.branches + o2.branches);
        prop_assert_eq!(o.mispredicts, o1.mispredicts + o2.mispredicts);
    }

    /// Mispredicts never exceed branches; branches never exceed elements.
    #[test]
    fn overhead_bounds(opts in arb_opts(), n in 0u64..10_000) {
        let mut cg = CodeGen::new(opts);
        let o = cg.overhead(n);
        prop_assert!(o.mispredicts <= o.branches);
        prop_assert!(o.branches <= n);
        // Unrolled builds take fewer branches.
        prop_assert!(o.branches * cg.params().unroll as u64 <= n + cg.params().unroll as u64);
    }

    /// Determinism: two engines with the same flags produce identical
    /// decision streams.
    #[test]
    fn engine_is_deterministic(opts in arb_opts(), seq in proptest::collection::vec(any::<bool>(), 0..300)) {
        let mut a = CodeGen::new(opts);
        let mut b = CodeGen::new(opts);
        for &v in &seq {
            prop_assert_eq!(a.plan_pair(v), b.plan_pair(v));
            prop_assert_eq!(a.redundant_mem(), b.redundant_mem());
        }
        prop_assert_eq!(a.overhead(123), b.overhead(123));
    }

    /// Higher optimization levels never emit more overhead instructions
    /// (fixing every other flag).
    #[test]
    fn overhead_monotone_in_level(n in 100u64..5_000) {
        let mut last = u64::MAX;
        for opt in OptLevel::ALL {
            let opts = CompileOpts { opt, ..CompileOpts::o4() };
            let mut cg = CodeGen::new(opts);
            let o = cg.overhead(n);
            let total = o.int_ops + o.branches;
            prop_assert!(total <= last, "{opt:?} emitted more overhead");
            last = total;
        }
    }
}
