//! Every NAS kernel must verify on class S across rank counts and
//! operating modes, with deterministic checksums.

use bgp_arch::events::CounterMode;
use bgp_arch::OpMode;
use bgp_mpi::{CounterPolicy, JobSpec, Machine};
use bgp_nas::{Class, Kernel};
#[allow(unused_imports)]
use bgp_compiler as _;

fn run_kernel(kernel: Kernel, ranks: usize, mode: OpMode) -> (bool, f64) {
    assert!(kernel.valid_ranks(ranks), "{kernel}: invalid rank count {ranks}");
    let mut spec = JobSpec::new(ranks, mode);
    spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
    let m = Machine::new(spec);
    m.enable_all_counters();
    let out = m.run(move |ctx| async move { kernel.exec(Class::S, ctx).await.1 });
    let verified = out.iter().all(|r| r.verified);
    (verified, out[0].checksum)
}

#[test]
fn ep_verifies() {
    assert!(run_kernel(Kernel::Ep, 4, OpMode::VirtualNode).0);
}

#[test]
fn is_verifies() {
    assert!(run_kernel(Kernel::Is, 4, OpMode::VirtualNode).0);
}

#[test]
fn cg_verifies() {
    assert!(run_kernel(Kernel::Cg, 4, OpMode::VirtualNode).0);
}

#[test]
fn mg_verifies() {
    assert!(run_kernel(Kernel::Mg, 4, OpMode::VirtualNode).0);
}

#[test]
fn ft_verifies() {
    assert!(run_kernel(Kernel::Ft, 4, OpMode::VirtualNode).0);
}

#[test]
fn lu_verifies() {
    assert!(run_kernel(Kernel::Lu, 4, OpMode::VirtualNode).0);
}

#[test]
fn sp_verifies() {
    assert!(run_kernel(Kernel::Sp, 4, OpMode::VirtualNode).0);
}

#[test]
fn bt_verifies() {
    assert!(run_kernel(Kernel::Bt, 4, OpMode::VirtualNode).0);
}

#[test]
fn kernels_verify_on_single_rank() {
    for k in Kernel::ALL {
        assert!(run_kernel(k, 1, OpMode::Smp1).0, "{k} failed on 1 rank");
    }
}

#[test]
fn kernels_verify_in_smp1_multinode() {
    for k in [Kernel::Cg, Kernel::Mg, Kernel::Ft] {
        assert!(run_kernel(k, 2, OpMode::Smp1).0, "{k} failed in SMP/1 x2");
    }
}

#[test]
fn sp_bt_accept_odd_square_rank_counts() {
    assert!(run_kernel(Kernel::Sp, 9, OpMode::VirtualNode).0);
    assert!(run_kernel(Kernel::Bt, 9, OpMode::VirtualNode).0);
}

#[test]
fn checksums_are_deterministic() {
    let a = run_kernel(Kernel::Cg, 4, OpMode::VirtualNode);
    let b = run_kernel(Kernel::Cg, 4, OpMode::VirtualNode);
    assert_eq!(a.1.to_bits(), b.1.to_bits());
}

#[test]
fn numeric_results_are_quantum_invariant() {
    // The scheduler quantum changes interleaving (and therefore timing),
    // but must never change any kernel's numerical result.
    let run_with_quantum = |q: u64| {
        let mut spec = JobSpec::new(4, OpMode::VirtualNode);
        spec.quantum = q;
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
        let m = Machine::new(spec);
        let out = m.run(|ctx| async move { Kernel::Cg.exec(Class::S, ctx).await.1 });
        assert!(out.iter().all(|r| r.verified));
        out.iter().map(|r| r.checksum.to_bits()).collect::<Vec<_>>()
    };
    let a = run_with_quantum(64);
    let b = run_with_quantum(2048);
    let c = run_with_quantum(1 << 20);
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn timing_depends_on_compiler_build_but_math_does_not() {
    let run_with = |compile: bgp_compiler::CompileOpts| {
        let mut spec = JobSpec::new(4, OpMode::VirtualNode);
        spec.compile = compile;
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
        let m = Machine::new(spec);
        let out = m.run(|ctx| async move { Kernel::Mg.exec(Class::S, ctx).await.1 });
        (out[0].checksum.to_bits(), m.job_cycles())
    };
    let (base_sum, base_cycles) = run_with(bgp_compiler::CompileOpts::baseline());
    let (best_sum, best_cycles) = run_with(bgp_compiler::CompileOpts::o5());
    assert_eq!(base_sum, best_sum, "builds must not change the computed residual");
    assert!(best_cycles < base_cycles, "-O5 must be faster than the baseline");
}
