//! Shared vocabulary of the NAS kernel suite: problem classes, kernel
//! identifiers, per-class sizing, and the compiled vector primitives
//! (axpy/dot/copy) the kernels build on.
//!
//! ## Class scaling
//!
//! The paper runs the class C problems on 32–128 real nodes. Full class C
//! footprints are impractical under cycle-level simulation, so this suite
//! defines scaled classes that preserve the *ratios* the experiments
//! depend on — most importantly, class A is sized so a Virtual-Node-Mode
//! node (4 ranks) carries a ~3–4 MB aggregate working set, putting the
//! Fig. 11 L3 sweep knee at 4 MB exactly where class C sat relative to
//! the real 8 MB L3. Communication patterns, loop structures, and
//! verification are those of the real benchmarks.

use bgp_compiler::PairPlan;
use bgp_mpi::{RankCtx, SemOp, SimVec};
use core::fmt;

/// Scaled problem classes (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Class {
    /// Smoke-test size (unit tests).
    S,
    /// Workstation size (integration tests, quick benches).
    W,
    /// The figure-generation size (paper-proportioned footprints).
    A,
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
        })
    }
}

/// The eight NAS Parallel Benchmark kernels of the paper (§V).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kernel {
    /// MultiGrid.
    Mg,
    /// 3-D FFT PDE.
    Ft,
    /// Embarrassingly Parallel.
    Ep,
    /// Conjugate Gradient.
    Cg,
    /// Integer Sort.
    Is,
    /// LU solver (SSOR).
    Lu,
    /// Scalar Penta-diagonal solver.
    Sp,
    /// Block Tri-diagonal solver.
    Bt,
}

impl Kernel {
    /// All kernels in the paper's Fig. 6 order.
    pub const ALL: [Kernel; 8] = [
        Kernel::Mg,
        Kernel::Ft,
        Kernel::Ep,
        Kernel::Cg,
        Kernel::Is,
        Kernel::Lu,
        Kernel::Sp,
        Kernel::Bt,
    ];

    /// Canonical short name.
    pub const fn name(self) -> &'static str {
        match self {
            Kernel::Mg => "MG",
            Kernel::Ft => "FT",
            Kernel::Ep => "EP",
            Kernel::Cg => "CG",
            Kernel::Is => "IS",
            Kernel::Lu => "LU",
            Kernel::Sp => "SP",
            Kernel::Bt => "BT",
        }
    }

    /// Whether `ranks` is a legal process count: powers of two for the
    /// suite, except SP and BT which require square counts (the paper
    /// runs them at 121 = 11²).
    pub fn valid_ranks(self, ranks: usize) -> bool {
        if ranks == 0 {
            return false;
        }
        match self {
            Kernel::Sp | Kernel::Bt => {
                let q = (ranks as f64).sqrt().round() as usize;
                q * q == ranks
            }
            _ => ranks.is_power_of_two(),
        }
    }

    /// Largest legal rank count ≤ `n`.
    pub fn ranks_at_most(self, n: usize) -> usize {
        (1..=n).rev().find(|&r| self.valid_ranks(r)).unwrap_or(1)
    }

    /// Hard upper bound on ranks for a class, where one exists. FT's slab
    /// decomposition needs `ranks ≤ NX` (every rank must own at least one
    /// x-plane after the transpose).
    pub fn max_ranks(self, class: Class) -> Option<usize> {
        match self {
            Kernel::Ft => Some(crate::ft::dims(class).0),
            _ => None,
        }
    }

    /// Largest legal rank count ≤ `n` that the kernel supports at `class`.
    pub fn clamp_ranks(self, n: usize, class: Class) -> usize {
        let n = self.max_ranks(class).map_or(n, |m| n.min(m));
        self.ranks_at_most(n)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one kernel run on one rank.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelResult {
    /// Kernel that ran.
    pub kernel: Kernel,
    /// Whether the kernel's own verification passed.
    pub verified: bool,
    /// A kernel-specific scalar (residual norm, checksum, …) for
    /// cross-run comparisons.
    pub checksum: f64,
}

/// Compiled `y[i] += a * x[i]` over `n` elements.
///
/// `vectorizable` declares whether the loop's data parallelism is visible
/// to the compiler (unit stride, no aliasing) — SIMD-ization then depends
/// on the build's flags.
pub async fn axpy(ctx: &mut RankCtx, a: f64, x: &SimVec<f64>, y: &mut SimVec<f64>, n: usize, vectorizable: bool) {
    debug_assert!(n <= x.len() && n <= y.len());
    let mut i = 0;
    while i + 1 < n {
        let plan = ctx.plan_pair(vectorizable);
        let (x0, x1) = ctx.ld2(x, i, plan).await;
        let (y0, y1) = ctx.ld2(y, i, plan).await;
        ctx.fp_pair(plan, SemOp::MulAdd);
        ctx.st2(y, i, (a * x0 + y0, a * x1 + y1), plan).await;
        i += 2;
    }
    if i < n {
        let xv = ctx.ld(x, i).await;
        let yv = ctx.ld(y, i).await;
        ctx.fp1(SemOp::MulAdd);
        ctx.st(y, i, a * xv + yv).await;
    }
    ctx.overhead(n as u64);
}

/// Compiled dot product over `n` elements.
pub async fn dot(ctx: &mut RankCtx, x: &SimVec<f64>, y: &SimVec<f64>, n: usize, vectorizable: bool) -> f64 {
    debug_assert!(n <= x.len() && n <= y.len());
    let mut acc = 0.0;
    let mut i = 0;
    while i + 1 < n {
        let plan = ctx.plan_pair(vectorizable);
        let (x0, x1) = ctx.ld2(x, i, plan).await;
        let (y0, y1) = ctx.ld2(y, i, plan).await;
        ctx.fp_pair(plan, SemOp::MulAdd);
        acc += x0 * y0 + x1 * y1;
        i += 2;
    }
    if i < n {
        let xv = ctx.ld(x, i).await;
        let yv = ctx.ld(y, i).await;
        ctx.fp1(SemOp::MulAdd);
        acc += xv * yv;
    }
    ctx.overhead(n as u64);
    acc
}

/// Compiled `y[i] = x[i]` over `n` elements (quadword copies when the
/// build SIMD-izes).
pub async fn copy(ctx: &mut RankCtx, x: &SimVec<f64>, y: &mut SimVec<f64>, n: usize) {
    let mut i = 0;
    while i + 1 < n {
        let plan = ctx.plan_pair(true);
        let (x0, x1) = ctx.ld2(x, i, plan).await;
        ctx.st2(y, i, (x0, x1), plan).await;
        i += 2;
    }
    if i < n {
        let xv = ctx.ld(x, i).await;
        ctx.st(y, i, xv).await;
    }
    ctx.overhead(n as u64);
}

/// Compiled `y[i] = a * x[i]` over `n` elements.
pub async fn scale(ctx: &mut RankCtx, a: f64, x: &SimVec<f64>, y: &mut SimVec<f64>, n: usize, vectorizable: bool) {
    let mut i = 0;
    while i + 1 < n {
        let plan = ctx.plan_pair(vectorizable);
        let (x0, x1) = ctx.ld2(x, i, plan).await;
        ctx.fp_pair(plan, SemOp::Mul);
        ctx.st2(y, i, (a * x0, a * x1), plan).await;
        i += 2;
    }
    if i < n {
        let xv = ctx.ld(x, i).await;
        ctx.fp1(SemOp::Mul);
        ctx.st(y, i, a * xv).await;
    }
    ctx.overhead(n as u64);
}

/// Charge one scalar `a*b+c` (load-free; operands already in registers).
#[inline]
pub fn fma1(ctx: &mut RankCtx) {
    ctx.fp1(SemOp::MulAdd);
}

/// Plan helper: lower a pair-op without memory traffic (register-resident
/// butterfly arithmetic and the like).
#[inline]
pub fn fp_pair_reg(ctx: &mut RankCtx, vectorizable: bool, sem: SemOp) -> PairPlan {
    let plan = ctx.plan_pair(vectorizable);
    ctx.fp_pair(plan, sem);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_and_order_match_fig6() {
        let names: Vec<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["MG", "FT", "EP", "CG", "IS", "LU", "SP", "BT"]);
    }

    #[test]
    fn rank_validity_rules() {
        assert!(Kernel::Mg.valid_ranks(128));
        assert!(!Kernel::Mg.valid_ranks(96));
        assert!(Kernel::Sp.valid_ranks(121), "the paper runs SP at 121 ranks");
        assert!(Kernel::Bt.valid_ranks(16));
        assert!(!Kernel::Sp.valid_ranks(128));
        assert!(!Kernel::Ft.valid_ranks(0));
    }

    #[test]
    fn ranks_at_most_picks_the_paper_counts() {
        assert_eq!(Kernel::Mg.ranks_at_most(128), 128);
        assert_eq!(Kernel::Sp.ranks_at_most(128), 121);
        assert_eq!(Kernel::Bt.ranks_at_most(32), 25);
        assert_eq!(Kernel::Cg.ranks_at_most(100), 64);
    }
}
