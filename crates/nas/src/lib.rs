//! # bgp-nas — the NAS Parallel Benchmark kernels on the simulated machine
//!
//! Rust re-implementations of the eight class-scalable NAS kernels the
//! paper characterizes (§V): MG, FT, EP, CG, IS, LU, SP, BT. Each kernel
//! performs **real arithmetic** (the FFT transforms, CG converges, IS
//! sorts — all self-verified) while every array element access walks the
//! simulated cache hierarchy and every floating-point operation retires
//! through the modeled compiler's instruction selection. The counters
//! the UPC unit collects are therefore causally faithful to the codes
//! the paper measured.
//!
//! Problem classes are scaled (see [`common`]) so that cycle-level
//! simulation stays tractable while per-node footprints keep the
//! paper-relative proportions that drive the L3 and mode experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bt;
pub mod cg;
pub mod common;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod sp;

pub use common::{Class, Kernel, KernelResult};

use bgp_mpi::RankCtx;

impl Kernel {
    /// Run this kernel on the calling rank. Blocking points inside the
    /// kernel (memory walks, messages, collectives) are `.await`
    /// suspensions of the returned future.
    pub async fn run(self, ctx: &mut RankCtx, class: Class) -> KernelResult {
        match self {
            Kernel::Mg => mg::run(ctx, class).await,
            Kernel::Ft => ft::run(ctx, class).await,
            Kernel::Ep => ep::run(ctx, class).await,
            Kernel::Cg => cg::run(ctx, class).await,
            Kernel::Is => is::run(ctx, class).await,
            Kernel::Lu => lu::run(ctx, class).await,
            Kernel::Sp => sp::run(ctx, class).await,
            Kernel::Bt => bt::run(ctx, class).await,
        }
    }

    /// [`Kernel::run`] in the owned-context shape the rank-execution API
    /// expects: take the [`RankCtx`] by value, hand it back with the
    /// result. `Kernel` and [`Class`] are `Copy`, so
    /// `machine.run(move |ctx| kernel.exec(class, ctx))` (or
    /// `bgp_core::run_instrumented(&machine, move |ctx|
    /// kernel.exec(class, ctx))`) needs no cloning in the closure.
    pub async fn exec(self, class: Class, mut ctx: RankCtx) -> (RankCtx, KernelResult) {
        let r = self.run(&mut ctx, class).await;
        (ctx, r)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Single-rank harness for unit-testing kernel internals that need a
    //! live `RankCtx`.
    use bgp_arch::events::CounterMode;
    use bgp_arch::OpMode;
    use bgp_mpi::{CounterPolicy, JobSpec, Machine, RankCtx};

    /// Run `f` on a fresh 1-rank SMP/1 machine and return its result.
    pub(crate) fn single<R, F, Fut>(f: F) -> R
    where
        R: Send,
        F: Fn(RankCtx) -> Fut,
        Fut: std::future::Future<Output = R> + Send,
    {
        let mut spec = JobSpec::new(1, OpMode::Smp1);
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
        let m = Machine::new(spec);
        m.run(f).pop().expect("one rank")
    }
}
