//! # bgp-nas — the NAS Parallel Benchmark kernels on the simulated machine
//!
//! Rust re-implementations of the eight class-scalable NAS kernels the
//! paper characterizes (§V): MG, FT, EP, CG, IS, LU, SP, BT. Each kernel
//! performs **real arithmetic** (the FFT transforms, CG converges, IS
//! sorts — all self-verified) while every array element access walks the
//! simulated cache hierarchy and every floating-point operation retires
//! through the modeled compiler's instruction selection. The counters
//! the UPC unit collects are therefore causally faithful to the codes
//! the paper measured.
//!
//! Problem classes are scaled (see [`common`]) so that cycle-level
//! simulation stays tractable while per-node footprints keep the
//! paper-relative proportions that drive the L3 and mode experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bt;
pub mod cg;
pub mod common;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod sp;

pub use common::{Class, Kernel, KernelResult};

use bgp_mpi::RankCtx;

impl Kernel {
    /// Run this kernel on the calling rank.
    pub fn run(self, ctx: &mut RankCtx, class: Class) -> KernelResult {
        match self {
            Kernel::Mg => mg::run(ctx, class),
            Kernel::Ft => ft::run(ctx, class),
            Kernel::Ep => ep::run(ctx, class),
            Kernel::Cg => cg::run(ctx, class),
            Kernel::Is => is::run(ctx, class),
            Kernel::Lu => lu::run(ctx, class),
            Kernel::Sp => sp::run(ctx, class),
            Kernel::Bt => bt::run(ctx, class),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Single-rank harness for unit-testing kernel internals that need a
    //! live `RankCtx`.
    use bgp_arch::events::CounterMode;
    use bgp_arch::OpMode;
    use bgp_mpi::{CounterPolicy, JobSpec, Machine, RankCtx};

    /// Run `f` on a fresh 1-rank SMP/1 machine and return its result.
    pub(crate) fn single<R: Send>(f: impl Fn(&mut RankCtx) -> R + Sync) -> R {
        let mut spec = JobSpec::new(1, OpMode::Smp1);
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
        let m = Machine::new(spec);
        m.run(f).pop().expect("one rank")
    }
}
