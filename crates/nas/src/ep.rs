//! **EP — Embarrassingly Parallel**: generate Gaussian deviates by the
//! Marsaglia polar method and tabulate them in annuli. No communication
//! except the final reductions; the FP profile is scalar-dominated
//! (square/accumulate multiplies plus the Newton iterations behind
//! `ln`/`sqrt`), with essentially no SIMD-izable loops — matching EP's
//! single-FMA-heavy bar in the paper's Fig. 6.

use crate::common::{Class, Kernel, KernelResult};
use bgp_mpi::{RankCtx, ReduceOp, SemOp};
use bgp_arch::rng::SimRng;

/// Gaussian pairs attempted per rank.
pub fn samples_per_rank(class: Class) -> usize {
    match class {
        Class::S => 1 << 13,
        Class::W => 1 << 15,
        Class::A => 1 << 17,
    }
}

const ANNULI: usize = 10;
const CHUNK: usize = 256;

/// Deterministic per-rank seed (the NAS EP seed schedule analog).
fn seed(rank: usize) -> u64 {
    0x2718_2845_9045_2353u64.wrapping_add((rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One rank's EP computation, uninstrumented — the verification oracle.
fn oracle(rank: usize, n: usize) -> (f64, f64, [u64; ANNULI], u64) {
    let mut rng = SimRng::seed_from_u64(seed(rank));
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    let mut q = [0u64; ANNULI];
    let mut accepted = 0u64;
    for _ in 0..n {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let (gx, gy) = (x * f, y * f);
            sx += gx;
            sy += gy;
            let l = (gx.abs().max(gy.abs()) as usize).min(ANNULI - 1);
            q[l] += 1;
            accepted += 1;
        }
    }
    (sx, sy, q, accepted)
}

/// Run EP on this rank.
pub async fn run(ctx: &mut RankCtx, class: Class) -> KernelResult {
    let n = samples_per_rank(class);
    let mut rng = SimRng::seed_from_u64(seed(ctx.rank()));
    let mut q = ctx.alloc::<u64>(ANNULI);
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    let mut accepted_total = 0u64;

    let mut done = 0;
    while done < n {
        let chunk = CHUNK.min(n - done);
        let mut accepted = 0u64;
        for _ in 0..chunk {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let f = (-2.0 * t.ln() / t).sqrt();
                let (gx, gy) = (x * f, y * f);
                sx += gx;
                sy += gy;
                let l = (gx.abs().max(gy.abs()) as usize).min(ANNULI - 1);
                // Tabulation: read-modify-write of the annulus counter.
                let c = ctx.ld(&q, l).await;
                ctx.st(&mut q, l, c + 1).await;
                accepted += 1;
            }
        }
        // Charge the chunk's arithmetic in batches (acceptance-dependent
        // control flow makes the loop unvectorizable, hence all-scalar):
        // per attempt: 2 squares + 1 add + RNG integer work; per accepted
        // pair: one ln + one sqrt library evaluation (whose cost depends
        // heavily on the build — the main reason the paper sees EP gain
        // up to 60% from compilation), the -2t scaling divide, 2 scaling
        // multiplies and 2 accumulate adds.
        ctx.fp_scalar_n(SemOp::Mul, 2 * chunk as u64 + 2 * accepted);
        ctx.fp_scalar_n(SemOp::Add, chunk as u64 + 2 * accepted);
        ctx.libm_calls(2 * accepted);
        ctx.fp_scalar_n(SemOp::Div, accepted);
        ctx.int_ops(8 * chunk as u64);
        ctx.overhead(chunk as u64);
        accepted_total += accepted;
        done += chunk;
    }

    // Global sums, exactly like the benchmark's final reductions.
    let sums = ctx.allreduce_sum_f64(&[sx, sy, accepted_total as f64]).await;
    let counts = ctx
        .allreduce(
            ReduceOp::SumU64,
            bgp_mpi::u64s_to_bytes(&(0..ANNULI).map(|i| q.raw(i)).collect::<Vec<_>>()),
        )
        .await;
    let counts = bgp_mpi::bytes_to_u64s(&counts);

    // Verification: local recomputation matches, and the global annulus
    // counts account for every accepted pair.
    let (osx, osy, oq, oacc) = oracle(ctx.rank(), n);
    let local_ok = osx == sx
        && osy == sy
        && oacc == accepted_total
        && (0..ANNULI).all(|i| oq[i] == q.raw(i));
    let global_ok = counts.iter().sum::<u64>() == sums[2] as u64;
    KernelResult {
        kernel: Kernel::Ep,
        verified: local_ok && global_ok,
        checksum: sums[0] + sums[1],
    }
}
