//! **BT — Block Tri-diagonal solver**: the ADI skeleton of SP, but each
//! grid point carries a small vector of unknowns and the line systems are
//! block-tridiagonal, solved by block forward elimination with dense
//! little matrix-matrix/matrix-vector kernels per point. That dense block
//! arithmetic is why BT's Fig. 6 profile is overwhelmingly scalar FMA.
//!
//! Scaling note: NAS BT couples 5 unknowns per point; this reproduction
//! uses 3×3 blocks (same solver structure, ~2.8× fewer flops per point)
//! — recorded in DESIGN.md as a documented substitution.

use crate::common::{Class, Kernel, KernelResult};
use bgp_mpi::{bytes_to_f64s, f64s_to_bytes, RankCtx, SemOp, SimVec};
use bgp_arch::rng::SimRng;

/// Unknowns per grid point.
pub const NB: usize = 3;

/// Per-rank grid (nx, ny, local nz).
pub fn dims(class: Class) -> (usize, usize, usize) {
    match class {
        Class::S => (6, 6, 4),
        Class::W => (12, 12, 6),
        Class::A => (24, 24, 8),
    }
}

type Mat = [[f64; NB]; NB];
type Vec3 = [f64; NB];

/// Off-diagonal block (used on both sides: the operator is symmetric).
fn mat_a() -> Mat {
    [[-0.25, -0.05, 0.0], [-0.05, -0.25, -0.05], [0.0, -0.05, -0.25]]
}

/// Diagonal block: strongly block-diagonally dominant.
fn mat_b() -> Mat {
    [[3.0, 0.1, 0.0], [0.1, 3.0, 0.1], [0.0, 0.1, 3.0]]
}

fn mat_mul(a: &Mat, b: &Mat) -> Mat {
    let mut c = [[0.0; NB]; NB];
    for i in 0..NB {
        for j in 0..NB {
            for (k, bk) in b.iter().enumerate() {
                c[i][j] += a[i][k] * bk[j];
            }
        }
    }
    c
}

fn mat_sub(a: &Mat, b: &Mat) -> Mat {
    let mut c = *a;
    for i in 0..NB {
        for j in 0..NB {
            c[i][j] -= b[i][j];
        }
    }
    c
}

fn mat_vec(a: &Mat, v: &Vec3) -> Vec3 {
    let mut out = [0.0; NB];
    for i in 0..NB {
        for k in 0..NB {
            out[i] += a[i][k] * v[k];
        }
    }
    out
}

/// Direct 3×3 inverse via the adjugate.
fn mat_inv(a: &Mat) -> Mat {
    let m = a;
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    assert!(det.abs() > 1e-12, "singular diagonal block");
    let inv_det = 1.0 / det;
    let mut inv = [[0.0; NB]; NB];
    inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
    inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
    inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
    inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
    inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
    inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
    inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
    inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
    inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
    inv
}

/// Per-row solver tables for a block line of length `len`:
/// `einv[k] = D_k⁻¹` and `e[k] = D_k⁻¹ C`, streamed from memory during
/// the per-line solves like the benchmark's factored jacobians.
struct BlockElim {
    len: usize,
    /// `NB*NB` doubles per row: D_k⁻¹.
    dinv: SimVec<f64>,
    /// `NB*NB` doubles per row: E_k.
    e: SimVec<f64>,
}

async fn factor(ctx: &mut RankCtx, len: usize) -> BlockElim {
    let a = mat_a();
    let bmat = mat_b();
    let mut dinv = ctx.alloc::<f64>(len * NB * NB);
    let mut e = ctx.alloc::<f64>(len * NB * NB);
    let mut e_prev = [[0.0; NB]; NB];
    for k in 0..len {
        let d = if k == 0 { bmat } else { mat_sub(&bmat, &mat_mul(&a, &e_prev)) };
        let di = mat_inv(&d);
        let ek = if k + 1 < len { mat_mul(&di, &a) } else { [[0.0; NB]; NB] };
        for i in 0..NB {
            for j in 0..NB {
                ctx.st(&mut dinv, (k * NB + i) * NB + j, di[i][j]).await;
                ctx.st(&mut e, (k * NB + i) * NB + j, ek[i][j]).await;
            }
        }
        e_prev = ek;
        // Block factor cost: one matmul, one inverse, one matmul.
        ctx.fp_scalar_n(SemOp::MulAdd, 2 * (NB * NB * NB) as u64 + 30);
        ctx.fp1(SemOp::Div);
    }
    ctx.overhead(len as u64);
    BlockElim { len, dinv, e }
}

impl BlockElim {
    async fn dinv_at(&self, ctx: &mut RankCtx, k: usize) -> Mat {
        let mut m = [[0.0; NB]; NB];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, el) in row.iter_mut().enumerate() {
                *el = ctx.ld(&self.dinv, (k * NB + i) * NB + j).await;
            }
        }
        m
    }

    async fn e_at(&self, ctx: &mut RankCtx, k: usize) -> Mat {
        let mut m = [[0.0; NB]; NB];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, el) in row.iter_mut().enumerate() {
                *el = ctx.ld(&self.e, (k * NB + i) * NB + j).await;
            }
        }
        m
    }
}

struct Block {
    nx: usize,
    ny: usize,
    nz: usize,
    /// `NB` unknowns per point, point-major.
    u: SimVec<f64>,
}

impl Block {
    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (((z * self.ny + y) * self.nx) + x) * NB
    }
}

async fn ld_vec(ctx: &mut RankCtx, u: &SimVec<f64>, base: usize) -> Vec3 {
    let plan = ctx.plan_pair(false);
    let (a, b) = ctx.ld2(u, base, plan).await;
    let c = ctx.ld(u, base + 2).await;
    [a, b, c]
}

async fn st_vec(ctx: &mut RankCtx, u: &mut SimVec<f64>, base: usize, v: &Vec3) {
    let plan = ctx.plan_pair(false);
    ctx.st2(u, base, (v[0], v[1]), plan).await;
    ctx.st(u, base + 2, v[2]).await;
}

/// Solve the block-tridiagonal system along a local line.
async fn solve_local_line(ctx: &mut RankCtx, b: &mut Block, base: usize, stride_pts: usize, el: &BlockElim) {
    let a = mat_a();
    let len = el.len;
    // Forward: y_k = D_k⁻¹ (b_k − A y_{k−1}).
    let mut prev = [0.0; NB];
    for k in 0..len {
        let i = base + k * stride_pts * NB;
        let mut rhs = ld_vec(ctx, &b.u, i).await;
        let av = mat_vec(&a, &prev);
        for c in 0..NB {
            rhs[c] -= av[c];
        }
        let di = el.dinv_at(ctx, k).await;
        let y = mat_vec(&di, &rhs);
        // Two 3×3 matvecs of dense FMA work per point.
        ctx.fp_scalar_n(SemOp::MulAdd, 2 * (NB * NB) as u64);
        st_vec(ctx, &mut b.u, i, &y).await;
        prev = y;
    }
    // Backward: u_k = y_k − E_k u_{k+1}.
    let mut up = [0.0; NB];
    for k in (0..len).rev() {
        let i = base + k * stride_pts * NB;
        let mut v = ld_vec(ctx, &b.u, i).await;
        let ek = el.e_at(ctx, k).await;
        let ev = mat_vec(&ek, &up);
        for c in 0..NB {
            v[c] -= ev[c];
        }
        ctx.fp_scalar_n(SemOp::MulAdd, (NB * NB) as u64);
        st_vec(ctx, &mut b.u, i, &v).await;
        up = v;
    }
    ctx.overhead(2 * len as u64);
}

/// Apply the block operator along a local direction (`u ← T u`).
async fn apply_local(ctx: &mut RankCtx, b: &mut Block, base: usize, stride_pts: usize, len: usize) {
    let a = mat_a();
    let bm = mat_b();
    let mut line: Vec<Vec3> = Vec::with_capacity(len);
    for k in 0..len {
        line.push(ld_vec(ctx, &b.u, base + k * stride_pts * NB).await);
    }
    for k in 0..len {
        let mut v = mat_vec(&bm, &line[k]);
        if k >= 1 {
            let av = mat_vec(&a, &line[k - 1]);
            for c in 0..NB {
                v[c] += av[c];
            }
        }
        if k + 1 < len {
            let av = mat_vec(&a, &line[k + 1]);
            for c in 0..NB {
                v[c] += av[c];
            }
        }
        ctx.fp_scalar_n(SemOp::MulAdd, 3 * (NB * NB) as u64);
        st_vec(ctx, &mut b.u, base + k * stride_pts * NB, &v).await;
    }
    ctx.overhead(len as u64);
}

/// Apply along distributed z (one halo plane of `NB`-vectors each way).
async fn apply_z(ctx: &mut RankCtx, b: &mut Block) {
    let (rank, size) = (ctx.rank(), ctx.size());
    let (nx, ny, nz) = (b.nx, b.ny, b.nz);
    let plane = nx * ny * NB;
    async fn pack(ctx: &mut RankCtx, b: &Block, z: usize, plane: usize) -> Vec<f64> {
        ctx.ld_range(&b.u, z * plane..(z + 1) * plane).await;
        b.u.as_slice()[z * plane..(z + 1) * plane].to_vec()
    }
    let mut below = vec![0.0; plane];
    let mut above = vec![0.0; plane];
    if rank + 1 < size {
        let top = pack(ctx, b, nz - 1, plane).await;
        ctx.send(rank + 1, 80, f64s_to_bytes(&top)).await;
    }
    if rank > 0 {
        below = bytes_to_f64s(&ctx.recv(Some(rank - 1), 80).await);
        let bot = pack(ctx, b, 0, plane).await;
        ctx.send(rank - 1, 81, f64s_to_bytes(&bot)).await;
    }
    if rank + 1 < size {
        above = bytes_to_f64s(&ctx.recv(Some(rank + 1), 81).await);
    }
    let a = mat_a();
    let bm = mat_b();
    let mut planes: Vec<Vec<f64>> = Vec::with_capacity(nz);
    for z in 0..nz {
        ctx.ld_range(&b.u, z * plane..(z + 1) * plane).await;
        planes.push(b.u.as_slice()[z * plane..(z + 1) * plane].to_vec());
    }
    let vec_at = |src: &[f64], x: usize, y: usize| -> Vec3 {
        let base = (y * nx + x) * NB;
        [src[base], src[base + 1], src[base + 2]]
    };
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let center = vec_at(&planes[z], x, y);
                let mut v = mat_vec(&bm, &center);
                let lower: Option<Vec3> = if z > 0 {
                    Some(vec_at(&planes[z - 1], x, y))
                } else if rank > 0 {
                    Some(vec_at(&below, x, y))
                } else {
                    None
                };
                let upper: Option<Vec3> = if z + 1 < nz {
                    Some(vec_at(&planes[z + 1], x, y))
                } else if rank + 1 < size {
                    Some(vec_at(&above, x, y))
                } else {
                    None
                };
                for nb in [lower, upper].into_iter().flatten() {
                    let av = mat_vec(&a, &nb);
                    for c in 0..NB {
                        v[c] += av[c];
                    }
                }
                ctx.fp_scalar_n(SemOp::MulAdd, 3 * (NB * NB) as u64);
                let idx = b.idx(x, y, z);
                st_vec(ctx, &mut b.u, idx, &v).await;
            }
        }
        ctx.overhead((nx * ny) as u64);
    }
}

/// Pipelined block solve along distributed z lines.
async fn solve_z(ctx: &mut RankCtx, b: &mut Block, el: &BlockElim) {
    let (rank, size) = (ctx.rank(), ctx.size());
    let (nx, ny, nz) = (b.nx, b.ny, b.nz);
    let plane = nx * ny * NB;
    let z0 = rank * nz;
    let a = mat_a();

    // Forward pipeline (needs y_{k−1}).
    let mut prev: Vec<f64> = vec![0.0; plane];
    if rank > 0 {
        prev = bytes_to_f64s(&ctx.recv(Some(rank - 1), 82).await);
    }
    for z in 0..nz {
        let k = z0 + z;
        for y in 0..ny {
            for x in 0..nx {
                let i = b.idx(x, y, z);
                let pb = (y * nx + x) * NB;
                let mut rhs = ld_vec(ctx, &b.u, i).await;
                let pv = [prev[pb], prev[pb + 1], prev[pb + 2]];
                let av = mat_vec(&a, &pv);
                for c in 0..NB {
                    rhs[c] -= av[c];
                }
                let di = el.dinv_at(ctx, k).await;
                let yv = mat_vec(&di, &rhs);
                ctx.fp_scalar_n(SemOp::MulAdd, 2 * (NB * NB) as u64);
                st_vec(ctx, &mut b.u, i, &yv).await;
                prev[pb] = yv[0];
                prev[pb + 1] = yv[1];
                prev[pb + 2] = yv[2];
            }
        }
        ctx.overhead((nx * ny) as u64);
    }
    if rank + 1 < size {
        ctx.send(rank + 1, 82, f64s_to_bytes(&prev)).await;
    }

    // Backward pipeline (needs u_{k+1}).
    let mut up: Vec<f64> = vec![0.0; plane];
    if rank + 1 < size {
        up = bytes_to_f64s(&ctx.recv(Some(rank + 1), 83).await);
    }
    for z in (0..nz).rev() {
        let k = z0 + z;
        for y in 0..ny {
            for x in 0..nx {
                let i = b.idx(x, y, z);
                let pb = (y * nx + x) * NB;
                let mut v = ld_vec(ctx, &b.u, i).await;
                let uv = [up[pb], up[pb + 1], up[pb + 2]];
                let ek = el.e_at(ctx, k).await;
                let ev = mat_vec(&ek, &uv);
                for c in 0..NB {
                    v[c] -= ev[c];
                }
                ctx.fp_scalar_n(SemOp::MulAdd, (NB * NB) as u64);
                st_vec(ctx, &mut b.u, i, &v).await;
                up[pb] = v[0];
                up[pb + 1] = v[1];
                up[pb + 2] = v[2];
            }
        }
        ctx.overhead((nx * ny) as u64);
    }
    if rank > 0 {
        ctx.send(rank - 1, 83, f64s_to_bytes(&up)).await;
    }
}

/// Run BT on this rank.
pub async fn run(ctx: &mut RankCtx, class: Class) -> KernelResult {
    let (nx, ny, nz) = dims(class);
    let size = ctx.size();
    let n = nx * ny * nz * NB;
    let mut b = Block { nx, ny, nz, u: ctx.alloc(n) };
    let mut rng = SimRng::seed_from_u64(0x4254 ^ (ctx.rank() as u64) << 6);
    let mut exact = Vec::with_capacity(n);
    for i in 0..n {
        let v: f64 = rng.gen_range(-1.0..1.0);
        exact.push(v);
        ctx.st(&mut b.u, i, v).await;
    }
    ctx.overhead(n as u64);

    // b = T_x T_y T_z u*.
    apply_z(ctx, &mut b).await;
    for z in 0..nz {
        for x in 0..nx {
            let base = b.idx(x, 0, z);
            apply_local(ctx, &mut b, base, nx, ny).await;
        }
    }
    for z in 0..nz {
        for y in 0..ny {
            let base = b.idx(0, y, z);
            apply_local(ctx, &mut b, base, 1, nx).await;
        }
    }

    // Solve x, y, then pipelined z.
    let el_x = factor(ctx, nx).await;
    let el_y = factor(ctx, ny).await;
    let el_z = factor(ctx, nz * size).await;
    for z in 0..nz {
        for y in 0..ny {
            let base = b.idx(0, y, z);
            solve_local_line(ctx, &mut b, base, 1, &el_x).await;
        }
    }
    for z in 0..nz {
        for x in 0..nx {
            let base = b.idx(x, 0, z);
            solve_local_line(ctx, &mut b, base, nx, &el_y).await;
        }
    }
    solve_z(ctx, &mut b, &el_z).await;

    let mut max_err = 0.0f64;
    for (i, &want) in exact.iter().enumerate() {
        max_err = max_err.max((b.u.raw(i) - want).abs());
    }
    let global = bytes_to_f64s(
        &ctx.allreduce(bgp_mpi::ReduceOp::MaxF64, f64s_to_bytes(&[max_err])).await,
    )[0];
    KernelResult { kernel: Kernel::Bt, verified: global < 1e-8, checksum: global }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::single;

    #[test]
    fn mat_inv_inverts() {
        let m = mat_b();
        let inv = mat_inv(&m);
        let id = mat_mul(&m, &inv);
        for (i, row) in id.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-12, "M*M^-1 = {id:?}");
            }
        }
    }

    #[test]
    fn mat_ops_are_consistent() {
        let a = mat_a();
        let b = mat_b();
        let v = [1.0, -2.0, 3.0];
        // (B - A) v == Bv - Av
        let lhs = mat_vec(&mat_sub(&b, &a), &v);
        let bv = mat_vec(&b, &v);
        let av = mat_vec(&a, &v);
        for i in 0..NB {
            assert!((lhs[i] - (bv[i] - av[i])).abs() < 1e-12);
        }
    }

    /// Dense reference: assemble the full block-tridiagonal matrix and
    /// solve with Gaussian elimination.
    fn dense_block_solve(len: usize, rhs: &[f64]) -> Vec<f64> {
        let n = len * NB;
        let a = mat_a();
        let bm = mat_b();
        let mut m = vec![vec![0.0f64; n + 1]; n];
        for k in 0..len {
            for i in 0..NB {
                for j in 0..NB {
                    m[k * NB + i][k * NB + j] = bm[i][j];
                    if k >= 1 {
                        m[k * NB + i][(k - 1) * NB + j] = a[i][j];
                    }
                    if k + 1 < len {
                        m[k * NB + i][(k + 1) * NB + j] = a[i][j];
                    }
                }
                m[k * NB + i][n] = rhs[k * NB + i];
            }
        }
        for col in 0..n {
            let piv = (col..n)
                .max_by(|&x, &y| m[x][col].abs().partial_cmp(&m[y][col].abs()).unwrap())
                .unwrap();
            m.swap(col, piv);
            for r in col + 1..n {
                let (head, tail) = m.split_at_mut(r);
                let (pivot_row, row) = (&head[col], &mut tail[0]);
                let f = row[col] / pivot_row[col];
                for c in col..=n {
                    row[c] -= f * pivot_row[c];
                }
            }
        }
        let mut x = vec![0.0; n];
        for r in (0..n).rev() {
            let mut acc = m[r][n];
            for c in r + 1..n {
                acc -= m[r][c] * x[c];
            }
            x[r] = acc / m[r][r];
        }
        x
    }

    #[test]
    fn block_elimination_matches_dense_reference() {
        for len in [1usize, 2, 3, 7, 12] {
            let rhs: Vec<f64> = (0..len * NB).map(|i| ((i * 11) % 7) as f64 - 3.0).collect();
            let got = single(|mut ctx| {
                let rhs = rhs.clone();
                async move {
                    let ctx = &mut ctx;
                    let el = factor(ctx, len).await;
                    let mut b = Block { nx: len, ny: 1, nz: 1, u: ctx.alloc(len * NB) };
                    for (i, &v) in rhs.iter().enumerate() {
                        ctx.st(&mut b.u, i, v).await;
                    }
                    solve_local_line(ctx, &mut b, 0, 1, &el).await;
                    (0..len * NB).map(|i| b.u.raw(i)).collect::<Vec<_>>()
                }
            });
            let want = dense_block_solve(len, &rhs);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "len {len}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn block_apply_then_solve_is_identity() {
        let len = 9;
        let original: Vec<f64> = (0..len * NB).map(|i| (i as f64 * 0.37).cos()).collect();
        let got = single(|mut ctx| {
            let original = original.clone();
            async move {
                let ctx = &mut ctx;
                let el = factor(ctx, len).await;
                let mut b = Block { nx: len, ny: 1, nz: 1, u: ctx.alloc(len * NB) };
                for (i, &v) in original.iter().enumerate() {
                    ctx.st(&mut b.u, i, v).await;
                }
                apply_local(ctx, &mut b, 0, 1, len).await;
                solve_local_line(ctx, &mut b, 0, 1, &el).await;
                (0..len * NB).map(|i| b.u.raw(i)).collect::<Vec<_>>()
            }
        });
        for (g, w) in got.iter().zip(&original) {
            assert!((g - w).abs() < 1e-9);
        }
    }
}
