//! **MG — MultiGrid**: V-cycles of a 7-point Poisson solver on a 3-D
//! grid, 1-D-decomposed in z with plane halo exchanges at every level.
//! The smoother/residual/transfer loops are unit-stride stencils — the
//! data parallelism the XL compiler's `-qarch=440d` SIMD-ization feasts
//! on, which is why MG (with FT) shows the big SIMD add-sub/FMA bars in
//! the paper's Fig. 6 and the strong O-level response of Fig. 8.

use crate::common::{Class, Kernel, KernelResult};
use bgp_mpi::{bytes_to_f64s, f64s_to_bytes, RankCtx, SemOp, SimVec};
use bgp_arch::rng::SimRng;

/// Per-rank finest-grid dimensions (nx, ny, local nz).
pub fn dims(class: Class) -> (usize, usize, usize) {
    match class {
        Class::S => (16, 16, 8),
        Class::W => (32, 32, 8),
        Class::A => (48, 48, 32),
    }
}

/// V-cycles executed.
pub fn cycles(class: Class) -> usize {
    match class {
        Class::S => 2,
        Class::W => 3,
        Class::A => 3,
    }
}

/// One grid level: a `nx × ny × (nz+2)` box; z index 0 and nz+1 are halo
/// planes (filled from neighbour ranks, zero at the physical boundary).
struct Level {
    nx: usize,
    ny: usize,
    nz: usize,
    u: SimVec<f64>,
    rhs: SimVec<f64>,
    res: SimVec<f64>,
}

impl Level {
    async fn alloc(ctx: &mut RankCtx, nx: usize, ny: usize, nz: usize) -> Level {
        let n = nx * ny * (nz + 2);
        Level {
            nx,
            ny,
            nz,
            u: ctx.alloc(n),
            rhs: ctx.alloc(n),
            res: ctx.alloc(n),
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z_with_halo: usize) -> usize {
        (z_with_halo * self.ny + y) * self.nx + x
    }
}

/// Exchange the z halo planes of `field` with the rank's neighbours
/// (non-periodic: outermost ranks keep zero halo).
async fn exchange_halo(ctx: &mut RankCtx, lv: &mut Level, field: usize, tag: u32) {
    let (rank, size) = (ctx.rank(), ctx.size());
    let plane = lv.nx * lv.ny;
    async fn pack(ctx: &mut RankCtx, lv: &Level, field: usize, z: usize) -> Vec<f64> {
        let plane = lv.nx * lv.ny;
        let v = match field {
            0 => &lv.u,
            _ => &lv.res,
        };
        let base = z * plane;
        ctx.ld_range(v, base..base + plane).await;
        v.as_slice()[base..base + plane].to_vec()
    }
    async fn unpack(
        ctx: &mut RankCtx,
        lv: &mut Level,
        field: usize,
        z: usize,
        data: &[f64],
    ) {
        let base = z * (lv.nx * lv.ny);
        let v = match field {
            0 => &mut lv.u,
            _ => &mut lv.res,
        };
        v.as_mut_slice()[base..base + data.len()].copy_from_slice(data);
        ctx.st_range(v, base..base + data.len()).await;
    }
    // Upward: send top interior plane to rank+1, receive bottom halo.
    if rank + 1 < size {
        let top = pack(ctx, lv, field, lv.nz).await;
        ctx.send(rank + 1, tag, f64s_to_bytes(&top)).await;
    }
    if rank > 0 {
        let data = bytes_to_f64s(&ctx.recv(Some(rank - 1), tag).await);
        unpack(ctx, lv, field, 0, &data).await;
    }
    // Downward: send bottom interior plane to rank-1, receive top halo.
    if rank > 0 {
        let bot = pack(ctx, lv, field, 1).await;
        ctx.send(rank - 1, tag + 1, f64s_to_bytes(&bot)).await;
    }
    if rank + 1 < size {
        let data = bytes_to_f64s(&ctx.recv(Some(rank + 1), tag + 1).await);
        unpack(ctx, lv, field, lv.nz + 1, &data).await;
    }
    ctx.overhead(plane as u64);
}

const INV_D: f64 = 1.0 / 6.0;
/// Weighted-Jacobi damping.
const OMEGA: f64 = 0.8;

/// One damped-Jacobi sweep: `u += ω D⁻¹ (rhs − A u)` with the 7-point
/// Laplacian. Fully vectorizable stencil.
async fn smooth(ctx: &mut RankCtx, lv: &mut Level) {
    exchange_halo(ctx, lv, 0, 20).await;
    let (nx, ny, nz) = (lv.nx, lv.ny, lv.nz);
    for z in 1..=nz {
        for y in 0..ny {
            let mut x = 0;
            while x < nx {
                let take_pair = x + 1 < nx;
                let idx = lv.idx(x, y, z);
                if take_pair {
                    let plan = ctx.plan_pair(true);
                    let (u0, u1) = ctx.ld2(&lv.u, idx, plan).await;
                    let (b0, b1) = ctx.ld2(&lv.rhs, idx, plan).await;
                    // Six neighbour arms per point (x arms overlap the
                    // pair; y/z arms are unit-stride pair loads).
                    let xm0 = if x > 0 { ctx.ld(&lv.u, idx - 1).await } else { 0.0 };
                    let xp1 = if x + 2 < nx { ctx.ld(&lv.u, idx + 2).await } else { 0.0 };
                    let (ym0, ym1) = if y > 0 {
                        ctx.ld2(&lv.u, lv.idx(x, y - 1, z), plan).await
                    } else {
                        (0.0, 0.0)
                    };
                    let (yp0, yp1) = if y + 1 < ny {
                        ctx.ld2(&lv.u, lv.idx(x, y + 1, z), plan).await
                    } else {
                        (0.0, 0.0)
                    };
                    let (zm0, zm1) = ctx.ld2(&lv.u, lv.idx(x, y, z - 1), plan).await;
                    let (zp0, zp1) = ctx.ld2(&lv.u, lv.idx(x, y, z + 1), plan).await;
                    // Neighbour sums: 5 pair-adds; residual FMA; relax FMA.
                    for _ in 0..5 {
                        ctx.fp_pair(plan, SemOp::Add);
                    }
                    ctx.fp_pair(plan, SemOp::MulAdd);
                    ctx.fp_pair(plan, SemOp::MulAdd);
                    let s0 = xm0 + u1 + ym0 + yp0 + zm0 + zp0;
                    let s1 = u0 + xp1 + ym1 + yp1 + zm1 + zp1;
                    let r0 = b0 - (6.0 * u0 - s0);
                    let r1 = b1 - (6.0 * u1 - s1);
                    ctx.st2(
                        &mut lv.u,
                        idx,
                        (u0 + OMEGA * INV_D * r0, u1 + OMEGA * INV_D * r1),
                        plan,
                    )
                    .await;
                    x += 2;
                } else {
                    let u0 = ctx.ld(&lv.u, idx).await;
                    let b0 = ctx.ld(&lv.rhs, idx).await;
                    let xm = if x > 0 { ctx.ld(&lv.u, idx - 1).await } else { 0.0 };
                    let zm = ctx.ld(&lv.u, lv.idx(x, y, z - 1)).await;
                    let zp = ctx.ld(&lv.u, lv.idx(x, y, z + 1)).await;
                    let ym = if y > 0 { ctx.ld(&lv.u, lv.idx(x, y - 1, z)).await } else { 0.0 };
                    let yp = if y + 1 < ny { ctx.ld(&lv.u, lv.idx(x, y + 1, z)).await } else { 0.0 };
                    for _ in 0..3 {
                        ctx.fp1(SemOp::Add);
                    }
                    ctx.fp1(SemOp::MulAdd);
                    ctx.fp1(SemOp::MulAdd);
                    let s = xm + ym + yp + zm + zp;
                    let r = b0 - (6.0 * u0 - s);
                    ctx.st(&mut lv.u, idx, u0 + OMEGA * INV_D * r).await;
                    x += 1;
                }
            }
        }
        ctx.overhead((nx * ny) as u64);
    }
}

/// `res = rhs − A u` on the interior. Returns the local squared norm.
async fn residual(ctx: &mut RankCtx, lv: &mut Level) -> f64 {
    exchange_halo(ctx, lv, 0, 24).await;
    let (nx, ny, nz) = (lv.nx, lv.ny, lv.nz);
    let mut norm = 0.0;
    for z in 1..=nz {
        for y in 0..ny {
            for x in 0..nx {
                let idx = lv.idx(x, y, z);
                let u0 = ctx.ld(&lv.u, idx).await;
                let b0 = ctx.ld(&lv.rhs, idx).await;
                let xm = if x > 0 { ctx.ld(&lv.u, idx - 1).await } else { 0.0 };
                let xp = if x + 1 < nx { ctx.ld(&lv.u, idx + 1).await } else { 0.0 };
                let ym = if y > 0 { ctx.ld(&lv.u, lv.idx(x, y - 1, z)).await } else { 0.0 };
                let yp = if y + 1 < ny { ctx.ld(&lv.u, lv.idx(x, y + 1, z)).await } else { 0.0 };
                let zm = ctx.ld(&lv.u, lv.idx(x, y, z - 1)).await;
                let zp = ctx.ld(&lv.u, lv.idx(x, y, z + 1)).await;
                // Vectorizable stencil: charge as pair-ops every 2 points
                // would be tidier, but the benchmark's resid() is written
                // scalar-in-x with compiler pairing — model with pairs on
                // even x.
                if x % 2 == 0 {
                    let plan = ctx.plan_pair(true);
                    for _ in 0..3 {
                        ctx.fp_pair(plan, SemOp::Add);
                    }
                    ctx.fp_pair(plan, SemOp::MulAdd);
                }
                let s = xm + xp + ym + yp + zm + zp;
                let r = b0 - (6.0 * u0 - s);
                ctx.st(&mut lv.res, idx, r).await;
                norm += r * r;
            }
        }
        ctx.overhead((nx * ny) as u64);
    }
    norm
}

/// Full-weighting-ish restriction (2×2×2 averaging) of `fine.res` into
/// `coarse.rhs`.
async fn restrict(ctx: &mut RankCtx, fine: &mut Level, coarse: &mut Level) {
    exchange_halo(ctx, fine, 1, 28).await;
    let (cnx, cny, cnz) = (coarse.nx, coarse.ny, coarse.nz);
    for z in 1..=cnz {
        for y in 0..cny {
            let mut x = 0;
            while x < cnx {
                let pair = x + 1 < cnx;
                let (fz, fy, fx) = (2 * z - 1, 2 * y, 2 * x);
                let mut sum = [0.0f64; 2];
                for dz in 0..2usize {
                    for dy in 0..2usize {
                        for dx in 0..2usize {
                            let fyy = (fy + dy).min(fine.ny - 1);
                            let i0 = fine.idx(fx + dx, fyy, fz + dz);
                            sum[0] += ctx.ld(&fine.res, i0).await;
                            if pair {
                                let i1 = fine.idx((fx + 2 + dx).min(fine.nx - 1), fyy, fz + dz);
                                sum[1] += ctx.ld(&fine.res, i1).await;
                            }
                        }
                    }
                }
                let cidx = coarse.idx(x, y, z);
                if pair {
                    let plan = ctx.plan_pair(true);
                    for _ in 0..4 {
                        ctx.fp_pair(plan, SemOp::Add);
                    }
                    ctx.fp_pair(plan, SemOp::Mul);
                    ctx.st2(&mut coarse.rhs, cidx, (sum[0] / 8.0, sum[1] / 8.0), plan).await;
                    x += 2;
                } else {
                    for _ in 0..7 {
                        ctx.fp1(SemOp::Add);
                    }
                    ctx.fp1(SemOp::Mul);
                    ctx.st(&mut coarse.rhs, cidx, sum[0] / 8.0).await;
                    x += 1;
                }
            }
        }
        ctx.overhead((cnx * cny) as u64);
    }
}

/// Trilinear-ish prolongation: add the coarse correction to the fine
/// solution (nearest-point injection with pair stores).
async fn prolongate(ctx: &mut RankCtx, coarse: &mut Level, fine: &mut Level) {
    exchange_halo(ctx, coarse, 0, 32).await;
    let (cnx, cny, cnz) = (coarse.nx, coarse.ny, coarse.nz);
    for z in 1..=cnz {
        for y in 0..cny {
            for x in 0..cnx {
                let c = ctx.ld(&coarse.u, coarse.idx(x, y, z)).await;
                for dz in 0..2usize {
                    for dy in 0..2usize {
                        let fy = (2 * y + dy).min(fine.ny - 1);
                        let fz = 2 * z - 1 + dz;
                        let fi = fine.idx(2 * x, fy, fz);
                        let plan = ctx.plan_pair(true);
                        let (u0, u1) = ctx.ld2(&fine.u, fi, plan).await;
                        ctx.fp_pair(plan, SemOp::Add);
                        ctx.st2(&mut fine.u, fi, (u0 + c, u1 + c), plan).await;
                    }
                }
            }
        }
        ctx.overhead((cnx * cny) as u64);
    }
}

async fn zero_field(ctx: &mut RankCtx, lv: &mut Level) {
    let n = lv.nx * lv.ny * (lv.nz + 2);
    ctx.st_fill(&mut lv.u, 0..n, 0.0).await;
    ctx.overhead(n as u64);
}

/// Run MG on this rank.
pub async fn run(ctx: &mut RankCtx, class: Class) -> KernelResult {
    let (nx, ny, nz) = dims(class);
    // Build the level hierarchy: halve every dimension until too coarse.
    let mut levels = Vec::new();
    let (mut lx, mut ly, mut lz) = (nx, ny, nz);
    loop {
        levels.push(Level::alloc(ctx, lx, ly, lz).await);
        if lx % 2 != 0 || ly % 2 != 0 || lz % 2 != 0 || lx <= 4 || ly <= 4 || lz <= 2 {
            break;
        }
        lx /= 2;
        ly /= 2;
        lz /= 2;
    }
    let depth = levels.len();

    // NAS-MG-style ±1 point sources scattered through the fine grid.
    let mut rng = SimRng::seed_from_u64(0x4d47 ^ ctx.rank() as u64);
    {
        let lv = &mut levels[0];
        let n = lv.nx * lv.ny * (lv.nz + 2);
        ctx.st_fill(&mut lv.rhs, 0..n, 0.0).await;
        for s in 0..20 {
            let x = rng.gen_range(0..lv.nx);
            let y = rng.gen_range(0..lv.ny);
            let z = rng.gen_range(1..=lv.nz);
            let v = if s % 2 == 0 { 1.0 } else { -1.0 };
            let idx = lv.idx(x, y, z);
            ctx.st(&mut lv.rhs, idx, v).await;
        }
        ctx.overhead(n as u64);
    }
    for lv in levels.iter_mut() {
        zero_field(ctx, lv).await;
    }

    let initial = {
        let local = residual(ctx, &mut levels[0]).await;
        ctx.allreduce_sum_f64(&[local]).await[0].sqrt()
    };

    let mut norms = Vec::new();
    for _cycle in 0..cycles(class) {
        // Downstroke.
        for l in 0..depth - 1 {
            smooth(ctx, &mut levels[l]).await;
            smooth(ctx, &mut levels[l]).await;
            residual(ctx, &mut levels[l]).await;
            let (a, b) = levels.split_at_mut(l + 1);
            restrict(ctx, &mut a[l], &mut b[0]).await;
            zero_field(ctx, &mut levels[l + 1]).await;
        }
        // Coarsest solve: a few extra sweeps.
        for _ in 0..4 {
            smooth(ctx, &mut levels[depth - 1]).await;
        }
        // Upstroke.
        for l in (0..depth - 1).rev() {
            let (a, b) = levels.split_at_mut(l + 1);
            prolongate(ctx, &mut b[0], &mut a[l]).await;
            smooth(ctx, &mut levels[l]).await;
        }
        let local = residual(ctx, &mut levels[0]).await;
        norms.push(ctx.allreduce_sum_f64(&[local]).await[0].sqrt());
    }

    // Verification: the V-cycles monotonically reduce the residual and
    // achieve a healthy total reduction.
    let monotone = norms.windows(2).all(|w| w[1] <= w[0] * 1.0001);
    let final_norm = *norms.last().expect("at least one cycle");
    // Injection-prolongated weighted-Jacobi V-cycles contract modestly;
    // demand a clear reduction without overfitting the rate.
    let reduced = final_norm < 0.35 * initial;
    KernelResult {
        kernel: Kernel::Mg,
        verified: monotone && reduced && final_norm.is_finite(),
        checksum: final_norm,
    }
}
