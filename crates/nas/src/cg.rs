//! **CG — Conjugate Gradient**: solve a sparse symmetric positive-definite
//! system by CG, the benchmark's mix of sparse matrix-vector products and
//! vector updates with all-reduce dot products.
//!
//! The matrix is a symmetric band (|i−j| ≤ 3) plus one antipodal diagonal
//! (j = i + n/2 mod n), diagonally dominant and hence SPD. Relative to
//! NAS CG's randomized pattern this keeps the pattern locally enumerable
//! (each rank can build its rows without global knowledge); the matrix
//! values are still streamed from memory row by row and the sparse
//! product is lowered **scalar** (`vectorizable = false`) to model the
//! indirection-blocked loops of the real code — which is what puts CG in
//! the single-FMA-dominated group of the paper's Fig. 6.

use crate::common::{axpy, dot, Class, Kernel, KernelResult};
use bgp_mpi::{bytes_to_f64s, f64s_to_bytes, RankCtx, SemOp, SimVec};

/// Matrix rows owned per rank.
pub fn rows_per_rank(class: Class) -> usize {
    match class {
        Class::S => 512,
        Class::W => 2048,
        Class::A => 16384,
    }
}

/// CG iterations.
pub fn iterations(class: Class) -> usize {
    match class {
        Class::S => 6,
        Class::W => 10,
        Class::A => 15,
    }
}

const BAND: usize = 3;
/// Off-diagonal band coefficients (|i−j| = 1, 2, 3).
const C: [f64; BAND] = [-1.0, -0.5, -0.25];
/// Antipodal coefficient.
const E: f64 = -0.125;
/// Diagonal: strictly dominant.
const D: f64 = 2.0 * (1.0 + 0.5 + 0.25) + 0.125 + 1.0;

/// Nonzeros per row: diagonal + 2×band + antipodal.
pub const NNZ: usize = 1 + 2 * BAND + 1;

struct Partition {
    rank: usize,
    size: usize,
    rows: usize,
}

impl Partition {
    fn n(&self) -> usize {
        self.rows * self.size
    }

    fn owner(&self, gi: usize) -> usize {
        gi / self.rows
    }

    fn first(&self) -> usize {
        self.rank * self.rows
    }
}

/// Exchange the halo values this rank's rows need: up to `BAND` boundary
/// values from each side neighbour plus the full block of the antipodal
/// rank. Returns (left[BAND], right[BAND], opposite block).
async fn exchange_halo(
    ctx: &mut RankCtx,
    part: &Partition,
    x: &SimVec<f64>,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let rows = part.rows;
    let size = part.size;
    if size == 1 {
        // Everything is local (wrap-around included).
        let all: Vec<f64> = (0..rows).map(|i| x.raw(i)).collect();
        let left = (0..BAND).map(|k| all[(rows - BAND + k) % rows]).collect();
        let right = (0..BAND).map(|k| all[k % rows]).collect();
        return (left, right, all);
    }
    let left_rank = (part.rank + size - 1) % size;
    let right_rank = (part.rank + 1) % size;
    // Boundary values, packed with simulated reads.
    let mut low = Vec::with_capacity(BAND);
    let mut high = Vec::with_capacity(BAND);
    for k in 0..BAND {
        low.push(ctx.ld(x, k).await);
        high.push(ctx.ld(x, rows - BAND + k).await);
    }
    // Send my high boundary right, receive left neighbour's high boundary.
    ctx.send(right_rank, 10, f64s_to_bytes(&high)).await;
    let left = bytes_to_f64s(&ctx.recv(Some(left_rank), 10).await);
    // Send my low boundary left, receive right neighbour's low boundary.
    ctx.send(left_rank, 11, f64s_to_bytes(&low)).await;
    let right = bytes_to_f64s(&ctx.recv(Some(right_rank), 11).await);
    // Antipodal block swap.
    let opp_rank = (part.rank + size / 2) % size;
    ctx.ld_range(x, 0..rows).await;
    let mine = x.as_slice()[..rows].to_vec();
    let opposite = if opp_rank == part.rank {
        mine
    } else {
        bytes_to_f64s(&ctx.sendrecv(opp_rank, 12, f64s_to_bytes(&mine)).await)
    };
    (left, right, opposite)
}

/// `y = A x` with the distributed matrix. `vals`/(implicit pattern) are
/// streamed from memory like the benchmark's `a[]`/`colidx[]` arrays.
#[allow(clippy::too_many_arguments)]
async fn spmv(
    ctx: &mut RankCtx,
    part: &Partition,
    vals: &SimVec<f64>,
    x: &SimVec<f64>,
    y: &mut SimVec<f64>,
    left: &[f64],
    right: &[f64],
    opposite: &[f64],
) {
    let rows = part.rows;
    let n = part.n();
    let first = part.first();
    for i in 0..rows {
        let gi = first + i;
        let mut acc = 0.0;
        // Stream the row's stored coefficients (diagonal first).
        let vbase = i * NNZ;
        let dv = ctx.ld(vals, vbase).await;
        let xi = ctx.ld(x, i).await;
        ctx.fp1(SemOp::Mul);
        acc += dv * xi;
        let mut slot = 1;
        for k in 1..=BAND {
            for dir in [-1i64, 1] {
                let gj = (gi as i64 + dir * k as i64).rem_euclid(n as i64) as usize;
                let v = ctx.ld(vals, vbase + slot).await;
                slot += 1;
                let xj = if part.owner(gj) == part.rank {
                    ctx.ld(x, gj - first).await
                } else if dir < 0 {
                    // Left halo holds x[first-BAND .. first]: gj = first+i-k.
                    left[BAND + i - k]
                } else {
                    // Right halo holds x[first+rows ..]: gj = first+i+k.
                    right[i + k - rows]
                };
                ctx.fp1(SemOp::MulAdd);
                acc += v * xj;
            }
        }
        // Antipodal entry.
        let gj = (gi + n / 2) % n;
        let v = ctx.ld(vals, vbase + slot).await;
        let xj = if part.owner(gj) == part.rank {
            ctx.ld(x, gj - first).await
        } else {
            opposite[gj % rows]
        };
        ctx.fp1(SemOp::MulAdd);
        acc += v * xj;
        ctx.st(y, i, acc).await;
        ctx.int_ops(NNZ as u64); // column-index handling
    }
    ctx.overhead(rows as u64);
}

/// Run CG on this rank.
pub async fn run(ctx: &mut RankCtx, class: Class) -> KernelResult {
    let rows = rows_per_rank(class);
    let part = Partition { rank: ctx.rank(), size: ctx.size(), rows };
    assert!(
        part.size == 1 || part.size.is_multiple_of(2),
        "CG needs an even rank count for the antipodal exchange"
    );

    // Build and store the row coefficients (the benchmark's a[] array).
    let mut vals = ctx.alloc::<f64>(rows * NNZ);
    for i in 0..rows {
        let base = i * NNZ;
        ctx.st(&mut vals, base, D).await;
        let mut slot = 1;
        for k in 1..=BAND {
            for _dir in 0..2 {
                ctx.st(&mut vals, base + slot, C[k - 1]).await;
                slot += 1;
            }
        }
        ctx.st(&mut vals, base + slot, E).await;
    }
    ctx.overhead(rows as u64);

    let mut x = ctx.alloc::<f64>(rows);
    let mut r = ctx.alloc::<f64>(rows);
    let mut p = ctx.alloc::<f64>(rows);
    let mut q = ctx.alloc::<f64>(rows);
    let mut bvec = ctx.alloc::<f64>(rows);
    // A varied right-hand side (a constant b is an eigenvector of the
    // band-plus-antipodal operator and CG would converge in one step);
    // x0 = 0 ⇒ r0 = p0 = b.
    let first = part.first();
    for i in 0..rows {
        let b = 1.0 + 0.25 * ((first + i) % 13) as f64;
        ctx.st(&mut bvec, i, b).await;
        ctx.st(&mut r, i, b).await;
        ctx.st(&mut p, i, b).await;
        ctx.st(&mut x, i, 0.0).await;
    }
    ctx.overhead(rows as u64);

    let mut rho = {
        let local = dot(ctx, &r, &r, rows, true).await;
        ctx.allreduce_sum_f64(&[local]).await[0]
    };
    let rho0 = rho;

    for _ in 0..iterations(class) {
        let (left, right, opposite) = exchange_halo(ctx, &part, &p).await;
        spmv(ctx, &part, &vals, &p, &mut q, &left, &right, &opposite).await;
        let pq_local = dot(ctx, &p, &q, rows, true).await;
        let pq = ctx.allreduce_sum_f64(&[pq_local]).await[0];
        let alpha = rho / pq;
        axpy(ctx, alpha, &p, &mut x, rows, true).await;
        axpy(ctx, -alpha, &q, &mut r, rows, true).await;
        let rho_new = {
            let local = dot(ctx, &r, &r, rows, true).await;
            ctx.allreduce_sum_f64(&[local]).await[0]
        };
        let beta = rho_new / rho;
        rho = rho_new;
        // p = r + beta p  (two compiled passes, as the Fortran writes it).
        for i in 0..rows {
            let pv = ctx.ld(&p, i).await;
            let rv = ctx.ld(&r, i).await;
            ctx.fp1(SemOp::MulAdd);
            ctx.st(&mut p, i, rv + beta * pv).await;
        }
        ctx.overhead(rows as u64);
    }

    // Verification: the recursion's residual matches the explicitly
    // recomputed one, and CG actually converged.
    let (left, right, opposite) = exchange_halo(ctx, &part, &x).await;
    spmv(ctx, &part, &vals, &x, &mut q, &left, &right, &opposite).await;
    let mut err_local = 0.0;
    for i in 0..rows {
        let e = bvec.raw(i) - q.raw(i);
        err_local += e * e;
    }
    let explicit = ctx.allreduce_sum_f64(&[err_local]).await[0].sqrt();
    let recursive = rho.sqrt();
    let rel = (explicit - recursive).abs() / explicit.max(1e-30);
    let converged = rho < 1e-3 * rho0;
    KernelResult {
        kernel: Kernel::Cg,
        verified: rel < 1e-6 && converged,
        checksum: explicit,
    }
}
