//! **FT — 3-D FFT PDE**: forward 3-D FFT (x/y locally on z-slabs, global
//! transpose over the torus, z on x-slabs), a spectral "evolve" scaling,
//! and the inverse transform. The radix-2 butterflies operate on
//! re/im pairs — precisely the data-level parallelism the double-hummer
//! FPU was built for — so FT joins MG as the paper's SIMD showcase
//! (Figs. 6 and 7), and its transpose makes it the communication- and
//! memory-heaviest kernel (the >4× DDR ratio of Fig. 12).

use crate::common::{Class, Kernel, KernelResult};
use bgp_mpi::{bytes_to_f64s, f64s_to_bytes, RankCtx, SemOp, SimVec};
use bgp_arch::rng::SimRng;

/// (NX = NY, local z planes) per class. The global NZ is `lz × ranks`.
pub fn dims(class: Class) -> (usize, usize) {
    match class {
        Class::S => (16, 4),
        Class::W => (32, 8),
        Class::A => (64, 4),
    }
}

/// Complex-interleaved accessor helpers over a `SimVec<f64>`:
/// element `c` occupies slots `2c` (re) and `2c+1` (im).
struct Grid {
    nx: usize,
    ny: usize,
    nz: usize, // local z extent in the current layout
}

/// Simulated complex load as an re/im pair (one quadload under SIMD).
#[inline]
async fn ldc(ctx: &mut RankCtx, v: &SimVec<f64>, c: usize) -> (f64, f64) {
    let plan = ctx.plan_pair(true);
    ctx.ld2(v, 2 * c, plan).await
}

#[inline]
async fn stc(ctx: &mut RankCtx, v: &mut SimVec<f64>, c: usize, val: (f64, f64)) {
    let plan = ctx.plan_pair(true);
    ctx.st2(v, 2 * c, val, plan).await;
}

/// Twiddle-factor table for a given FFT length (the benchmark's `u[]`).
struct Twiddles {
    len: usize,
    table: SimVec<f64>,
}

impl Twiddles {
    async fn new(ctx: &mut RankCtx, len: usize) -> Twiddles {
        assert!(len.is_power_of_two());
        let mut table = ctx.alloc::<f64>(len.max(2));
        for k in 0..len / 2 {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
            *table.raw_mut(2 * k) = ang.cos();
            *table.raw_mut(2 * k + 1) = ang.sin();
        }
        Twiddles { len, table }
    }
}

/// Iterative radix-2 FFT of one line of `len` complex elements at
/// `base + i*stride` (complex indices). Strided lines are first gathered
/// into the contiguous `scratch` buffer — exactly how the benchmark's
/// `cffts` routines stage every non-unit-stride direction, keeping the
/// butterfly stages cache-resident. `inverse` conjugates the twiddles;
/// scaling is the caller's business.
async fn fft_line(
    ctx: &mut RankCtx,
    data: &mut SimVec<f64>,
    base: usize,
    stride: usize,
    tw: &Twiddles,
    inverse: bool,
    scratch: &mut SimVec<f64>,
) {
    let len = tw.len;
    if stride == 1 {
        fft_contiguous(ctx, data, base, tw, inverse).await;
        return;
    }
    debug_assert!(scratch.len() >= 2 * len);
    for k in 0..len {
        let v = ldc(ctx, data, base + k * stride).await;
        stc(ctx, scratch, k, v).await;
    }
    ctx.overhead(len as u64);
    fft_contiguous(ctx, scratch, 0, tw, inverse).await;
    for k in 0..len {
        let v = ldc(ctx, scratch, k).await;
        stc(ctx, data, base + k * stride, v).await;
    }
    ctx.overhead(len as u64);
}

/// The in-place butterfly stages over a contiguous complex line.
async fn fft_contiguous(
    ctx: &mut RankCtx,
    data: &mut SimVec<f64>,
    base: usize,
    tw: &Twiddles,
    inverse: bool,
) {
    let len = tw.len;
    // Bit-reversal permutation.
    let bits = len.trailing_zeros();
    for i in 0..len {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            let a = ldc(ctx, data, base + i).await;
            let b = ldc(ctx, data, base + j).await;
            stc(ctx, data, base + i, b).await;
            stc(ctx, data, base + j, a).await;
        }
        ctx.int_ops(2);
    }
    ctx.overhead(len as u64);

    let mut half = 1;
    while half < len {
        let step = tw.len / (2 * half);
        for start in (0..len).step_by(2 * half) {
            for k in 0..half {
                let ca = base + start + k;
                let cb = ca + half;
                let plan = ctx.plan_pair(true);
                let (ar, ai) = ctx.ld2(data, 2 * ca, plan).await;
                let (br, bi) = ctx.ld2(data, 2 * cb, plan).await;
                let (wr, mut wi) = ctx.ld2(&tw.table, 2 * (k * step), plan).await;
                if inverse {
                    wi = -wi;
                }
                // Complex multiply t = w·b: lowered as one pair-mul plus
                // one pair-FMA (6 flops), then the two pair add/subs.
                ctx.fp_pair(plan, SemOp::Mul);
                ctx.fp_pair(plan, SemOp::MulAdd);
                ctx.fp_pair(plan, SemOp::Add);
                ctx.fp_pair(plan, SemOp::Add);
                let tr = wr * br - wi * bi;
                let ti = wr * bi + wi * br;
                ctx.st2(data, 2 * ca, (ar + tr, ai + ti), plan).await;
                ctx.st2(data, 2 * cb, (ar - tr, ai - ti), plan).await;
            }
        }
        ctx.overhead((len / 2) as u64);
        half *= 2;
    }
}

/// Pack/transpose/unpack between z-slab and x-slab layouts.
///
/// z-slab index: `(zl*NY + y)*NX + x` (x contiguous);
/// x-slab index: `(xl*NY + y)*NZG + z` (z contiguous).
async fn transpose(
    ctx: &mut RankCtx,
    src: &SimVec<f64>,
    dst: &mut SimVec<f64>,
    g: &Grid, // nx, ny, nz = local z extent of the z-slab layout
    to_xslab: bool,
) {
    let p = ctx.size();
    let rank = ctx.rank();
    let lx = g.nx / p;
    let lz = g.nz;
    let nzg = lz * p;
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(p);
    for d in 0..p {
        let mut chunk = Vec::with_capacity(2 * lx * g.ny * lz);
        if to_xslab {
            // Send x ∈ d's range from my z planes.
            for xl in 0..lx {
                let x = d * lx + xl;
                for y in 0..g.ny {
                    for zl in 0..lz {
                        let c = (zl * g.ny + y) * g.nx + x;
                        let (re, im) = ldc(ctx, src, c).await;
                        chunk.push(re);
                        chunk.push(im);
                    }
                }
            }
        } else {
            // Send z ∈ d's range from my x planes (inverse transpose).
            for xl in 0..lx {
                for y in 0..g.ny {
                    for zl in 0..lz {
                        let z = d * lz + zl;
                        let c = (xl * g.ny + y) * nzg + z;
                        let (re, im) = ldc(ctx, src, c).await;
                        chunk.push(re);
                        chunk.push(im);
                    }
                }
            }
        }
        ctx.overhead((lx * g.ny * lz) as u64);
        rows.push(chunk);
    }
    let cols = ctx.alltoall(rows.into_iter().map(|r| f64s_to_bytes(&r)).collect()).await;
    for (srcr, bytes) in cols.iter().enumerate() {
        let vals = bytes_to_f64s(bytes);
        let mut it = vals.chunks_exact(2);
        if to_xslab {
            // From rank `srcr` I received my x-range over its z-range.
            for xl in 0..lx {
                for y in 0..g.ny {
                    for zl in 0..lz {
                        let z = srcr * lz + zl;
                        let c = (xl * g.ny + y) * nzg + z;
                        let v = it.next().expect("chunk size mismatch");
                        stc(ctx, dst, c, (v[0], v[1])).await;
                    }
                }
            }
        } else {
            // I received my z-range over rank `srcr`'s x-range.
            for xl in 0..lx {
                let x = srcr * lx + xl;
                for y in 0..g.ny {
                    for zl in 0..lz {
                        let c = (zl * g.ny + y) * g.nx + x;
                        let v = it.next().expect("chunk size mismatch");
                        stc(ctx, dst, c, (v[0], v[1])).await;
                    }
                }
            }
        }
        ctx.overhead((lx * g.ny * lz) as u64);
    }
    let _ = rank;
}

/// Run FT on this rank.
pub async fn run(ctx: &mut RankCtx, class: Class) -> KernelResult {
    let (n, lz) = dims(class);
    let p = ctx.size();
    assert!(p <= n, "FT needs ranks <= {n} so every rank owns an x-plane");
    assert!(n % p == 0, "FT needs ranks to divide {n}");
    let nzg = lz * p;
    let g = Grid { nx: n, ny: n, nz: lz };
    let elems = n * n * lz;

    // Initial condition: seeded pseudo-random complex field.
    let mut data = ctx.alloc::<f64>(2 * elems);
    let mut work = ctx.alloc::<f64>(2 * elems);
    let mut rng = SimRng::seed_from_u64(0xf7 ^ (ctx.rank() as u64) << 24);
    let mut original = Vec::with_capacity(2 * elems);
    for c in 0..elems {
        let re: f64 = rng.gen_range(-1.0..1.0);
        let im: f64 = rng.gen_range(-1.0..1.0);
        stc(ctx, &mut data, c, (re, im)).await;
        original.push(re);
        original.push(im);
    }
    ctx.overhead(elems as u64);

    let tw_xy = Twiddles::new(ctx, n).await;
    let tw_z = Twiddles::new(ctx, nzg).await;
    // Line-staging buffer for the strided directions (the cffts scratch).
    let mut line_buf = ctx.alloc::<f64>(2 * n.max(nzg));

    // ---- Forward 3-D FFT ----
    // x-direction: contiguous lines in the z-slab.
    for zl in 0..lz {
        for y in 0..n {
            fft_line(ctx, &mut data, (zl * n + y) * n, 1, &tw_xy, false, &mut line_buf).await;
        }
    }
    // y-direction: stride-n lines, staged through the scratch buffer.
    for zl in 0..lz {
        for x in 0..n {
            fft_line(ctx, &mut data, zl * n * n + x, n, &tw_xy, false, &mut line_buf).await;
        }
    }
    // Global transpose to x-slabs, then z-direction (contiguous).
    transpose(ctx, &data, &mut work, &g, true).await;
    let lx = n / p;
    for xl in 0..lx {
        for y in 0..n {
            fft_line(ctx, &mut work, (xl * n + y) * nzg, 1, &tw_z, false, &mut line_buf).await;
        }
    }

    // ---- Evolve: real spectral decay, then checksum ----
    let mut checksum = (0.0f64, 0.0f64);
    for xl in 0..lx {
        for y in 0..n {
            for z in 0..nzg {
                let c = (xl * n + y) * nzg + z;
                let factor = 1.0 - 0.25 * ((z % 7) as f64) / 7.0;
                let (re, im) = ldc(ctx, &work, c).await;
                ctx.fp1(SemOp::Mul);
                ctx.fp1(SemOp::Mul);
                stc(ctx, &mut work, c, (re * factor, im * factor)).await;
                if (c + xl).is_multiple_of(1031) {
                    checksum.0 += re * factor;
                    checksum.1 += im * factor;
                    ctx.fp_scalar_n(SemOp::Add, 2);
                }
            }
        }
        ctx.overhead((n * nzg) as u64);
    }
    let sums = ctx.allreduce_sum_f64(&[checksum.0, checksum.1]).await;

    // ---- Un-evolve + inverse 3-D FFT ----
    // Reciprocal factors are precomputed per z plane (one divide each),
    // then applied as multiplies — the same table discipline the real
    // code uses for its exponent terms.
    let mut inv_factors = ctx.alloc::<f64>(nzg);
    for z in 0..nzg {
        let factor = 1.0 - 0.25 * ((z % 7) as f64) / 7.0;
        ctx.fp1(SemOp::Div);
        ctx.st(&mut inv_factors, z, 1.0 / factor).await;
    }
    ctx.overhead(nzg as u64);
    for xl in 0..lx {
        for y in 0..n {
            for z in 0..nzg {
                let c = (xl * n + y) * nzg + z;
                let inv = ctx.ld(&inv_factors, z).await;
                let (re, im) = ldc(ctx, &work, c).await;
                ctx.fp1(SemOp::Mul);
                ctx.fp1(SemOp::Mul);
                stc(ctx, &mut work, c, (re * inv, im * inv)).await;
            }
        }
        ctx.overhead((n * nzg) as u64);
    }
    for xl in 0..lx {
        for y in 0..n {
            fft_line(ctx, &mut work, (xl * n + y) * nzg, 1, &tw_z, true, &mut line_buf).await;
        }
    }
    transpose(ctx, &work, &mut data, &g, false).await;
    for zl in 0..lz {
        for x in 0..n {
            fft_line(ctx, &mut data, zl * n * n + x, n, &tw_xy, true, &mut line_buf).await;
        }
    }
    for zl in 0..lz {
        for y in 0..n {
            fft_line(ctx, &mut data, (zl * n + y) * n, 1, &tw_xy, true, &mut line_buf).await;
        }
    }
    // Scale by 1/(NX·NY·NZG).
    let scale = 1.0 / (n as f64 * n as f64 * nzg as f64);
    for c in 0..elems {
        let (re, im) = ldc(ctx, &data, c).await;
        ctx.fp1(SemOp::Mul);
        ctx.fp1(SemOp::Mul);
        stc(ctx, &mut data, c, (re * scale, im * scale)).await;
    }
    ctx.overhead(elems as u64);

    // Verification: round trip reproduces the original field.
    let mut max_err = 0.0f64;
    for (i, &want) in original.iter().enumerate() {
        let got = data.raw(i);
        max_err = max_err.max((got - want).abs());
    }
    let global_err = ctx
        .allreduce(bgp_mpi::ReduceOp::MaxF64, f64s_to_bytes(&[max_err]))
        .await;
    let global_err = bytes_to_f64s(&global_err)[0];
    KernelResult {
        kernel: Kernel::Ft,
        verified: global_err < 1e-9 && sums[0].is_finite(),
        checksum: sums[0] + sums[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::single;

    /// Naive O(n²) DFT of a complex signal (reference for fft_line).
    fn naive_dft(input: &[(f64, f64)], inverse: bool) -> Vec<(f64, f64)> {
        let n = input.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (j, &(re, im)) in input.iter().enumerate() {
                    let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    let (c, s) = (ang.cos(), ang.sin());
                    acc.0 += re * c - im * s;
                    acc.1 += re * s + im * c;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_line_matches_naive_dft() {
        for len in [2usize, 4, 8, 16, 32] {
            let signal: Vec<(f64, f64)> = (0..len)
                .map(|i| ((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let got = single(|mut ctx| {
                let signal = signal.clone();
                async move {
                    let ctx = &mut ctx;
                    let tw = Twiddles::new(ctx, len).await;
                    let mut data = ctx.alloc::<f64>(2 * len);
                    for (i, &(re, im)) in signal.iter().enumerate() {
                        stc(ctx, &mut data, i, (re, im)).await;
                    }
                    let mut scratch = ctx.alloc::<f64>(2 * len);
                    fft_line(ctx, &mut data, 0, 1, &tw, false, &mut scratch).await;
                    (0..len).map(|i| (data.raw(2 * i), data.raw(2 * i + 1))).collect::<Vec<_>>()
                }
            });
            let want = naive_dft(&signal, false);
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.0 - w.0).abs() < 1e-9 && (g.1 - w.1).abs() < 1e-9,
                    "len {len}: {got:?}\nvs {want:?}"
                );
            }
        }
    }

    #[test]
    fn strided_fft_equals_contiguous() {
        let len = 8;
        let signal: Vec<(f64, f64)> = (0..len).map(|i| (i as f64, -(i as f64))).collect();
        let run_with_stride = |stride: usize| {
            let signal = &signal;
            single(move |mut ctx| {
                let signal = signal.clone();
                async move {
                    let ctx = &mut ctx;
                    let tw = Twiddles::new(ctx, len).await;
                    let mut data = ctx.alloc::<f64>(2 * len * stride);
                    let mut scratch = ctx.alloc::<f64>(2 * len);
                    for (i, &(re, im)) in signal.iter().enumerate() {
                        stc(ctx, &mut data, i * stride, (re, im)).await;
                    }
                    fft_line(ctx, &mut data, 0, stride, &tw, false, &mut scratch).await;
                    (0..len)
                        .map(|i| (data.raw(2 * i * stride), data.raw(2 * i * stride + 1)))
                        .collect::<Vec<_>>()
                }
            })
        };
        assert_eq!(run_with_stride(1), run_with_stride(5));
    }

    #[test]
    fn forward_then_inverse_is_scaled_identity() {
        let len = 16;
        let signal: Vec<(f64, f64)> = (0..len)
            .map(|i| ((i as f64).sqrt(), (i % 3) as f64 - 1.0))
            .collect();
        let got = single(|mut ctx| {
            let signal = signal.clone();
            async move {
                let ctx = &mut ctx;
                let tw = Twiddles::new(ctx, len).await;
                let mut data = ctx.alloc::<f64>(2 * len);
                for (i, &(re, im)) in signal.iter().enumerate() {
                    stc(ctx, &mut data, i, (re, im)).await;
                }
                let mut scratch = ctx.alloc::<f64>(2 * len);
                fft_line(ctx, &mut data, 0, 1, &tw, false, &mut scratch).await;
                fft_line(ctx, &mut data, 0, 1, &tw, true, &mut scratch).await;
                (0..len)
                    .map(|i| (data.raw(2 * i) / len as f64, data.raw(2 * i + 1) / len as f64))
                    .collect::<Vec<_>>()
            }
        });
        for (g, w) in got.iter().zip(&signal) {
            assert!((g.0 - w.0).abs() < 1e-10 && (g.1 - w.1).abs() < 1e-10);
        }
    }
}
