//! **LU — SSOR solver**: symmetric successive over-relaxation sweeps of a
//! 7-point operator, 1-D-decomposed in z with the benchmark's hallmark
//! **wavefront pipeline**: the forward sweep's `z` recurrence makes rank
//! `r` wait for rank `r−1`'s freshly updated boundary plane before it may
//! start, and the backward sweep reverses the pipeline. The recurrences
//! also kill vectorization, so LU retires scalar FMAs — its Fig. 6
//! profile.

use crate::common::{Class, Kernel, KernelResult};
use bgp_mpi::{bytes_to_f64s, f64s_to_bytes, RankCtx, SemOp, SimVec};
use bgp_arch::rng::SimRng;

/// Per-rank grid (nx, ny, local nz).
pub fn dims(class: Class) -> (usize, usize, usize) {
    match class {
        Class::S => (12, 12, 6),
        Class::W => (24, 24, 8),
        Class::A => (48, 48, 24),
    }
}

/// SSOR iterations (one forward + one backward sweep each).
pub fn iterations(class: Class) -> usize {
    match class {
        Class::S => 3,
        Class::W => 4,
        Class::A => 4,
    }
}

/// Operator: `d·u[p] − Σ_neighbours u[q]`; `d > 6` gives strict diagonal
/// dominance, hence SSOR convergence.
const DIAG: f64 = 8.0;
const INV_DIAG: f64 = 1.0 / DIAG;
/// SSOR relaxation factor.
const OMEGA: f64 = 1.0;

struct Block {
    nx: usize,
    ny: usize,
    nz: usize,
    u: SimVec<f64>,
    rhs: SimVec<f64>,
}

impl Block {
    #[inline]
    fn idx(&self, x: usize, y: usize, z_with_halo: usize) -> usize {
        (z_with_halo * self.ny + y) * self.nx + x
    }
}

/// Receive a z plane into the halo slot `z` of `u`.
async fn recv_plane(ctx: &mut RankCtx, b: &mut Block, from: usize, tag: u32, z: usize) {
    let data = bytes_to_f64s(&ctx.recv(Some(from), tag).await);
    let plane = b.nx * b.ny;
    let base = z * plane;
    b.u.as_mut_slice()[base..base + data.len()].copy_from_slice(&data);
    ctx.st_range(&mut b.u, base..base + data.len()).await;
}

/// Send the interior z plane `z` of `u` to `to`.
async fn send_plane(ctx: &mut RankCtx, b: &Block, to: usize, tag: u32, z: usize) {
    let plane = b.nx * b.ny;
    let base = z * plane;
    ctx.ld_range(&b.u, base..base + plane).await;
    let data = b.u.as_slice()[base..base + plane].to_vec();
    ctx.send(to, tag, f64s_to_bytes(&data)).await;
}

/// One wavefront-pipelined SSOR sweep. `forward` chooses the direction.
async fn sweep(ctx: &mut RankCtx, b: &mut Block, forward: bool, tag: u32) {
    let (rank, size) = (ctx.rank(), ctx.size());
    let (nx, ny, nz) = (b.nx, b.ny, b.nz);
    if forward {
        if rank > 0 {
            recv_plane(ctx, b, rank - 1, tag, 0).await;
        }
    } else if rank + 1 < size {
        recv_plane(ctx, b, rank + 1, tag, nz + 1).await;
    }
    let zs: Vec<usize> = if forward { (1..=nz).collect() } else { (1..=nz).rev().collect() };
    for z in zs {
        for yy in 0..ny {
            let y = if forward { yy } else { ny - 1 - yy };
            for xx in 0..nx {
                let x = if forward { xx } else { nx - 1 - xx };
                let idx = b.idx(x, y, z);
                let u0 = ctx.ld(&b.u, idx).await;
                let f = ctx.ld(&b.rhs, idx).await;
                let xm = if x > 0 { ctx.ld(&b.u, idx - 1).await } else { 0.0 };
                let xp = if x + 1 < nx { ctx.ld(&b.u, idx + 1).await } else { 0.0 };
                let ym = if y > 0 { ctx.ld(&b.u, b.idx(x, y - 1, z)).await } else { 0.0 };
                let yp = if y + 1 < ny { ctx.ld(&b.u, b.idx(x, y + 1, z)).await } else { 0.0 };
                let zm = ctx.ld(&b.u, b.idx(x, y, z - 1)).await;
                let zp = ctx.ld(&b.u, b.idx(x, y, z + 1)).await;
                // Recurrence-bound scalar arithmetic (Gauss–Seidel uses
                // freshly updated neighbours — no SIMD possible). The
                // real LU multiplies 5×5 jacobian blocks here; the charge
                // is FMA-dominated accordingly.
                ctx.fp1(SemOp::Add);
                ctx.fp1(SemOp::Add);
                ctx.fp_scalar_n(SemOp::MulAdd, 5);
                let s = xm + xp + ym + yp + zm + zp;
                let r = f + s - DIAG * u0;
                ctx.st(&mut b.u, idx, u0 + OMEGA * INV_DIAG * r).await;
            }
        }
        ctx.overhead((nx * ny) as u64);
    }
    if forward {
        if rank + 1 < size {
            send_plane(ctx, b, rank + 1, tag, nz).await;
        }
    } else if rank > 0 {
        send_plane(ctx, b, rank - 1, tag, 1).await;
    }
}

/// Residual ‖rhs − A u‖² (local part); needs fresh halos.
async fn residual(ctx: &mut RankCtx, b: &mut Block) -> f64 {
    let (rank, size) = (ctx.rank(), ctx.size());
    // Plain halo exchange (not pipelined): both planes both ways.
    if rank + 1 < size {
        send_plane(ctx, b, rank + 1, 90, b.nz).await;
    }
    if rank > 0 {
        recv_plane(ctx, b, rank - 1, 90, 0).await;
        send_plane(ctx, b, rank - 1, 91, 1).await;
    }
    if rank + 1 < size {
        recv_plane(ctx, b, rank + 1, 91, b.nz + 1).await;
    }
    let (nx, ny, nz) = (b.nx, b.ny, b.nz);
    let mut norm = 0.0;
    for z in 1..=nz {
        for y in 0..ny {
            for x in 0..nx {
                let idx = b.idx(x, y, z);
                let u0 = ctx.ld(&b.u, idx).await;
                let f = ctx.ld(&b.rhs, idx).await;
                let xm = if x > 0 { ctx.ld(&b.u, idx - 1).await } else { 0.0 };
                let xp = if x + 1 < nx { ctx.ld(&b.u, idx + 1).await } else { 0.0 };
                let ym = if y > 0 { ctx.ld(&b.u, b.idx(x, y - 1, z)).await } else { 0.0 };
                let yp = if y + 1 < ny { ctx.ld(&b.u, b.idx(x, y + 1, z)).await } else { 0.0 };
                let zm = ctx.ld(&b.u, b.idx(x, y, z - 1)).await;
                let zp = ctx.ld(&b.u, b.idx(x, y, z + 1)).await;
                ctx.fp1(SemOp::Add);
                ctx.fp1(SemOp::Add);
                ctx.fp_scalar_n(SemOp::MulAdd, 5); // block-op charge
                ctx.fp1(SemOp::MulAdd); // norm accumulation
                let r = f + (xm + xp + ym + yp + zm + zp) - DIAG * u0;
                norm += r * r;
            }
        }
        ctx.overhead((nx * ny) as u64);
    }
    norm
}

/// Run LU on this rank.
pub async fn run(ctx: &mut RankCtx, class: Class) -> KernelResult {
    let (nx, ny, nz) = dims(class);
    let n = nx * ny * (nz + 2);
    let mut b = Block { nx, ny, nz, u: ctx.alloc(n), rhs: ctx.alloc(n) };
    let mut rng = SimRng::seed_from_u64(0x4c55 ^ (ctx.rank() as u64) << 8);
    for i in 0..n {
        ctx.st(&mut b.u, i, 0.0).await;
    }
    for z in 1..=nz {
        for y in 0..ny {
            for x in 0..nx {
                let idx = b.idx(x, y, z);
                let v: f64 = rng.gen_range(-1.0..1.0);
                ctx.st(&mut b.rhs, idx, v).await;
            }
        }
    }
    ctx.overhead(n as u64);

    let initial = {
        let local = residual(ctx, &mut b).await;
        ctx.allreduce_sum_f64(&[local]).await[0].sqrt()
    };
    let mut norms = Vec::new();
    for it in 0..iterations(class) {
        sweep(ctx, &mut b, true, 100 + 2 * it as u32).await;
        sweep(ctx, &mut b, false, 101 + 2 * it as u32).await;
        let local = residual(ctx, &mut b).await;
        norms.push(ctx.allreduce_sum_f64(&[local]).await[0].sqrt());
    }
    let monotone = norms.windows(2).all(|w| w[1] <= w[0] * 1.0001);
    let final_norm = *norms.last().expect("at least one iteration");
    KernelResult {
        kernel: Kernel::Lu,
        verified: monotone && final_norm < 0.8 * initial && final_norm.is_finite(),
        checksum: final_norm,
    }
}
