//! **IS — Integer Sort**: parallel bucket sort of uniformly random
//! integer keys, the benchmark's classic histogram → all-reduce →
//! all-to-all → local-rank pipeline. Integer-unit and memory dominated;
//! the only floating point is the little bucket-balancing arithmetic —
//! which is why IS's (tiny) FP profile in the paper's Fig. 6 is pure
//! scalar FMA and its Fig. 12 DDR-traffic ratio is among the worst
//! (scattered access patterns thrash a shared L3).

use crate::common::{Class, Kernel, KernelResult};
use bgp_mpi::{bytes_to_u64s, u64s_to_bytes, RankCtx, ReduceOp, SemOp};
use bgp_arch::rng::SimRng;

/// Keys generated per rank.
pub fn keys_per_rank(class: Class) -> usize {
    match class {
        Class::S => 1 << 13,
        Class::W => 1 << 15,
        Class::A => 1 << 18,
    }
}

/// Key space: keys are drawn from `[0, 2^KEY_BITS)`.
pub const KEY_BITS: u32 = 19;
/// Coarse buckets used for redistribution.
pub const BUCKETS: usize = 1 << 10;

/// Run IS on this rank. Returns the number of keys this rank holds after
/// the sort in `checksum`.
pub async fn run(ctx: &mut RankCtx, class: Class) -> KernelResult {
    let n = keys_per_rank(class);
    let size = ctx.size();
    let rank = ctx.rank();
    let mut rng = SimRng::seed_from_u64(0xc0ffee ^ (rank as u64) << 17);

    // Key generation (linear writes).
    let mut keys = ctx.alloc::<u32>(n);
    for i in 0..n {
        let k: u32 = rng.gen_range(0..(1u32 << KEY_BITS));
        ctx.st(&mut keys, i, k).await;
        ctx.int_ops(3);
    }
    ctx.overhead(n as u64);

    // Local histogram over the coarse buckets (scattered rmw).
    let shift = KEY_BITS - BUCKETS.trailing_zeros();
    let mut hist = ctx.alloc::<u32>(BUCKETS);
    for i in 0..n {
        let k = ctx.ld(&keys, i).await;
        let b = (k >> shift) as usize;
        let c = ctx.ld(&hist, b).await;
        ctx.st(&mut hist, b, c + 1).await;
        ctx.int_ops(2);
    }
    ctx.overhead(n as u64);

    // Global histogram.
    let global = bytes_to_u64s(
        &ctx.allreduce(
            ReduceOp::SumU64,
            u64s_to_bytes(&(0..BUCKETS).map(|b| hist.raw(b) as u64).collect::<Vec<_>>()),
        )
        .await,
    );
    let total_keys: u64 = global.iter().sum();

    // Bucket → rank split: balance cumulative counts (the benchmark's
    // tiny FP part — running averages of bucket loads).
    let per_rank_target = total_keys as f64 / size as f64;
    let mut owner = vec![0usize; BUCKETS];
    let mut cum = 0f64;
    for b in 0..BUCKETS {
        cum += global[b] as f64;
        ctx.fp_scalar_n(SemOp::Add, 1);
        ctx.fp_scalar_n(SemOp::MulAdd, 2); // running-average arithmetic
        owner[b] = (((cum - 1.0) / per_rank_target) as usize).min(size - 1);
    }
    // One reciprocal, reused across the loop.
    ctx.fp_scalar_n(SemOp::Div, 1);
    ctx.overhead(BUCKETS as u64);

    // Redistribute: pack keys per destination (gathered reads).
    let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); size];
    for i in 0..n {
        let k = ctx.ld(&keys, i).await;
        let dst = owner[(k >> shift) as usize];
        outgoing[dst].push(k as u64);
        ctx.int_ops(3);
    }
    ctx.overhead(n as u64);
    let received =
        ctx.alltoall(outgoing.into_iter().map(|v| u64s_to_bytes(&v)).collect()).await;
    let mut mine: Vec<u64> = Vec::new();
    for chunk in &received {
        mine.extend(bytes_to_u64s(chunk));
    }

    // Local counting sort over the received keys (the "key ranking"
    // phase): histogram over the full key subrange + prefix + scatter.
    let m = mine.len();
    let mut local = ctx.alloc::<u32>(m.max(1));
    for (i, &k) in mine.iter().enumerate() {
        ctx.st(&mut local, i, k as u32).await;
        ctx.int_ops(1);
    }
    let (lo, hi) = match (mine.iter().min(), mine.iter().max()) {
        (Some(&lo), Some(&hi)) => (lo as u32, hi as u32),
        _ => (0, 0),
    };
    let span = (hi - lo + 1) as usize;
    let mut counts = ctx.alloc::<u32>(span.max(1));
    for i in 0..m {
        let k = ctx.ld(&local, i).await;
        let idx = (k - lo) as usize;
        let c = ctx.ld(&counts, idx).await;
        ctx.st(&mut counts, idx, c + 1).await;
        ctx.int_ops(2);
    }
    ctx.overhead(m as u64);
    // Prefix sum (sequential dependence: integer, unvectorizable).
    let mut acc = 0u32;
    for i in 0..span {
        let c = ctx.ld(&counts, i).await;
        ctx.st(&mut counts, i, acc).await;
        acc += c;
        ctx.int_ops(2);
    }
    ctx.overhead(span as u64);
    // Scatter into sorted order.
    let mut sorted = ctx.alloc::<u32>(m.max(1));
    for i in 0..m {
        let k = ctx.ld(&local, i).await;
        let idx = (k - lo) as usize;
        let pos = ctx.ld(&counts, idx).await;
        ctx.st(&mut counts, idx, pos + 1).await;
        ctx.st(&mut sorted, pos as usize, k).await;
        ctx.int_ops(2);
    }
    ctx.overhead(m as u64);

    // ---- Verification (full ranking check, uninstrumented reads) ----
    // (1) Locally sorted.
    let locally_sorted = (1..m).all(|i| sorted.raw(i - 1) <= sorted.raw(i));
    // (2) Global boundaries: my max ≤ right neighbour's min. Exchange
    // boundary keys through a vector all-reduce (max per slot).
    let mut maxes = vec![0u64; size];
    maxes[rank] = if m > 0 { sorted.raw(m - 1) as u64 } else { 0 };
    let maxes =
        bytes_to_u64s(&ctx.allreduce(ReduceOp::MaxU64, u64s_to_bytes(&maxes)).await);
    let mut mins = vec![0u64; size];
    mins[rank] = if m > 0 { sorted.raw(0) as u64 } else { u64::MAX >> 1 };
    let mins =
        bytes_to_u64s(&ctx.allreduce(ReduceOp::MaxU64, u64s_to_bytes(&mins)).await);
    let mut boundaries_ok = true;
    for r in 0..size - 1 {
        // Empty ranks report max 0 / min large: both sides hold.
        if maxes[r] > mins[r + 1] && mins[r + 1] != 0 {
            boundaries_ok = false;
        }
    }
    // (3) No key lost: global count preserved.
    let counted = ctx.allreduce_sum_f64(&[m as f64]).await[0] as u64;
    let conserved = counted == total_keys && total_keys == (n * size) as u64;

    KernelResult {
        kernel: Kernel::Is,
        verified: locally_sorted && boundaries_ok && conserved,
        checksum: m as f64,
    }
}
