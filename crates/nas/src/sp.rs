//! **SP — Scalar Penta-diagonal solver**: ADI factorization
//! `P_x P_y P_z u = b` where each factor is a symmetric pentadiagonal
//! operator along one grid direction; the solver runs banded forward
//! elimination / back substitution along every line. The x and y lines
//! are rank-local; the z lines span ranks and are solved with the
//! benchmark's software pipeline (eliminate → pass boundary state →
//! continue). Line recurrences are inherently scalar, so SP's Fig. 6
//! profile is single-FMA with a visible divide share.
//!
//! Verification is manufactured-solution: pick `u*`, apply the three
//! operators to form `b`, solve, and compare against `u*`.

use crate::common::{Class, Kernel, KernelResult};
use bgp_mpi::{bytes_to_f64s, f64s_to_bytes, RankCtx, SemOp, SimVec};
use bgp_arch::rng::SimRng;

/// Per-rank grid (nx, ny, local nz).
pub fn dims(class: Class) -> (usize, usize, usize) {
    match class {
        Class::S => (8, 8, 4),
        Class::W => (16, 16, 8),
        Class::A => (32, 32, 8),
    }
}

/// Band coefficients of each factor: (diagonal, ±1, ±2). Strictly
/// diagonally dominant.
pub const D0: f64 = 3.0;
/// First off-diagonal coefficient.
pub const C1: f64 = -0.5;
/// Second off-diagonal coefficient.
pub const C2: f64 = -0.125;

struct Block {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Solution / working field, interior only (no halo planes; the
    /// z-direction passes state through messages instead).
    u: SimVec<f64>,
}

impl Block {
    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.ny + y) * self.nx + x
    }
}

/// The shared elimination tables for a line of length `len` with the
/// constant band: modified diagonals `dd`, `e1`, `e2` and the multipliers
/// `m1`, `m2` per row. Line-independent, computed once per direction.
struct Elim {
    dd: Vec<f64>,
    e1: Vec<f64>,
    e2: Vec<f64>,
    m1: Vec<f64>,
    m2: Vec<f64>,
}

async fn factor(ctx: &mut RankCtx, len: usize) -> Elim {
    let mut dd = vec![D0; len];
    let mut e1 = vec![C1; len];
    let mut e2 = vec![C2; len];
    let mut m1 = vec![0.0; len];
    let mut m2 = vec![0.0; len];
    if len >= 1 {
        e1[len - 1] = 0.0;
        e2[len - 1] = 0.0;
    }
    if len >= 2 {
        e2[len - 2] = 0.0;
    }
    for k in 0..len {
        let mut a1 = if k >= 1 { C1 } else { 0.0 };
        if k >= 2 {
            let m = C2 / dd[k - 2];
            m2[k] = m;
            a1 -= m * e1[k - 2];
            dd[k] -= m * e2[k - 2];
        }
        if k >= 1 {
            let m = a1 / dd[k - 1];
            m1[k] = m;
            dd[k] -= m * e1[k - 1];
            if k < len - 1 {
                e1[k] -= m * e2[k - 1];
            }
        }
    }
    // The factorization itself: a handful of divides and FMAs per row.
    ctx.fp_scalar_n(SemOp::Div, 2 * len as u64);
    ctx.fp_scalar_n(SemOp::MulAdd, 4 * len as u64);
    ctx.overhead(len as u64);
    Elim { dd, e1, e2, m1, m2 }
}

/// Solve the pentadiagonal system along one rank-local line:
/// elements at `base + i*stride` of `b.u`, length `len`.
async fn solve_local_line(ctx: &mut RankCtx, b: &mut Block, base: usize, stride: usize, el: &Elim) {
    let len = el.dd.len();
    // Forward elimination on the right-hand side (in place).
    let mut prev2 = 0.0;
    let mut prev1 = 0.0;
    for k in 0..len {
        let i = base + k * stride;
        let mut y = ctx.ld(&b.u, i).await;
        if k >= 2 {
            y -= el.m2[k] * prev2;
        }
        if k >= 1 {
            y -= el.m1[k] * prev1;
        }
        // Per-point solver cost (the real code re-derives its multipliers
        // per point because the coefficients vary): 1 divide + 6 FMA.
        ctx.fp1(SemOp::Div);
        ctx.fp_scalar_n(SemOp::MulAdd, 6);
        ctx.st(&mut b.u, i, y).await;
        prev2 = prev1;
        prev1 = y;
    }
    // Back substitution.
    let mut up1 = 0.0;
    let mut up2 = 0.0;
    for k in (0..len).rev() {
        let i = base + k * stride;
        let mut y = ctx.ld(&b.u, i).await;
        y -= el.e1[k] * up1 + el.e2[k] * up2;
        y /= el.dd[k];
        ctx.fp_scalar_n(SemOp::MulAdd, 2);
        ctx.fp1(SemOp::Mul); // reciprocal multiply
        ctx.st(&mut b.u, i, y).await;
        up2 = up1;
        up1 = y;
    }
    ctx.overhead(2 * len as u64);
}

/// Apply the pentadiagonal operator along a rank-local direction
/// (`u ← P u`). Unit-stride application is vectorizable.
async fn apply_local(ctx: &mut RankCtx, b: &mut Block, base: usize, stride: usize, len: usize, scratch: &mut Vec<f64>) {
    scratch.clear();
    for k in 0..len {
        scratch.push(ctx.ld(&b.u, base + k * stride).await);
    }
    for k in 0..len {
        let mut v = D0 * scratch[k];
        if k >= 1 {
            v += C1 * scratch[k - 1];
        }
        if k + 1 < len {
            v += C1 * scratch[k + 1];
        }
        if k >= 2 {
            v += C2 * scratch[k - 2];
        }
        if k + 2 < len {
            v += C2 * scratch[k + 2];
        }
        if k % 2 == 0 {
            let plan = ctx.plan_pair(true);
            ctx.fp_pair(plan, SemOp::Mul);
            ctx.fp_pair(plan, SemOp::MulAdd);
            ctx.fp_pair(plan, SemOp::MulAdd);
        }
        ctx.st(&mut b.u, base + k * stride, v).await;
    }
    ctx.overhead(len as u64);
}

/// Apply the operator along the **distributed** z direction: exchange two
/// boundary planes each way, then apply locally with the halo values.
async fn apply_z(ctx: &mut RankCtx, b: &mut Block) {
    let (rank, size) = (ctx.rank(), ctx.size());
    let (nx, ny, nz) = (b.nx, b.ny, b.nz);
    let plane = nx * ny;
    async fn pack2(ctx: &mut RankCtx, b: &Block, z0: usize) -> Vec<f64> {
        // Two full planes starting at z0: row-major, so a unit-stride run.
        let plane = b.nx * b.ny;
        let base = z0 * plane;
        ctx.ld_range(&b.u, base..base + 2 * plane).await;
        b.u.as_slice()[base..base + 2 * plane].to_vec()
    }
    // Exchange two planes down-edge and up-edge.
    let mut below = vec![0.0; 2 * plane];
    let mut above = vec![0.0; 2 * plane];
    if rank + 1 < size {
        let top = pack2(ctx, b, nz - 2).await;
        ctx.send(rank + 1, 60, f64s_to_bytes(&top)).await;
    }
    if rank > 0 {
        below = bytes_to_f64s(&ctx.recv(Some(rank - 1), 60).await);
        let bot = pack2(ctx, b, 0).await;
        ctx.send(rank - 1, 61, f64s_to_bytes(&bot)).await;
    }
    if rank + 1 < size {
        above = bytes_to_f64s(&ctx.recv(Some(rank + 1), 61).await);
    }
    let at = |below: &[f64], above: &[f64], b: &Block, vals: &Vec<Vec<f64>>, x: usize, y: usize, gz: i64, z0: i64, nzl: i64| -> f64 {
        if gz < 0 || gz >= (z0 + nzl) && above.is_empty() {
            0.0
        } else if gz < z0 {
            let off = gz - (z0 - 2);
            if off < 0 {
                0.0
            } else {
                below[(off as usize) * b.nx * b.ny + y * b.nx + x]
            }
        } else if gz >= z0 + nzl {
            let off = gz - (z0 + nzl);
            if off >= 2 {
                0.0
            } else {
                above[(off as usize) * b.nx * b.ny + y * b.nx + x]
            }
        } else {
            vals[(gz - z0) as usize][y * b.nx + x]
        }
    };
    // Snapshot the local planes (operator application needs the originals).
    let mut vals: Vec<Vec<f64>> = Vec::with_capacity(nz);
    for z in 0..nz {
        ctx.ld_range(&b.u, z * plane..(z + 1) * plane).await;
        vals.push(b.u.as_slice()[z * plane..(z + 1) * plane].to_vec());
    }
    let z0 = rank as i64 * nz as i64;
    let nzg = size as i64 * nz as i64;
    for z in 0..nz {
        let gz = z0 + z as i64;
        for y in 0..ny {
            for x in 0..nx {
                let mut v = D0 * at(&below, &above, b, &vals, x, y, gz, z0, nz as i64);
                for (dz, c) in [(-1i64, C1), (1, C1), (-2, C2), (2, C2)] {
                    let zz = gz + dz;
                    if zz >= 0 && zz < nzg {
                        v += c * at(&below, &above, b, &vals, x, y, zz, z0, nz as i64);
                    }
                }
                if x % 2 == 0 {
                    let plan = ctx.plan_pair(true);
                    ctx.fp_pair(plan, SemOp::Mul);
                    ctx.fp_pair(plan, SemOp::MulAdd);
                    ctx.fp_pair(plan, SemOp::MulAdd);
                }
                let idx = b.idx(x, y, z);
                ctx.st(&mut b.u, idx, v).await;
            }
        }
        ctx.overhead(plane as u64);
    }
}

/// Solve along the distributed z direction with the pipelined banded
/// elimination: the rhs recurrence state (last two eliminated planes)
/// flows up the ranks, the back-substitution state flows down.
async fn solve_z(ctx: &mut RankCtx, b: &mut Block, el: &Elim) {
    let (rank, size) = (ctx.rank(), ctx.size());
    let (nx, ny, nz) = (b.nx, b.ny, b.nz);
    let plane = nx * ny;
    let z0 = rank * nz;

    // ---- Forward elimination (pipeline up) ----
    let mut prev: Vec<f64> = vec![0.0; 2 * plane]; // [prev2 | prev1]
    if rank > 0 {
        prev = bytes_to_f64s(&ctx.recv(Some(rank - 1), 70).await);
    }
    for z in 0..nz {
        let k = z0 + z;
        for y in 0..ny {
            for x in 0..nx {
                let i = b.idx(x, y, z);
                let pi = y * nx + x;
                let mut v = ctx.ld(&b.u, i).await;
                if k >= 2 {
                    v -= el.m2[k] * prev[pi];
                }
                if k >= 1 {
                    v -= el.m1[k] * prev[plane + pi];
                }
                ctx.fp1(SemOp::Div);
                ctx.fp_scalar_n(SemOp::MulAdd, 6);
                ctx.st(&mut b.u, i, v).await;
                prev[pi] = prev[plane + pi];
                prev[plane + pi] = v;
            }
        }
        ctx.overhead(plane as u64);
    }
    if rank + 1 < size {
        ctx.send(rank + 1, 70, f64s_to_bytes(&prev)).await;
    }

    // ---- Back substitution (pipeline down) ----
    let mut up: Vec<f64> = vec![0.0; 2 * plane]; // [up1 | up2]
    if rank + 1 < size {
        up = bytes_to_f64s(&ctx.recv(Some(rank + 1), 71).await);
    }
    for z in (0..nz).rev() {
        let k = z0 + z;
        for y in 0..ny {
            for x in 0..nx {
                let i = b.idx(x, y, z);
                let pi = y * nx + x;
                let mut v = ctx.ld(&b.u, i).await;
                v -= el.e1[k] * up[pi] + el.e2[k] * up[plane + pi];
                v /= el.dd[k];
                ctx.fp_scalar_n(SemOp::MulAdd, 2);
                ctx.fp1(SemOp::Mul);
                ctx.st(&mut b.u, i, v).await;
                up[plane + pi] = up[pi];
                up[pi] = v;
            }
        }
        ctx.overhead(plane as u64);
    }
    if rank > 0 {
        ctx.send(rank - 1, 71, f64s_to_bytes(&up)).await;
    }
}

/// Run SP on this rank.
pub async fn run(ctx: &mut RankCtx, class: Class) -> KernelResult {
    let (nx, ny, nz) = dims(class);
    let size = ctx.size();
    let n = nx * ny * nz;
    let mut b = Block { nx, ny, nz, u: ctx.alloc(n) };

    // Manufactured solution u*.
    let mut rng = SimRng::seed_from_u64(0x5350 ^ (ctx.rank() as u64) << 4);
    let mut exact = Vec::with_capacity(n);
    for i in 0..n {
        let v: f64 = rng.gen_range(-1.0..1.0);
        exact.push(v);
        ctx.st(&mut b.u, i, v).await;
    }
    ctx.overhead(n as u64);

    // b = P_x P_y P_z u*  (apply z, then y, then x).
    let mut scratch = Vec::new();
    apply_z(ctx, &mut b).await;
    for z in 0..nz {
        for x in 0..nx {
            let base = b.idx(x, 0, z);
            apply_local(ctx, &mut b, base, nx, ny, &mut scratch).await;
        }
    }
    for z in 0..nz {
        for y in 0..ny {
            let base = b.idx(0, y, z);
            apply_local(ctx, &mut b, base, 1, nx, &mut scratch).await;
        }
    }

    // ADI solve: x lines, y lines, then the pipelined z lines.
    let el_x = factor(ctx, nx).await;
    let el_y = factor(ctx, ny).await;
    let el_z = factor(ctx, nz * size).await;
    for z in 0..nz {
        for y in 0..ny {
            let base = b.idx(0, y, z);
            solve_local_line(ctx, &mut b, base, 1, &el_x).await;
        }
    }
    for z in 0..nz {
        for x in 0..nx {
            let base = b.idx(x, 0, z);
            solve_local_line(ctx, &mut b, base, nx, &el_y).await;
        }
    }
    solve_z(ctx, &mut b, &el_z).await;

    // Verification: recovered field matches the manufactured solution.
    let mut max_err = 0.0f64;
    for (i, &want) in exact.iter().enumerate() {
        max_err = max_err.max((b.u.raw(i) - want).abs());
    }
    let global = bytes_to_f64s(
        &ctx.allreduce(bgp_mpi::ReduceOp::MaxF64, f64s_to_bytes(&[max_err]))
            .await,
    )[0];
    KernelResult { kernel: Kernel::Sp, verified: global < 1e-8, checksum: global }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::single;

    /// Dense reference solve of the pentadiagonal system (Gaussian
    /// elimination with partial pivoting on the full matrix).
    fn dense_solve(len: usize, rhs: &[f64]) -> Vec<f64> {
        let mut a = vec![vec![0.0f64; len + 1]; len];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = D0;
            if i >= 1 {
                row[i - 1] = C1;
            }
            if i + 1 < len {
                row[i + 1] = C1;
            }
            if i >= 2 {
                row[i - 2] = C2;
            }
            if i + 2 < len {
                row[i + 2] = C2;
            }
            row[len] = rhs[i];
        }
        for col in 0..len {
            let piv = (col..len)
                .max_by(|&x, &y| a[x][col].abs().partial_cmp(&a[y][col].abs()).unwrap())
                .unwrap();
            a.swap(col, piv);
            for r in col + 1..len {
                let (head, tail) = a.split_at_mut(r);
                let (pivot_row, row) = (&head[col], &mut tail[0]);
                let m = row[col] / pivot_row[col];
                for c in col..=len {
                    row[c] -= m * pivot_row[c];
                }
            }
        }
        let mut x = vec![0.0; len];
        for r in (0..len).rev() {
            let mut acc = a[r][len];
            for c in r + 1..len {
                acc -= a[r][c] * x[c];
            }
            x[r] = acc / a[r][r];
        }
        x
    }

    #[test]
    fn banded_elimination_matches_dense_reference() {
        for len in [1usize, 2, 3, 5, 16, 33] {
            let rhs: Vec<f64> = (0..len).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
            let got = single(|mut ctx| {
                let rhs = rhs.clone();
                async move {
                    let ctx = &mut ctx;
                    let el = factor(ctx, len).await;
                    let mut b = Block { nx: len, ny: 1, nz: 1, u: ctx.alloc(len) };
                    for (i, &v) in rhs.iter().enumerate() {
                        ctx.st(&mut b.u, i, v).await;
                    }
                    solve_local_line(ctx, &mut b, 0, 1, &el).await;
                    (0..len).map(|i| b.u.raw(i)).collect::<Vec<_>>()
                }
            });
            let want = dense_solve(len, &(0..len).map(|i| ((i * 7) % 13) as f64 - 6.0).collect::<Vec<_>>());
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-10, "len {len}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn strided_lines_solve_identically_to_contiguous() {
        let len = 8;
        let rhs: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
        let contiguous = single(|mut ctx| {
            let rhs = rhs.clone();
            async move {
                let ctx = &mut ctx;
                let el = factor(ctx, len).await;
                let mut b = Block { nx: len, ny: 1, nz: 1, u: ctx.alloc(len) };
                for (i, &v) in rhs.iter().enumerate() {
                    ctx.st(&mut b.u, i, v).await;
                }
                solve_local_line(ctx, &mut b, 0, 1, &el).await;
                (0..len).map(|i| b.u.raw(i)).collect::<Vec<_>>()
            }
        });
        let strided = single(|mut ctx| {
            let rhs = rhs.clone();
            async move {
                let ctx = &mut ctx;
                let el = factor(ctx, len).await;
                // Same system living along a stride-4 line of a bigger array.
                let mut b = Block { nx: 4, ny: len, nz: 1, u: ctx.alloc(4 * len) };
                for (i, &v) in rhs.iter().enumerate() {
                    ctx.st(&mut b.u, 2 + 4 * i, v).await;
                }
                solve_local_line(ctx, &mut b, 2, 4, &el).await;
                (0..len).map(|i| b.u.raw(2 + 4 * i)).collect::<Vec<_>>()
            }
        });
        assert_eq!(contiguous, strided);
    }

    #[test]
    fn apply_then_solve_is_identity() {
        let len = 12;
        let original: Vec<f64> = (0..len).map(|i| ((i * 5) % 9) as f64 * 0.5 - 2.0).collect();
        let got = single(|mut ctx| {
            let original = original.clone();
            async move {
                let ctx = &mut ctx;
                let el = factor(ctx, len).await;
                let mut b = Block { nx: len, ny: 1, nz: 1, u: ctx.alloc(len) };
                for (i, &v) in original.iter().enumerate() {
                    ctx.st(&mut b.u, i, v).await;
                }
                let mut scratch = Vec::new();
                apply_local(ctx, &mut b, 0, 1, len, &mut scratch).await;
                solve_local_line(ctx, &mut b, 0, 1, &el).await;
                (0..len).map(|i| b.u.raw(i)).collect::<Vec<_>>()
            }
        });
        for (g, w) in got.iter().zip(&original) {
            assert!((g - w).abs() < 1e-10, "{got:?} vs {original:?}");
        }
    }
}
