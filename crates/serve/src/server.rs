//! The daemon: accept loop, connection handlers, and the worker pool.
//!
//! Life of a submit:
//!
//! 1. **Cache probe.** The request's [`CacheKey`] is looked up in the
//!    content-addressed store — a hit is written back immediately,
//!    byte-identical to the run that produced it. No lock beyond the
//!    store's own map, no queue, no machine: this is the path that
//!    scales to heavy repeat traffic.
//! 2. **Coalesce.** A miss whose key is already queued or running
//!    *joins* the in-flight job instead of submitting a duplicate —
//!    determinism guarantees the joiner would compute the same bytes.
//! 3. **Admit or reject.** A genuinely new job passes admission
//!    control: a full queue rejects with `retry_after_ms` (429-style)
//!    and a draining server rejects outright. Admitted jobs wait in
//!    the aged priority queue.
//! 4. **Run.** A worker pops the job and runs it under
//!    [`bgp_core::supervisor`] — wall-clock watchdog, bounded retries,
//!    crash classification — publishing the live machine through the
//!    supervisor's [`RunObserver`] hook so subscribed clients stream
//!    phase updates while the job runs.
//! 5. **Publish.** The result JSON is stored write-once in the blob
//!    store; every waiter (submitter + joiners) is notified and the
//!    key leaves the in-flight table, so later submits hit the cache.

use crate::proto::{
    mode_token, CacheOutcome, ParseError, Request, SubmitReq, PROTO_VERSION,
};
use crate::queue::{JobQueue, PushError, QueueConfig, QueueItem};
use bgp_core::supervisor::{
    supervise_observed, RunObserver, SupervisorConfig, SupervisedRun,
};
use bgp_mpi::Machine;
use bgp_nas::KernelResult;
use bgp_snapshot::{BlobStore, CacheKey};
use bgp_trace::json::{Arr, Obj};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service configuration (daemon-wide policy).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads running jobs (bounded pool).
    pub workers: usize,
    /// Admission queue policy.
    pub queue: QueueConfig,
    /// Persist cached results here (`None` = in-memory only).
    pub cache_dir: Option<PathBuf>,
    /// `sim_threads` for every job the pool runs (cosmetic to results;
    /// keep at 1 so `workers` is the real concurrency bound).
    pub job_sim_threads: usize,
    /// Trace every job (outcome-relevant: moves every cache key).
    pub trace_jobs: bool,
    /// Wall-clock watchdog per job attempt.
    pub wall_budget: Option<Duration>,
    /// Supervisor retries per job after the first attempt.
    pub max_retries: u32,
    /// Suppress per-job log lines on stderr.
    pub quiet: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: QueueConfig::default(),
            cache_dir: None,
            job_sim_threads: 1,
            trace_jobs: false,
            wall_budget: Some(Duration::from_secs(300)),
            max_retries: 1,
            quiet: false,
        }
    }
}

/// Fallback per-job wall estimate before any job has completed
/// (feeds the `retry_after_ms` hint only).
const DEFAULT_JOB_MS: u64 = 250;
/// Handler poll period while waiting on an in-flight job.
const SLOT_POLL: Duration = Duration::from_millis(50);
/// Idle read timeout so handlers notice shutdown.
const READ_POLL: Duration = Duration::from_millis(250);

/// Where one in-flight job stands.
enum SlotState {
    /// Admitted, waiting for a worker.
    Queued,
    /// Running on this machine (live phase counter).
    Running(Arc<Machine>),
    /// Completed; canonical result bytes.
    Done(Arc<Vec<u8>>),
    /// Supervision gave up (message for the waiters).
    Failed(String),
}

/// Shared wait-point for everyone interested in one in-flight job.
struct JobSlot {
    st: Mutex<SlotState>,
    cv: Condvar,
}

impl JobSlot {
    fn new() -> JobSlot {
        JobSlot { st: Mutex::new(SlotState::Queued), cv: Condvar::new() }
    }

    fn set(&self, next: SlotState) {
        *self.st.lock().unwrap_or_else(|e| e.into_inner()) = next;
        self.cv.notify_all();
    }
}

#[derive(Default)]
struct Stats {
    submits: AtomicU64,
    batches: AtomicU64,
    subscribes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    joined: AtomicU64,
    rejected_backpressure: AtomicU64,
    rejected_draining: AtomicU64,
    bad_requests: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    running: AtomicU64,
    job_wall_ms: AtomicU64,
    latency: Mutex<LatencyRing>,
}

/// Completed-job wall times retained for the latency percentiles
/// (sliding window over the most recent completions).
const LATENCY_WINDOW: usize = 4096;

#[derive(Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn record(&mut self, wall_ms: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(wall_ms);
        } else {
            self.samples[self.next] = wall_ms;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }

    /// `(p50, p90, p99, sample count)` over the retained window, by
    /// nearest-rank on the sorted samples (zeros when empty).
    fn percentiles(&self) -> (u64, u64, u64, u64) {
        if self.samples.is_empty() {
            return (0, 0, 0, 0);
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let pick = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        (pick(0.50), pick(0.90), pick(0.99), sorted.len() as u64)
    }
}

struct ServeState {
    cfg: ServerConfig,
    addr: SocketAddr,
    cache: BlobStore,
    queue: JobQueue,
    inflight: Mutex<HashMap<CacheKey, Arc<JobSlot>>>,
    stats: Stats,
    draining: AtomicBool,
    shutdown: AtomicBool,
}

impl ServeState {
    fn log(&self, msg: std::fmt::Arguments<'_>) {
        if !self.cfg.quiet {
            eprintln!("bgpc-serve: {msg}");
        }
    }

    /// Rough per-job wall time for the retry-after hint.
    fn mean_job_ms(&self) -> u64 {
        let done = self.stats.completed.load(Ordering::Relaxed);
        match self.stats.job_wall_ms.load(Ordering::Relaxed).checked_div(done) {
            None => DEFAULT_JOB_MS,
            Some(mean) => mean.max(1),
        }
    }

    fn retry_after_ms(&self, depth: usize) -> u64 {
        let workers = self.cfg.workers.max(1) as u64;
        ((depth as u64 + 1) * self.mean_job_ms() / workers).clamp(10, 60_000)
    }
}

/// A bound, not-yet-running server (hold it to learn the address
/// before entering the accept loop).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

/// A server running on a background thread (in-process harnesses:
/// tests, `fig_ext_service`).
pub struct ServerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<()>,
}

impl Server {
    /// Bind the listener and build the shared state.
    ///
    /// # Errors
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cache = match &cfg.cache_dir {
            Some(dir) => BlobStore::persistent(dir),
            None => BlobStore::in_memory(),
        };
        let queue = JobQueue::new(cfg.queue);
        let state = Arc::new(ServeState {
            addr,
            cache,
            queue,
            inflight: Mutex::new(HashMap::new()),
            stats: Stats::default(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (use with `addr` port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Run to completion: workers + accept loop, returning after a
    /// `shutdown` request has drained the queue and every worker has
    /// exited. Connection handlers are detached; in-flight responses
    /// finish on their own sockets.
    pub fn run(self) {
        let Server { listener, state } = self;
        let workers: Vec<_> = (0..state.cfg.workers.max(1))
            .map(|i| {
                let st = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("bgp-worker-{i}"))
                    .spawn(move || worker_loop(&st))
                    .expect("spawn worker")
            })
            .collect();
        state.log(format_args!(
            "listening on {} ({} workers, queue cap {})",
            state.addr,
            state.cfg.workers.max(1),
            state.cfg.queue.capacity
        ));
        for conn in listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let st = Arc::clone(&state);
            let _ = std::thread::Builder::new()
                .name("bgp-conn".into())
                .spawn(move || {
                    let _ = handle_connection(&st, stream);
                });
        }
        // Shutdown: the queue is closed; workers drain what was
        // admitted, then exit. Every admitted job still completes.
        for w in workers {
            let _ = w.join();
        }
        state.log(format_args!(
            "shut down: {} completed, {} failed, {} hits, {} rejected",
            state.stats.completed.load(Ordering::Relaxed),
            state.stats.failed.load(Ordering::Relaxed),
            state.stats.hits.load(Ordering::Relaxed),
            state.stats.rejected_backpressure.load(Ordering::Relaxed)
        ));
    }

    /// Bind and run on a background thread.
    ///
    /// # Errors
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(cfg)?;
        let addr = server.local_addr();
        let join = std::thread::Builder::new()
            .name("bgp-serve".into())
            .spawn(move || server.run())?;
        Ok(ServerHandle { addr, join })
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful shutdown (drain admitted jobs, then exit)
    /// and wait for the server thread to finish.
    pub fn shutdown(self) {
        let _ = request_once(self.addr, &Request::Shutdown.encode());
        let _ = self.join.join();
    }
}

/// One-shot client helper: connect, send `line`, read the terminal
/// response line (update lines are skipped).
///
/// # Errors
/// [`std::io::Error`] on connect/read/write failure or a closed socket.
pub fn request_once(addr: SocketAddr, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before the terminal response",
            ));
        }
        if !buf.trim_start().starts_with("{\"update\"") {
            return Ok(buf.trim_end().to_string());
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn handle_connection(state: &Arc<ServeState>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` under a read timeout may return with a partial
        // line appended; keep accumulating until the newline arrives.
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) if line.ends_with('\n') => {
                if line.trim().is_empty() {
                    line.clear();
                    continue;
                }
                let shutdown_after = dispatch(state, &line, &mut writer)?;
                line.clear();
                if shutdown_after {
                    return Ok(());
                }
            }
            Ok(_) => {} // partial line, keep reading
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Handle one request line; `Ok(true)` means the connection should
/// close (shutdown acknowledged).
fn dispatch(
    state: &Arc<ServeState>,
    line: &str,
    out: &mut TcpStream,
) -> std::io::Result<bool> {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(ParseError::UnsupportedVersion { requested, detail }) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let resp = Obj::new()
                .field_bool("ok", false)
                .field_str("error", "unsupported-version")
                .field_u64("requested", requested)
                .field_u64("supported", PROTO_VERSION)
                .field_str("detail", &detail)
                .finish();
            write_line(out, &resp)?;
            return Ok(false);
        }
        Err(ParseError::Malformed(detail)) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let resp = Obj::new()
                .field_bool("ok", false)
                .field_str("error", "bad-request")
                .field_str("detail", &detail)
                .finish();
            write_line(out, &resp)?;
            return Ok(false);
        }
    };
    match req {
        Request::Ping => {
            write_line(
                out,
                &Obj::new().field_bool("ok", true).field_bool("pong", true).finish(),
            )?;
            Ok(false)
        }
        Request::Stats => {
            write_line(out, &stats_response(state))?;
            Ok(false)
        }
        Request::Status { key } => {
            write_line(out, &status_response(state, key))?;
            Ok(false)
        }
        Request::Drain => {
            state.draining.store(true, Ordering::SeqCst);
            state.log(format_args!("draining (queued {})", state.queue.len()));
            let resp = Obj::new()
                .field_bool("ok", true)
                .field_bool("draining", true)
                .field_u64("queued", state.queue.len() as u64)
                .field_u64("running", state.stats.running.load(Ordering::Relaxed))
                .finish();
            write_line(out, &resp)?;
            Ok(false)
        }
        Request::Shutdown => {
            state.draining.store(true, Ordering::SeqCst);
            state.queue.close();
            state.shutdown.store(true, Ordering::SeqCst);
            let resp = Obj::new()
                .field_bool("ok", true)
                .field_bool("shutdown", true)
                .field_u64("queued", state.queue.len() as u64)
                .finish();
            write_line(out, &resp)?;
            // Unblock the accept loop so `run` can join the workers.
            let _ = TcpStream::connect(state.addr);
            Ok(true)
        }
        Request::Submit(sub) => {
            handle_submit(state, sub, out)?;
            Ok(false)
        }
        Request::Batch(jobs) => {
            handle_batch(state, jobs, out)?;
            Ok(false)
        }
        Request::Subscribe { key, stream } => {
            handle_subscribe(state, key, stream, out)?;
            Ok(false)
        }
    }
}

fn stats_response(state: &ServeState) -> String {
    let s = &state.stats;
    let (p50, p90, p99, samples) =
        s.latency.lock().unwrap_or_else(|e| e.into_inner()).percentiles();
    let body = Obj::new()
        .field_u64("submits", s.submits.load(Ordering::Relaxed))
        .field_u64("batches", s.batches.load(Ordering::Relaxed))
        .field_u64("subscribes", s.subscribes.load(Ordering::Relaxed))
        .field_u64("hits", s.hits.load(Ordering::Relaxed))
        .field_u64("misses", s.misses.load(Ordering::Relaxed))
        .field_u64("joined", s.joined.load(Ordering::Relaxed))
        .field_u64("rejected_backpressure", s.rejected_backpressure.load(Ordering::Relaxed))
        .field_u64("rejected_draining", s.rejected_draining.load(Ordering::Relaxed))
        .field_u64("bad_requests", s.bad_requests.load(Ordering::Relaxed))
        .field_u64("completed", s.completed.load(Ordering::Relaxed))
        .field_u64("failed", s.failed.load(Ordering::Relaxed))
        .field_u64("running", s.running.load(Ordering::Relaxed))
        .field_u64("queued", state.queue.len() as u64)
        .field_u64("latency_p50_ms", p50)
        .field_u64("latency_p90_ms", p90)
        .field_u64("latency_p99_ms", p99)
        .field_u64("latency_samples", samples)
        .field_u64("cache_entries", state.cache.len() as u64)
        .field_u64("workers", state.cfg.workers.max(1) as u64)
        .field_bool("draining", state.draining.load(Ordering::SeqCst))
        .finish();
    Obj::new().field_bool("ok", true).field_raw("stats", &body).finish()
}

fn status_response(state: &ServeState, key: CacheKey) -> String {
    let state_token = if state.cache.get(key).is_some() {
        "done"
    } else {
        let inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match inflight.get(&key) {
            Some(slot) => match &*slot.st.lock().unwrap_or_else(|e| e.into_inner()) {
                SlotState::Queued => "queued",
                SlotState::Running(_) => "running",
                SlotState::Done(_) => "done",
                SlotState::Failed(_) => "failed",
            },
            None => "unknown",
        }
    };
    Obj::new()
        .field_bool("ok", true)
        .field_str("key", &key.hex())
        .field_str("state", state_token)
        .finish()
}

/// Terminal response for a satisfied submit. `result` is spliced
/// verbatim from the canonical cached bytes and is always the LAST
/// member (see [`crate::proto::result_payload`]).
fn submit_response(
    outcome: CacheOutcome,
    key: CacheKey,
    queue_ms: u64,
    bytes: &[u8],
) -> String {
    let result = std::str::from_utf8(bytes).expect("results are UTF-8 JSON");
    Obj::new()
        .field_bool("ok", true)
        .field_str("cache", outcome.token())
        .field_str("key", &key.hex())
        .field_u64("queue_ms", queue_ms)
        .field_raw("result", result)
        .finish()
}

fn reject_backpressure(state: &ServeState, depth: usize) -> String {
    state.stats.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
    Obj::new()
        .field_bool("ok", false)
        .field_str("error", "backpressure")
        .field_u64("retry_after_ms", state.retry_after_ms(depth))
        .field_u64("queued", depth as u64)
        .finish()
}

fn reject_draining(state: &ServeState) -> String {
    state.stats.rejected_draining.fetch_add(1, Ordering::Relaxed);
    Obj::new().field_bool("ok", false).field_str("error", "draining").finish()
}

fn job_failed_response(key: CacheKey, detail: &str) -> String {
    Obj::new()
        .field_bool("ok", false)
        .field_str("error", "job-failed")
        .field_str("key", &key.hex())
        .field_str("detail", detail)
        .finish()
}

/// What happened to one submission at admission time.
enum Admission {
    /// Served from the content-addressed store; no machine ran.
    Cached(Arc<Vec<u8>>),
    /// Admitted (miss) or coalesced (join); wait on the slot.
    Wait(Arc<JobSlot>, CacheOutcome),
    /// Refused; the pre-built terminal response line.
    Reject(String),
}

/// Steps 1–3 of a submit (cache probe, coalesce, admit) without
/// waiting — shared by lone submits and batch envelopes, which admit
/// every job *before* waiting on any so a batch runs with the pool's
/// full parallelism.
fn admit(state: &Arc<ServeState>, sub: SubmitReq) -> (CacheKey, Admission) {
    state.stats.submits.fetch_add(1, Ordering::Relaxed);
    let key = sub.cache_key(state.cfg.job_sim_threads, state.cfg.trace_jobs);

    // 1. Cache: the scalable path.
    if let Some(bytes) = state.cache.get(key) {
        state.stats.hits.fetch_add(1, Ordering::Relaxed);
        return (key, Admission::Cached(bytes));
    }

    // 2./3. Coalesce onto an in-flight job, or admit a new one.
    let mut inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(slot) = inflight.get(&key) {
        state.stats.joined.fetch_add(1, Ordering::Relaxed);
        return (key, Admission::Wait(Arc::clone(slot), CacheOutcome::Joined));
    }
    if state.draining.load(Ordering::SeqCst) {
        return (key, Admission::Reject(reject_draining(state)));
    }
    let slot = Arc::new(JobSlot::new());
    inflight.insert(key, Arc::clone(&slot));
    match state.queue.push(key, sub) {
        Ok(_) => {
            state.stats.misses.fetch_add(1, Ordering::Relaxed);
            (key, Admission::Wait(slot, CacheOutcome::Miss))
        }
        Err(PushError::Full { depth }) => {
            inflight.remove(&key);
            (key, Admission::Reject(reject_backpressure(state, depth)))
        }
        Err(PushError::Closed) => {
            inflight.remove(&key);
            (key, Admission::Reject(reject_draining(state)))
        }
    }
}

/// Step 4: wait for the worker to resolve `slot`, streaming `update`
/// lines to `out` when `stream` is set, and return the terminal
/// response line (not yet written).
fn await_job(
    slot: &JobSlot,
    key: CacheKey,
    outcome: CacheOutcome,
    stream: bool,
    out: &mut TcpStream,
) -> std::io::Result<String> {
    let started = Instant::now();
    let mut last_update: Option<(&'static str, u64)> = None;
    loop {
        enum View {
            Waiting(&'static str, u64),
            Done(Arc<Vec<u8>>),
            Failed(String),
        }
        // Snapshot *before* waiting: a streamed submit that finds the
        // job pending emits its state right away, so every miss/join
        // with `stream` sees at least one update line.
        let view = {
            let guard = slot.st.lock().unwrap_or_else(|e| e.into_inner());
            match &*guard {
                SlotState::Queued => View::Waiting("queued", 0),
                SlotState::Running(machine) => View::Waiting("running", machine.phases()),
                SlotState::Done(bytes) => View::Done(Arc::clone(bytes)),
                SlotState::Failed(msg) => View::Failed(msg.clone()),
            }
        };
        match view {
            View::Done(bytes) => {
                let queue_ms = started.elapsed().as_millis() as u64;
                return Ok(submit_response(outcome, key, queue_ms, &bytes));
            }
            View::Failed(detail) => {
                return Ok(job_failed_response(key, &detail));
            }
            View::Waiting(token, phase) => {
                if stream && last_update != Some((token, phase)) {
                    last_update = Some((token, phase));
                    let body = Obj::new()
                        .field_str("key", &key.hex())
                        .field_str("state", token)
                        .field_u64("phase", phase)
                        .finish();
                    let update = Obj::new().field_raw("update", &body).finish();
                    write_line(out, &update)?;
                }
                let guard = slot.st.lock().unwrap_or_else(|e| e.into_inner());
                drop(
                    slot.cv
                        .wait_timeout(guard, SLOT_POLL)
                        .unwrap_or_else(|e| e.into_inner()),
                );
            }
        }
    }
}

fn handle_submit(
    state: &Arc<ServeState>,
    sub: SubmitReq,
    out: &mut TcpStream,
) -> std::io::Result<()> {
    let stream = sub.stream;
    let (key, admission) = admit(state, sub);
    let terminal = match admission {
        Admission::Cached(bytes) => submit_response(CacheOutcome::Hit, key, 0, &bytes),
        Admission::Reject(line) => line,
        Admission::Wait(slot, outcome) => await_job(&slot, key, outcome, stream, out)?,
    };
    write_line(out, &terminal)
}

/// One envelope, many jobs: admit every job first, then collect each
/// job's terminal object in submission order. Per-job failures and
/// rejects land in the `results` array; the envelope itself always
/// completes. Update streaming is suppressed (one response line per
/// envelope).
fn handle_batch(
    state: &Arc<ServeState>,
    jobs: Vec<SubmitReq>,
    out: &mut TcpStream,
) -> std::io::Result<()> {
    state.stats.batches.fetch_add(1, Ordering::Relaxed);
    let admitted: Vec<(CacheKey, Admission)> =
        jobs.into_iter().map(|sub| admit(state, sub)).collect();
    let count = admitted.len();
    let mut results = Arr::new();
    for (key, admission) in admitted {
        let terminal = match admission {
            Admission::Cached(bytes) => {
                submit_response(CacheOutcome::Hit, key, 0, &bytes)
            }
            Admission::Reject(line) => line,
            Admission::Wait(slot, outcome) => {
                await_job(&slot, key, outcome, false, out)?
            }
        };
        results = results.push_raw(&terminal);
    }
    let resp = Obj::new()
        .field_bool("ok", true)
        .field_u64("jobs", count as u64)
        .field_raw("results", &results.finish())
        .finish();
    write_line(out, &resp)
}

/// Attach to a key without submitting work: cached keys answer like a
/// hit, in-flight keys are awaited (streaming updates if asked), and
/// keys the server has never seen are refused — subscribing never
/// enqueues a job.
fn handle_subscribe(
    state: &Arc<ServeState>,
    key: CacheKey,
    stream: bool,
    out: &mut TcpStream,
) -> std::io::Result<()> {
    state.stats.subscribes.fetch_add(1, Ordering::Relaxed);
    if let Some(bytes) = state.cache.get(key) {
        state.stats.hits.fetch_add(1, Ordering::Relaxed);
        return write_line(out, &submit_response(CacheOutcome::Hit, key, 0, &bytes));
    }
    let slot = {
        let inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
        inflight.get(&key).map(Arc::clone)
    };
    if let Some(slot) = slot {
        let terminal = await_job(&slot, key, CacheOutcome::Joined, stream, out)?;
        return write_line(out, &terminal);
    }
    // The job may have finished between the cache probe and the
    // in-flight lookup (workers publish to the cache first, then
    // retire the slot) — re-probe before declaring the key unknown.
    if let Some(bytes) = state.cache.get(key) {
        state.stats.hits.fetch_add(1, Ordering::Relaxed);
        return write_line(out, &submit_response(CacheOutcome::Hit, key, 0, &bytes));
    }
    let resp = Obj::new()
        .field_bool("ok", false)
        .field_str("error", "unknown-key")
        .field_str("key", &key.hex())
        .finish();
    write_line(out, &resp)
}

/// Publishes each attempt's live machine into the job slot so waiters
/// can stream its phase counter.
struct SlotObserver<'a> {
    slot: &'a JobSlot,
}

impl RunObserver for SlotObserver<'_> {
    fn attempt_started(
        &self,
        _attempt: u32,
        _resumed_from: Option<u64>,
        machine: &Arc<Machine>,
    ) {
        self.slot.set(SlotState::Running(Arc::clone(machine)));
    }
}

fn worker_loop(state: &Arc<ServeState>) {
    while let Some(item) = state.queue.pop_blocking() {
        state.stats.running.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let outcome = run_job(state, &item);
        let wall_ms = started.elapsed().as_millis() as u64;
        // Publish order matters: install the result (or failure),
        // *then* remove from in-flight, then notify — a submit racing
        // in either finds the in-flight slot or the cache entry, never
        // neither.
        let slot = {
            let inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
            inflight.get(&item.key).map(Arc::clone)
        };
        let next = match outcome {
            Ok(bytes) => {
                state.stats.completed.fetch_add(1, Ordering::Relaxed);
                state.stats.job_wall_ms.fetch_add(wall_ms, Ordering::Relaxed);
                state
                    .stats
                    .latency
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(wall_ms);
                state.log(format_args!(
                    "job {} completed in {wall_ms} ms ({} queued)",
                    item.key.hex(),
                    state.queue.len()
                ));
                SlotState::Done(bytes)
            }
            Err(msg) => {
                state.stats.failed.fetch_add(1, Ordering::Relaxed);
                state.log(format_args!("job {} failed: {msg}", item.key.hex()));
                SlotState::Failed(msg)
            }
        };
        {
            let mut inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(slot) = &slot {
                slot.set(next);
            }
            inflight.remove(&item.key);
        }
        state.stats.running.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Run one admitted job under supervision and build its canonical
/// result bytes.
fn run_job(state: &Arc<ServeState>, item: &QueueItem) -> Result<Arc<Vec<u8>>, String> {
    let spec = item.req.job_spec(state.cfg.job_sim_threads, state.cfg.trace_jobs);
    let sup = SupervisorConfig {
        wall_budget: state.cfg.wall_budget,
        max_retries: state.cfg.max_retries,
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_secs(2),
        inject_kill_at_phase: None,
    };
    let slot = {
        let inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
        inflight
            .get(&item.key)
            .map(Arc::clone)
            .ok_or("in-flight entry vanished before the run")?
    };
    let observer = SlotObserver { slot: &slot };
    let (kernel, class) = (item.req.kernel, item.req.class);
    let run = supervise_observed(&spec, &sup, move |ctx| kernel.exec(class, ctx), &observer)
        .map_err(|e| e.to_string())?;
    if !run.results.iter().all(|r| r.verified) {
        return Err("kernel verification failed".into());
    }
    let json = result_json(item.key, &item.req, spec.ranks, &run);
    state
        .cache
        .put(item.key, json.into_bytes())
        .map_err(|e| format!("result store write failed: {e}"))
}

/// The canonical, cacheable result document. Everything in here is a
/// pure function of the cache key — byte-identical on every recompute —
/// so the store's write-once discipline holds by construction.
fn result_json(
    key: CacheKey,
    req: &SubmitReq,
    ranks: usize,
    run: &SupervisedRun<KernelResult>,
) -> String {
    let machine = &run.machine;
    let mut checksums = Arr::new();
    let mut dumps = Arr::new();
    for node in 0..machine.num_nodes() {
        let bytes = run
            .library
            .encoded_dump(node)
            .expect("every node finalized in a completed run");
        checksums = checksums.push_str(&format!("{:#018x}", bgp_arch::wire::checksum(&bytes)));
        dumps = dumps.push_str(&hex(&bytes));
    }
    let mut obj = Obj::new()
        .field_str("key", &key.hex())
        .field_str("spec_hash", &format!("{:#018x}", key.spec))
        .field_u64("seed", key.seed)
        .field_str("kernel", &req.kernel.name().to_ascii_lowercase())
        .field_str("class", &req.class.to_string().to_ascii_lowercase())
        .field_u64("ranks", ranks as u64)
        .field_str("mode", mode_token(req.mode))
        .field_bool("verified", true)
        .field_u64("job_cycles", machine.job_cycles())
        .field_u64("phases", machine.phases())
        .field_raw("dump_checksums", &checksums.finish());
    if let Some(trace) = machine.job_trace() {
        obj = obj
            .field_u64("trace_events", trace.total_events() as u64)
            .field_str("phases_csv", &trace.phase_metrics_csv());
    }
    obj.field_raw("dumps", &dumps.finish()).finish()
}

/// Lowercase hex of `bytes`.
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Decode [`hex`] output.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(unhex(&hex(&bytes)).unwrap(), bytes);
        assert_eq!(hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert!(unhex("0").is_none());
        assert!(unhex("zz").is_none());
    }
}
