//! Client + load generator for the counter service.
//!
//! [`Client`] is the minimal blocking JSONL client (one connection,
//! sequenced requests, update lines surfaced or skipped). [`run_load`]
//! drives a configurable hit/miss mix against a running daemon from
//! many client threads and audits the service's contract while it
//! measures it:
//!
//! * **No lost or duplicated responses** — every submit is retried
//!   through backpressure until it yields exactly one terminal
//!   response, and the satisfied count must equal the request count.
//! * **Byte-identical replays** — the first response for each key
//!   records a checksum + length of the spliced `result` bytes; every
//!   later response for that key must match exactly.
//! * **Rejects only via the backpressure path** — any `ok:false`
//!   other than `backpressure` counts as a failure.
//!
//! The mix is controlled by `distinct`: request *i* carries seed
//! `i % distinct`, so a 10 000-request run over 16 distinct seeds is
//! 16 misses and ~9 984 hits/joins once the cache is warm.

use crate::proto::{result_payload, SubmitReq};
use bgp_trace::json::Obj;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A blocking JSONL protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    /// [`std::io::Error`] on connect failure.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Send one request line and return the terminal response,
    /// passing any `update` lines to `on_update`.
    ///
    /// # Errors
    /// [`std::io::Error`] on socket failure or a connection closed
    /// before the terminal response.
    pub fn request_with_updates(
        &mut self,
        line: &str,
        mut on_update: impl FnMut(&str),
    ) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut buf = String::new();
        loop {
            buf.clear();
            if self.reader.read_line(&mut buf)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before the terminal response",
                ));
            }
            if buf.trim_start().starts_with("{\"update\"") {
                on_update(buf.trim_end());
            } else {
                return Ok(buf.trim_end().to_string());
            }
        }
    }

    /// Send one request line and return the terminal response,
    /// discarding updates.
    ///
    /// # Errors
    /// Same as [`Client::request_with_updates`].
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.request_with_updates(line, |_| {})
    }
}

/// Pull the raw text of a `"key":value` member out of a response line
/// (first occurrence — envelope members precede the spliced result).
pub fn raw_member<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = if let Some(inner) = rest.strip_prefix('"') {
        // String member; keys/tokens in the envelope never contain
        // escapes, so scan to the bare closing quote.
        inner.find('"')? + 2
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(&rest[..end])
}

/// A string member's unquoted value (envelope members only).
pub fn str_member<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = raw_member(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

/// A u64 member's value (envelope members only).
pub fn u64_member(line: &str, key: &str) -> Option<u64> {
    raw_member(line, key)?.parse().ok()
}

/// Load-run shape.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Daemon to target.
    pub addr: SocketAddr,
    /// Total submit requests that must be satisfied.
    pub requests: u64,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Distinct seeds in the mix (distinct cache keys ≈ cold misses).
    pub distinct: u64,
    /// The submission template (seed is overridden per request).
    pub template: SubmitReq,
}

impl LoadConfig {
    /// A standard run against `addr`: 10 000 requests, 8 connections,
    /// 16 distinct keys.
    pub fn standard(addr: SocketAddr) -> LoadConfig {
        LoadConfig {
            addr,
            requests: 10_000,
            concurrency: 8,
            distinct: 16,
            template: SubmitReq::default(),
        }
    }
}

/// What a load run measured (and audited).
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests the run was asked to satisfy.
    pub requests: u64,
    /// Terminal `ok:true` responses received (must equal `requests`).
    pub satisfied: u64,
    /// Responses served from the cache.
    pub hits: u64,
    /// Responses that ran the job.
    pub misses: u64,
    /// Responses coalesced onto an in-flight job.
    pub joined: u64,
    /// Backpressure rejections absorbed (each was retried).
    pub rejects: u64,
    /// Non-backpressure errors (must be 0).
    pub failures: u64,
    /// Distinct cache keys in the mix.
    pub distinct: u64,
    /// Wall-clock for the whole run.
    pub wall_ms: u64,
    /// Satisfied requests per second.
    pub throughput_rps: f64,
    /// Median per-request latency (µs), including retries.
    pub p50_us: u64,
    /// 90th-percentile latency (µs).
    pub p90_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Worst latency (µs).
    pub max_us: u64,
    /// Whether every repeat response matched the first byte-for-byte.
    pub byte_identical: bool,
}

impl LoadReport {
    /// Cache hit rate over satisfied requests.
    pub fn hit_rate(&self) -> f64 {
        if self.satisfied == 0 {
            0.0
        } else {
            self.hits as f64 / self.satisfied as f64
        }
    }

    /// Whether the run upheld the service contract.
    pub fn contract_held(&self) -> bool {
        self.satisfied == self.requests && self.failures == 0 && self.byte_identical
    }

    /// Render as a JSON object (the `BENCH_serve.json` payload).
    pub fn to_json(&self) -> String {
        Obj::new()
            .field_u64("requests", self.requests)
            .field_u64("satisfied", self.satisfied)
            .field_u64("hits", self.hits)
            .field_u64("misses", self.misses)
            .field_u64("joined", self.joined)
            .field_u64("rejects", self.rejects)
            .field_u64("failures", self.failures)
            .field_u64("distinct_keys", self.distinct)
            .field_f64("hit_rate", self.hit_rate())
            .field_u64("wall_ms", self.wall_ms)
            .field_f64("throughput_rps", self.throughput_rps)
            .field_u64("p50_us", self.p50_us)
            .field_u64("p90_us", self.p90_us)
            .field_u64("p99_us", self.p99_us)
            .field_u64("max_us", self.max_us)
            .field_bool("byte_identical", self.byte_identical)
            .field_bool("contract_held", self.contract_held())
            .finish()
    }
}

/// First-response record for one key: `(len, checksum)` of the raw
/// result bytes.
type Fingerprints = Mutex<HashMap<String, (usize, u64)>>;

#[derive(Default)]
struct Tally {
    satisfied: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    joined: AtomicU64,
    rejects: AtomicU64,
    failures: AtomicU64,
    mismatches: AtomicU64,
}

/// Drive the configured mix against the daemon and audit the replies.
///
/// # Errors
/// [`std::io::Error`] when a connection cannot be established or dies
/// mid-run (the daemon vanishing is an infrastructure failure, not a
/// measured outcome).
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let next = AtomicU64::new(0);
    let tally = Tally::default();
    let prints: Fingerprints = Mutex::new(HashMap::new());
    let started = Instant::now();

    let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|_| {
                let (next, tally, prints) = (&next, &tally, &prints);
                scope.spawn(move || load_worker(cfg, next, tally, prints))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker must not panic"))
            .collect::<std::io::Result<Vec<_>>>()
    })?;

    let wall = started.elapsed();
    let mut lat: Vec<u64> = latencies.into_iter().flatten().collect();
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[((lat.len() - 1) as f64 * p) as usize]
        }
    };
    let satisfied = tally.satisfied.load(Ordering::Relaxed);
    Ok(LoadReport {
        requests: cfg.requests,
        satisfied,
        hits: tally.hits.load(Ordering::Relaxed),
        misses: tally.misses.load(Ordering::Relaxed),
        joined: tally.joined.load(Ordering::Relaxed),
        rejects: tally.rejects.load(Ordering::Relaxed),
        failures: tally.failures.load(Ordering::Relaxed),
        distinct: cfg.distinct.max(1),
        wall_ms: wall.as_millis() as u64,
        throughput_rps: satisfied as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        max_us: lat.last().copied().unwrap_or(0),
        byte_identical: tally.mismatches.load(Ordering::Relaxed) == 0,
    })
}

fn load_worker(
    cfg: &LoadConfig,
    next: &AtomicU64,
    tally: &Tally,
    prints: &Fingerprints,
) -> std::io::Result<Vec<u64>> {
    let mut client = Client::connect(cfg.addr)?;
    let mut lat = Vec::new();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= cfg.requests {
            return Ok(lat);
        }
        let req = SubmitReq { seed: i % cfg.distinct.max(1), ..cfg.template };
        let line = req.encode();
        let started = Instant::now();
        loop {
            let resp = client.request(&line)?;
            if let Some(outcome) = str_member(&resp, "cache") {
                match outcome {
                    "hit" => tally.hits.fetch_add(1, Ordering::Relaxed),
                    "miss" => tally.misses.fetch_add(1, Ordering::Relaxed),
                    _ => tally.joined.fetch_add(1, Ordering::Relaxed),
                };
                tally.satisfied.fetch_add(1, Ordering::Relaxed);
                audit_payload(&resp, tally, prints);
                break;
            }
            if str_member(&resp, "error") == Some("backpressure") {
                tally.rejects.fetch_add(1, Ordering::Relaxed);
                let wait = u64_member(&resp, "retry_after_ms").unwrap_or(50);
                std::thread::sleep(Duration::from_millis(wait.clamp(5, 2_000)));
                continue;
            }
            // draining / job-failed / bad-request: terminal, audited
            // as contract failures.
            tally.failures.fetch_add(1, Ordering::Relaxed);
            break;
        }
        lat.push(started.elapsed().as_micros() as u64);
    }
}

/// Check the spliced result bytes against the first response seen for
/// this key.
fn audit_payload(resp: &str, tally: &Tally, prints: &Fingerprints) {
    let (Some(key), Some(payload)) = (str_member(resp, "key"), result_payload(resp))
    else {
        tally.mismatches.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let print = (payload.len(), bgp_arch::wire::checksum(payload.as_bytes()));
    let mut map = prints.lock().unwrap_or_else(|e| e.into_inner());
    if *map.entry(key.to_string()).or_insert(print) != print {
        tally.mismatches.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_extraction_reads_the_envelope_not_the_payload() {
        let line = r#"{"ok":true,"cache":"hit","key":"aa","queue_ms":3,"result":{"key":"bb","cache_line":9}}"#;
        assert_eq!(str_member(line, "cache"), Some("hit"));
        assert_eq!(str_member(line, "key"), Some("aa"));
        assert_eq!(u64_member(line, "queue_ms"), Some(3));
        assert_eq!(raw_member(line, "ok"), Some("true"));
        assert_eq!(str_member(line, "absent"), None);
    }

    #[test]
    fn report_json_and_contract() {
        let mut r = LoadReport {
            requests: 10,
            satisfied: 10,
            hits: 8,
            byte_identical: true,
            ..LoadReport::default()
        };
        assert!(r.contract_held());
        assert!((r.hit_rate() - 0.8).abs() < 1e-12);
        let json = r.to_json();
        assert!(json.contains("\"hits\":8"));
        assert!(json.contains("\"contract_held\":true"));
        r.failures = 1;
        assert!(!r.contract_held());
    }
}
