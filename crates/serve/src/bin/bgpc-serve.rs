//! `bgpc-serve` — the counter-service daemon.
//!
//! ```text
//! bgpc-serve [--addr HOST:PORT] [--addr-file PATH] [--workers N]
//!            [--queue-cap N] [--age-ms N] [--cache-dir DIR] [--trace]
//!            [--sim-threads N] [--wall-budget-ms N] [--max-retries N]
//!            [--quiet]
//! ```
//!
//! Binds the listener, prints the bound address on stdout (and into
//! `--addr-file` for scripted callers using port 0), then serves until
//! a `shutdown` request drains the queue. See `bgp_serve::proto` for
//! the wire protocol and `bgpc-load` for the matching client.

use bgp_arch::cli::ArgParser;
use bgp_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: bgpc-serve [--addr HOST:PORT] [--addr-file PATH] \
[--workers N] [--queue-cap N] [--age-ms N] [--cache-dir DIR] [--trace] \
[--sim-threads N] [--wall-budget-ms N] [--max-retries N] [--quiet]";

fn parse_args() -> Result<(ServerConfig, Option<PathBuf>), String> {
    let mut cfg = ServerConfig::default();
    let mut addr_file = None;
    let mut p = ArgParser::from_env(USAGE);
    while let Some(a) = p.next_flag()? {
        match a.as_str() {
            "--addr" => cfg.addr = p.value(&a)?,
            "--addr-file" => addr_file = Some(p.path(&a)?),
            "--workers" => cfg.workers = p.parse(&a)?,
            "--queue-cap" => cfg.queue.capacity = p.parse(&a)?,
            "--age-ms" => {
                cfg.queue.age_to_boost = Duration::from_millis(p.parse(&a)?);
            }
            "--cache-dir" => cfg.cache_dir = Some(p.path(&a)?),
            "--trace" => cfg.trace_jobs = true,
            "--sim-threads" | "--threads" => cfg.job_sim_threads = p.parse(&a)?,
            "--wall-budget-ms" => {
                // 0 disables the watchdog, same convention as bgpc-run.
                let ms: u64 = p.parse(&a)?;
                cfg.wall_budget = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-retries" => cfg.max_retries = p.parse(&a)?,
            "--quiet" => cfg.quiet = true,
            other => return Err(p.unexpected(other)),
        }
    }
    Ok((cfg, addr_file))
}

fn main() -> ExitCode {
    let (cfg, addr_file) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Supervised ranks die by panic on watchdog kills and budget
    // violations — expected control flow, same policy as bgpc-run:
    // one stderr line each, peer-abort echoes dropped.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if msg.contains(bgp_mpi::machine::ABORT_ECHO) {
            return;
        }
        if msg.contains("supervisor watchdog")
            || msg.contains("MPI deadlock")
            || msg.contains("simulated-cycle budget exceeded")
        {
            eprintln!("bgpc-serve: rank died: {msg}");
            return;
        }
        default_hook(info);
    }));

    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bgpc-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!("{addr}");
    if let Some(path) = addr_file {
        // Written atomically so a watcher never reads a partial line.
        let tmp = path.with_extension("tmp");
        let write = std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            eprintln!("bgpc-serve: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    server.run();
    ExitCode::SUCCESS
}
