//! `bgpc-load` — load generator and admin client for `bgpc-serve`.
//!
//! ```text
//! # load test: N requests over a hit/miss mix, report + optional JSON
//! bgpc-load --addr HOST:PORT [--requests N] [--concurrency N]
//!           [--distinct N] [--kernel mg] [--class s] [--ranks N]
//!           [--mode vnm] [--bench PATH]
//!
//! # one submit, result payload written to a file (byte-identity checks)
//! bgpc-load --addr HOST:PORT --once [--seed N] [--kernel mg] ...
//!           [--out PATH] [--stream]
//!
//! # admin ops
//! bgpc-load --addr HOST:PORT --admin ping|stats|drain|shutdown
//! ```
//!
//! `--once` prints the cache outcome (`hit`/`miss`/`joined`) on stdout
//! and, with `--out`, writes the **raw spliced result bytes** — two
//! `--once` runs of the same job must produce byte-identical files,
//! which is exactly what the CI smoke test asserts.

use bgp_arch::cli::ArgParser;
use bgp_serve::load::{run_load, str_member, LoadConfig};
use bgp_serve::proto::{
    parse_class, parse_kernel, parse_mode, result_payload, Request, SubmitReq,
};
use bgp_serve::Client;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bgpc-load --addr HOST:PORT \
[--requests N] [--concurrency N] [--distinct N] \
[--kernel mg|ft|ep|cg|is|lu|sp|bt] [--class s|w|a] [--ranks N] \
[--mode smp1|smp4|dual|vnm] [--priority N] [--bench PATH] \
[--once [--seed N] [--out PATH] [--stream]] \
[--admin ping|stats|drain|shutdown]";

enum Op {
    Load,
    Once,
    Admin(Request),
}

struct Args {
    addr: SocketAddr,
    op: Op,
    requests: u64,
    concurrency: usize,
    distinct: u64,
    template: SubmitReq,
    bench: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut args = Args {
        addr: SocketAddr::from(([127, 0, 0, 1], 0)),
        op: Op::Load,
        requests: 10_000,
        concurrency: 8,
        distinct: 16,
        template: SubmitReq::default(),
        bench: None,
        out: None,
    };
    let mut p = ArgParser::from_env(USAGE);
    while let Some(a) = p.next_flag()? {
        match a.as_str() {
            "--addr" => {
                let s = p.value(&a)?;
                addr = Some(
                    s.to_socket_addrs()
                        .map_err(|e| format!("--addr {s}: {e}"))?
                        .next()
                        .ok_or(format!("--addr {s}: no address"))?,
                );
            }
            "--requests" => args.requests = p.parse(&a)?,
            "--concurrency" => args.concurrency = p.parse(&a)?,
            "--distinct" => args.distinct = p.parse(&a)?,
            "--kernel" => {
                args.template.kernel =
                    p.token(&a, "mg|ft|ep|cg|is|lu|sp|bt", parse_kernel)?;
            }
            "--class" => args.template.class = p.token(&a, "s|w|a", parse_class)?,
            "--ranks" => args.template.ranks = p.parse(&a)?,
            "--mode" => {
                args.template.mode = p.token(&a, "smp1|smp4|dual|vnm", parse_mode)?;
            }
            "--priority" => args.template.priority = p.parse(&a)?,
            "--seed" => args.template.seed = p.parse(&a)?,
            "--stream" => args.template.stream = true,
            "--bench" => args.bench = Some(p.path(&a)?),
            "--once" => args.op = Op::Once,
            "--out" => args.out = Some(p.path(&a)?),
            "--admin" => {
                args.op = Op::Admin(p.token(&a, "ping|stats|drain|shutdown", |op| {
                    Some(match op {
                        "ping" => Request::Ping,
                        "stats" => Request::Stats,
                        "drain" => Request::Drain,
                        "shutdown" => Request::Shutdown,
                        _ => return None,
                    })
                })?);
            }
            other => return Err(p.unexpected(other)),
        }
    }
    args.addr = addr.ok_or_else(|| p.missing("--addr HOST:PORT"))?;
    Ok(args)
}

fn run_once(args: &Args) -> Result<(), String> {
    let mut client = Client::connect(args.addr).map_err(|e| e.to_string())?;
    let line = args.template.encode();
    let resp = client
        .request_with_updates(&line, |u| eprintln!("{u}"))
        .map_err(|e| e.to_string())?;
    let Some(outcome) = str_member(&resp, "cache") else {
        return Err(format!("submit failed: {resp}"));
    };
    let payload = result_payload(&resp).ok_or("response carried no result")?;
    println!(
        "{outcome} key={} ({} result bytes)",
        str_member(&resp, "key").unwrap_or("?"),
        payload.len()
    );
    if let Some(out) = &args.out {
        std::fs::write(out, payload).map_err(|e| format!("writing {}: {e}", out.display()))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &args.op {
        Op::Once => run_once(&args),
        Op::Admin(req) => {
            match bgp_serve::request_once(args.addr, &req.encode()) {
                Ok(resp) => {
                    println!("{resp}");
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            }
        }
        Op::Load => {
            let cfg = LoadConfig {
                addr: args.addr,
                requests: args.requests,
                concurrency: args.concurrency,
                distinct: args.distinct,
                template: args.template,
            };
            match run_load(&cfg) {
                Ok(report) => {
                    println!(
                        "{} requests in {} ms: {:.0} req/s, hit rate {:.3}, \
                         {} miss / {} joined / {} rejected, p50 {} µs, p99 {} µs",
                        report.satisfied,
                        report.wall_ms,
                        report.throughput_rps,
                        report.hit_rate(),
                        report.misses,
                        report.joined,
                        report.rejects,
                        report.p50_us,
                        report.p99_us
                    );
                    if let Some(path) = &args.bench {
                        if let Err(e) = std::fs::write(path, report.to_json() + "\n") {
                            eprintln!("bgpc-load: writing {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        println!("report -> {}", path.display());
                    }
                    if report.contract_held() {
                        Ok(())
                    } else {
                        Err(format!(
                            "service contract violated: satisfied {}/{}, \
                             failures {}, byte_identical {}",
                            report.satisfied,
                            report.requests,
                            report.failures,
                            report.byte_identical
                        ))
                    }
                }
                Err(e) => Err(e.to_string()),
            }
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bgpc-load: {e}");
            ExitCode::FAILURE
        }
    }
}
