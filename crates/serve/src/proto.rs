//! The service wire protocol: newline-delimited JSON over TCP.
//!
//! One JSON object per line, both directions. A connection may carry
//! any number of requests in sequence; each request produces exactly
//! one **terminal** response line (`"ok"` present), preceded — for
//! streamed submits — by zero or more **update** lines (`"update"`
//! present, no `"ok"`). Everything rides the workspace's hand-rolled
//! [`bgp_trace::json`] layer; no external dependency, no `f64` funnel
//! for 64-bit cycle counts.
//!
//! ## Requests
//!
//! ```json
//! {"op":"ping"}
//! {"op":"submit","kernel":"mg","class":"s","ranks":4,"mode":"vnm",
//!  "seed":0,"priority":1,"stream":false}
//! {"op":"status","key":"<32 hex digits>"}
//! {"op":"stats"}
//! {"op":"drain"}
//! {"op":"shutdown"}
//! ```
//!
//! ## Terminal responses
//!
//! * Completed submit:
//!   `{"ok":true,"cache":"hit"|"miss"|"joined","key":"…",
//!    "queue_ms":N,"result":{…}}` — the `result` member is spliced
//!   **byte-for-byte** from the content-addressed store, so two
//!   responses for one key always carry identical result bytes.
//! * Backpressure reject (the 429 path):
//!   `{"ok":false,"error":"backpressure","retry_after_ms":N}`
//! * Drain reject: `{"ok":false,"error":"draining"}`
//! * Failed job: `{"ok":false,"error":"job-failed","detail":"…"}`
//! * Malformed request: `{"ok":false,"error":"bad-request","detail":"…"}`

use bgp_arch::OpMode;
use bgp_faults::{FaultPlan, FaultSpec};
use bgp_mpi::JobSpec;
use bgp_nas::{Class, Kernel};
use bgp_snapshot::CacheKey;
use bgp_trace::json::{self, Value};
use bgp_trace::TraceConfig;

/// Straggler probability applied when a submit carries a nonzero seed.
const SEEDED_STRAGGLER_RATE: f64 = 0.4;
/// Straggler penalty (cycles per messaging boundary) for seeded jobs.
const SEEDED_STRAGGLER_PENALTY: u64 = 800;

/// One job submission: the client-controllable slice of a [`JobSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitReq {
    /// NAS kernel to run.
    pub kernel: Kernel,
    /// Problem class.
    pub class: Class,
    /// Requested MPI ranks (clamped to the kernel's legal counts).
    pub ranks: usize,
    /// Node operating mode.
    pub mode: OpMode,
    /// Fault seed: 0 = clean machine; nonzero = a deterministic
    /// straggler plan derived from the seed (part of the cache key).
    pub seed: u64,
    /// Scheduling priority: 0 = high, larger = lower. Queued jobs age
    /// toward priority 0, so no priority can starve.
    pub priority: u8,
    /// Stream `update` lines while the job is queued/running.
    pub stream: bool,
}

impl Default for SubmitReq {
    fn default() -> SubmitReq {
        SubmitReq {
            kernel: Kernel::Mg,
            class: Class::S,
            ranks: 4,
            mode: OpMode::VirtualNode,
            seed: 0,
            priority: 1,
            stream: false,
        }
    }
}

/// Parse the protocol's lowercase kernel token.
pub fn parse_kernel(s: &str) -> Option<Kernel> {
    Some(match s.to_ascii_lowercase().as_str() {
        "mg" => Kernel::Mg,
        "ft" => Kernel::Ft,
        "ep" => Kernel::Ep,
        "cg" => Kernel::Cg,
        "is" => Kernel::Is,
        "lu" => Kernel::Lu,
        "sp" => Kernel::Sp,
        "bt" => Kernel::Bt,
        _ => return None,
    })
}

/// Parse the protocol's lowercase class token.
pub fn parse_class(s: &str) -> Option<Class> {
    Some(match s.to_ascii_lowercase().as_str() {
        "s" => Class::S,
        "w" => Class::W,
        "a" => Class::A,
        _ => return None,
    })
}

/// Parse the protocol's mode token (`smp1`, `smp4`, `dual`, `vnm`).
pub fn parse_mode(s: &str) -> Option<OpMode> {
    Some(match s.to_ascii_lowercase().as_str() {
        "smp1" => OpMode::Smp1,
        "smp4" => OpMode::Smp4,
        "dual" => OpMode::Dual,
        "vnm" | "vn" => OpMode::VirtualNode,
        _ => return None,
    })
}

/// The protocol's mode token for `mode` (inverse of [`parse_mode`]).
pub fn mode_token(mode: OpMode) -> &'static str {
    match mode {
        OpMode::Smp1 => "smp1",
        OpMode::Smp4 => "smp4",
        OpMode::Dual => "dual",
        OpMode::VirtualNode => "vnm",
    }
}

impl SubmitReq {
    /// Expand into the full [`JobSpec`] the worker pool runs.
    /// `sim_threads` and tracing are server policy, not client input —
    /// both are excluded from, respectively cosmetic to, the cache key
    /// only when they genuinely cannot change results (`sim_threads`
    /// is; tracing is outcome-relevant and therefore server-global so
    /// every cached entry was produced under one policy).
    pub fn job_spec(&self, sim_threads: usize, trace: bool) -> JobSpec {
        let ranks = self.kernel.clamp_ranks(self.ranks.max(1), self.class);
        let mut spec = JobSpec::new(ranks, self.mode);
        spec.sim_threads = Some(sim_threads.max(1));
        if trace {
            spec.trace = Some(TraceConfig::default());
        }
        if self.seed != 0 {
            let nodes = spec.nodes();
            spec.faults = Some(std::sync::Arc::new(FaultPlan::new(
                FaultSpec {
                    straggler_rate: SEEDED_STRAGGLER_RATE,
                    straggler_penalty_cycles: SEEDED_STRAGGLER_PENALTY,
                    ..FaultSpec::none()
                },
                self.seed,
                nodes,
            )));
        }
        spec
    }

    /// The content-address of this submission's result under the given
    /// server policy: `(spec fingerprint, seed)`.
    pub fn cache_key(&self, sim_threads: usize, trace: bool) -> CacheKey {
        CacheKey { spec: self.job_spec(sim_threads, trace).fingerprint(), seed: self.seed }
    }

    /// Serialize as a submit request line (no trailing newline).
    pub fn encode(&self) -> String {
        json::Obj::new()
            .field_str("op", "submit")
            .field_str("kernel", &self.kernel.name().to_ascii_lowercase())
            .field_str("class", &self.class.to_string().to_ascii_lowercase())
            .field_u64("ranks", self.ranks as u64)
            .field_str("mode", mode_token(self.mode))
            .field_u64("seed", self.seed)
            .field_u64("priority", self.priority as u64)
            .field_bool("stream", self.stream)
            .finish()
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Run (or fetch) a job.
    Submit(SubmitReq),
    /// Query a key without submitting work.
    Status {
        /// The `(spec, seed)` key in its 32-hex-digit form.
        key: CacheKey,
    },
    /// Service counters: queue depth, cache hit rate, worker state.
    Stats,
    /// Stop admitting new jobs; keep serving hits and queued work.
    Drain,
    /// Drain, finish queued jobs, then exit the accept loop.
    Shutdown,
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    /// A human-readable message describing the first problem found
    /// (returned to the client as a `bad-request` response).
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line.trim()).map_err(|e| format!("bad JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing string member \"op\"")?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            "status" => {
                let key = v
                    .get("key")
                    .and_then(Value::as_str)
                    .ok_or("status needs a \"key\" string")?;
                let key = CacheKey::parse_hex(key)
                    .ok_or("\"key\" must be 32 hex digits")?;
                Ok(Request::Status { key })
            }
            "submit" => {
                let mut req = SubmitReq::default();
                if let Some(k) = v.get("kernel") {
                    let k = k.as_str().ok_or("\"kernel\" must be a string")?;
                    req.kernel =
                        parse_kernel(k).ok_or_else(|| format!("unknown kernel {k:?}"))?;
                }
                if let Some(c) = v.get("class") {
                    let c = c.as_str().ok_or("\"class\" must be a string")?;
                    req.class =
                        parse_class(c).ok_or_else(|| format!("unknown class {c:?}"))?;
                }
                if let Some(r) = v.get("ranks") {
                    let r = r.as_u64().ok_or("\"ranks\" must be a positive integer")?;
                    if r == 0 || r > 4096 {
                        return Err(format!("ranks {r} outside 1..=4096"));
                    }
                    req.ranks = r as usize;
                }
                if let Some(m) = v.get("mode") {
                    let m = m.as_str().ok_or("\"mode\" must be a string")?;
                    req.mode =
                        parse_mode(m).ok_or_else(|| format!("unknown mode {m:?}"))?;
                }
                if let Some(s) = v.get("seed") {
                    req.seed = s.as_u64().ok_or("\"seed\" must be a u64")?;
                }
                if let Some(p) = v.get("priority") {
                    let p = p.as_u64().ok_or("\"priority\" must be a small integer")?;
                    if p > 7 {
                        return Err(format!("priority {p} outside 0..=7"));
                    }
                    req.priority = p as u8;
                }
                if let Some(s) = v.get("stream") {
                    req.stream = match s {
                        Value::Bool(b) => *b,
                        _ => return Err("\"stream\" must be a boolean".into()),
                    };
                }
                Ok(Request::Submit(req))
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Serialize as a request line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => json::Obj::new().field_str("op", "ping").finish(),
            Request::Stats => json::Obj::new().field_str("op", "stats").finish(),
            Request::Drain => json::Obj::new().field_str("op", "drain").finish(),
            Request::Shutdown => json::Obj::new().field_str("op", "shutdown").finish(),
            Request::Status { key } => json::Obj::new()
                .field_str("op", "status")
                .field_str("key", &key.hex())
                .finish(),
            Request::Submit(req) => req.encode(),
        }
    }
}

/// How a completed submit was satisfied (the `cache` member).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the content-addressed store; no machine ran.
    Hit,
    /// This submission ran the job.
    Miss,
    /// Attached to an identical job already queued or running.
    Joined,
}

impl CacheOutcome {
    /// The wire token.
    pub fn token(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Joined => "joined",
        }
    }

    /// Parse the wire token.
    pub fn parse(s: &str) -> Option<CacheOutcome> {
        Some(match s {
            "hit" => CacheOutcome::Hit,
            "miss" => CacheOutcome::Miss,
            "joined" => CacheOutcome::Joined,
            _ => return None,
        })
    }
}

/// Extract the raw `result` bytes from a terminal submit response line.
///
/// The server splices cached result bytes verbatim as the **last**
/// member, so the payload is exactly the text between `"result":` and
/// the envelope's closing brace — no reparse, no reformatting, byte
/// comparisons between responses are meaningful.
pub fn result_payload(line: &str) -> Option<&str> {
    let line = line.trim_end();
    let idx = line.find("\"result\":")? + "\"result\":".len();
    line.get(idx..line.len().checked_sub(1)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let req = SubmitReq {
            kernel: Kernel::Cg,
            class: Class::W,
            ranks: 16,
            mode: OpMode::Dual,
            seed: 99,
            priority: 2,
            stream: true,
        };
        let line = Request::Submit(req).encode();
        assert_eq!(Request::parse(&line).unwrap(), Request::Submit(req));
    }

    #[test]
    fn defaults_fill_missing_members() {
        let r = Request::parse(r#"{"op":"submit"}"#).unwrap();
        assert_eq!(r, Request::Submit(SubmitReq::default()));
    }

    #[test]
    fn admin_ops_round_trip() {
        for op in [Request::Ping, Request::Stats, Request::Drain, Request::Shutdown] {
            assert_eq!(Request::parse(&op.encode()).unwrap(), op);
        }
        let key = CacheKey { spec: 0xabc, seed: 7 };
        let st = Request::Status { key };
        assert_eq!(Request::parse(&st.encode()).unwrap(), st);
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("{", "bad JSON"),
            (r#"{"ok":true}"#, "op"),
            (r#"{"op":"fly"}"#, "unknown op"),
            (r#"{"op":"submit","kernel":"zz"}"#, "unknown kernel"),
            (r#"{"op":"submit","ranks":0}"#, "ranks"),
            (r#"{"op":"submit","priority":9}"#, "priority"),
            (r#"{"op":"status","key":"xyz"}"#, "hex"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn cache_key_ignores_sim_threads_but_sees_seed_and_spec() {
        let a = SubmitReq::default();
        assert_eq!(a.cache_key(1, false), a.cache_key(8, false));
        let mut b = a;
        b.seed = 1;
        assert_ne!(a.cache_key(1, false), b.cache_key(1, false));
        let mut c = a;
        c.ranks = 8;
        assert_ne!(a.cache_key(1, false).spec, c.cache_key(1, false).spec);
        // Tracing is outcome-relevant, so it must move the key too.
        assert_ne!(a.cache_key(1, false), a.cache_key(1, true));
    }

    #[test]
    fn result_payload_is_byte_exact() {
        let cached = r#"{"job_cycles":37719054,"dumps":["00ff"]}"#;
        let line = format!(
            "{{\"ok\":true,\"cache\":\"hit\",\"result\":{cached}}}\n"
        );
        assert_eq!(result_payload(&line), Some(cached));
        assert_eq!(result_payload("{\"ok\":false}"), None);
    }
}
