//! The service wire protocol: newline-delimited JSON over TCP.
//!
//! One JSON object per line, both directions. A connection may carry
//! any number of requests in sequence; each request produces exactly
//! one **terminal** response line (`"ok"` present), preceded — for
//! streamed submits — by zero or more **update** lines (`"update"`
//! present, no `"ok"`). Everything rides the workspace's hand-rolled
//! [`bgp_trace::json`] layer; no external dependency, no `f64` funnel
//! for 64-bit cycle counts.
//!
//! ## Requests
//!
//! ```json
//! {"op":"ping"}
//! {"op":"submit","kernel":"mg","class":"s","ranks":4,"mode":"vnm",
//!  "seed":0,"priority":1,"stream":false}
//! {"op":"status","key":"<32 hex digits>"}
//! {"op":"stats"}
//! {"op":"drain"}
//! {"op":"shutdown"}
//! {"op":"batch","v":2,"jobs":[{"kernel":"mg"},{"kernel":"ft","seed":3}]}
//! {"op":"subscribe","v":2,"key":"<32 hex digits>","stream":true}
//! ```
//!
//! ## Versioning
//!
//! Every request may carry a `"v"` member declaring the protocol
//! version it speaks; absent means **1** (the original protocol, kept
//! wire-compatible). The server speaks up to [`PROTO_VERSION`]. Ops
//! introduced at v2 — `batch` (one envelope, many jobs) and
//! `subscribe` (attach to a key without submitting work) — require the
//! client to declare `"v":2`; a v1 client reaching for them, or any
//! client declaring a version this server does not speak, gets the
//! structured reject
//! `{"ok":false,"error":"unsupported-version","requested":N,"supported":2,…}`
//! instead of a generic parse failure, so old clients can detect the
//! mismatch programmatically.
//!
//! ## Terminal responses
//!
//! * Completed submit:
//!   `{"ok":true,"cache":"hit"|"miss"|"joined","key":"…",
//!    "queue_ms":N,"result":{…}}` — the `result` member is spliced
//!   **byte-for-byte** from the content-addressed store, so two
//!   responses for one key always carry identical result bytes.
//! * Backpressure reject (the 429 path):
//!   `{"ok":false,"error":"backpressure","retry_after_ms":N}`
//! * Drain reject: `{"ok":false,"error":"draining"}`
//! * Failed job: `{"ok":false,"error":"job-failed","detail":"…"}`
//! * Malformed request: `{"ok":false,"error":"bad-request","detail":"…"}`
//! * Completed batch: `{"ok":true,"jobs":N,"results":[…]}` — one
//!   element per job in submission order, each the terminal object the
//!   equivalent lone submit would have produced (including per-job
//!   failures, which do not fail the envelope).
//! * Subscribe to an unknown key: `{"ok":false,"error":"unknown-key"}`
//! * Version mismatch:
//!   `{"ok":false,"error":"unsupported-version","requested":N,"supported":2}`

use bgp_arch::OpMode;
use bgp_faults::{FaultPlan, FaultSpec};
use bgp_mpi::JobSpec;
use bgp_nas::{Class, Kernel};
use bgp_snapshot::CacheKey;
use bgp_trace::json::{self, Value};
use bgp_trace::TraceConfig;

/// Highest protocol version this build speaks (see the module docs).
pub const PROTO_VERSION: u64 = 2;
/// Cap on jobs per `batch` envelope (keeps one request line from
/// monopolizing the admission queue).
pub const MAX_BATCH_JOBS: usize = 64;

/// Straggler probability applied when a submit carries a nonzero seed.
const SEEDED_STRAGGLER_RATE: f64 = 0.4;
/// Straggler penalty (cycles per messaging boundary) for seeded jobs.
const SEEDED_STRAGGLER_PENALTY: u64 = 800;

/// One job submission: the client-controllable slice of a [`JobSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitReq {
    /// NAS kernel to run.
    pub kernel: Kernel,
    /// Problem class.
    pub class: Class,
    /// Requested MPI ranks (clamped to the kernel's legal counts).
    pub ranks: usize,
    /// Node operating mode.
    pub mode: OpMode,
    /// Fault seed: 0 = clean machine; nonzero = a deterministic
    /// straggler plan derived from the seed (part of the cache key).
    pub seed: u64,
    /// Scheduling priority: 0 = high, larger = lower. Queued jobs age
    /// toward priority 0, so no priority can starve.
    pub priority: u8,
    /// Stream `update` lines while the job is queued/running.
    pub stream: bool,
}

impl Default for SubmitReq {
    fn default() -> SubmitReq {
        SubmitReq {
            kernel: Kernel::Mg,
            class: Class::S,
            ranks: 4,
            mode: OpMode::VirtualNode,
            seed: 0,
            priority: 1,
            stream: false,
        }
    }
}

/// Parse the protocol's lowercase kernel token.
pub fn parse_kernel(s: &str) -> Option<Kernel> {
    Some(match s.to_ascii_lowercase().as_str() {
        "mg" => Kernel::Mg,
        "ft" => Kernel::Ft,
        "ep" => Kernel::Ep,
        "cg" => Kernel::Cg,
        "is" => Kernel::Is,
        "lu" => Kernel::Lu,
        "sp" => Kernel::Sp,
        "bt" => Kernel::Bt,
        _ => return None,
    })
}

/// Parse the protocol's lowercase class token.
pub fn parse_class(s: &str) -> Option<Class> {
    Some(match s.to_ascii_lowercase().as_str() {
        "s" => Class::S,
        "w" => Class::W,
        "a" => Class::A,
        _ => return None,
    })
}

/// Parse the protocol's mode token (`smp1`, `smp4`, `dual`, `vnm`).
pub fn parse_mode(s: &str) -> Option<OpMode> {
    Some(match s.to_ascii_lowercase().as_str() {
        "smp1" => OpMode::Smp1,
        "smp4" => OpMode::Smp4,
        "dual" => OpMode::Dual,
        "vnm" | "vn" => OpMode::VirtualNode,
        _ => return None,
    })
}

/// Canonical workload name for a (kernel, class) pair — the
/// [`JobSpec::workload`] value every runner that executes NAS kernels
/// must use, so `bgpc-run`'s printed cache key matches the service's
/// entry for the same job. The spec alone cannot see which kernel
/// future runs on the machine, so without this tag MG and CG on
/// identical hardware would collide onto one cache key.
pub fn workload_tag(kernel: Kernel, class: Class) -> String {
    format!(
        "nas-{}-{}",
        kernel.name().to_ascii_lowercase(),
        class.to_string().to_ascii_lowercase()
    )
}

/// The protocol's mode token for `mode` (inverse of [`parse_mode`]).
pub fn mode_token(mode: OpMode) -> &'static str {
    match mode {
        OpMode::Smp1 => "smp1",
        OpMode::Smp4 => "smp4",
        OpMode::Dual => "dual",
        OpMode::VirtualNode => "vnm",
    }
}

impl SubmitReq {
    /// Expand into the full [`JobSpec`] the worker pool runs.
    /// `sim_threads` and tracing are server policy, not client input —
    /// both are excluded from, respectively cosmetic to, the cache key
    /// only when they genuinely cannot change results (`sim_threads`
    /// is; tracing is outcome-relevant and therefore server-global so
    /// every cached entry was produced under one policy).
    pub fn job_spec(&self, sim_threads: usize, trace: bool) -> JobSpec {
        let ranks = self.kernel.clamp_ranks(self.ranks.max(1), self.class);
        let mut spec = JobSpec::new(ranks, self.mode);
        spec.workload = Some(workload_tag(self.kernel, self.class));
        spec.sim_threads = Some(sim_threads.max(1));
        if trace {
            spec.trace = Some(TraceConfig::default());
        }
        if self.seed != 0 {
            let nodes = spec.nodes();
            spec.faults = Some(std::sync::Arc::new(FaultPlan::new(
                FaultSpec {
                    straggler_rate: SEEDED_STRAGGLER_RATE,
                    straggler_penalty_cycles: SEEDED_STRAGGLER_PENALTY,
                    ..FaultSpec::none()
                },
                self.seed,
                nodes,
            )));
        }
        spec
    }

    /// The content-address of this submission's result under the given
    /// server policy: `(spec fingerprint, seed)`.
    pub fn cache_key(&self, sim_threads: usize, trace: bool) -> CacheKey {
        CacheKey { spec: self.job_spec(sim_threads, trace).fingerprint(), seed: self.seed }
    }

    /// Append this request's job members to `obj` (shared between the
    /// `submit` line and each element of a `batch` envelope).
    fn members(&self, obj: json::Obj) -> json::Obj {
        obj.field_str("kernel", &self.kernel.name().to_ascii_lowercase())
            .field_str("class", &self.class.to_string().to_ascii_lowercase())
            .field_u64("ranks", self.ranks as u64)
            .field_str("mode", mode_token(self.mode))
            .field_u64("seed", self.seed)
            .field_u64("priority", self.priority as u64)
            .field_bool("stream", self.stream)
    }

    /// Serialize as a submit request line (no trailing newline).
    pub fn encode(&self) -> String {
        self.members(json::Obj::new().field_str("op", "submit")).finish()
    }
}

/// Why a request line was refused (split so the server can answer
/// version mismatches with a structured, machine-readable reject).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Bad JSON or a bad member — answered as `bad-request`.
    Malformed(String),
    /// The client declared (or implied, by omitting `"v"`) a protocol
    /// version this server cannot serve for the requested op —
    /// answered as `unsupported-version`.
    UnsupportedVersion {
        /// What the client spoke (1 when `"v"` was absent).
        requested: u64,
        /// Why it is insufficient.
        detail: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(msg) => f.write_str(msg),
            ParseError::UnsupportedVersion { requested, detail } => {
                write!(f, "unsupported protocol version {requested}: {detail}")
            }
        }
    }
}

impl From<String> for ParseError {
    fn from(msg: String) -> ParseError {
        ParseError::Malformed(msg)
    }
}

impl From<&str> for ParseError {
    fn from(msg: &str) -> ParseError {
        ParseError::Malformed(msg.into())
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Run (or fetch) a job.
    Submit(SubmitReq),
    /// Query a key without submitting work.
    Status {
        /// The `(spec, seed)` key in its 32-hex-digit form.
        key: CacheKey,
    },
    /// Service counters: queue depth, cache hit rate, worker state.
    Stats,
    /// Stop admitting new jobs; keep serving hits and queued work.
    Drain,
    /// Drain, finish queued jobs, then exit the accept loop.
    Shutdown,
    /// Submit many jobs in one envelope; one terminal response with a
    /// per-job `results` array, in submission order (protocol v2).
    Batch(Vec<SubmitReq>),
    /// Attach to a key's result without submitting work: cache hits
    /// answer immediately, in-flight jobs are awaited, unknown keys
    /// are refused (protocol v2).
    Subscribe {
        /// The `(spec, seed)` key in its 32-hex-digit form.
        key: CacheKey,
        /// Stream `update` lines while the key is queued/running.
        stream: bool,
    },
}

/// Parse the submit-shaped members of `v` (a `submit` line or one
/// element of a `batch` envelope) over the defaults.
fn parse_submit_members(v: &Value) -> Result<SubmitReq, String> {
    let mut req = SubmitReq::default();
    if let Some(k) = v.get("kernel") {
        let k = k.as_str().ok_or("\"kernel\" must be a string")?;
        req.kernel = parse_kernel(k).ok_or_else(|| format!("unknown kernel {k:?}"))?;
    }
    if let Some(c) = v.get("class") {
        let c = c.as_str().ok_or("\"class\" must be a string")?;
        req.class = parse_class(c).ok_or_else(|| format!("unknown class {c:?}"))?;
    }
    if let Some(r) = v.get("ranks") {
        let r = r.as_u64().ok_or("\"ranks\" must be a positive integer")?;
        if r == 0 || r > 4096 {
            return Err(format!("ranks {r} outside 1..=4096"));
        }
        req.ranks = r as usize;
    }
    if let Some(m) = v.get("mode") {
        let m = m.as_str().ok_or("\"mode\" must be a string")?;
        req.mode = parse_mode(m).ok_or_else(|| format!("unknown mode {m:?}"))?;
    }
    if let Some(s) = v.get("seed") {
        req.seed = s.as_u64().ok_or("\"seed\" must be a u64")?;
    }
    if let Some(p) = v.get("priority") {
        let p = p.as_u64().ok_or("\"priority\" must be a small integer")?;
        if p > 7 {
            return Err(format!("priority {p} outside 0..=7"));
        }
        req.priority = p as u8;
    }
    if let Some(s) = v.get("stream") {
        req.stream = match s {
            Value::Bool(b) => *b,
            _ => return Err("\"stream\" must be a boolean".into()),
        };
    }
    Ok(req)
}

/// Parse a key member in its 32-hex-digit form.
fn parse_key_member(v: &Value, op: &str) -> Result<CacheKey, String> {
    let key = v
        .get("key")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{op} needs a \"key\" string"))?;
    CacheKey::parse_hex(key).ok_or_else(|| "\"key\" must be 32 hex digits".into())
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    /// [`ParseError::Malformed`] with a human-readable message for the
    /// first problem found (returned to the client as a `bad-request`
    /// response), or [`ParseError::UnsupportedVersion`] when version
    /// negotiation fails (returned as `unsupported-version`).
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let v = json::parse(line.trim()).map_err(|e| format!("bad JSON: {e}"))?;
        let version = match v.get("v") {
            None => 1,
            Some(val) => val.as_u64().ok_or("\"v\" must be a positive integer")?,
        };
        if version == 0 || version > PROTO_VERSION {
            return Err(ParseError::UnsupportedVersion {
                requested: version,
                detail: format!("this server speaks protocol versions 1..={PROTO_VERSION}"),
            });
        }
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing string member \"op\"")?;
        if matches!(op, "batch" | "subscribe") && version < 2 {
            return Err(ParseError::UnsupportedVersion {
                requested: version,
                detail: format!("op {op:?} requires protocol v2; declare \"v\":2"),
            });
        }
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            "status" => Ok(Request::Status { key: parse_key_member(&v, op)? }),
            "submit" => Ok(Request::Submit(parse_submit_members(&v)?)),
            "subscribe" => {
                let key = parse_key_member(&v, op)?;
                let stream = match v.get("stream") {
                    None => false,
                    Some(Value::Bool(b)) => *b,
                    Some(_) => return Err("\"stream\" must be a boolean".into()),
                };
                Ok(Request::Subscribe { key, stream })
            }
            "batch" => {
                let jobs = v
                    .get("jobs")
                    .and_then(Value::as_array)
                    .ok_or("batch needs a \"jobs\" array")?;
                if jobs.is_empty() {
                    return Err("batch \"jobs\" must not be empty".into());
                }
                if jobs.len() > MAX_BATCH_JOBS {
                    return Err(format!(
                        "batch carries {} jobs, cap is {MAX_BATCH_JOBS}",
                        jobs.len()
                    )
                    .into());
                }
                let jobs = jobs
                    .iter()
                    .enumerate()
                    .map(|(i, j)| {
                        parse_submit_members(j).map_err(|e| format!("jobs[{i}]: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Batch(jobs))
            }
            other => Err(format!("unknown op {other:?}").into()),
        }
    }

    /// Serialize as a request line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => json::Obj::new().field_str("op", "ping").finish(),
            Request::Stats => json::Obj::new().field_str("op", "stats").finish(),
            Request::Drain => json::Obj::new().field_str("op", "drain").finish(),
            Request::Shutdown => json::Obj::new().field_str("op", "shutdown").finish(),
            Request::Status { key } => json::Obj::new()
                .field_str("op", "status")
                .field_str("key", &key.hex())
                .finish(),
            Request::Submit(req) => req.encode(),
            Request::Subscribe { key, stream } => json::Obj::new()
                .field_str("op", "subscribe")
                .field_u64("v", PROTO_VERSION)
                .field_str("key", &key.hex())
                .field_bool("stream", *stream)
                .finish(),
            Request::Batch(jobs) => {
                let mut arr = json::Arr::new();
                for job in jobs {
                    arr = arr.push_raw(&job.members(json::Obj::new()).finish());
                }
                json::Obj::new()
                    .field_str("op", "batch")
                    .field_u64("v", PROTO_VERSION)
                    .field_raw("jobs", &arr.finish())
                    .finish()
            }
        }
    }
}

/// How a completed submit was satisfied (the `cache` member).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the content-addressed store; no machine ran.
    Hit,
    /// This submission ran the job.
    Miss,
    /// Attached to an identical job already queued or running.
    Joined,
}

impl CacheOutcome {
    /// The wire token.
    pub fn token(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Joined => "joined",
        }
    }

    /// Parse the wire token.
    pub fn parse(s: &str) -> Option<CacheOutcome> {
        Some(match s {
            "hit" => CacheOutcome::Hit,
            "miss" => CacheOutcome::Miss,
            "joined" => CacheOutcome::Joined,
            _ => return None,
        })
    }
}

/// Extract the raw `result` bytes from a terminal submit response line.
///
/// The server splices cached result bytes verbatim as the **last**
/// member, so the payload is exactly the text between `"result":` and
/// the envelope's closing brace — no reparse, no reformatting, byte
/// comparisons between responses are meaningful.
pub fn result_payload(line: &str) -> Option<&str> {
    let line = line.trim_end();
    let idx = line.find("\"result\":")? + "\"result\":".len();
    line.get(idx..line.len().checked_sub(1)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let req = SubmitReq {
            kernel: Kernel::Cg,
            class: Class::W,
            ranks: 16,
            mode: OpMode::Dual,
            seed: 99,
            priority: 2,
            stream: true,
        };
        let line = Request::Submit(req).encode();
        assert_eq!(Request::parse(&line).unwrap(), Request::Submit(req));
    }

    #[test]
    fn defaults_fill_missing_members() {
        let r = Request::parse(r#"{"op":"submit"}"#).unwrap();
        assert_eq!(r, Request::Submit(SubmitReq::default()));
    }

    #[test]
    fn admin_ops_round_trip() {
        for op in [Request::Ping, Request::Stats, Request::Drain, Request::Shutdown] {
            assert_eq!(Request::parse(&op.encode()).unwrap(), op);
        }
        let key = CacheKey { spec: 0xabc, seed: 7 };
        let st = Request::Status { key };
        assert_eq!(Request::parse(&st.encode()).unwrap(), st);
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("{", "bad JSON"),
            (r#"{"ok":true}"#, "op"),
            (r#"{"op":"fly"}"#, "unknown op"),
            (r#"{"op":"submit","kernel":"zz"}"#, "unknown kernel"),
            (r#"{"op":"submit","ranks":0}"#, "ranks"),
            (r#"{"op":"submit","priority":9}"#, "priority"),
            (r#"{"op":"status","key":"xyz"}"#, "hex"),
            (r#"{"op":"batch","v":2}"#, "jobs"),
            (r#"{"op":"batch","v":2,"jobs":[]}"#, "empty"),
            (r#"{"op":"batch","v":2,"jobs":[{"ranks":0}]}"#, "jobs[0]"),
            (r#"{"op":"subscribe","v":2}"#, "key"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(matches!(err, ParseError::Malformed(_)), "{line} -> {err}");
            assert!(err.to_string().contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn batch_and_subscribe_round_trip() {
        let jobs = vec![
            SubmitReq::default(),
            SubmitReq { kernel: Kernel::Ft, seed: 3, ..SubmitReq::default() },
        ];
        let batch = Request::Batch(jobs);
        assert_eq!(Request::parse(&batch.encode()).unwrap(), batch);
        let sub = Request::Subscribe {
            key: CacheKey { spec: 0xfeed, seed: 9 },
            stream: true,
        };
        assert_eq!(Request::parse(&sub.encode()).unwrap(), sub);
    }

    #[test]
    fn version_negotiation() {
        // Declaring the current version on a v1 op is fine.
        let r = Request::parse(r#"{"op":"ping","v":2}"#).unwrap();
        assert_eq!(r, Request::Ping);
        // A future version is refused with the structured error...
        let err = Request::parse(r#"{"op":"ping","v":3}"#).unwrap_err();
        assert_eq!(
            err,
            ParseError::UnsupportedVersion {
                requested: 3,
                detail: "this server speaks protocol versions 1..=2".into(),
            }
        );
        // ...and so are v2 ops from clients that never declared v2
        // (the "old client" path: structured, not a parse failure).
        for line in [
            r#"{"op":"batch","jobs":[{"kernel":"mg"}]}"#,
            r#"{"op":"subscribe","key":"00000000000000000000000000000000"}"#,
            r#"{"op":"batch","v":1,"jobs":[{"kernel":"mg"}]}"#,
        ] {
            match Request::parse(line).unwrap_err() {
                ParseError::UnsupportedVersion { requested: 1, detail } => {
                    assert!(detail.contains("requires protocol v2"), "{line} -> {detail}");
                }
                other => panic!("{line} -> {other:?}"),
            }
        }
    }

    #[test]
    fn batch_job_cap_is_enforced() {
        let one = r#"{"kernel":"mg"}"#;
        let jobs = vec![one; MAX_BATCH_JOBS + 1].join(",");
        let line = format!(r#"{{"op":"batch","v":2,"jobs":[{jobs}]}}"#);
        let err = Request::parse(&line).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
        let jobs = vec![one; MAX_BATCH_JOBS].join(",");
        let line = format!(r#"{{"op":"batch","v":2,"jobs":[{jobs}]}}"#);
        assert!(Request::parse(&line).is_ok());
    }

    #[test]
    fn cache_key_ignores_sim_threads_but_sees_seed_and_spec() {
        let a = SubmitReq::default();
        assert_eq!(a.cache_key(1, false), a.cache_key(8, false));
        let mut b = a;
        b.seed = 1;
        assert_ne!(a.cache_key(1, false), b.cache_key(1, false));
        let mut c = a;
        c.ranks = 8;
        assert_ne!(a.cache_key(1, false).spec, c.cache_key(1, false).spec);
        // Tracing is outcome-relevant, so it must move the key too.
        assert_ne!(a.cache_key(1, false), a.cache_key(1, true));
        // The kernel and class only reach the spec through the workload
        // tag — without it, MG and CG on identical hardware would share
        // a key and a CG submit would replay MG's cached bytes.
        let mut kernel = a;
        kernel.kernel = Kernel::Cg;
        assert_ne!(a.cache_key(1, false), kernel.cache_key(1, false));
        let mut class = a;
        class.class = Class::W;
        assert_ne!(a.cache_key(1, false), class.cache_key(1, false));
    }

    #[test]
    fn result_payload_is_byte_exact() {
        let cached = r#"{"job_cycles":37719054,"dumps":["00ff"]}"#;
        let line = format!(
            "{{\"ok\":true,\"cache\":\"hit\",\"result\":{cached}}}\n"
        );
        assert_eq!(result_payload(&line), Some(cached));
        assert_eq!(result_payload("{\"ok\":false}"), None);
    }
}
