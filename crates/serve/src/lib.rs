//! bgp-serve — the counter service: jobs as traffic, deterministic
//! results as cache hits.
//!
//! The simulator is deterministic: a job's entire output — counter
//! dumps, cycle counts, phase metrics — is a pure function of its
//! [`JobSpec`](bgp_mpi::JobSpec) fingerprint and fault seed. That
//! turns a batch simulator into a service with ideal cache economics:
//! the first submission of a `(spec, seed)` pays for the run, every
//! later one is a content-addressed lookup returning **byte-identical**
//! bytes, and two in-flight submissions of the same key can be
//! coalesced because they *provably* compute the same thing.
//!
//! This crate is that service, std-only end to end:
//!
//! * [`proto`] — the newline-delimited JSON wire protocol (riding the
//!   workspace's shared [`bgp_trace::json`] layer).
//! * [`queue`] — bounded admission with aging priorities: full queue
//!   ⇒ 429-style reject with a retry-after estimate; no priority can
//!   starve.
//! * [`server`] — the daemon: thread-per-connection accept loop, a
//!   bounded worker pool running jobs under
//!   [`bgp_core::supervisor`] (watchdog, retries, checkpoint resume),
//!   live phase streaming, and the write-once result store from
//!   [`bgp_snapshot::BlobStore`].
//! * [`load`] — the measuring client: drives ≥10k-request mixes and
//!   audits the contract (no lost responses, byte-identical replays,
//!   rejects only via backpressure) while recording throughput and
//!   latency percentiles.
//!
//! Binaries: `bgpc-serve` (the daemon) and `bgpc-load` (load
//! generator + admin client).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load;
pub mod proto;
pub mod queue;
pub mod server;

pub use load::{run_load, Client, LoadConfig, LoadReport};
pub use proto::{CacheOutcome, Request, SubmitReq};
pub use queue::{JobQueue, PushError, QueueConfig};
pub use server::{request_once, Server, ServerConfig, ServerHandle};
