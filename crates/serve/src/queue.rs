//! Bounded, starvation-free admission queue.
//!
//! Admission control is the service's survival mechanism: the queue has
//! a hard capacity and a full queue **rejects** (the 429 path, with a
//! retry-after estimate) instead of buffering without bound. Scheduling
//! is priority-ordered (0 = highest) with **aging**: a queued job's
//! effective priority improves by one level per [`QueueConfig::age_to_boost`]
//! waited, so every job eventually reaches priority 0 and low-priority
//! traffic cannot starve behind a steady high-priority stream. Ties
//! break FIFO by submission sequence.

use crate::proto::SubmitReq;
use bgp_snapshot::CacheKey;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Queue policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Hard bound on queued (admitted, not yet running) jobs.
    pub capacity: usize,
    /// Wait time that improves a job's effective priority by one level.
    pub age_to_boost: Duration,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig { capacity: 64, age_to_boost: Duration::from_millis(500) }
    }
}

/// One admitted job waiting for a worker.
#[derive(Clone, Debug)]
pub struct QueueItem {
    /// Content address of the job's result.
    pub key: CacheKey,
    /// The submission that created it.
    pub req: SubmitReq,
    /// Requested priority (0 = highest).
    pub priority: u8,
    /// Admission sequence number (FIFO tie-break).
    pub seq: u64,
    /// When the job was admitted (aging reference point).
    pub enqueued: Instant,
}

impl QueueItem {
    /// Priority after aging: one level better per `age_to_boost` waited.
    fn effective_priority(&self, now: Instant, age_to_boost: Duration) -> u8 {
        let boosts = if age_to_boost.is_zero() {
            u32::MAX
        } else {
            (now.saturating_duration_since(self.enqueued).as_nanos()
                / age_to_boost.as_nanos().max(1)) as u32
        };
        self.priority.saturating_sub(boosts.min(u8::MAX as u32) as u8)
    }
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity — the backpressure path.
    Full {
        /// Depth at rejection time (for the retry-after estimate).
        depth: usize,
    },
    /// Queue closed (service draining or shut down).
    Closed,
}

struct Inner {
    items: VecDeque<QueueItem>,
    next_seq: u64,
    closed: bool,
}

/// The bounded priority queue workers pop from.
pub struct JobQueue {
    cfg: QueueConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl JobQueue {
    /// An empty queue with the given policy.
    pub fn new(cfg: QueueConfig) -> JobQueue {
        JobQueue {
            cfg,
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                next_seq: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admit a job.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`].
    pub fn push(&self, key: CacheKey, req: SubmitReq) -> Result<usize, PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        let depth = inner.items.len();
        if depth >= self.cfg.capacity {
            return Err(PushError::Full { depth });
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.items.push_back(QueueItem {
            key,
            req,
            priority: req.priority,
            seq,
            enqueued: Instant::now(),
        });
        drop(inner);
        self.cv.notify_one();
        Ok(depth + 1)
    }

    /// Block until a job is available and pop the best one — lowest
    /// effective (aged) priority, FIFO within a level. Returns `None`
    /// once the queue is closed **and** empty: the drain contract is
    /// that every admitted job is still handed to a worker.
    pub fn pop_blocking(&self) -> Option<QueueItem> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = Self::pop_best(&mut inner, &self.cfg) {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn pop_best(inner: &mut Inner, cfg: &QueueConfig) -> Option<QueueItem> {
        let now = Instant::now();
        let best = inner
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, it)| (it.effective_priority(now, cfg.age_to_boost), it.seq))
            .map(|(i, _)| i)?;
        inner.items.remove(best)
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop admitting; wake every popper so workers can drain and exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Whether [`JobQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey { spec: 0x5eed, seed }
    }

    fn req(priority: u8) -> SubmitReq {
        SubmitReq { priority, ..SubmitReq::default() }
    }

    fn queue(capacity: usize, age_ms: u64) -> JobQueue {
        JobQueue::new(QueueConfig {
            capacity,
            age_to_boost: Duration::from_millis(age_ms),
        })
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = queue(8, 60_000); // aging effectively off
        q.push(key(1), req(2)).unwrap();
        q.push(key(2), req(0)).unwrap();
        q.push(key(3), req(0)).unwrap();
        q.push(key(4), req(1)).unwrap();
        let order: Vec<u64> =
            (0..4).map(|_| q.pop_blocking().unwrap().key.seed).collect();
        assert_eq!(order, vec![2, 3, 4, 1], "priority levels, FIFO within each");
    }

    #[test]
    fn full_queue_rejects_with_depth() {
        let q = queue(2, 1000);
        q.push(key(1), req(1)).unwrap();
        q.push(key(2), req(1)).unwrap();
        assert_eq!(q.push(key(3), req(0)), Err(PushError::Full { depth: 2 }));
        assert_eq!(q.len(), 2, "rejected job was not admitted");
    }

    #[test]
    fn aging_prevents_starvation() {
        let q = queue(8, 20); // every 20 ms waited = one level better
        q.push(key(1), req(7)).unwrap(); // lowest priority, first in
        std::thread::sleep(Duration::from_millis(150));
        q.push(key(2), req(0)).unwrap(); // fresh high-priority
        // The old job has aged 7 levels down to 0 and wins the FIFO
        // tie-break at that level.
        assert_eq!(q.pop_blocking().unwrap().key.seed, 1);
        assert_eq!(q.pop_blocking().unwrap().key.seed, 2);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = queue(8, 1000);
        q.push(key(1), req(1)).unwrap();
        q.close();
        assert_eq!(q.push(key(2), req(1)), Err(PushError::Closed));
        assert_eq!(q.pop_blocking().unwrap().key.seed, 1, "admitted jobs drain");
        assert!(q.pop_blocking().is_none());
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = std::sync::Arc::new(queue(8, 1000));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_blocking().is_none());
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert!(h.join().unwrap(), "popper woke and saw the close");
    }
}
