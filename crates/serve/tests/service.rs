//! End-to-end service tests over real loopback sockets: the daemon's
//! whole contract — miss→hit byte identity, in-flight coalescing,
//! backpressure, drain semantics, streamed updates, and cache
//! persistence across a server restart.

use bgp_serve::load::{str_member, u64_member};
use bgp_nas::Kernel;
use bgp_serve::proto::{result_payload, Request, SubmitReq};
use bgp_serve::{request_once, Client, QueueConfig, Server, ServerConfig, ServerHandle};

fn quiet_cfg() -> ServerConfig {
    ServerConfig { quiet: true, ..ServerConfig::default() }
}

fn spawn(cfg: ServerConfig) -> ServerHandle {
    Server::spawn(cfg).expect("bind loopback")
}

fn submit(client: &mut Client, req: &SubmitReq) -> String {
    client.request(&req.encode()).expect("submit round-trip")
}

#[test]
fn miss_then_hit_is_byte_identical() {
    let server = spawn(quiet_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let req = SubmitReq { seed: 7, ..SubmitReq::default() };

    let first = submit(&mut client, &req);
    assert_eq!(str_member(&first, "cache"), Some("miss"), "{first}");
    let key = str_member(&first, "key").expect("key in envelope").to_string();
    let payload = result_payload(&first).expect("result spliced").to_string();
    assert!(payload.contains("\"verified\":true"), "{payload}");
    assert!(payload.contains("\"seed\":7"));
    assert!(payload.contains("\"spec_hash\":"));

    // Replay: served from the store, byte-for-byte the same result.
    let second = submit(&mut client, &req);
    assert_eq!(str_member(&second, "cache"), Some("hit"), "{second}");
    assert_eq!(str_member(&second, "key"), Some(key.as_str()));
    assert_eq!(result_payload(&second), Some(payload.as_str()));

    // A different seed is a different key and a different result.
    let other = submit(&mut client, &SubmitReq { seed: 8, ..req });
    assert_eq!(str_member(&other, "cache"), Some("miss"));
    assert_ne!(str_member(&other, "key"), Some(key.as_str()));
    assert_ne!(result_payload(&other), Some(payload.as_str()));

    // Status sees the completed key; stats counted one hit.
    let status = client
        .request(&Request::Status { key: bgp_snapshot::CacheKey::parse_hex(&key).unwrap() }.encode())
        .unwrap();
    assert_eq!(str_member(&status, "state"), Some("done"), "{status}");
    let stats = client.request(&Request::Stats.encode()).unwrap();
    assert_eq!(u64_member(&stats, "hits"), Some(1), "{stats}");
    assert_eq!(u64_member(&stats, "misses"), Some(2));
    assert_eq!(u64_member(&stats, "completed"), Some(2));

    // Service-latency percentiles cover the two completed jobs, and the
    // quantiles are ordered.
    assert_eq!(u64_member(&stats, "latency_samples"), Some(2), "{stats}");
    let p50 = u64_member(&stats, "latency_p50_ms").unwrap();
    let p90 = u64_member(&stats, "latency_p90_ms").unwrap();
    let p99 = u64_member(&stats, "latency_p99_ms").unwrap();
    assert!(p50 <= p90 && p90 <= p99, "quantiles ordered: {stats}");

    server.shutdown();
}

#[test]
fn concurrent_identical_submits_run_once() {
    // One worker, four simultaneous submissions of one key: exactly one
    // job may run; everyone gets identical bytes.
    let server = spawn(ServerConfig { workers: 1, ..quiet_cfg() });
    let addr = server.addr();
    let req = SubmitReq { seed: 42, ..SubmitReq::default() };

    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let req = &req;
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    submit(&mut c, req)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let payloads: Vec<&str> =
        responses.iter().map(|r| result_payload(r).expect("result")).collect();
    assert!(payloads.windows(2).all(|w| w[0] == w[1]), "all responses identical");
    let misses = responses
        .iter()
        .filter(|r| str_member(r, "cache") == Some("miss"))
        .count();
    assert!(misses <= 1, "at most one submission runs the job");

    let stats = request_once(addr, &Request::Stats.encode()).unwrap();
    assert_eq!(u64_member(&stats, "completed"), Some(1), "job ran once: {stats}");
    server.shutdown();
}

#[test]
fn zero_capacity_queue_rejects_with_retry_after() {
    let server = spawn(ServerConfig {
        queue: QueueConfig { capacity: 0, ..QueueConfig::default() },
        ..quiet_cfg()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = submit(&mut client, &SubmitReq::default());
    assert_eq!(str_member(&resp, "error"), Some("backpressure"), "{resp}");
    assert!(u64_member(&resp, "retry_after_ms").unwrap() >= 10);
    let stats = client.request(&Request::Stats.encode()).unwrap();
    assert_eq!(u64_member(&stats, "rejected_backpressure"), Some(1));
    server.shutdown();
}

#[test]
fn drain_serves_hits_but_rejects_new_work() {
    let server = spawn(quiet_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let req = SubmitReq { seed: 3, ..SubmitReq::default() };
    let first = submit(&mut client, &req);
    assert_eq!(str_member(&first, "cache"), Some("miss"));

    let drain = client.request(&Request::Drain.encode()).unwrap();
    assert_eq!(str_member(&drain, "error"), None, "{drain}");

    // Cached work still flows; new work is refused.
    let hit = submit(&mut client, &req);
    assert_eq!(str_member(&hit, "cache"), Some("hit"), "{hit}");
    assert_eq!(result_payload(&hit), result_payload(&first));
    let rejected = submit(&mut client, &SubmitReq { seed: 4, ..req });
    assert_eq!(str_member(&rejected, "error"), Some("draining"), "{rejected}");

    server.shutdown();
}

#[test]
fn streamed_submit_sees_updates_before_the_result() {
    let server = spawn(quiet_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let req = SubmitReq { seed: 99, stream: true, ..SubmitReq::default() };
    let mut updates = Vec::new();
    let resp = client
        .request_with_updates(&req.encode(), |u| updates.push(u.to_string()))
        .unwrap();
    assert_eq!(str_member(&resp, "cache"), Some("miss"), "{resp}");
    assert!(!updates.is_empty(), "a pending miss streams at least one update");
    for u in &updates {
        assert!(u.starts_with("{\"update\""), "{u}");
        let state = str_member(u, "state").expect("update carries a state");
        assert!(state == "queued" || state == "running", "{u}");
    }
    // A streamed hit needs no updates: the bytes are already there.
    let mut updates2 = Vec::new();
    let resp2 = client
        .request_with_updates(&req.encode(), |u| updates2.push(u.to_string()))
        .unwrap();
    assert_eq!(str_member(&resp2, "cache"), Some("hit"));
    assert!(updates2.is_empty());
    server.shutdown();
}

#[test]
fn persistent_cache_survives_restart() {
    let dir = std::env::temp_dir().join(format!("bgp-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let req = SubmitReq { seed: 5, ..SubmitReq::default() };

    let payload = {
        let server = spawn(ServerConfig { cache_dir: Some(dir.clone()), ..quiet_cfg() });
        let mut client = Client::connect(server.addr()).unwrap();
        let resp = submit(&mut client, &req);
        assert_eq!(str_member(&resp, "cache"), Some("miss"));
        let payload = result_payload(&resp).unwrap().to_string();
        server.shutdown();
        payload
    };

    // A fresh daemon over the same store serves the key as a hit
    // without running anything.
    let server = spawn(ServerConfig { cache_dir: Some(dir.clone()), ..quiet_cfg() });
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = submit(&mut client, &req);
    assert_eq!(str_member(&resp, "cache"), Some("hit"), "{resp}");
    assert_eq!(result_payload(&resp), Some(payload.as_str()));
    let stats = client.request(&Request::Stats.encode()).unwrap();
    assert_eq!(u64_member(&stats, "completed"), Some(0), "no job ran");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_envelope_runs_all_jobs_and_replays_as_hits() {
    let server = spawn(quiet_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    // Job 1 shares job 0's seed but runs a different kernel — same
    // hardware, different experiment, so it must get its own key
    // (the workload tag keeps them apart in the spec fingerprint).
    let jobs = vec![
        SubmitReq { seed: 11, ..SubmitReq::default() },
        SubmitReq { seed: 11, kernel: Kernel::Cg, ..SubmitReq::default() },
        SubmitReq { seed: 11, ..SubmitReq::default() }, // duplicate of job 0
    ];
    assert_ne!(jobs[0].cache_key(1, false), jobs[1].cache_key(1, false));
    let resp = client.request(&Request::Batch(jobs.clone()).encode()).unwrap();
    assert_eq!(u64_member(&resp, "jobs"), Some(3), "{resp}");
    assert!(resp.contains("\"results\":["), "{resp}");
    // Every job completed and verified; the duplicate coalesced or hit
    // rather than running twice.
    assert_eq!(resp.matches("\"verified\":true").count(), 3, "{resp}");
    let stats = client.request(&Request::Stats.encode()).unwrap();
    assert_eq!(u64_member(&stats, "batches"), Some(1), "{stats}");
    assert_eq!(u64_member(&stats, "completed"), Some(2), "duplicate ran once: {stats}");

    // Replaying the envelope is pure cache traffic.
    let replay = client.request(&Request::Batch(jobs).encode()).unwrap();
    assert_eq!(replay.matches("\"cache\":\"hit\"").count(), 3, "{replay}");
    server.shutdown();
}

#[test]
fn subscribe_attaches_without_submitting() {
    let server = spawn(quiet_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let req = SubmitReq { seed: 21, ..SubmitReq::default() };
    let key = req.cache_key(1, false);

    // Subscribing to a key the server has never seen enqueues nothing.
    let unknown = client
        .request(&Request::Subscribe { key, stream: false }.encode())
        .unwrap();
    assert_eq!(str_member(&unknown, "error"), Some("unknown-key"), "{unknown}");

    // After a submit resolves the key, a subscribe serves the same
    // bytes without running anything.
    let first = submit(&mut client, &req);
    let payload = result_payload(&first).unwrap().to_string();
    let sub = client
        .request(&Request::Subscribe { key, stream: false }.encode())
        .unwrap();
    assert_eq!(str_member(&sub, "cache"), Some("hit"), "{sub}");
    assert_eq!(result_payload(&sub), Some(payload.as_str()));
    let stats = client.request(&Request::Stats.encode()).unwrap();
    assert_eq!(u64_member(&stats, "subscribes"), Some(2), "{stats}");
    assert_eq!(u64_member(&stats, "completed"), Some(1), "subscribe never runs jobs");
    server.shutdown();
}

#[test]
fn old_clients_get_a_structured_version_error() {
    let server = spawn(quiet_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    // A v1 client (no "v") reaching for a v2 op.
    let resp = client
        .request("{\"op\":\"batch\",\"jobs\":[{\"kernel\":\"mg\"}]}")
        .unwrap();
    assert_eq!(str_member(&resp, "error"), Some("unsupported-version"), "{resp}");
    assert_eq!(u64_member(&resp, "requested"), Some(1));
    assert_eq!(u64_member(&resp, "supported"), Some(2));
    // A client from the future.
    let resp = client.request("{\"op\":\"ping\",\"v\":9}").unwrap();
    assert_eq!(str_member(&resp, "error"), Some("unsupported-version"), "{resp}");
    assert_eq!(u64_member(&resp, "requested"), Some(9));
    // The connection survives both rejects.
    let pong = client.request(&Request::Ping.encode()).unwrap();
    assert!(pong.contains("\"pong\":true"), "{pong}");
    server.shutdown();
}

#[test]
fn bad_requests_do_not_kill_the_connection() {
    let server = spawn(quiet_cfg());
    let mut client = Client::connect(server.addr()).unwrap();
    let bad = client.request("{\"op\":\"fly\"}").unwrap();
    assert_eq!(str_member(&bad, "error"), Some("bad-request"), "{bad}");
    // Same connection keeps working.
    let pong = client.request(&Request::Ping.encode()).unwrap();
    assert_eq!(str_member(&pong, "error"), None, "{pong}");
    assert!(pong.contains("\"pong\":true"));
    server.shutdown();
}
