//! Shared command-line parsing for the `bgpc-*` binaries.
//!
//! `bgpc-run`, `bgpc-serve`, `bgpc-load` and `bgpc-trace` each used to
//! hand-roll the same flag loop with slightly different error wording;
//! this module is the single copy. Flags take string values via
//! [`ArgParser::value`], `FromStr` values via [`ArgParser::parse`],
//! paths via [`ArgParser::path`], and closed token vocabularies
//! (kernels, classes, modes, admin ops) via [`ArgParser::token`] —
//! with uniform `--help` handling and uniform "needs a value" /
//! "unexpected argument" messages across every tool.
//!
//! The loop shape each binary keeps:
//!
//! ```
//! use bgp_arch::cli::ArgParser;
//! let mut ranks = 8usize;
//! let mut p = ArgParser::from_args(
//!     "usage: tool [--ranks N]",
//!     vec!["--ranks".into(), "16".into()],
//! );
//! while let Some(flag) = p.next_flag().unwrap() {
//!     match flag.as_str() {
//!         "--ranks" => ranks = p.parse(&flag).unwrap(),
//!         other => panic!("{}", p.unexpected(other)),
//!     }
//! }
//! assert_eq!(ranks, 16);
//! ```

use std::path::PathBuf;

/// One pass over a binary's argument list (program name already
/// stripped).
pub struct ArgParser {
    usage: &'static str,
    argv: std::vec::IntoIter<String>,
}

impl ArgParser {
    /// Parse the process arguments.
    pub fn from_env(usage: &'static str) -> ArgParser {
        ArgParser::from_args(usage, std::env::args().skip(1).collect())
    }

    /// Parse an explicit argument vector (tests).
    pub fn from_args(usage: &'static str, argv: Vec<String>) -> ArgParser {
        ArgParser { usage, argv: argv.into_iter() }
    }

    /// The tool's usage synopsis.
    pub fn usage(&self) -> &'static str {
        self.usage
    }

    /// The next flag token, or `None` when the arguments are spent.
    ///
    /// # Errors
    /// `--help` / `-h` return the usage synopsis as the error so every
    /// tool prints its synopsis through one path.
    pub fn next_flag(&mut self) -> Result<Option<String>, String> {
        match self.argv.next() {
            None => Ok(None),
            Some(a) if a == "--help" || a == "-h" => Err(self.usage.into()),
            Some(a) => Ok(Some(a)),
        }
    }

    /// The value following `flag`.
    ///
    /// # Errors
    /// `"{flag} needs a value"` when the arguments ran out.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        self.argv.next().ok_or_else(|| format!("{flag} needs a value"))
    }

    /// The value following `flag`, parsed via `FromStr`.
    ///
    /// # Errors
    /// A missing value, or the parse failure prefixed with the flag.
    pub fn parse<T>(&mut self, flag: &str) -> Result<T, String>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        self.value(flag)?.parse().map_err(|e| format!("{flag}: {e}"))
    }

    /// The value following `flag` as a filesystem path.
    ///
    /// # Errors
    /// A missing value.
    pub fn path(&mut self, flag: &str) -> Result<PathBuf, String> {
        Ok(PathBuf::from(self.value(flag)?))
    }

    /// The value following `flag`, lowercased and mapped through a
    /// closed token vocabulary (`expected` names the legal tokens in
    /// the error).
    ///
    /// # Errors
    /// A missing value, or a token `map` refuses.
    pub fn token<T>(
        &mut self,
        flag: &str,
        expected: &str,
        map: impl FnOnce(&str) -> Option<T>,
    ) -> Result<T, String> {
        let v = self.value(flag)?.to_ascii_lowercase();
        map(&v).ok_or_else(|| format!("{flag}: unknown value {v:?} (expected {expected})"))
    }

    /// Uniform reject for a flag no arm matched (carries the usage).
    pub fn unexpected(&self, arg: &str) -> String {
        format!("unexpected argument {arg}\n{}", self.usage)
    }

    /// Uniform reject for an absent required flag (carries the usage).
    pub fn missing(&self, what: &str) -> String {
        format!("missing {what}\n{}", self.usage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser(argv: &[&str]) -> ArgParser {
        ArgParser::from_args("usage: test", argv.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_values_and_types_flow_through() {
        let mut p = parser(&["--ranks", "16", "--out", "/tmp/x", "--mode", "VNM"]);
        assert_eq!(p.next_flag().unwrap().as_deref(), Some("--ranks"));
        assert_eq!(p.parse::<usize>("--ranks").unwrap(), 16);
        assert_eq!(p.next_flag().unwrap().as_deref(), Some("--out"));
        assert_eq!(p.path("--out").unwrap(), PathBuf::from("/tmp/x"));
        assert_eq!(p.next_flag().unwrap().as_deref(), Some("--mode"));
        // Tokens are matched case-insensitively.
        let mode = p
            .token("--mode", "vnm", |s| (s == "vnm").then_some("vnm"))
            .unwrap();
        assert_eq!(mode, "vnm");
        assert_eq!(p.next_flag().unwrap(), None);
    }

    #[test]
    fn errors_are_uniform() {
        let mut p = parser(&["--ranks"]);
        p.next_flag().unwrap();
        assert_eq!(p.parse::<usize>("--ranks").unwrap_err(), "--ranks needs a value");

        let mut p = parser(&["--ranks", "many"]);
        p.next_flag().unwrap();
        let err = p.parse::<usize>("--ranks").unwrap_err();
        assert!(err.starts_with("--ranks: "), "{err}");

        let mut p = parser(&["--mode", "zz"]);
        p.next_flag().unwrap();
        let err = p.token("--mode", "vnm", |_| None::<()>).unwrap_err();
        assert_eq!(err, "--mode: unknown value \"zz\" (expected vnm)");

        let p = parser(&[]);
        assert_eq!(p.unexpected("--bogus"), "unexpected argument --bogus\nusage: test");
        assert_eq!(p.missing("--out DIR"), "missing --out DIR\nusage: test");
    }

    #[test]
    fn help_short_circuits_with_the_usage() {
        for flag in ["--help", "-h"] {
            let mut p = parser(&[flag, "--ranks", "4"]);
            assert_eq!(p.next_flag().unwrap_err(), "usage: test");
        }
    }
}
