//! The Universal Performance Counter **event catalog**.
//!
//! The UPC unit of a Blue Gene/P node contains 256 physical 64-bit
//! counters.  The unit as a whole is programmed into one of four *counter
//! modes* (0–3); in each mode every physical counter is wired to a
//! different hardware event, so the total event space is
//! `4 modes × 256 slots = 1024` possible events, of which 256 can be
//! observed in a single run on a single node (paper §III-A / §IV).
//!
//! Blue Gene/P wires the modes as follows, and this crate mirrors that
//! arrangement:
//!
//! * **mode 0** — events of processor cores 0 and 1 (pipeline, FPU, L1, L2),
//! * **mode 1** — the same event block for cores 2 and 3,
//! * **mode 2** — chip-shared resources: the two L3 banks, the two DDR2
//!   controllers, and the snoop filters,
//! * **mode 3** — the network interfaces (torus, collective, barrier) and
//!   miscellaneous chip events.
//!
//! Because one node can only ever observe one mode, observing all four
//! cores' private events requires two runs — or the paper's trick of
//! configuring **even-numbered nodes in mode 0 and odd-numbered nodes in
//! mode 1**, which yields 512 events of coverage in a single job
//! (implemented by `bgp-core`).

use core::fmt;

/// Number of counter modes of the UPC unit.
pub const NUM_MODES: usize = 4;
/// Number of physical counters (= event slots per mode).
pub const SLOTS_PER_MODE: usize = 256;
/// Total number of addressable events (`NUM_MODES * SLOTS_PER_MODE`).
pub const NUM_EVENTS: usize = NUM_MODES * SLOTS_PER_MODE;
/// Number of physical 64-bit counters in the UPC unit.
pub const NUM_COUNTERS: usize = SLOTS_PER_MODE;

/// Size of the per-core event block inside modes 0 and 1.
///
/// Each of the two cores covered by a mode owns a contiguous block of
/// `CORE_BLOCK` slots; the remaining `256 - 2*CORE_BLOCK` slots of the
/// mode are reserved.
pub const CORE_BLOCK: usize = 120;

/// One of the four counter modes of the UPC unit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CounterMode {
    /// Core 0/1 private events.
    Mode0,
    /// Core 2/3 private events.
    Mode1,
    /// Shared L3 / DDR / snoop events.
    Mode2,
    /// Network and miscellaneous events.
    Mode3,
}

impl CounterMode {
    /// All modes in ascending order.
    pub const ALL: [CounterMode; NUM_MODES] = [
        CounterMode::Mode0,
        CounterMode::Mode1,
        CounterMode::Mode2,
        CounterMode::Mode3,
    ];

    /// Numeric mode index (0–3).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Decode a numeric mode index.
    pub const fn from_index(i: usize) -> Option<CounterMode> {
        match i {
            0 => Some(CounterMode::Mode0),
            1 => Some(CounterMode::Mode1),
            2 => Some(CounterMode::Mode2),
            3 => Some(CounterMode::Mode3),
            _ => None,
        }
    }
}

impl fmt::Display for CounterMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mode{}", self.index())
    }
}

/// A physical counter slot within a mode (0–255).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventSlot(pub u8);

/// A fully-qualified event identifier: `(counter mode, slot)`.
///
/// The flat index (`mode*256 + slot`, 0–1023) is the "event number" the
/// paper refers to when it says "1024 possible events".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u16);

impl EventId {
    /// Build an event id from a mode and a slot.
    #[inline]
    pub const fn new(mode: CounterMode, slot: u8) -> EventId {
        EventId((mode as u16) << 8 | slot as u16)
    }

    /// Build an event id from the flat 0–1023 index.
    pub const fn from_index(i: usize) -> Option<EventId> {
        if i < NUM_EVENTS {
            Some(EventId(i as u16))
        } else {
            None
        }
    }

    /// The counter mode this event is wired in.
    #[inline]
    pub const fn mode(self) -> CounterMode {
        match self.0 >> 8 {
            0 => CounterMode::Mode0,
            1 => CounterMode::Mode1,
            2 => CounterMode::Mode2,
            _ => CounterMode::Mode3,
        }
    }

    /// The physical counter slot (0–255) this event drives.
    #[inline]
    pub const fn slot(self) -> EventSlot {
        EventSlot((self.0 & 0xff) as u8)
    }

    /// Flat 0–1023 index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Human-readable mnemonic for the event, `RESERVED_<m>_<s>` when the
    /// slot is not wired to a documented event.
    pub fn name(self) -> String {
        event_name(self)
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventId({}, slot {})", self.mode(), self.slot().0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

macro_rules! per_core_events {
    ($(#[$m:meta])* $vis:vis enum $name:ident { $($(#[$vm:meta])* $v:ident),+ $(,)? }) => {
        $(#[$m])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        #[repr(u8)]
        $vis enum $name {
            $($(#[$vm])* $v),+
        }

        impl $name {
            /// All variants in slot order.
            pub const ALL: &'static [$name] = &[$($name::$v),+];

            /// Mnemonic (matches the catalog name without core prefix).
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $($name::$v => stringify!($v)),+
                }
            }
        }
    };
}

per_core_events! {
    /// Per-core events (pipeline, FPU, L1, private L2).
    ///
    /// Each core owns one [`CORE_BLOCK`]-slot block in counter mode 0
    /// (cores 0–1) or mode 1 (cores 2–3); the variant's discriminant is its
    /// offset within the block.
    pub enum CoreEvent {
        /// Committed instructions of any class.
        InstrCompleted,
        /// Committed integer-unit instructions (ALU, address arithmetic,
        /// loop overhead).
        IntOp,
        /// Committed branch instructions.
        Branch,
        /// Branches that mispredicted.
        BranchMispredict,
        /// Committed load instructions (any width, excluding quadloads).
        Load,
        /// Committed store instructions (any width, excluding quadstores).
        Store,
        /// Double-word (8-byte) FP loads.
        LoadDouble,
        /// Double-word (8-byte) FP stores.
        StoreDouble,
        /// Quadword (16-byte) loads feeding both FPU pipes at once
        /// (generated by the compiler's `-qarch=440d` SIMD-ization).
        Quadload,
        /// Quadword (16-byte) stores draining both FPU pipes at once.
        Quadstore,
        /// Scalar FP add/subtract (primary pipe only).
        FpAddSub,
        /// Scalar FP multiply.
        FpMult,
        /// Scalar FP divide.
        FpDiv,
        /// Scalar fused multiply-add (2 flops).
        FpFma,
        /// SIMD add/subtract across both pipes (2 flops).
        FpSimdAddSub,
        /// SIMD multiply across both pipes (2 flops).
        FpSimdMult,
        /// SIMD divide across both pipes (2 flops).
        FpSimdDiv,
        /// SIMD fused multiply-add across both pipes (4 flops).
        FpSimdFma,
        /// FP register moves / cross-pipe transfers.
        FpMove,
        /// L1 data-cache hits.
        L1dHit,
        /// L1 data-cache misses.
        L1dMiss,
        /// L1 data-cache line write-backs.
        L1dWriteback,
        /// L1 instruction-cache hits.
        L1iHit,
        /// L1 instruction-cache misses.
        L1iMiss,
        /// Private-L2 hits (demand accesses that missed L1).
        L2Hit,
        /// Private-L2 misses (forwarded to the shared L3).
        L2Miss,
        /// L2 prefetch requests issued toward L3.
        L2PrefetchIssued,
        /// Demand accesses satisfied by a previously prefetched L2 line.
        L2PrefetchHit,
        /// New L2 prefetch streams allocated by the stream detector.
        L2StreamAlloc,
        /// Core clock cycles elapsed while counting was active.
        CycleCount,
        /// Cycles the core was stalled waiting for the memory hierarchy.
        StallMem,
        /// Cycles the core was stalled on FPU latency chains.
        StallFpu,
    }
}

macro_rules! flat_events {
    ($(#[$m:meta])* $vis:vis enum $name:ident : $mode:expr, $base:expr => { $($(#[$vm:meta])* $v:ident),+ $(,)? }) => {
        $(#[$m])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        #[repr(u8)]
        $vis enum $name {
            $($(#[$vm])* $v),+
        }

        impl $name {
            /// All variants in slot order.
            pub const ALL: &'static [$name] = &[$($name::$v),+];

            /// Mnemonic string.
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $($name::$v => stringify!($v)),+
                }
            }

            /// The fully-qualified event id for this event.
            #[inline]
            pub const fn id(self) -> EventId {
                EventId::new($mode, $base + self as u8)
            }
        }
    };
}

flat_events! {
    /// Chip-shared memory-system events (counter mode 2).
    ///
    /// The L3 is organized as two interleaved banks, each fronting one of
    /// the two DDR2 controllers.
    pub enum SharedEvent : CounterMode::Mode2, 0 => {
        /// L3 bank 0 hits.
        L3Hit0,
        /// L3 bank 1 hits.
        L3Hit1,
        /// L3 bank 0 misses (demand fetch from DDR).
        L3Miss0,
        /// L3 bank 1 misses.
        L3Miss1,
        /// Dirty lines written back from L3 bank 0 to DDR.
        L3Writeback0,
        /// Dirty lines written back from L3 bank 1 to DDR.
        L3Writeback1,
        /// L3 bank 0 lines allocated (fills).
        L3Alloc0,
        /// L3 bank 1 lines allocated (fills).
        L3Alloc1,
        /// DDR controller 0: read bursts (one per 128-byte line).
        DdrRead0,
        /// DDR controller 1: read bursts.
        DdrRead1,
        /// DDR controller 0: write bursts.
        DdrWrite0,
        /// DDR controller 1: write bursts.
        DdrWrite1,
        /// DDR controller 0: requests that queued behind another core's
        /// in-flight request (memory-port contention).
        DdrConflict0,
        /// DDR controller 1: queued requests.
        DdrConflict1,
        /// Snoop requests observed by the snoop filters.
        SnoopReq,
        /// Snoop requests filtered (not forwarded to any L1).
        SnoopFiltered,
        /// Snoop-induced L1 invalidations.
        SnoopInval,
    }
}

flat_events! {
    /// Network-interface and miscellaneous chip events (counter mode 3).
    pub enum NetEvent : CounterMode::Mode3, 0 => {
        /// Torus packets injected by this node.
        TorusPktSent,
        /// Torus packets received by this node.
        TorusPktRecv,
        /// Torus payload bytes injected.
        TorusBytesSent,
        /// Torus payload bytes received.
        TorusBytesRecv,
        /// Sum of hop counts of all injected packets.
        TorusHops,
        /// Collective-network packets injected.
        CollPktSent,
        /// Collective-network packets received.
        CollPktRecv,
        /// Collective-network payload bytes injected.
        CollBytesSent,
        /// Collective-network payload bytes received.
        CollBytesRecv,
        /// Barrier-network crossings this node participated in.
        BarrierCrossed,
        /// Chip time-base ticks while counting was active (mirrors the
        /// Time Base register the paper validates the overhead against).
        TimebaseTicks,
    }
}

impl CoreEvent {
    /// Fully-qualified event id of this event for a given core (0–3).
    ///
    /// Cores 0–1 live in counter mode 0, cores 2–3 in counter mode 1; the
    /// even core of each pair owns slots `0..CORE_BLOCK`, the odd core
    /// slots `CORE_BLOCK..2*CORE_BLOCK`.
    ///
    /// # Panics
    /// Panics if `core >= 4`.
    #[inline]
    pub const fn id(self, core: usize) -> EventId {
        assert!(core < 4, "Blue Gene/P nodes have 4 cores");
        let mode = if core < 2 {
            CounterMode::Mode0
        } else {
            CounterMode::Mode1
        };
        let base = (core & 1) * CORE_BLOCK;
        EventId::new(mode, (base + self as usize) as u8)
    }

    /// Inverse of [`CoreEvent::id`]: which `(core, event)` a given id
    /// refers to, if it falls inside a core block.
    pub fn from_id(id: EventId) -> Option<(usize, CoreEvent)> {
        let pair_base = match id.mode() {
            CounterMode::Mode0 => 0,
            CounterMode::Mode1 => 2,
            _ => return None,
        };
        let slot = id.slot().0 as usize;
        let (core, off) = if slot < CORE_BLOCK {
            (pair_base, slot)
        } else if slot < 2 * CORE_BLOCK {
            (pair_base + 1, slot - CORE_BLOCK)
        } else {
            return None;
        };
        CoreEvent::ALL.get(off).map(|&ev| (core, ev))
    }
}

/// Human-readable mnemonic for any of the 1024 events.
pub fn event_name(id: EventId) -> String {
    if let Some((core, ev)) = CoreEvent::from_id(id) {
        return format!("BGP_PU{}_{}", core, ev.mnemonic());
    }
    match id.mode() {
        CounterMode::Mode2 => {
            if let Some(&ev) = SharedEvent::ALL.get(id.slot().0 as usize) {
                return format!("BGP_{}", ev.mnemonic());
            }
        }
        CounterMode::Mode3 => {
            if let Some(&ev) = NetEvent::ALL.get(id.slot().0 as usize) {
                return format!("BGP_{}", ev.mnemonic());
            }
        }
        _ => {}
    }
    format!("RESERVED_{}_{}", id.mode().index(), id.slot().0)
}

/// Input-signal sensitivity selected by the two counter-event bits of a
/// counter's configuration register (paper §III-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Sensitivity {
    /// `00` — count cycles the event signal is high
    /// (`BGP_UPC_CFG_LEVEL_HIGH`).
    LevelHigh,
    /// `01` — count low→high transitions (`BGP_UPC_CFG_EDGE_RISE`).
    /// This is the default for occurrence events.
    #[default]
    EdgeRise,
    /// `10` — count high→low transitions (`BGP_UPC_CFG_EDGE_FALL`).
    EdgeFall,
    /// `11` — count cycles the event signal is low
    /// (`BGP_UPC_CFG_LEVEL_LOW`).
    LevelLow,
}

impl Sensitivity {
    /// Encode into the two counter-event configuration bits.
    #[inline]
    pub const fn to_bits(self) -> u8 {
        match self {
            Sensitivity::LevelHigh => 0b00,
            Sensitivity::EdgeRise => 0b01,
            Sensitivity::EdgeFall => 0b10,
            Sensitivity::LevelLow => 0b11,
        }
    }

    /// Decode from the two counter-event configuration bits.
    #[inline]
    pub const fn from_bits(bits: u8) -> Sensitivity {
        match bits & 0b11 {
            0b00 => Sensitivity::LevelHigh,
            0b01 => Sensitivity::EdgeRise,
            0b10 => Sensitivity::EdgeFall,
            _ => Sensitivity::LevelLow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_blocks_fit_in_a_mode() {
        const { assert!(2 * CORE_BLOCK <= SLOTS_PER_MODE) };
        const { assert!(CoreEvent::ALL.len() <= CORE_BLOCK) };
    }

    #[test]
    fn event_id_round_trips_through_flat_index() {
        for i in 0..NUM_EVENTS {
            let id = EventId::from_index(i).unwrap();
            assert_eq!(id.index(), i);
            assert_eq!(
                EventId::new(id.mode(), id.slot().0).index(),
                i,
                "mode/slot decomposition must be lossless"
            );
        }
        assert!(EventId::from_index(NUM_EVENTS).is_none());
    }

    #[test]
    fn core_event_ids_are_disjoint_across_cores() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for core in 0..4 {
            for &ev in CoreEvent::ALL {
                assert!(seen.insert(ev.id(core)), "duplicate id for {ev:?}/{core}");
            }
        }
        assert_eq!(seen.len(), 4 * CoreEvent::ALL.len());
    }

    #[test]
    fn core_event_id_inverse() {
        for core in 0..4 {
            for &ev in CoreEvent::ALL {
                assert_eq!(CoreEvent::from_id(ev.id(core)), Some((core, ev)));
            }
        }
        // A reserved slot decodes to none.
        assert_eq!(
            CoreEvent::from_id(EventId::new(CounterMode::Mode0, 255)),
            None
        );
        assert_eq!(
            CoreEvent::from_id(EventId::new(CounterMode::Mode2, 0)),
            None
        );
    }

    #[test]
    fn cores_zero_one_in_mode0_two_three_in_mode1() {
        assert_eq!(CoreEvent::FpFma.id(0).mode(), CounterMode::Mode0);
        assert_eq!(CoreEvent::FpFma.id(1).mode(), CounterMode::Mode0);
        assert_eq!(CoreEvent::FpFma.id(2).mode(), CounterMode::Mode1);
        assert_eq!(CoreEvent::FpFma.id(3).mode(), CounterMode::Mode1);
        // Cores of a pair occupy the same slots in their two modes.
        assert_eq!(CoreEvent::FpFma.id(0).slot(), CoreEvent::FpFma.id(2).slot());
        assert_eq!(CoreEvent::FpFma.id(1).slot(), CoreEvent::FpFma.id(3).slot());
    }

    #[test]
    fn shared_and_net_events_have_stable_names() {
        assert_eq!(SharedEvent::DdrRead0.id().name(), "BGP_DdrRead0");
        assert_eq!(NetEvent::TorusPktSent.id().name(), "BGP_TorusPktSent");
        assert_eq!(CoreEvent::FpSimdFma.id(3).name(), "BGP_PU3_FpSimdFma");
        assert!(EventId::new(CounterMode::Mode3, 200)
            .name()
            .starts_with("RESERVED_3_200"));
    }

    #[test]
    fn sensitivity_bits_round_trip_and_match_paper_encoding() {
        // Paper §III-A: 00 level-high, 01 edge-rise, 10 edge-fall, 11 level-low.
        assert_eq!(Sensitivity::LevelHigh.to_bits(), 0b00);
        assert_eq!(Sensitivity::EdgeRise.to_bits(), 0b01);
        assert_eq!(Sensitivity::EdgeFall.to_bits(), 0b10);
        assert_eq!(Sensitivity::LevelLow.to_bits(), 0b11);
        for bits in 0..4u8 {
            assert_eq!(Sensitivity::from_bits(bits).to_bits(), bits);
        }
    }
}
