//! Machine configuration: every hardware parameter the paper sweeps, plus
//! the fixed latencies of the memory hierarchy.

use crate::{L1_LINE_BYTES, LINE_BYTES};

/// Configuration of one compute node's hardware.
///
/// Defaults reproduce the production Blue Gene/P chip; the experiment
/// harness mutates individual fields the way the paper's authors rebooted
/// nodes with `svchost` options (e.g. shrinking the L3 for the SMP/1
/// fairness comparison in §VIII).
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// L1 data/instruction cache capacity per core (bytes).
    pub l1_bytes: usize,
    /// L1 associativity. The real PPC450 L1 is highly associative
    /// (64-way round-robin); we default to 16-way LRU, which behaves
    /// equivalently for the studied workloads.
    pub l1_ways: usize,
    /// Private L2 capacity per core (bytes). The BG/P L2 is a small
    /// prefetching line buffer.
    pub l2_bytes: usize,
    /// L2 associativity (the real L2 is fully associative; with 128-byte
    /// lines and 2 KB capacity that is 16 entries).
    pub l2_ways: usize,
    /// Number of sequential-stream prefetch engines in each L2.
    pub l2_streams: usize,
    /// How many lines ahead each L2 stream prefetches.
    pub l2_prefetch_depth: usize,
    /// Shared L3 capacity (bytes). `0` disables the L3 entirely —
    /// the paper's Fig. 11 sweeps 0, 2, 4, 6, 8 MB.
    pub l3_bytes: usize,
    /// L3 associativity.
    pub l3_ways: usize,
    /// Number of interleaved L3 banks / DDR controllers.
    pub l3_banks: usize,
    /// Load-to-use latency of an L1 hit (cycles). Fully pipelined, so it
    /// only stalls dependent consumers; the issue model charges it on
    /// every L1 miss's refill path instead.
    pub lat_l1: u64,
    /// L1-miss/L2-hit latency (cycles).
    pub lat_l2: u64,
    /// L2-miss/L3-hit latency (cycles).
    pub lat_l3: u64,
    /// L3-miss/DDR latency (cycles, unloaded).
    pub lat_ddr: u64,
    /// Extra DDR latency per queued conflicting request (cycles); models
    /// memory-port contention between cores.
    pub lat_ddr_conflict: u64,
    /// Node memory (bytes).
    pub memory_bytes: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            l1_bytes: 32 << 10,
            l1_ways: 16,
            l2_bytes: 2 << 10,
            l2_ways: 16,
            l2_streams: 15,
            l2_prefetch_depth: 2,
            l3_bytes: 8 << 20,
            l3_ways: 8,
            l3_banks: 2,
            lat_l1: 3,
            lat_l2: 12,
            lat_l3: 46,
            lat_ddr: 104,
            lat_ddr_conflict: 22,
            memory_bytes: crate::NODE_MEMORY_BYTES,
        }
    }
}

impl MachineConfig {
    /// Production chip configuration (same as `Default`).
    pub fn bgp() -> MachineConfig {
        MachineConfig::default()
    }

    /// Copy of this config with the L3 resized (bytes); `0` removes the L3.
    pub fn with_l3_bytes(mut self, bytes: usize) -> MachineConfig {
        self.l3_bytes = bytes;
        self
    }

    /// Copy with a different L2 prefetch depth (§IX future work sweep).
    pub fn with_l2_prefetch_depth(mut self, depth: usize) -> MachineConfig {
        self.l2_prefetch_depth = depth;
        self
    }

    /// Number of L1 sets implied by capacity/associativity/line size.
    pub fn l1_sets(&self) -> usize {
        self.l1_bytes / (self.l1_ways * L1_LINE_BYTES)
    }

    /// Number of L2 sets.
    pub fn l2_sets(&self) -> usize {
        (self.l2_bytes / (self.l2_ways * LINE_BYTES)).max(1)
    }

    /// Number of sets of **one L3 bank**.
    pub fn l3_sets_per_bank(&self) -> usize {
        if self.l3_bytes == 0 {
            0
        } else {
            self.l3_bytes / (self.l3_banks * self.l3_ways * LINE_BYTES)
        }
    }

    /// Validate internal consistency; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.l1_bytes.is_multiple_of(self.l1_ways * L1_LINE_BYTES) || self.l1_sets() == 0 {
            return Err(format!(
                "L1 geometry invalid: {} bytes / {} ways / {} B lines",
                self.l1_bytes, self.l1_ways, L1_LINE_BYTES
            ));
        }
        if !self.l1_sets().is_power_of_two() {
            return Err("L1 set count must be a power of two".into());
        }
        if !self.l2_bytes.is_multiple_of(self.l2_ways * LINE_BYTES) {
            return Err("L2 capacity must divide into ways × 128 B lines".into());
        }
        // The L1 and L2 sit on the per-access hot path, so the cache core
        // indexes them with a mask; only the L3 (assembled from 2 MB eDRAM
        // macros, see below) may have a non-power-of-two set count.
        if !self.l2_sets().is_power_of_two() {
            return Err("L2 set count must be a power of two".into());
        }
        if self.l3_banks == 0 {
            return Err("need at least one L3 bank / DDR controller".into());
        }
        if self.l3_bytes != 0 {
            let per_bank = self.l3_bytes / self.l3_banks;
            // The L3 is assembled from 2 MB eDRAM macros, so capacities
            // like 6 MB yield set counts that are not powers of two; the
            // bank indexes by modulo, so we only require exact division.
            if !per_bank.is_multiple_of(self.l3_ways * LINE_BYTES) || self.l3_sets_per_bank() == 0 {
                return Err(format!(
                    "L3 geometry invalid: {} bytes over {} banks, {} ways",
                    self.l3_bytes, self.l3_banks, self.l3_ways
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_chip() {
        let c = MachineConfig::default();
        c.validate().unwrap();
        assert_eq!(c.l1_bytes, 32 << 10, "PPC450 has 32 KB L1s");
        assert_eq!(c.l3_bytes, 8 << 20, "BG/P ships an 8 MB shared L3");
        assert_eq!(c.l3_banks, 2, "two memory controllers");
        assert_eq!(c.l1_sets(), 64);
    }

    #[test]
    fn l3_sweep_sizes_are_valid() {
        // The exact sizes Fig. 11 sweeps.
        for mb in [0usize, 2, 4, 6, 8] {
            let c = MachineConfig::default().with_l3_bytes(mb << 20);
            c.validate().unwrap_or_else(|e| panic!("{mb} MB: {e}"));
        }
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let c = MachineConfig { l1_bytes: 1000, ..MachineConfig::default() };
        assert!(c.validate().is_err(), "l1 not line/way aligned");

        let c = MachineConfig { l3_banks: 0, ..MachineConfig::default() };
        assert!(c.validate().is_err());

        let c = MachineConfig { l3_bytes: 1000, ..MachineConfig::default() };
        assert!(c.validate().is_err(), "l3 not divisible into ways × lines per bank");
    }

    #[test]
    fn non_power_of_two_l1_or_l2_sets_are_rejected() {
        // 24 KB / 16 ways / 32 B lines = 48 L1 sets: aligned but not pow2.
        let c = MachineConfig { l1_bytes: 24 << 10, ..MachineConfig::default() };
        assert!(c.validate().is_err(), "48 L1 sets must be rejected");

        // 6 KB / 16 ways / 128 B lines = 3 L2 sets: aligned but not pow2,
        // which would force the modulo path on every L2 probe.
        let c = MachineConfig { l2_bytes: 6 << 10, ..MachineConfig::default() };
        assert!(c.validate().is_err(), "3 L2 sets must be rejected");

        // Doubling the default L2 stays a power of two and validates.
        let c = MachineConfig { l2_bytes: 4 << 10, ..MachineConfig::default() };
        c.validate().unwrap();
    }

    #[test]
    fn l3_keeps_the_modulo_fallback_for_edram_macro_sizes() {
        // 6 MB = three 2 MB macros: 3072 sets per bank, not a power of
        // two, and deliberately still valid (Fig. 11's sweep needs it).
        let c = MachineConfig::default().with_l3_bytes(6 << 20);
        c.validate().unwrap();
        assert!(!c.l3_sets_per_bank().is_power_of_two());
    }

    #[test]
    fn zero_l3_is_the_no_l3_configuration() {
        let c = MachineConfig::default().with_l3_bytes(0);
        c.validate().unwrap();
        assert_eq!(c.l3_sets_per_bank(), 0);
    }
}
