//! # bgp-arch — shared architectural vocabulary for the Blue Gene/P model
//!
//! This crate defines the types every other crate in the workspace speaks:
//!
//! * the **event catalog** of the Universal Performance Counter unit
//!   (1024 possible events arranged as 4 counter modes × 256 slots,
//!   mirroring §III-A of the paper) — [`events`],
//! * the **node operating modes** (SMP/1, SMP/4, Dual, Virtual Node Mode;
//!   Fig. 3 of the paper) — [`modes`],
//! * machine **geometry** (torus dimensions, node/core identifiers,
//!   address-space partitioning) — [`geometry`],
//! * the **machine configuration** knobs the paper sweeps (L3 size,
//!   prefetch depth, …) — [`config`],
//! * clock constants and the common error type.
//!
//! Nothing in here simulates anything; it is the stable vocabulary layer,
//! analogous to the SPR/DCR definition headers that ship with the real
//! Blue Gene/P driver source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod config;
pub mod error;
pub mod events;
pub mod geometry;
pub mod modes;
pub mod rng;
pub mod sync;
pub mod wire;

pub use config::MachineConfig;
pub use error::BgpError;
pub use events::{CounterMode, EventId, EventSlot};
pub use geometry::{CoreId, NodeId, RankId, TorusCoord};
pub use modes::OpMode;

/// Processor clock frequency of the PowerPC 450 cores (Hz).
///
/// Blue Gene/P runs its compute cores at 850 MHz; MFLOPS numbers reported
/// by the post-processing tools divide flop counts by cycle counts scaled
/// with this constant.
pub const CORE_CLOCK_HZ: u64 = 850_000_000;

/// Peak double-precision flops per core per cycle.
///
/// The dual-pipeline SIMD FPU ("double hummer") retires one SIMD FMA per
/// cycle: 2 lanes × (multiply + add) = 4 flops.
pub const PEAK_FLOPS_PER_CORE_CYCLE: u64 = 4;

/// Number of processor cores on one compute chip.
pub const CORES_PER_NODE: usize = 4;

/// Cache-line size of the L2/L3/DDR levels (bytes).
pub const LINE_BYTES: usize = 128;

/// Cache-line size of the private L1 caches (bytes).
pub const L1_LINE_BYTES: usize = 32;

/// Default main-store capacity per node (bytes): 2 GB DDR2.
pub const NODE_MEMORY_BYTES: u64 = 2 << 30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_node_gflops_matches_paper() {
        // The paper's introduction: "a performance estimate of 13.6 GFLOPS
        // should be achieved at the node level".
        let peak =
            CORE_CLOCK_HZ as f64 * PEAK_FLOPS_PER_CORE_CYCLE as f64 * CORES_PER_NODE as f64 / 1e9;
        assert!((peak - 13.6).abs() < 1e-9, "peak = {peak}");
    }

    #[test]
    fn line_sizes_are_powers_of_two() {
        assert!(LINE_BYTES.is_power_of_two());
        assert!(L1_LINE_BYTES.is_power_of_two());
        assert_eq!(LINE_BYTES % L1_LINE_BYTES, 0);
    }
}
