//! The workspace-wide error type.
//!
//! Besides the classic failure classes (configuration, protocol misuse,
//! corrupt dumps, I/O), the taxonomy distinguishes the *transient*
//! failures a resilient collection pipeline can retry — [`BgpError::Timeout`]
//! and [`BgpError::PartialData`] — from the fatal ones it must route
//! around, such as [`BgpError::NodeLost`]. Structured [`Context`] carries
//! node id / set id / byte offset where the call site knows them, so a
//! 4096-node run can say *which* dump broke and *where*.

use core::fmt;

/// Structured context attached to [`BgpError::Corrupt`] and
/// [`BgpError::Protocol`]: what went wrong, and — where the call site
/// knows — on which node, in which instrumentation set, at which byte
/// offset of the dump file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Context {
    /// Human-readable description of the failure.
    pub reason: String,
    /// Node id the failure concerns, if known.
    pub node: Option<u32>,
    /// Instrumentation-set id the failure concerns, if known.
    pub set: Option<u32>,
    /// Byte offset into the dump where decoding failed, if known.
    pub offset: Option<u64>,
}

impl Context {
    /// A context carrying only a reason.
    pub fn new(reason: impl Into<String>) -> Context {
        Context { reason: reason.into(), ..Context::default() }
    }

    /// Attach the node id.
    pub fn at_node(mut self, node: u32) -> Context {
        self.node = Some(node);
        self
    }

    /// Attach the set id.
    pub fn at_set(mut self, set: u32) -> Context {
        self.set = Some(set);
        self
    }

    /// Attach the byte offset.
    pub fn at_offset(mut self, offset: u64) -> Context {
        self.offset = Some(offset);
        self
    }
}

impl From<String> for Context {
    fn from(reason: String) -> Context {
        Context::new(reason)
    }
}

impl From<&str> for Context {
    fn from(reason: &str) -> Context {
        Context::new(reason)
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)?;
        let mut sep = " (";
        if let Some(n) = self.node {
            write!(f, "{sep}node {n}")?;
            sep = ", ";
        }
        if let Some(s) = self.set {
            write!(f, "{sep}set {s}")?;
            sep = ", ";
        }
        if let Some(o) = self.offset {
            write!(f, "{sep}offset {o}")?;
            sep = ", ";
        }
        if sep == ", " {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Errors surfaced by the Blue Gene/P model and the counter library.
#[derive(Debug)]
pub enum BgpError {
    /// A hardware configuration failed validation.
    Config(String),
    /// The counter interface was used out of protocol
    /// (e.g. `BGP_Start` before `BGP_Initialize`, mismatched stop).
    Protocol(Context),
    /// A counter dump was malformed.
    Corrupt(Context),
    /// An I/O error while reading or writing dump files.
    Io(std::io::Error),
    /// An MPI-level usage error (bad rank, size mismatch, deadlock).
    Mpi(String),
    /// A per-node collection attempt exceeded its deadline (retryable).
    Timeout {
        /// Node whose collection timed out.
        node: u32,
        /// Attempts made so far (including the one that timed out).
        attempts: u32,
    },
    /// A node disappeared mid-run; its data will never arrive (fatal —
    /// degrade coverage instead of retrying).
    NodeLost {
        /// The lost node.
        node: u32,
    },
    /// A node's dump decoded only partially; the surviving sets were
    /// recovered and the named set quarantined.
    PartialData {
        /// Node whose dump was partial.
        node: u32,
        /// First quarantined set, if identifiable.
        set: Option<u32>,
    },
}

impl BgpError {
    /// Shorthand for a [`BgpError::Corrupt`] with just a reason.
    pub fn corrupt(reason: impl Into<String>) -> BgpError {
        BgpError::Corrupt(Context::new(reason))
    }

    /// Shorthand for a [`BgpError::Protocol`] with just a reason.
    pub fn protocol(reason: impl Into<String>) -> BgpError {
        BgpError::Protocol(Context::new(reason))
    }

    /// Whether a collection pipeline should retry after this error.
    ///
    /// Timeouts and partial reads are transient: a later attempt can
    /// succeed (the paper's I/O node forwarding path re-requests dumps).
    /// Everything else — lost nodes, corrupt data, protocol and
    /// configuration bugs — will fail identically on every retry.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            BgpError::Timeout { .. } | BgpError::PartialData { .. } | BgpError::Io(_)
        )
    }

    /// The structured context, for the variants that carry one.
    pub fn context(&self) -> Option<&Context> {
        match self {
            BgpError::Protocol(c) | BgpError::Corrupt(c) => Some(c),
            _ => None,
        }
    }

    /// The node id associated with the error, if any.
    pub fn node(&self) -> Option<u32> {
        match self {
            BgpError::Protocol(c) | BgpError::Corrupt(c) => c.node,
            BgpError::Timeout { node, .. }
            | BgpError::NodeLost { node }
            | BgpError::PartialData { node, .. } => Some(*node),
            _ => None,
        }
    }
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::Config(m) => write!(f, "configuration error: {m}"),
            BgpError::Protocol(c) => write!(f, "counter-interface protocol error: {c}"),
            BgpError::Corrupt(c) => write!(f, "corrupt counter dump: {c}"),
            BgpError::Io(e) => write!(f, "i/o error: {e}"),
            BgpError::Mpi(m) => write!(f, "mpi error: {m}"),
            BgpError::Timeout { node, attempts } => {
                write!(f, "collection timeout on node {node} after {attempts} attempt(s)")
            }
            BgpError::NodeLost { node } => write!(f, "node {node} lost mid-run"),
            BgpError::PartialData { node, set } => match set {
                Some(s) => write!(f, "partial data from node {node} (set {s} quarantined)"),
                None => write!(f, "partial data from node {node}"),
            },
        }
    }
}

impl std::error::Error for BgpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BgpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BgpError {
    fn from(e: std::io::Error) -> Self {
        BgpError::Io(e)
    }
}

/// Convenient result alias.
pub type Result<T> = core::result::Result<T, BgpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BgpError::Protocol("BGP_Start before BGP_Initialize".into());
        assert!(e.to_string().contains("BGP_Start"));
        let e: BgpError = std::io::Error::new(std::io::ErrorKind::NotFound, "x").into();
        assert!(matches!(e, BgpError::Io(_)));
    }

    #[test]
    fn context_display_includes_location() {
        let e = BgpError::Corrupt(Context::new("bad checksum").at_node(3).at_set(0).at_offset(17));
        let s = e.to_string();
        assert!(s.contains("bad checksum"), "{s}");
        assert!(s.contains("node 3"), "{s}");
        assert!(s.contains("set 0"), "{s}");
        assert!(s.contains("offset 17"), "{s}");
        // A bare-reason context prints no empty parens.
        assert_eq!(BgpError::corrupt("plain").to_string(), "corrupt counter dump: plain");
    }

    #[test]
    fn retryable_classification() {
        assert!(BgpError::Timeout { node: 1, attempts: 1 }.is_retryable());
        assert!(BgpError::PartialData { node: 1, set: Some(0) }.is_retryable());
        assert!(BgpError::Io(std::io::Error::other("transient")).is_retryable());
        assert!(!BgpError::NodeLost { node: 1 }.is_retryable());
        assert!(!BgpError::corrupt("x").is_retryable());
        assert!(!BgpError::protocol("x").is_retryable());
        assert!(!BgpError::Config("x".into()).is_retryable());
        assert!(!BgpError::Mpi("x".into()).is_retryable());
    }

    #[test]
    fn node_accessor_covers_structured_variants() {
        assert_eq!(BgpError::NodeLost { node: 9 }.node(), Some(9));
        assert_eq!(BgpError::Timeout { node: 2, attempts: 3 }.node(), Some(2));
        assert_eq!(BgpError::Corrupt(Context::new("x").at_node(4)).node(), Some(4));
        assert_eq!(BgpError::corrupt("x").node(), None);
        assert_eq!(BgpError::Config("x".into()).node(), None);
    }

    /// One instance of every variant. The match inside forces a compile
    /// error when a variant is added, so the classification tests below
    /// can never silently go stale.
    fn all_variants() -> Vec<BgpError> {
        let all = vec![
            BgpError::Config("bad l3 size".into()),
            BgpError::Protocol(Context::new("stop without start").at_node(1).at_set(2)),
            BgpError::Corrupt(Context::new("bad checksum").at_offset(17)),
            BgpError::Io(std::io::Error::other("disk")),
            BgpError::Mpi("rank out of range".into()),
            BgpError::Timeout { node: 3, attempts: 2 },
            BgpError::NodeLost { node: 4 },
            BgpError::PartialData { node: 5, set: Some(6) },
        ];
        for e in &all {
            match e {
                BgpError::Config(_)
                | BgpError::Protocol(_)
                | BgpError::Corrupt(_)
                | BgpError::Io(_)
                | BgpError::Mpi(_)
                | BgpError::Timeout { .. }
                | BgpError::NodeLost { .. }
                | BgpError::PartialData { .. } => {}
            }
        }
        all
    }

    /// Every variant has exactly one classification, and the retryable
    /// set is precisely {Timeout, PartialData, Io}: transient collection
    /// failures. Everything else reproduces identically on retry.
    #[test]
    fn every_variant_is_classified() {
        for e in all_variants() {
            let expect = matches!(
                e,
                BgpError::Timeout { .. } | BgpError::PartialData { .. } | BgpError::Io(_)
            );
            assert_eq!(e.is_retryable(), expect, "misclassified: {e}");
        }
    }

    /// `context()` yields the structured context for exactly the
    /// variants that carry one, and the builder chain round-trips every
    /// field.
    #[test]
    fn context_accessor_covers_every_variant() {
        for e in all_variants() {
            match &e {
                BgpError::Protocol(c) | BgpError::Corrupt(c) => {
                    assert_eq!(e.context(), Some(c), "{e}");
                }
                _ => assert_eq!(e.context(), None, "{e}"),
            }
        }
        let c = Context::new("why").at_node(7).at_set(8).at_offset(9);
        assert_eq!(
            c,
            Context {
                reason: "why".into(),
                node: Some(7),
                set: Some(8),
                offset: Some(9)
            }
        );
        // From impls used by the `?`-adjacent call sites.
        assert_eq!(Context::from("s").reason, "s");
        assert_eq!(Context::from(String::from("t")).reason, "t");
        assert_eq!(Context::from("s").node, None);
    }

    /// Display of every variant names its key facts, and only `Io`
    /// exposes a `source()`.
    #[test]
    fn display_and_source_cover_every_variant() {
        use std::error::Error;
        for e in all_variants() {
            let s = e.to_string();
            assert!(!s.is_empty());
            match &e {
                BgpError::Config(_) => assert!(s.contains("configuration"), "{s}"),
                BgpError::Protocol(_) => {
                    assert!(s.contains("protocol") && s.contains("node 1"), "{s}");
                }
                BgpError::Corrupt(_) => {
                    assert!(s.contains("corrupt") && s.contains("offset 17"), "{s}");
                }
                BgpError::Io(_) => {
                    assert!(s.contains("i/o"), "{s}");
                    assert!(e.source().is_some(), "Io must chain its source");
                    continue;
                }
                BgpError::Mpi(_) => assert!(s.contains("mpi"), "{s}"),
                BgpError::Timeout { .. } => {
                    assert!(s.contains("node 3") && s.contains("2 attempt"), "{s}");
                }
                BgpError::NodeLost { .. } => assert!(s.contains("node 4"), "{s}"),
                BgpError::PartialData { .. } => {
                    assert!(s.contains("node 5") && s.contains("set 6"), "{s}");
                }
            }
            assert!(e.source().is_none(), "{e} should not chain a source");
        }
        // PartialData without an identified set prints no set clause.
        let s = BgpError::PartialData { node: 5, set: None }.to_string();
        assert!(!s.contains("set"), "{s}");
    }
}
