//! The workspace-wide error type.

use core::fmt;

/// Errors surfaced by the Blue Gene/P model and the counter library.
#[derive(Debug)]
pub enum BgpError {
    /// A hardware configuration failed validation.
    Config(String),
    /// The counter interface was used out of protocol
    /// (e.g. `BGP_Start` before `BGP_Initialize`, mismatched stop).
    Protocol(String),
    /// A counter dump file was malformed.
    Corrupt(String),
    /// An I/O error while reading or writing dump files.
    Io(std::io::Error),
    /// An MPI-level usage error (bad rank, size mismatch, deadlock).
    Mpi(String),
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::Config(m) => write!(f, "configuration error: {m}"),
            BgpError::Protocol(m) => write!(f, "counter-interface protocol error: {m}"),
            BgpError::Corrupt(m) => write!(f, "corrupt counter dump: {m}"),
            BgpError::Io(e) => write!(f, "i/o error: {e}"),
            BgpError::Mpi(m) => write!(f, "mpi error: {m}"),
        }
    }
}

impl std::error::Error for BgpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BgpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BgpError {
    fn from(e: std::io::Error) -> Self {
        BgpError::Io(e)
    }
}

/// Convenient result alias.
pub type Result<T> = core::result::Result<T, BgpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BgpError::Protocol("BGP_Start before BGP_Initialize".into());
        assert!(e.to_string().contains("BGP_Start"));
        let e: BgpError = std::io::Error::new(std::io::ErrorKind::NotFound, "x").into();
        assert!(matches!(e, BgpError::Io(_)));
    }
}
