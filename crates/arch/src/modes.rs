//! Node **operating modes** (paper Fig. 3).
//!
//! A Blue Gene/P node can be booted in four modes that trade MPI process
//! count against threads per process:
//!
//! | mode          | processes/node | threads/process |
//! |---------------|----------------|-----------------|
//! | SMP / 1 thread | 1              | 1               |
//! | SMP / 4 threads| 1              | 4               |
//! | Dual           | 2              | 2               |
//! | Virtual Node   | 4              | 1               |
//!
//! The mode determines how the node's four cores and its memory are
//! partitioned between processes, which drives the paper's §VIII
//! experiments (Figs. 12–14).

use crate::CORES_PER_NODE;
use core::fmt;

/// Operating mode of a compute node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum OpMode {
    /// One process, one thread; three cores idle.
    Smp1,
    /// One process, four threads (one per core).
    Smp4,
    /// Two processes, two threads each.
    Dual,
    /// Virtual Node Mode: four single-threaded processes, one per core.
    /// The paper's headline configuration.
    #[default]
    VirtualNode,
}

impl OpMode {
    /// All modes, in the order of the paper's Fig. 3 table.
    pub const ALL: [OpMode; 4] = [OpMode::Smp1, OpMode::Smp4, OpMode::Dual, OpMode::VirtualNode];

    /// MPI processes booted per node in this mode.
    #[inline]
    pub const fn processes_per_node(self) -> usize {
        match self {
            OpMode::Smp1 | OpMode::Smp4 => 1,
            OpMode::Dual => 2,
            OpMode::VirtualNode => 4,
        }
    }

    /// Threads each process may run in this mode.
    #[inline]
    pub const fn threads_per_process(self) -> usize {
        match self {
            OpMode::Smp1 => 1,
            OpMode::Smp4 => 4,
            OpMode::Dual => 2,
            OpMode::VirtualNode => 1,
        }
    }

    /// Cores assigned to process `p` (0-based within the node).
    ///
    /// Cores are dealt out contiguously: in Dual mode process 0 gets cores
    /// {0,1} and process 1 gets cores {2,3}; in VNM process *p* gets core
    /// *p*.
    pub fn cores_of_process(self, p: usize) -> core::ops::Range<usize> {
        assert!(p < self.processes_per_node(), "process {p} out of range for {self}");
        let per = CORES_PER_NODE / self.processes_per_node();
        p * per..(p + 1) * per
    }

    /// Fraction of node memory each process owns (evenly split).
    #[inline]
    pub fn memory_share(self) -> f64 {
        1.0 / self.processes_per_node() as f64
    }

    /// Canonical display name used in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            OpMode::Smp1 => "SMP/1 thread",
            OpMode::Smp4 => "SMP/4 threads",
            OpMode::Dual => "Dual Mode",
            OpMode::VirtualNode => "Virtual Node Mode",
        }
    }
}

impl fmt::Display for OpMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Render the Fig. 3 "Modes of Operations of a Blue Gene/P Node" table.
pub fn fig3_table() -> String {
    let mut s = String::from("mode,processes_per_node,threads_per_process\n");
    for m in OpMode::ALL {
        s.push_str(&format!(
            "{},{},{}\n",
            m.label(),
            m.processes_per_node(),
            m.threads_per_process()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mode_uses_at_most_four_cores() {
        for m in OpMode::ALL {
            let total: usize = (0..m.processes_per_node())
                .map(|p| m.cores_of_process(p).len())
                .sum();
            assert!(total <= CORES_PER_NODE);
            // Hardware contexts available >= threads requested.
            assert!(m.processes_per_node() * m.threads_per_process() <= CORES_PER_NODE);
        }
    }

    #[test]
    fn process_core_ranges_are_disjoint_and_ordered() {
        for m in OpMode::ALL {
            let mut last_end = 0;
            for p in 0..m.processes_per_node() {
                let r = m.cores_of_process(p);
                assert_eq!(r.start, last_end);
                last_end = r.end;
            }
        }
    }

    #[test]
    fn fig3_values_match_paper() {
        assert_eq!(OpMode::Smp1.processes_per_node(), 1);
        assert_eq!(OpMode::Smp1.threads_per_process(), 1);
        assert_eq!(OpMode::Smp4.processes_per_node(), 1);
        assert_eq!(OpMode::Smp4.threads_per_process(), 4);
        assert_eq!(OpMode::Dual.processes_per_node(), 2);
        assert_eq!(OpMode::Dual.threads_per_process(), 2);
        assert_eq!(OpMode::VirtualNode.processes_per_node(), 4);
        assert_eq!(OpMode::VirtualNode.threads_per_process(), 1);
    }

    #[test]
    fn table_has_four_rows() {
        let t = fig3_table();
        assert_eq!(t.lines().count(), 5); // header + 4 modes
        assert!(t.contains("Virtual Node Mode,4,1"));
    }
}
