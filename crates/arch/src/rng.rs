//! A small, dependency-free deterministic random number generator.
//!
//! The simulator needs randomness in two places — synthetic input data
//! for the NAS kernels and the fault-injection schedules of
//! `bgp-faults` — and in both the requirement is *reproducibility*, not
//! cryptographic quality: the same seed must generate the same stream on
//! every platform, forever. [`SimRng`] is xoshiro256++ seeded through
//! splitmix64, the standard construction for simulation RNGs.

use core::ops::{Range, RangeInclusive};

/// Advance a splitmix64 state and return the next output.
///
/// Used both to expand seeds into xoshiro state and as a cheap stateless
/// hash for per-decision fault draws.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Expand `seed` into a full generator state via splitmix64.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample from a range; mirrors the call shape of the
    /// `rand` crate so kernel code reads naturally.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Derive an independent child generator (for per-domain streams).
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

/// A range type [`SimRng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample from `self`.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

fn uniform_u64(rng: &mut SimRng, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    // Multiply-shift bounded sampling (Lemire) without the rejection
    // step: the bias is < 2^-64 per draw, far below anything a
    // simulation could observe, and the draw count stays deterministic.
    let x = rng.next_u64();
    ((x as u128 * span as u128) >> 64) as u64
}

impl UniformRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut SimRng) -> u32 {
        assert!(self.start < self.end, "empty range");
        self.start + uniform_u64(rng, (self.end - self.start) as u64) as u32
    }
}

impl UniformRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SimRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + uniform_u64(rng, self.end - self.start)
    }
}

impl UniformRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SimRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + uniform_u64(rng, (self.end - self.start) as u64) as usize
    }
}

impl UniformRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SimRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + uniform_u64(rng, (hi - lo) as u64 + 1) as usize
    }
}

impl UniformRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(5usize..=5);
            assert_eq!(v, 5);
            let v = r.gen_range(0u32..3);
            assert!(v < 3);
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_the_domain() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values reachable: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn split_streams_are_independent_but_reproducible() {
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        let mut ca = a.split();
        let mut cb = b.split();
        for _ in 0..20 {
            assert_eq!(ca.next_u64(), cb.next_u64());
        }
        assert_ne!(ca.next_u64(), a.next_u64());
    }
}
