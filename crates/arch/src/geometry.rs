//! Machine **geometry**: identifiers for nodes, cores and MPI ranks, the
//! 3-D torus coordinate system, and the per-process physical address
//! layout of a node.

use crate::{modes::OpMode, NODE_MEMORY_BYTES};
use core::fmt;

/// Index of a compute node within a partition (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// Index of a core within its node (0–3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CoreId(pub usize);

/// Global MPI rank (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RankId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// A coordinate in the 3-D torus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TorusCoord {
    /// X coordinate.
    pub x: usize,
    /// Y coordinate.
    pub y: usize,
    /// Z coordinate.
    pub z: usize,
}

/// The shape of a torus partition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TorusDims {
    /// Extent in X.
    pub x: usize,
    /// Extent in Y.
    pub y: usize,
    /// Extent in Z.
    pub z: usize,
}

impl TorusDims {
    /// Total node count of the partition.
    #[inline]
    pub const fn nodes(self) -> usize {
        self.x * self.y * self.z
    }

    /// Pick a near-cubic torus shape for `n` nodes.
    ///
    /// Blue Gene/P partitions come in fixed midplane shapes; for the
    /// simulator we factor `n` into the most cubic `x*y*z` decomposition
    /// (ties broken toward larger `x`). Works for any `n >= 1`.
    pub fn for_nodes(n: usize) -> TorusDims {
        assert!(n >= 1, "partition must contain at least one node");
        let mut best = TorusDims { x: n, y: 1, z: 1 };
        let mut best_score = usize::MAX;
        for x in 1..=n {
            if !n.is_multiple_of(x) {
                continue;
            }
            let yz = n / x;
            for y in 1..=yz {
                if !yz.is_multiple_of(y) {
                    continue;
                }
                let z = yz / y;
                // Surface-area-like score: smaller is more cubic, i.e.
                // lower average hop distance.
                let score = x * y + y * z + x * z;
                if score < best_score {
                    best_score = score;
                    best = TorusDims { x, y, z };
                }
            }
        }
        best
    }

    /// Map a node index to its torus coordinate (X-major order).
    #[inline]
    pub fn coord(self, node: NodeId) -> TorusCoord {
        let i = node.0;
        assert!(i < self.nodes(), "node {i} outside {self:?}");
        TorusCoord {
            x: i % self.x,
            y: (i / self.x) % self.y,
            z: i / (self.x * self.y),
        }
    }

    /// Inverse of [`TorusDims::coord`].
    #[inline]
    pub fn node(self, c: TorusCoord) -> NodeId {
        NodeId(c.x + self.x * (c.y + self.y * c.z))
    }

    /// Minimal hop count between two nodes on the wrapped 3-D mesh.
    pub fn hops(self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let wrap = |d: usize, extent: usize| -> usize {
            let d = d % extent;
            d.min(extent - d)
        };
        wrap(ca.x.abs_diff(cb.x), self.x)
            + wrap(ca.y.abs_diff(cb.y), self.y)
            + wrap(ca.z.abs_diff(cb.z), self.z)
    }
}

/// Physical address layout of one node under a given operating mode.
///
/// Every process booted on the node owns an equal, contiguous slice of the
/// node's DDR; process-virtual addresses translate to node-physical
/// addresses by adding the slice base. This is how the real CNK (compute
/// node kernel) statically partitions memory in Dual and Virtual Node
/// modes.
#[derive(Clone, Copy, Debug)]
pub struct AddressLayout {
    mode: OpMode,
    node_bytes: u64,
}

impl AddressLayout {
    /// Layout for `mode` with the default 2 GB node memory.
    pub fn new(mode: OpMode) -> AddressLayout {
        AddressLayout { mode, node_bytes: NODE_MEMORY_BYTES }
    }

    /// Layout with an explicit node memory size (bytes).
    pub fn with_memory(mode: OpMode, node_bytes: u64) -> AddressLayout {
        assert!(node_bytes > 0);
        AddressLayout { mode, node_bytes }
    }

    /// Bytes of DDR owned by each process.
    #[inline]
    pub fn bytes_per_process(&self) -> u64 {
        self.node_bytes / self.mode.processes_per_node() as u64
    }

    /// Translate a process-virtual address to a node-physical address.
    ///
    /// # Panics
    /// Panics if the virtual address exceeds the process's partition.
    #[inline]
    pub fn physical(&self, process: usize, vaddr: u64) -> u64 {
        let span = self.bytes_per_process();
        debug_assert!(
            vaddr < span,
            "vaddr {vaddr:#x} outside process partition of {span:#x} bytes"
        );
        process as u64 * span + vaddr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_factorization_is_exact_and_cubic() {
        for &(n, expect) in &[
            (1, (1, 1, 1)),
            (8, (2, 2, 2)),
            (32, (4, 4, 2)),
            (64, (4, 4, 4)),
            (128, (8, 4, 4)),
            (512, (8, 8, 8)),
        ] {
            let d = TorusDims::for_nodes(n);
            assert_eq!(d.nodes(), n);
            let mut got = [d.x, d.y, d.z];
            got.sort_unstable();
            let mut want = [expect.0, expect.1, expect.2];
            want.sort_unstable();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn coord_round_trips() {
        let d = TorusDims::for_nodes(32);
        for i in 0..32 {
            let c = d.coord(NodeId(i));
            assert_eq!(d.node(c), NodeId(i));
        }
    }

    #[test]
    fn hops_is_a_metric_on_small_torus() {
        let d = TorusDims::for_nodes(8);
        for a in 0..8 {
            assert_eq!(d.hops(NodeId(a), NodeId(a)), 0);
            for b in 0..8 {
                assert_eq!(d.hops(NodeId(a), NodeId(b)), d.hops(NodeId(b), NodeId(a)));
                for c in 0..8 {
                    assert!(
                        d.hops(NodeId(a), NodeId(c))
                            <= d.hops(NodeId(a), NodeId(b)) + d.hops(NodeId(b), NodeId(c))
                    );
                }
            }
        }
    }

    #[test]
    fn wraparound_shortens_paths() {
        // On a 4-extent ring, distance between 0 and 3 is 1, not 3.
        let d = TorusDims { x: 4, y: 1, z: 1 };
        assert_eq!(d.hops(NodeId(0), NodeId(3)), 1);
        assert_eq!(d.hops(NodeId(0), NodeId(2)), 2);
    }

    #[test]
    fn address_layout_partitions_are_disjoint() {
        let l = AddressLayout::with_memory(OpMode::VirtualNode, 1 << 20);
        assert_eq!(l.bytes_per_process(), 256 << 10);
        let a0 = l.physical(0, 0);
        let a1 = l.physical(1, 0);
        let a3_last = l.physical(3, (256 << 10) - 1);
        assert_eq!(a0, 0);
        assert_eq!(a1, 256 << 10);
        assert_eq!(a3_last, (1 << 20) - 1);
    }

    #[test]
    fn smp_process_owns_whole_node() {
        let l = AddressLayout::with_memory(OpMode::Smp1, 1 << 20);
        assert_eq!(l.bytes_per_process(), 1 << 20);
        assert_eq!(l.physical(0, 12345), 12345);
    }
}
