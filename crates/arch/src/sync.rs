//! Thin wrappers over `std::sync` primitives with the ergonomics the
//! simulator wants: `lock()` without a `Result`, and poison-tolerance.
//!
//! A rank thread that panics (a deliberately aborted job, a test
//! asserting a deadlock diagnostic) would poison a plain
//! `std::sync::Mutex` and turn every later `lock().unwrap()` into a
//! cascade of secondary panics. The phase engine already guarantees
//! loud failure through its abort flag; these wrappers simply hand out
//! the inner data either way.

use std::sync::{self, MutexGuard};

/// A mutex whose `lock` never fails: poisoning is ignored and the guard
/// is returned regardless (the data of a panicked rank is still the
/// best diagnostic available).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`]: `wait` consumes and
/// returns the guard, ignoring poison.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified; re-acquires the lock before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0
            .wait(guard)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
