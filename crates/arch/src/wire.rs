//! Minimal little-endian wire codec shared by state-serialization code.
//!
//! The snapshot subsystem (`bgp-snapshot`) serializes the private runtime
//! state of every crate in the workspace — caches, prefetchers, counter
//! files, trace rings. Each crate encodes its own state with these
//! helpers so the byte format stays uniform and the decoding side is
//! bounds-checked everywhere: a truncated or corrupted snapshot surfaces
//! as [`BgpError::Corrupt`] with the failing byte offset, never as a
//! panic or a silently wrong value.

use crate::error::{BgpError, Context, Result};

/// Append a `u8`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u16` (little-endian).
#[inline]
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` (little-endian).
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `bool` as one byte (0 or 1).
#[inline]
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Append a length-prefixed byte string (`u64` length, then the bytes).
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

/// Append a length-prefixed `u64` slice.
pub fn put_u64s(out: &mut Vec<u8>, v: &[u64]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u64(out, x);
    }
}

/// Position-weighted checksum, same discipline as the dump-format-v2
/// codec: byte transpositions and zeroed runs both perturb the digest.
pub fn checksum(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| {
            acc.wrapping_mul(31).wrapping_add(u64::from(b) ^ i as u64)
        })
}

/// Bounds-checked cursor over an encoded byte slice.
///
/// Every read validates the remaining length first; failures carry the
/// absolute byte offset so snapshot-decoding errors can name the exact
/// position a file went bad.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current absolute byte offset.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated(&self, what: &str) -> BgpError {
        BgpError::Corrupt(
            Context::new(format!("truncated while reading {what}"))
                .at_offset(self.pos as u64),
        )
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self, what: &str) -> Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a `bool`; any byte other than 0/1 is corruption.
    pub fn bool(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(BgpError::Corrupt(
                Context::new(format!("invalid bool byte {b:#x} in {what}"))
                    .at_offset(self.pos as u64 - 1),
            )),
        }
    }

    /// Read a length-prefixed byte string. The length is validated
    /// against the remaining input before any allocation, so a corrupted
    /// length can never trigger an unbounded allocation.
    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8]> {
        let n = self.u64(what)?;
        if n > self.remaining() as u64 {
            return Err(BgpError::Corrupt(
                Context::new(format!(
                    "length {n} of {what} exceeds remaining {} bytes",
                    self.remaining()
                ))
                .at_offset(self.pos as u64),
            ));
        }
        self.take(n as usize, what)
    }

    /// Read a length-prefixed `u64` slice.
    pub fn u64s(&mut self, what: &str) -> Result<Vec<u64>> {
        let n = self.u64(what)?;
        if n.checked_mul(8).is_none_or(|b| b > self.remaining() as u64) {
            return Err(BgpError::Corrupt(
                Context::new(format!(
                    "length {n} of {what} exceeds remaining {} bytes",
                    self.remaining()
                ))
                .at_offset(self.pos as u64),
            ));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }

    /// Read exactly `n` `u64`s into a caller-provided slice (fixed-size
    /// state arrays restore in place without an allocation).
    pub fn u64_array(&mut self, dst: &mut [u64], what: &str) -> Result<()> {
        for d in dst.iter_mut() {
            *d = self.u64(what)?;
        }
        Ok(())
    }

    /// Assert the input is fully consumed (trailing garbage is
    /// corruption, not padding).
    pub fn expect_end(&self, what: &str) -> Result<()> {
        if self.remaining() != 0 {
            return Err(BgpError::Corrupt(
                Context::new(format!(
                    "{} trailing byte(s) after {what}",
                    self.remaining()
                ))
                .at_offset(self.pos as u64),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_bool(&mut buf, true);
        put_bytes(&mut buf, b"hello");
        put_u64s(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 0xAB);
        assert_eq!(r.u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX - 7);
        assert!(r.bool("e").unwrap());
        assert_eq!(r.bytes("f").unwrap(), b"hello");
        assert_eq!(r.u64s("g").unwrap(), vec![1, 2, 3]);
        r.expect_end("tail").unwrap();
    }

    #[test]
    fn truncation_at_every_boundary_is_an_error_with_offset() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        put_bytes(&mut buf, b"xyz");
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let res = r.u64("head").and_then(|_| r.bytes("body").map(|_| ()));
            assert!(res.is_err(), "cut at {cut} decoded");
            match res.unwrap_err() {
                BgpError::Corrupt(c) => assert!(c.offset.is_some(), "cut {cut}: no offset"),
                other => panic!("cut {cut}: wrong error {other}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // claims ~2^64 bytes follow
        assert!(Reader::new(&buf).bytes("blob").is_err());
        assert!(Reader::new(&buf).u64s("words").is_err());
    }

    #[test]
    fn invalid_bool_and_trailing_garbage_are_corruption() {
        let buf = [7u8, 0];
        let mut r = Reader::new(&buf);
        assert!(r.bool("flag").is_err());
        let buf = [1u8, 9];
        let mut r = Reader::new(&buf);
        assert!(r.bool("flag").unwrap());
        assert!(r.expect_end("state").is_err());
    }

    #[test]
    fn checksum_detects_transposition_and_zero_runs() {
        let a = checksum(b"abcd");
        assert_ne!(a, checksum(b"abdc"));
        assert_ne!(checksum(&[0, 0, 1]), checksum(&[0, 1, 0]));
    }
}
