//! Snapshot integration: the counter library as machine [`AppState`].
//!
//! The library's per-node protocol and accumulation state cannot be
//! rebuilt by resume replay: `BGP_Start`/`BGP_Stop` snapshot the live
//! UPC counters, and during replay the cost model is suppressed, so
//! every replayed snapshot reads stale values and the accumulated
//! deltas would diverge from the uninterrupted run. Instead the whole
//! `Vec<NodeState>` is serialized into the snapshot's `app:counters`
//! section at capture and spliced back wholesale at go-live, discarding
//! whatever the replay built. (`policy_override` is *not* captured: it
//! is pure configuration set by the kernel's session builder, which
//! replay re-executes deterministically.)

use crate::{CounterLibrary, NodeState, SetState};
use bgp_arch::error::{BgpError, Result};
use bgp_arch::events::{NUM_COUNTERS, NUM_EVENTS, NUM_MODES};
use bgp_arch::wire::{put_bool, put_bytes, put_u32, put_u64, put_u64s, put_u8, Reader};
use bgp_mpi::machine::AppState;
use bgp_mpi::MuxMark;

fn save_set(out: &mut Vec<u8>, id: u32, s: &SetState) {
    put_u32(out, id);
    match &s.start_snap {
        Some(snap) => {
            put_u8(out, 1);
            put_u64s(out, &snap[..]);
        }
        None => put_u8(out, 0),
    }
    put_u64s(out, &s.accum);
    put_u32(out, s.records);
    match &s.mux_start {
        Some(mark) => {
            put_u8(out, 1);
            put_u64s(out, &mark.totals);
            for &o in &mark.occupancy {
                put_u64(out, o);
            }
            for &c in &mark.cycles {
                put_u64(out, c);
            }
        }
        None => put_u8(out, 0),
    }
    put_u64s(out, &s.mux_accum);
    for &o in &s.mux_occupancy {
        put_u64(out, o);
    }
    for &c in &s.mux_cycles {
        put_u64(out, c);
    }
}

fn load_set(r: &mut Reader<'_>) -> Result<(u32, SetState)> {
    let id = r.u32("set id")?;
    let start_snap = match r.u8("start-snap tag")? {
        0 => None,
        1 => {
            let v = r.u64s("start snapshot")?;
            let arr: Box<[u64; NUM_COUNTERS]> =
                v.into_boxed_slice().try_into().map_err(|_| {
                    BgpError::corrupt("start snapshot is not NUM_COUNTERS long")
                })?;
            Some(arr)
        }
        t => return Err(BgpError::corrupt(format!("bad start-snap tag {t}"))),
    };
    let accum = r.u64s("set accumulator")?;
    if accum.len() != NUM_COUNTERS {
        return Err(BgpError::corrupt(format!(
            "set accumulator has {} slots, expected {NUM_COUNTERS}",
            accum.len()
        )));
    }
    let records = r.u32("set records")?;
    let mux_start = match r.u8("mux-start tag")? {
        0 => None,
        1 => {
            let totals = r.u64s("mux mark totals")?;
            if totals.len() != NUM_EVENTS {
                return Err(BgpError::corrupt(format!(
                    "mux mark has {} totals, expected {NUM_EVENTS}",
                    totals.len()
                )));
            }
            let mut occupancy = [0u64; NUM_MODES];
            for o in &mut occupancy {
                *o = r.u64("mux mark occupancy")?;
            }
            let mut cycles = [0u64; NUM_MODES];
            for c in &mut cycles {
                *c = r.u64("mux mark cycles")?;
            }
            Some(MuxMark { totals, occupancy, cycles })
        }
        t => return Err(BgpError::corrupt(format!("bad mux-start tag {t}"))),
    };
    let mux_accum = r.u64s("mux accumulator")?;
    if !mux_accum.is_empty() && mux_accum.len() != NUM_EVENTS {
        return Err(BgpError::corrupt(format!(
            "mux accumulator has {} slots, expected 0 or {NUM_EVENTS}",
            mux_accum.len()
        )));
    }
    let mut mux_occupancy = [0u64; NUM_MODES];
    for o in &mut mux_occupancy {
        *o = r.u64("mux occupancy")?;
    }
    let mut mux_cycles = [0u64; NUM_MODES];
    for c in &mut mux_cycles {
        *c = r.u64("mux cycles")?;
    }
    Ok((id, SetState {
        start_snap,
        accum,
        records,
        mux_start,
        mux_accum,
        mux_occupancy,
        mux_cycles,
    }))
}

fn save_node(out: &mut Vec<u8>, st: &NodeState) {
    put_bool(out, st.initialized);
    put_u64(out, st.init_arrivals as u64);
    match st.active_set {
        Some(set) => {
            put_u8(out, 1);
            put_u32(out, set);
        }
        None => put_u8(out, 0),
    }
    put_u64(out, st.start_arrivals as u64);
    put_u64(out, st.stop_arrivals as u64);
    put_u64(out, st.finalize_arrivals as u64);
    put_u64(out, st.sets.len() as u64);
    for (&id, s) in &st.sets {
        save_set(out, id, s);
    }
    match &st.dump {
        Some(d) => {
            put_u8(out, 1);
            put_bytes(out, d);
        }
        None => put_u8(out, 0),
    }
}

fn load_node(r: &mut Reader<'_>) -> Result<NodeState> {
    let initialized = r.bool("initialized")?;
    let init_arrivals = r.u64("init arrivals")? as usize;
    let active_set = match r.u8("active-set tag")? {
        0 => None,
        1 => Some(r.u32("active set")?),
        t => return Err(BgpError::corrupt(format!("bad active-set tag {t}"))),
    };
    let start_arrivals = r.u64("start arrivals")? as usize;
    let stop_arrivals = r.u64("stop arrivals")? as usize;
    let finalize_arrivals = r.u64("finalize arrivals")? as usize;
    let n_sets = r.u64("set count")?;
    let mut sets = std::collections::BTreeMap::new();
    for _ in 0..n_sets {
        let (id, s) = load_set(r)?;
        if sets.insert(id, s).is_some() {
            return Err(BgpError::corrupt(format!("duplicate set {id}")));
        }
    }
    let dump = match r.u8("dump tag")? {
        0 => None,
        1 => Some(r.bytes("dump bytes")?.to_vec()),
        t => return Err(BgpError::corrupt(format!("bad dump tag {t}"))),
    };
    Ok(NodeState {
        initialized,
        init_arrivals,
        active_set,
        start_arrivals,
        stop_arrivals,
        finalize_arrivals,
        sets,
        dump,
    })
}

impl AppState for CounterLibrary {
    fn name(&self) -> &'static str {
        "counters"
    }

    fn save(&self) -> Vec<u8> {
        let nodes = self.nodes.lock();
        let mut out = Vec::new();
        put_u64(&mut out, nodes.len() as u64);
        for st in nodes.iter() {
            save_node(&mut out, st);
        }
        out
    }

    fn restore(&self, bytes: &[u8]) -> Result<()> {
        let mut r = Reader::new(bytes);
        let n = r.u64("node count")? as usize;
        let mut fresh = Vec::with_capacity(n);
        for _ in 0..n {
            fresh.push(load_node(&mut r)?);
        }
        r.expect_end("counter-library state")?;
        let mut nodes = self.nodes.lock();
        if fresh.len() != nodes.len() {
            return Err(BgpError::corrupt(format!(
                "snapshot has {} counter-library nodes, machine has {}",
                fresh.len(),
                nodes.len()
            )));
        }
        *nodes = fresh;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::CounterMode;
    use bgp_arch::OpMode;
    use bgp_mpi::{CounterPolicy, JobSpec, Machine};
    use std::sync::Arc;

    /// Save → restore into a fresh library must reproduce the bytes,
    /// including mid-window state (an open set with a start snapshot).
    #[test]
    fn library_state_round_trips() {
        let mut spec = JobSpec::new(4, OpMode::Dual);
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode1);
        let m = Machine::new(spec.clone());
        let lib = CounterLibrary::for_machine(&m);
        {
            let mut nodes = lib.nodes.lock();
            let st = &mut nodes[1];
            st.initialized = true;
            st.init_arrivals = 2;
            st.active_set = Some(7);
            st.start_arrivals = 1;
            let mut set = SetState {
                start_snap: Some(Box::new([3u64; NUM_COUNTERS])),
                accum: vec![9; NUM_COUNTERS],
                records: 5,
                mux_start: Some(MuxMark {
                    totals: vec![2; NUM_EVENTS],
                    occupancy: [1, 2, 3, 4],
                    cycles: [10, 20, 30, 40],
                }),
                mux_accum: vec![4; NUM_EVENTS],
                mux_occupancy: [5, 6, 7, 8],
                mux_cycles: [50, 60, 70, 80],
            };
            set.accum[17] = u64::MAX;
            st.sets.insert(7, set);
            nodes[0].dump = Some(vec![1, 2, 3]);
        }
        let bytes = lib.save();
        let m2 = Machine::new(spec);
        let lib2 = CounterLibrary::for_machine(&m2);
        lib2.restore(&bytes).unwrap();
        assert_eq!(lib2.save(), bytes);
    }

    /// Truncation at any byte boundary must surface as a corrupt-data
    /// error, never a panic or a partial restore.
    #[test]
    fn truncated_state_fails_closed() {
        let spec = JobSpec::new(2, OpMode::VirtualNode);
        let m = Machine::new(spec.clone());
        let lib = CounterLibrary::for_machine(&m);
        lib.nodes.lock()[0].sets.insert(
            0,
            SetState {
                start_snap: None,
                accum: vec![1; NUM_COUNTERS],
                records: 1,
                ..SetState::default()
            },
        );
        let bytes = lib.save();
        let victim = CounterLibrary::for_machine(&Machine::new(spec));
        let before = victim.save();
        for cut in 0..bytes.len() {
            assert!(
                victim.restore(&bytes[..cut]).is_err(),
                "truncation at {cut} restored"
            );
            assert_eq!(victim.save(), before, "cut {cut} partially applied");
        }
        victim.restore(&bytes).unwrap();
    }

    /// The library registers itself as an app-state hook, so machines
    /// with checkpointing capture an `app:counters` section.
    #[test]
    fn library_registers_snapshot_hook() {
        let m = Machine::new(JobSpec::new(1, OpMode::Smp1));
        let lib = CounterLibrary::for_machine(&m);
        // A second registration of the same name would panic; the
        // registry hands back the same instance instead.
        let again = CounterLibrary::for_machine(&m);
        assert!(Arc::ptr_eq(&lib, &again));
    }
}
