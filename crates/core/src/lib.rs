//! # bgp-core — the UPC performance-counter **interface library**
//!
//! This is the paper's contribution (§IV): a thin library over the UPC
//! unit that lets applications instrument themselves. The public
//! surface is the typestate [`Session`] API ([`session`] module), which
//! makes the protocol — initialize, then bracket code regions in
//! start/stop *sets*, then finalize into a per-node binary dump — a
//! compile-time property. The paper's original four C-style calls
//! (`BGP_Initialize` / `BGP_Start(set)` / `BGP_Stop(set)` /
//! `BGP_Finalize`) exist only as the session's internal steps; the
//! deprecated free-call wrappers were removed (see the migration table
//! in the facade crate docs). Dumps are written per node by
//! [`CounterLibrary::write_dumps`].
//!
//! Key properties reproduced from the paper:
//!
//! * **512 events in one run** — the library programs even-numbered nodes
//!   into one counter mode and odd-numbered nodes into another
//!   ([`bgp_mpi::CounterPolicy::EvenOdd`]), doubling event coverage of an
//!   SPMD job.
//! * **Tiny overhead** — initialize + start + stop together charge
//!   [`TOTAL_OVERHEAD_CYCLES`] (= 196, the number the paper measured
//!   against the Time Base register). Dump assembly happens after
//!   counting stops, so it lengthens execution without perturbing any
//!   counter — exactly the behaviour §IV describes.
//! * **MPI integration** — [`run_instrumented`] wraps a kernel the way
//!   the paper's replacement `MPI_Init`/`MPI_Finalize` do, so an
//!   application is instrumented "without any need for changing the
//!   code".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bglperfctr;
pub mod collect;
pub mod dump;
pub mod session;
pub mod state;
pub mod supervisor;

use bgp_arch::error::Result;
use bgp_arch::events::{NUM_COUNTERS, NUM_EVENTS, NUM_MODES};
use bgp_arch::BgpError;
use bgp_arch::sync::Mutex;
use bgp_faults::{CounterFault, FaultPlan};
use bgp_mpi::{CounterPolicy, JobSpec, Machine, MuxMark, RankCtx};
use bgp_trace::{EventKind, FaultEvent};
use dump::{NodeDump, RecoveredDump, SetDump};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock, Weak};

pub use session::{Counting, Initialized, JobDump, Session, SessionBuilder};

/// Cycles charged by `BGP_Initialize` (UPC programming via the memory
/// map).
pub const INIT_CYCLES: u64 = 150;
/// Cycles charged by one `BGP_Start` call.
pub const START_CYCLES: u64 = 23;
/// Cycles charged by one `BGP_Stop` call.
pub const STOP_CYCLES: u64 = 23;
/// The paper's §IV measurement: initialize + one start + one stop.
pub const TOTAL_OVERHEAD_CYCLES: u64 = INIT_CYCLES + START_CYCLES + STOP_CYCLES;
/// Cycles charged by `BGP_Finalize` (assembling and "printing" the dump —
/// after counting stopped, so invisible to the counters).
pub const FINALIZE_CYCLES: u64 = 4200;

/// The set id [`run_instrumented`] brackets the whole kernel with
/// (mirroring instrumentation injected into `MPI_Init`/`MPI_Finalize`).
pub const WHOLE_PROGRAM_SET: u32 = 0;

#[derive(Default)]
struct SetState {
    start_snap: Option<Box<[u64; NUM_COUNTERS]>>,
    accum: Vec<u64>,
    records: u32,
    /// Continuous mux mark taken at the window's first `BGP_Start`
    /// (only under [`CounterPolicy::Multiplexed`]).
    mux_start: Option<MuxMark>,
    /// Per-event window totals, `[mode * 256 + slot]` — raw counts
    /// observed while the rotation sat in each mode. Empty when the job
    /// is not multiplexed.
    mux_accum: Vec<u64>,
    /// Phases the closed windows spent counting in each mode.
    mux_occupancy: [u64; NUM_MODES],
    /// Job cycles the closed windows spent counting in each mode (the
    /// occupancy weights reconstruction scales by — phases vary in
    /// length, cycles are the honest time base).
    mux_cycles: [u64; NUM_MODES],
}

#[derive(Default)]
struct NodeState {
    initialized: bool,
    init_arrivals: usize,
    active_set: Option<u32>,
    start_arrivals: usize,
    stop_arrivals: usize,
    finalize_arrivals: usize,
    sets: BTreeMap<u32, SetState>,
    dump: Option<Vec<u8>>,
}

/// The interface library, shared by all ranks of one job.
///
/// ```
/// use bgp_arch::{events::{CoreEvent, CounterMode}, OpMode};
/// use bgp_core::{run_instrumented, WHOLE_PROGRAM_SET};
/// use bgp_mpi::{CounterPolicy, JobSpec, Machine, SemOp};
///
/// let mut spec = JobSpec::new(1, OpMode::Smp1);
/// spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
/// let machine = Machine::new(spec);
/// let (_, lib) = run_instrumented(&machine, |mut ctx| async move {
///     ctx.fp1(SemOp::MulAdd); // "the application"
///     (ctx, ())
/// });
/// let dumps = lib.dumps().unwrap();
/// let set = dumps[0].set(WHOLE_PROGRAM_SET).unwrap();
/// assert_eq!(set.counts[CoreEvent::FpFma.id(0).slot().0 as usize], 1);
/// ```
pub struct CounterLibrary {
    spec: JobSpec,
    pub(crate) nodes: Mutex<Vec<NodeState>>,
    ranks_per_node: Vec<usize>,
    /// Session-supplied counter policy taking precedence over the
    /// job's (see [`SessionBuilder::counter_policy`]).
    pub(crate) policy_override: Mutex<Option<CounterPolicy>>,
}

/// Process-wide map from live machines to their shared counter library,
/// so every rank's [`Session`] resolves to the same instance — the way
/// one linked copy of the interface library serves a whole job. Entries
/// die with their machine (the library holds no machine reference, so
/// there is no cycle).
type LibraryRegistry = Mutex<Vec<(Weak<Machine>, Arc<CounterLibrary>)>>;
static REGISTRY: OnceLock<LibraryRegistry> = OnceLock::new();

impl CounterLibrary {
    /// Bind the library to a machine (one instance per job). The
    /// library registers itself for checkpoint capture (snapshot
    /// section `app:counters`, see the [`state`] module), so only one
    /// library may be bound per machine — use
    /// [`CounterLibrary::for_machine`] to share an instance.
    ///
    /// # Panics
    /// Panics if a library is already bound to `machine`.
    pub fn new(machine: Arc<Machine>) -> Arc<CounterLibrary> {
        let n_nodes = machine.num_nodes();
        let mut ranks_per_node = vec![0usize; n_nodes];
        for r in 0..machine.spec().ranks {
            ranks_per_node[bgp_mpi::place(machine.spec(), r).node.0] += 1;
        }
        let lib = Arc::new(CounterLibrary {
            spec: machine.spec().clone(),
            nodes: Mutex::new((0..n_nodes).map(|_| NodeState::default()).collect()),
            ranks_per_node,
            policy_override: Mutex::new(None),
        });
        machine.register_app_state(Arc::clone(&lib) as Arc<dyn bgp_mpi::machine::AppState>);
        lib
    }

    /// The shared library of `machine`, created on first use. All
    /// [`Session`]s of a job meet here; concurrently-arriving ranks get
    /// the same instance.
    pub fn for_machine(machine: &Arc<Machine>) -> Arc<CounterLibrary> {
        let reg = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
        let mut reg = reg.lock();
        reg.retain(|(m, _)| m.strong_count() > 0);
        for (m, lib) in reg.iter() {
            if m.upgrade().is_some_and(|m| Arc::ptr_eq(&m, machine)) {
                return Arc::clone(lib);
            }
        }
        let lib = CounterLibrary::new(Arc::clone(machine));
        reg.push((Arc::downgrade(machine), Arc::clone(&lib)));
        lib
    }

    /// `BGP_Initialize()`: program the node's UPC unit (counter mode per
    /// the job's [`bgp_mpi::CounterPolicy`]), zero all counters, leave
    /// counting disabled until the first `BGP_Start`. Reached through
    /// [`SessionBuilder::build`].
    pub(crate) fn initialize_impl(&self, ctx: &mut RankCtx) -> Result<()> {
        let node = ctx.node_id().0;
        {
            let mut nodes = self.nodes.lock();
            let st = &mut nodes[node];
            if st.init_arrivals == 0 {
                let policy =
                    (*self.policy_override.lock()).unwrap_or(self.spec.counter_policy);
                let mode = policy.mode_for(ctx.node_id());
                // A planned saturation fault manifests as the unit
                // clamping at u64::MAX instead of wrapping.
                let saturate = self.spec.faults.as_ref().is_some_and(|p| {
                    p.counter_faults(node as u32)
                        .iter()
                        .any(|f| matches!(f, CounterFault::Saturate { .. }))
                });
                ctx.with_own_node(|n| {
                    let upc = n.upc_mut();
                    // Under the multiplexed policy the machine owns the
                    // mode (sentinels armed, rotation advancing it every
                    // dwell); reprogramming it here would fight the
                    // rotation engine's notion of the current mode.
                    if !policy.is_multiplexed() {
                        upc.set_mode(mode);
                    }
                    upc.set_enabled(false);
                    upc.clear();
                    upc.set_saturating(saturate);
                });
                st.initialized = true;
            }
            st.init_arrivals += 1;
        }
        ctx.charge_cycles(INIT_CYCLES);
        ctx.trace_event(EventKind::SessionInit);
        Ok(())
    }

    /// `BGP_Start(set)`: open a counting window for `set` on this rank's
    /// node. The first arriving rank snapshots the counters and enables
    /// the unit; peers on the same node join the same window. Reached
    /// through [`Session::start`].
    pub(crate) fn start_impl(&self, ctx: &mut RankCtx, set: u32) -> Result<()> {
        let node = ctx.node_id().0;
        {
            let mut nodes = self.nodes.lock();
            let st = &mut nodes[node];
            if !st.initialized {
                return Err(BgpError::Protocol(
                    "BGP_Start before BGP_Initialize".into(),
                ));
            }
            match st.active_set {
                None => {
                    st.active_set = Some(set);
                    st.start_arrivals = 1;
                    st.stop_arrivals = 0;
                    let snap = ctx.with_own_node(|n| {
                        n.upc_mut().set_enabled(true);
                        n.upc().snapshot()
                    });
                    // Continuous rotation mark (lock order: mux, then
                    // node — so this must stay outside `with_own_node`).
                    let mux_start = ctx.machine().mux_mark(node);
                    let s = st.sets.entry(set).or_insert_with(|| SetState {
                        accum: vec![0; NUM_COUNTERS],
                        ..SetState::default()
                    });
                    s.start_snap = Some(Box::new(snap));
                    s.mux_start = mux_start;
                }
                Some(active) if active == set => {
                    st.start_arrivals += 1;
                    if st.start_arrivals > self.ranks_per_node[node] {
                        return Err(BgpError::protocol(format!(
                            "set {set} started more times than ranks on node {node}"
                        )));
                    }
                }
                Some(active) => {
                    return Err(BgpError::protocol(format!(
                        "BGP_Start({set}) while set {active} is active (sets must not nest)"
                    )));
                }
            }
        }
        ctx.charge_cycles(START_CYCLES);
        ctx.trace_event(EventKind::SessionStart { set });
        Ok(())
    }

    /// `BGP_Stop(set)`: close the counting window. The last rank of the
    /// node to stop takes the snapshot, accumulates the delta into the
    /// set, and disables the unit ("monitoring of counters is stopped
    /// after the BGP_Stop()"). Reached through [`Session::stop`].
    pub(crate) fn stop_impl(&self, ctx: &mut RankCtx, set: u32) -> Result<()> {
        // Charge before the snapshot so the call's own cost is visible to
        // the counters exactly once (the paper includes start/stop cost in
        // its 196-cycle figure).
        ctx.charge_cycles(STOP_CYCLES);
        let node = ctx.node_id().0;
        let mut nodes = self.nodes.lock();
        let st = &mut nodes[node];
        match st.active_set {
            Some(active) if active == set => {
                st.stop_arrivals += 1;
                // The node's window spans first start → last stop: it
                // closes when every resident rank has stopped (SPMD
                // programs instrument the same regions on every rank).
                if st.stop_arrivals == self.ranks_per_node[node] {
                    // Fault injection: planned counter faults strike as
                    // the window closes — a bit flip in the counter
                    // SRAM, or a counter pegged at the saturation
                    // ceiling — so they land in the final snapshot.
                    if let Some(plan) = &self.spec.faults {
                        for f in plan.counter_faults(node as u32) {
                            ctx.with_own_node(|n| match f {
                                CounterFault::BitFlip { slot, bit } => {
                                    n.upc_mut().flip_bit(slot, bit);
                                }
                                CounterFault::Saturate { slot } => {
                                    n.upc_mut().preset(slot, u64::MAX);
                                }
                            });
                            ctx.trace_event(EventKind::Fault(match f {
                                CounterFault::BitFlip { slot, bit } => {
                                    FaultEvent::CounterBitFlip { slot: slot as u16, bit }
                                }
                                CounterFault::Saturate { slot } => {
                                    FaultEvent::CounterSaturate { slot: slot as u16 }
                                }
                            }));
                        }
                    }
                    let snap = ctx.with_own_node(|n| {
                        let snap = n.upc().snapshot();
                        n.upc_mut().set_enabled(false);
                        snap
                    });
                    // The closing rotation mark (outside `with_own_node`:
                    // lock order is mux, then node). Faults above struck
                    // the live counters first, so a degraded window is
                    // degraded in the mux view too.
                    let mux_stop = ctx.machine().mux_mark(node);
                    let s = st.sets.get_mut(&set).expect("set created at start");
                    let base = s.start_snap.take().expect("start snapshot present");
                    match (s.mux_start.take(), mux_stop) {
                        (Some(start), Some(stop)) => {
                            // Multiplexed: the raw snapshot spans
                            // rotations (counters clear at every mode
                            // entry), so the window comes from the
                            // continuous marks instead. The primary
                            // accumulator gets the base mode's block —
                            // the mode the dump header advertises.
                            let (win, occ, cyc) = stop.window_since(&start);
                            if s.mux_accum.is_empty() {
                                s.mux_accum = vec![0; NUM_EVENTS];
                            }
                            for (a, w) in s.mux_accum.iter_mut().zip(&win) {
                                *a = a.wrapping_add(*w);
                            }
                            for m in 0..NUM_MODES {
                                s.mux_occupancy[m] =
                                    s.mux_occupancy[m].saturating_add(occ[m]);
                                s.mux_cycles[m] = s.mux_cycles[m].saturating_add(cyc[m]);
                            }
                            let policy = (*self.policy_override.lock())
                                .unwrap_or(self.spec.counter_policy);
                            let off =
                                policy.mode_for(ctx.node_id()).index() * NUM_COUNTERS;
                            for i in 0..NUM_COUNTERS {
                                s.accum[i] = s.accum[i].wrapping_add(win[off + i]);
                            }
                        }
                        _ => {
                            for i in 0..NUM_COUNTERS {
                                s.accum[i] =
                                    s.accum[i].wrapping_add(snap[i].wrapping_sub(base[i]));
                            }
                        }
                    }
                    s.records += 1;
                    st.active_set = None;
                }
                ctx.trace_event(EventKind::SessionStop { set });
                Ok(())
            }
            Some(active) => Err(BgpError::protocol(format!(
                "BGP_Stop({set}) while set {active} is active"
            ))),
            None => Err(BgpError::protocol(format!(
                "BGP_Stop({set}) without a matching BGP_Start"
            ))),
        }
    }

    /// `BGP_Finalize()`: after the last rank of a node arrives, assemble
    /// the node's binary dump. Charged after counting is disabled, so the
    /// "printing" cost never pollutes the data. Reached through
    /// [`Session::finalize`].
    pub(crate) fn finalize_impl(&self, ctx: &mut RankCtx) -> Result<()> {
        let node = ctx.node_id().0;
        {
            let mut nodes = self.nodes.lock();
            let st = &mut nodes[node];
            st.finalize_arrivals += 1;
            if st.finalize_arrivals == self.ranks_per_node[node] {
                // Ranks finalize in their own time; only the last one can
                // check the window (its own stop preceded this call, and
                // SPMD order means everyone else's did too).
                if let Some(active) = st.active_set {
                    st.finalize_arrivals -= 1;
                    return Err(BgpError::protocol(format!(
                        "BGP_Finalize with set {active} still active"
                    )));
                }
                // Under rotation the unit sits in whatever mode the last
                // dwell left it; the dump header advertises the policy's
                // base mode — the mode the primary sets accumulated.
                let policy =
                    (*self.policy_override.lock()).unwrap_or(self.spec.counter_policy);
                let mode = if policy.is_multiplexed() {
                    policy.mode_for(ctx.node_id())
                } else {
                    ctx.with_own_node(|n| n.upc().mode())
                };
                let mut sets: Vec<SetDump> = st
                    .sets
                    .iter()
                    .map(|(&id, s)| SetDump {
                        id,
                        records: s.records,
                        counts: s.accum.clone(),
                    })
                    .collect();
                // Synthetic per-mode sets: the raw block each mode
                // observed, with the mode's occupancy as the record
                // count (see [`dump::MUX_SET_BASE`]).
                for (&id, s) in &st.sets {
                    if s.mux_accum.is_empty() {
                        continue;
                    }
                    for m in 0..NUM_MODES {
                        sets.push(SetDump {
                            id: dump::mux_set_id(id, m),
                            records: s.mux_occupancy[m].min(u64::from(u32::MAX)) as u32,
                            counts: s.mux_accum[m * NUM_COUNTERS..(m + 1) * NUM_COUNTERS]
                                .to_vec(),
                        });
                    }
                    // Schedule set: per-mode enabled job cycles (the
                    // honest occupancy weight — dwell phases vary wildly
                    // in length) and enabled phase counts (see
                    // [`dump::MUX_SCHED_BASE`]).
                    let mut counts = vec![0u64; NUM_COUNTERS];
                    counts[..NUM_MODES].copy_from_slice(&s.mux_cycles);
                    counts[NUM_MODES..2 * NUM_MODES].copy_from_slice(&s.mux_occupancy);
                    sets.push(SetDump {
                        id: dump::mux_sched_id(id),
                        records: 1,
                        counts,
                    });
                }
                let d = NodeDump { node: node as u32, mode, sets };
                let encoded = dump::encode(&d);
                ctx.trace_event(EventKind::CounterDump { bytes: encoded.len() as u64 });
                st.dump = Some(encoded);
            }
        }
        ctx.charge_cycles(FINALIZE_CYCLES);
        ctx.trace_event(EventKind::SessionFinalize);
        Ok(())
    }

    /// Decoded dumps of all nodes (available after every rank finalized).
    pub fn dumps(&self) -> Result<Vec<NodeDump>> {
        let nodes = self.nodes.lock();
        nodes
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let bytes = st.dump.as_ref().ok_or_else(|| {
                    BgpError::protocol(format!("node {i} never finalized"))
                })?;
                dump::decode(bytes)
            })
            .collect()
    }

    /// Write one `node_<id>.bgpc` file per node into `dir`; returns the
    /// paths.
    pub fn write_dumps(&self, dir: &Path) -> Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let nodes = self.nodes.lock();
        let mut paths = Vec::with_capacity(nodes.len());
        for (i, st) in nodes.iter().enumerate() {
            let bytes = st
                .dump
                .as_ref()
                .ok_or_else(|| BgpError::protocol(format!("node {i} never finalized")))?;
            let p = dir.join(format!("node_{i:05}.bgpc"));
            std::fs::write(&p, bytes)?;
            paths.push(p);
        }
        Ok(paths)
    }

    /// Like [`CounterLibrary::write_dumps`], but filtered through a
    /// fault plan: lost nodes and planned-missing files are skipped,
    /// truncation and byte flips are applied to the written bytes.
    /// Returns the paths actually written.
    pub fn write_dumps_with_faults(
        &self,
        dir: &Path,
        plan: &FaultPlan,
    ) -> Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let nodes = self.nodes.lock();
        let mut paths = Vec::with_capacity(nodes.len());
        for (i, st) in nodes.iter().enumerate() {
            if plan.node_lost(i as u32) {
                continue; // died before flushing anything
            }
            let bytes = st
                .dump
                .as_ref()
                .ok_or_else(|| BgpError::protocol(format!("node {i} never finalized")))?;
            let bytes = match plan.dump_fault(i as u32) {
                Some(f) => match f.apply(bytes.clone()) {
                    Some(b) => b,
                    None => continue, // planned-missing file
                },
                None => bytes.clone(),
            };
            let p = dir.join(format!("node_{i:05}.bgpc"));
            std::fs::write(&p, &bytes)?;
            paths.push(p);
        }
        Ok(paths)
    }

    /// The encoded dump bytes of one node, if it finalized (the raw
    /// material the collection pipeline fetches and decodes).
    pub fn encoded_dump(&self, node: usize) -> Option<Vec<u8>> {
        let nodes = self.nodes.lock();
        nodes.get(node).and_then(|st| st.dump.clone())
    }
}

/// Read every `*.bgpc` file in `dir` (sorted by name) and decode it.
pub fn read_dumps(dir: &Path) -> Result<Vec<NodeDump>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "bgpc"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| dump::decode(&std::fs::read(p)?))
        .collect()
}

/// Outcome of [`read_dumps_lenient`]: everything salvageable from a
/// directory of possibly-damaged dump files.
#[derive(Debug)]
pub struct LenientRead {
    /// Per-file recovery results (one per readable file, sorted by
    /// file name). Partially damaged files appear here with their
    /// surviving sets; check [`RecoveredDump::is_intact`].
    pub recovered: Vec<RecoveredDump>,
    /// Files whose header was unusable, with the decode error.
    pub unreadable: Vec<(PathBuf, BgpError)>,
}

impl LenientRead {
    /// The surviving per-node dumps (damaged sets already dropped).
    pub fn dumps(&self) -> Vec<NodeDump> {
        self.recovered.iter().cloned().map(RecoveredDump::into_dump).collect()
    }
}

/// Read every `*.bgpc` file in `dir` (sorted by name), salvaging what
/// each file's per-set checksums allow. Only an unreadable *directory*
/// is an error; unusable files are reported, not fatal.
pub fn read_dumps_lenient(dir: &Path) -> Result<LenientRead> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "bgpc"))
        .collect();
    paths.sort();
    let mut out = LenientRead { recovered: Vec::new(), unreadable: Vec::new() };
    for p in paths {
        let bytes = match std::fs::read(&p) {
            Ok(b) => b,
            Err(e) => {
                out.unreadable.push((p, e.into()));
                continue;
            }
        };
        match dump::decode_lenient(&bytes) {
            Ok(r) => out.recovered.push(r),
            Err(e) => out.unreadable.push((p, e)),
        }
    }
    Ok(out)
}

/// Run `kernel` under whole-program instrumentation, the way linking the
/// paper's replacement MPI library instruments an application without
/// source changes: `BGP_Initialize` + `BGP_Start(0)` happen "inside
/// MPI_Init", `BGP_Stop(0)` + `BGP_Finalize` "inside MPI_Finalize".
///
/// The kernel takes its [`RankCtx`] by value and hands it back alongside
/// its result, so the finalization bracket can run against the same
/// context after the measured region (`async fn kernel(mut ctx: RankCtx)
/// -> (RankCtx, R)` is the natural shape).
///
/// Returns the per-rank kernel results and the library holding the dumps.
pub fn run_instrumented<R, F, Fut>(
    machine: &Arc<Machine>,
    kernel: F,
) -> (Vec<R>, Arc<CounterLibrary>)
where
    R: Send,
    F: Fn(RankCtx) -> Fut + Sync,
    Fut: std::future::Future<Output = (RankCtx, R)> + Send,
{
    let lib = CounterLibrary::for_machine(machine);
    let kernel = &kernel;
    let lib_ref = &lib;
    let out =
        machine.run(move |ctx| instrumented_body(Arc::clone(lib_ref), ctx, kernel));
    (out, lib)
}

/// The whole-program bracket shared by [`run_instrumented`] and the
/// [`supervisor`]: initialize + start(0) before the kernel, stop(0) +
/// finalize after, all against the rank's own context.
pub(crate) async fn instrumented_body<R, F, Fut>(
    lib: Arc<CounterLibrary>,
    mut ctx: RankCtx,
    kernel: &F,
) -> R
where
    F: Fn(RankCtx) -> Fut,
    Fut: std::future::Future<Output = (RankCtx, R)>,
{
    lib.initialize_impl(&mut ctx).expect("BGP_Initialize");
    lib.start_impl(&mut ctx, WHOLE_PROGRAM_SET).expect("BGP_Start");
    let (mut ctx, r) = kernel(ctx).await;
    lib.stop_impl(&mut ctx, WHOLE_PROGRAM_SET).expect("BGP_Stop");
    lib.finalize_impl(&mut ctx).expect("BGP_Finalize");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::{CoreEvent, CounterMode};
    use bgp_arch::OpMode;
    use bgp_mpi::{CounterPolicy, JobSpec, SemOp};

    fn machine(ranks: usize, mode: OpMode, policy: CounterPolicy) -> Arc<Machine> {
        let mut spec = JobSpec::new(ranks, mode);
        spec.counter_policy = policy;
        Machine::new(spec)
    }

    #[test]
    fn overhead_constant_matches_paper() {
        assert_eq!(TOTAL_OVERHEAD_CYCLES, 196);
    }

    #[test]
    fn whole_program_instrumentation_produces_dumps() {
        let m = machine(
            4,
            OpMode::VirtualNode,
            CounterPolicy::Fixed(CounterMode::Mode0),
        );
        let (_, lib) = run_instrumented(&m, |mut ctx| async move {
            let mut v = ctx.alloc::<f64>(64);
            for i in 0..64 {
                ctx.st(&mut v, i, 1.0).await;
                ctx.fp1(SemOp::MulAdd);
            }
            (ctx, ())
        });
        let dumps = lib.dumps().unwrap();
        assert_eq!(dumps.len(), 1);
        let set = dumps[0].set(WHOLE_PROGRAM_SET).unwrap();
        assert_eq!(set.records, 1);
        // Core 0 retired FMAs (visible in mode 0).
        let slot = CoreEvent::FpFma.id(0).slot().0 as usize;
        assert!(set.counts[slot] >= 64, "fma count: {}", set.counts[slot]);
    }

    #[test]
    fn even_odd_policy_yields_512_event_coverage() {
        let m = machine(
            8, // two VNM nodes
            OpMode::VirtualNode,
            CounterPolicy::EvenOdd { even: CounterMode::Mode0, odd: CounterMode::Mode1 },
        );
        let (_, lib) = run_instrumented(&m, |mut ctx| async move {
            ctx.fp1(SemOp::Add); // every rank, every core
            (ctx, ())
        });
        let dumps = lib.dumps().unwrap();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].mode, CounterMode::Mode0);
        assert_eq!(dumps[1].mode, CounterMode::Mode1);
        // Node 0 observed cores 0-1; node 1 observed cores 2-3: together
        // all four per-core event blocks — 512 events of coverage.
        let s0 = dumps[0].set(WHOLE_PROGRAM_SET).unwrap();
        let s1 = dumps[1].set(WHOLE_PROGRAM_SET).unwrap();
        assert_eq!(s0.counts[CoreEvent::FpAddSub.id(0).slot().0 as usize], 1);
        assert_eq!(s0.counts[CoreEvent::FpAddSub.id(1).slot().0 as usize], 1);
        assert_eq!(s1.counts[CoreEvent::FpAddSub.id(2).slot().0 as usize], 1);
        assert_eq!(s1.counts[CoreEvent::FpAddSub.id(3).slot().0 as usize], 1);
    }

    #[test]
    fn multiplexed_job_dumps_synthetic_per_mode_sets() {
        let m = machine(
            8, // two VNM nodes
            OpMode::VirtualNode,
            CounterPolicy::Multiplexed { first: CounterMode::Mode1, base_dwell: 2 },
        );
        let (_, lib) = run_instrumented(&m, |mut ctx| async move {
            for _ in 0..24 {
                ctx.fp1(SemOp::MulAdd);
                ctx.allreduce_sum_f64(&[1.0]).await;
            }
            (ctx, ())
        });
        let dumps = lib.dumps().unwrap();
        assert_eq!(dumps.len(), 2);
        for (i, d) in dumps.iter().enumerate() {
            // Header advertises the node's staggered base mode (first +
            // node), not whatever mode the last dwell left the unit in.
            let base = CounterMode::from_index(
                (CounterMode::Mode1.index() + i) % bgp_arch::events::NUM_MODES,
            )
            .unwrap();
            assert_eq!(d.mode, base);
            // One primary set, four synthetic per-mode blocks, and the
            // rotation schedule set.
            assert_eq!(d.sets.len(), 6);
            let primary = d.set(WHOLE_PROGRAM_SET).unwrap();
            assert_eq!(primary.records, 1);
            let mut occ_total = 0u64;
            for mode in 0..bgp_arch::events::NUM_MODES {
                let id = dump::mux_set_id(WHOLE_PROGRAM_SET, mode);
                assert_eq!(dump::mux_set_parts(id), Some((WHOLE_PROGRAM_SET, mode)));
                let synth = d.set(id).unwrap();
                occ_total += u64::from(synth.records);
                // The base mode's synthetic block IS the primary data.
                if mode == base.index() {
                    assert_eq!(synth.counts, primary.counts);
                }
            }
            assert!(occ_total > 0, "window must have occupied some dwell phases");
            let sched_id = dump::mux_sched_id(WHOLE_PROGRAM_SET);
            assert!(dump::is_mux_sched(sched_id));
            let sched = d.set(sched_id).unwrap();
            assert_eq!(sched.records, 1);
            let nm = bgp_arch::events::NUM_MODES;
            let cycles: u64 = sched.counts[..nm].iter().sum();
            let phases: u64 = sched.counts[nm..2 * nm].iter().sum();
            assert!(cycles > 0, "schedule set must attribute job cycles to modes");
            assert_eq!(phases, occ_total, "schedule phases mirror synthetic records");
            assert!(sched.counts[2 * nm..].iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn work_outside_the_window_is_not_counted() {
        let m = machine(1, OpMode::Smp1, CounterPolicy::Fixed(CounterMode::Mode0));
        let out = m.run(|mut ctx| async move {
            let mut s = Session::builder(&mut ctx).build().unwrap();
            s.fp1(SemOp::Add); // before start: invisible
            let mut s = s.start(1).unwrap();
            s.fp1(SemOp::Add);
            s.fp1(SemOp::Add);
            let mut s = s.stop().unwrap();
            s.fp1(SemOp::Add); // after stop: invisible
            s.finalize().unwrap()
        });
        let dumps = out[0].dumps().unwrap();
        let s = dumps[0].set(1).unwrap();
        assert_eq!(s.counts[CoreEvent::FpAddSub.id(0).slot().0 as usize], 2);
    }

    #[test]
    fn multiple_start_stop_pairs_accumulate_records() {
        let m = machine(1, OpMode::Smp1, CounterPolicy::Fixed(CounterMode::Mode0));
        let out = m.run(|mut ctx| async move {
            let mut s = Session::builder(&mut ctx).build().unwrap();
            for _ in 0..3 {
                let mut counting = s.start(7).unwrap();
                counting.fp1(SemOp::Mul);
                s = counting.stop().unwrap();
            }
            s.finalize().unwrap()
        });
        let s = out[0].dumps().unwrap()[0].set(7).cloned().unwrap();
        assert_eq!(s.records, 3);
        assert_eq!(s.counts[CoreEvent::FpMult.id(0).slot().0 as usize], 3);
    }

    /// The runtime protocol checks behind the typestate [`Session`] must
    /// keep firing — they guard against SPMD divergence the types cannot
    /// see (peer ranks on one node disagreeing about the active set).
    #[test]
    fn protocol_violations_are_reported() {
        let m = machine(1, OpMode::Smp1, CounterPolicy::Fixed(CounterMode::Mode0));
        let lib = CounterLibrary::new(Arc::clone(&m));
        let lib2 = Arc::clone(&lib);
        let out = m.run(move |mut ctx| {
            let lib = Arc::clone(&lib2);
            async move {
                let ctx = &mut ctx;
                // Start before initialize:
                let e1 = lib.start_impl(ctx, 0).is_err();
                lib.initialize_impl(ctx).unwrap();
                lib.start_impl(ctx, 0).unwrap();
                // Nested different set:
                let e2 = lib.start_impl(ctx, 1).is_err();
                // Mismatched stop:
                let e3 = lib.stop_impl(ctx, 1).is_err();
                // Finalize with an open set:
                let e4 = lib.finalize_impl(ctx).is_err();
                lib.stop_impl(ctx, 0).unwrap();
                // Stop without start:
                let e5 = lib.stop_impl(ctx, 0).is_err();
                lib.finalize_impl(ctx).unwrap();
                (e1, e2, e3, e4, e5)
            }
        });
        assert_eq!(out[0], (true, true, true, true, true));
    }

    #[test]
    fn library_overhead_is_the_196_cycles_of_the_paper() {
        // Measure exactly like §IV: instrument an empty snippet and check
        // the core clock advanced by the library-call costs alone.
        let m = machine(1, OpMode::Smp1, CounterPolicy::Fixed(CounterMode::Mode0));
        let out = m.run(|mut ctx| async move {
            let t0 = ctx.cycles();
            let s = Session::builder(&mut ctx).build().unwrap();
            let s = s.start(0).unwrap();
            let s = s.stop().unwrap();
            let t1 = s.cycles();
            s.finalize().unwrap();
            t1 - t0
        });
        assert_eq!(out[0], TOTAL_OVERHEAD_CYCLES);
    }

    #[test]
    fn dumps_round_trip_through_files() {
        let m = machine(2, OpMode::Smp1, CounterPolicy::Fixed(CounterMode::Mode2));
        let (_, lib) = run_instrumented(&m, |mut ctx| async move {
            let mut v = ctx.alloc::<f64>(4096);
            for i in 0..4096 {
                ctx.st(&mut v, i, 0.5).await;
            }
            (ctx, ())
        });
        let dir = std::env::temp_dir().join(format!("bgpc_test_{}", std::process::id()));
        let paths = lib.write_dumps(&dir).unwrap();
        assert_eq!(paths.len(), 2);
        let back = read_dumps(&dir).unwrap();
        assert_eq!(back, lib.dumps().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
