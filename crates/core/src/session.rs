//! The **typestate session API** over the counter interface library.
//!
//! The paper's four C-style calls (`BGP_Initialize` → `BGP_Start(set)`
//! → `BGP_Stop(set)` → `BGP_Finalize`) leave their protocol to runtime
//! checking: starting before initializing, nesting sets, stopping a set
//! that is not the active one, or finalizing with a set still open are
//! all errors a run only discovers when it happens. The session encodes
//! that protocol in the type system instead:
//!
//! ```text
//! Session::builder(ctx).build()?        : Session<'_, Initialized>
//!     .start(set)?                      : Session<'_, Counting>
//!     .stop()?                          : Session<'_, Initialized>
//!     .finalize()?                      : JobDump
//! ```
//!
//! * `start` exists only on `Session<Initialized>` — *start before
//!   initialize* and *nested sets* do not compile.
//! * `stop` exists only on `Session<Counting>` and takes **no set id**:
//!   the state carries the one opened by `start`, so *stopping the wrong
//!   set* is unrepresentable.
//! * `finalize` exists only on `Session<Initialized>` — *finalize with
//!   an active set* does not compile.
//!
//! Between `start` and `stop` the session [`std::ops::Deref`]s to
//! [`RankCtx`], so the measured kernel runs against the session
//! directly (or via [`Session::ctx`] for helpers that take
//! `&mut RankCtx`).
//!
//! Sessions of the ranks of one job share the per-machine
//! [`CounterLibrary`] (looked up via [`CounterLibrary::for_machine`]),
//! exactly like the linked interface library on the real machine: one
//! copy per job, state per node.
//!
//! # Migrating from the four-call API
//!
//! ```
//! use bgp_arch::OpMode;
//! use bgp_core::{Session, WHOLE_PROGRAM_SET};
//! use bgp_mpi::{JobSpec, Machine, SemOp};
//!
//! let machine = Machine::new(JobSpec::new(2, OpMode::Smp1));
//! let dumps = machine.run(|mut ctx| async move {
//!     // Before: lib.bgp_initialize(ctx)?;
//!     let session = Session::builder(&mut ctx).build().unwrap();
//!     // Before: lib.bgp_start(ctx, set)?;
//!     let mut session = session.start(WHOLE_PROGRAM_SET).unwrap();
//!     session.fp1(SemOp::MulAdd); // the measured region
//!     // Before: lib.bgp_stop(ctx, set)?; — no set id: it cannot mismatch
//!     let session = session.stop().unwrap();
//!     // Before: lib.bgp_finalize(ctx)?;
//!     session.finalize().unwrap()
//! });
//! let dumps = dumps.into_iter().next().unwrap().dumps().unwrap();
//! assert_eq!(dumps.len(), 2);
//! ```

use crate::dump::NodeDump;
use crate::CounterLibrary;
use bgp_arch::error::Result;
use bgp_arch::events::CounterMode;
use bgp_arch::BgpError;
use bgp_mpi::{CounterPolicy, RankCtx};
use bgp_trace::TraceConfig;
use std::ops::{Deref, DerefMut};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Typestate marker: UPC programmed, no counting window open.
#[derive(Debug)]
pub struct Initialized(());

/// Typestate: a counting window is open for [`Counting::set`].
#[derive(Debug)]
pub struct Counting {
    set: u32,
}

impl Counting {
    /// The set id this window accumulates into.
    pub fn set(&self) -> u32 {
        self.set
    }
}

/// One rank's handle on the counter protocol. See the [module
/// docs](self) for the state machine.
pub struct Session<'a, S> {
    ctx: &'a mut RankCtx,
    lib: Arc<CounterLibrary>,
    state: S,
}

impl<'a, S> Session<'a, S> {
    /// The rank context, for helpers that take `&mut RankCtx` (the
    /// session also [`Deref`]s to it).
    pub fn ctx(&mut self) -> &mut RankCtx {
        self.ctx
    }

    /// The shared per-job counter library backing this session.
    pub fn library(&self) -> &Arc<CounterLibrary> {
        &self.lib
    }
}

impl<S> Deref for Session<'_, S> {
    type Target = RankCtx;
    fn deref(&self) -> &RankCtx {
        self.ctx
    }
}

impl<S> DerefMut for Session<'_, S> {
    fn deref_mut(&mut self) -> &mut RankCtx {
        self.ctx
    }
}

/// Builder for a [`Session`]; performs `BGP_Initialize` on
/// [`SessionBuilder::build`].
pub struct SessionBuilder<'a> {
    ctx: &'a mut RankCtx,
    policy: Option<CounterPolicy>,
    trace: Option<TraceConfig>,
}

impl<'a> SessionBuilder<'a> {
    /// Program every node into the single counter mode `m` instead of
    /// the job's [`CounterPolicy`]. All ranks of a job must agree
    /// (SPMD); divergent choices fail at [`SessionBuilder::build`].
    pub fn counter_mode(self, m: CounterMode) -> Self {
        self.counter_policy(CounterPolicy::Fixed(m))
    }

    /// Override the job's counter-mode assignment (e.g. the paper's
    /// even/odd 512-event trick). All ranks of a job must agree.
    pub fn counter_policy(mut self, p: CounterPolicy) -> Self {
        self.policy = Some(p);
        self
    }

    /// Arm the rank's deterministic flight recorder with `cfg` (and, if
    /// `cfg.enabled`, start recording at build time). All ranks of a
    /// job must supply equal configurations; divergence fails at
    /// [`SessionBuilder::build`]. Whole-job tracing from cycle 0 is
    /// configured via `JobSpec::trace` instead.
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// `BGP_Initialize`: program this rank's node per the policy, zero
    /// the counters, leave counting disabled.
    ///
    /// # Errors
    /// Fails if this rank's policy override disagrees with a peer's, or
    /// arrives after a node was already programmed differently.
    pub fn build(self) -> Result<Session<'a, Initialized>> {
        let lib = CounterLibrary::for_machine(self.ctx.machine());
        if let Some(p) = self.policy {
            lib.set_policy_override(p)?;
        }
        if let Some(cfg) = &self.trace {
            self.ctx.enable_tracing(cfg).map_err(BgpError::protocol)?;
        }
        lib.initialize_impl(self.ctx)?;
        Ok(Session { ctx: self.ctx, lib, state: Initialized(()) })
    }
}

impl<'a> Session<'a, Initialized> {
    /// Begin building a session for `ctx`'s rank.
    pub fn builder(ctx: &'a mut RankCtx) -> SessionBuilder<'a> {
        SessionBuilder { ctx, policy: None, trace: None }
    }

    /// `BGP_Start(set)`: open a counting window. The returned
    /// `Session<Counting>` is the only value `stop` exists on, so the
    /// window cannot be left open past `finalize` by construction.
    ///
    /// # Errors
    /// Fails if a peer rank on the same node already opened a
    /// *different* set (runtime SPMD divergence the types cannot see).
    pub fn start(self, set: u32) -> Result<Session<'a, Counting>> {
        self.lib.start_impl(self.ctx, set)?;
        Ok(Session { ctx: self.ctx, lib: self.lib, state: Counting { set } })
    }

    /// `BGP_Finalize`: close the protocol; the last rank of each node
    /// assembles the node's binary dump. Returns the job-wide dump
    /// handle (complete once every rank has finalized, i.e. after
    /// [`bgp_mpi::Machine::run`] returns).
    pub fn finalize(self) -> Result<JobDump> {
        self.lib.finalize_impl(self.ctx)?;
        Ok(JobDump { lib: self.lib })
    }
}

impl<'a> Session<'a, Counting> {
    /// The set id the open window accumulates into.
    pub fn set(&self) -> u32 {
        self.state.set
    }

    /// `BGP_Stop`: close the window opened by [`Session::start`] — the
    /// set id comes from the typestate, so it cannot mismatch.
    pub fn stop(self) -> Result<Session<'a, Initialized>> {
        self.lib.stop_impl(self.ctx, self.state.set)?;
        Ok(Session { ctx: self.ctx, lib: self.lib, state: Initialized(()) })
    }
}

/// Job-wide dump handle returned by [`Session::finalize`]. Complete
/// once every rank of the job has finalized.
#[derive(Clone)]
pub struct JobDump {
    lib: Arc<CounterLibrary>,
}

impl JobDump {
    /// Decoded dumps of all nodes.
    ///
    /// # Errors
    /// Fails while any node has not finalized yet.
    pub fn dumps(&self) -> Result<Vec<NodeDump>> {
        self.lib.dumps()
    }

    /// The encoded dump bytes of one node, if it finalized.
    pub fn encoded(&self, node: usize) -> Option<Vec<u8>> {
        self.lib.encoded_dump(node)
    }

    /// Write one `node_<id>.bgpc` file per node into `dir`.
    pub fn write(&self, dir: &Path) -> Result<Vec<PathBuf>> {
        self.lib.write_dumps(dir)
    }

    /// The backing library (retry-aware collection, faulted writes).
    pub fn library(&self) -> &Arc<CounterLibrary> {
        &self.lib
    }
}

impl CounterLibrary {
    pub(crate) fn set_policy_override(&self, p: CounterPolicy) -> Result<()> {
        // Rotation state (sentinel thresholds, the mux engine itself) is
        // wired when the machine is built, so an override can neither
        // switch multiplexing on or off nor re-tune its dwell.
        let spec_p = self.spec.counter_policy;
        if (p.is_multiplexed() || spec_p.is_multiplexed()) && p != spec_p {
            return Err(BgpError::protocol(format!(
                "multiplexed counter policy is fixed at machine construction: \
                 job runs {spec_p:?}, override asks for {p:?}"
            )));
        }
        let mut cur = self.policy_override.lock();
        match *cur {
            None => {
                if self.any_node_initialized() {
                    return Err(BgpError::protocol(
                        "counter policy override after a node was already programmed",
                    ));
                }
                *cur = Some(p);
                Ok(())
            }
            Some(existing) if existing == p => Ok(()),
            Some(existing) => Err(BgpError::protocol(format!(
                "divergent counter policy across ranks: {existing:?} vs {p:?}"
            ))),
        }
    }

    fn any_node_initialized(&self) -> bool {
        self.nodes.lock().iter().any(|st| st.initialized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::CounterMode;
    use bgp_arch::OpMode;
    use bgp_mpi::{JobSpec, Machine, SemOp};

    #[test]
    fn session_round_trip_produces_dumps() {
        let m = Machine::new(JobSpec::new(4, OpMode::VirtualNode));
        let handles = m.run(|mut ctx| async move {
            let s = Session::builder(&mut ctx)
                .counter_mode(CounterMode::Mode0)
                .build()
                .unwrap();
            let mut s = s.start(7).unwrap();
            assert_eq!(s.set(), 7);
            s.fp1(SemOp::Add);
            s.stop().unwrap().finalize().unwrap()
        });
        let dumps = handles[0].dumps().unwrap();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].mode, CounterMode::Mode0);
        assert_eq!(dumps[0].set(7).unwrap().records, 1);
    }

    #[test]
    fn sessions_share_one_library_per_machine() {
        let m = Machine::new(JobSpec::new(2, OpMode::VirtualNode));
        let libs = m.run(|mut ctx| async move {
            let s = Session::builder(&mut ctx).build().unwrap();
            let lib = Arc::clone(s.library());
            s.finalize().unwrap();
            lib
        });
        assert!(
            Arc::ptr_eq(&libs[0], &libs[1]),
            "both ranks must resolve to the same per-machine library"
        );
    }

    #[test]
    fn divergent_policies_are_rejected_at_build() {
        let m = Machine::new(JobSpec::new(2, OpMode::Smp1));
        let oks = m.run(|mut ctx| async move {
            let mode = if ctx.rank() == 0 { CounterMode::Mode0 } else { CounterMode::Mode1 };
            match Session::builder(&mut ctx).counter_mode(mode).build() {
                Ok(s) => {
                    s.finalize().unwrap();
                    true
                }
                Err(_) => false,
            }
        });
        assert_eq!(
            oks.iter().filter(|&&ok| ok).count(),
            1,
            "exactly one rank wins the policy race; the other errors: {oks:?}"
        );
    }

    #[test]
    fn mux_policy_cannot_be_switched_by_override() {
        let mut spec = JobSpec::new(1, OpMode::Smp1);
        spec.counter_policy = bgp_mpi::CounterPolicy::multiplexed();
        let m = Machine::new(spec);
        let errs = m.run(|mut ctx| async move {
            // Turning rotation *off* is rejected...
            let off = Session::builder(&mut ctx).counter_mode(CounterMode::Mode1).build();
            let off_err = off.is_err();
            // ...while restating the job's own policy is a no-op.
            let same = Session::builder(&mut ctx)
                .counter_policy(bgp_mpi::CounterPolicy::multiplexed())
                .build()
                .unwrap();
            same.finalize().unwrap();
            off_err
        });
        assert!(errs[0], "fixed-mode override over a multiplexed job must fail");
    }

    #[test]
    fn consecutive_sets_accumulate_separately() {
        let m = Machine::new(JobSpec::new(1, OpMode::Smp1));
        let dump = m.run(|mut ctx| async move {
            let s = Session::builder(&mut ctx).build().unwrap();
            let mut s1 = s.start(1).unwrap();
            s1.fp1(SemOp::Add);
            let s = s1.stop().unwrap();
            let mut s2 = s.start(2).unwrap();
            s2.fp1(SemOp::Mul);
            s2.stop().unwrap().finalize().unwrap()
        });
        let dumps = dump[0].dumps().unwrap();
        let d = &dumps[0];
        assert!(d.set(1).is_some() && d.set(2).is_some());
    }
}
