//! A **BGLperfctr-style compatibility view** (paper §II).
//!
//! On Blue Gene/L, applications read counters through `BGLperfctr`, which
//! hid "the large number of available events in the CPU and the complex
//! mapping of events onto possible physical counters" behind "a set of
//! predefined mnemonics … an abstraction of 52 counters, unifying the UPC
//! and FPU counters and extending them to 64-bit counters". Codes written
//! against that generation expect a small, flat, named counter list
//! rather than the BG/P unit's 4×256 mode/slot space.
//!
//! This module provides that porting aid: a curated mnemonic table that
//! maps legacy-style names onto the BG/P event catalog and reads them out
//! of decoded dumps, summing per-core where the legacy counter was
//! core-aggregated. The paper's point — that such system-specific APIs
//! are why PAPI exists — stands; this view makes the cost of the old
//! interface concrete and testable.

use crate::dump::NodeDump;
use bgp_arch::events::{CoreEvent, EventId, NetEvent, SharedEvent};
use bgp_arch::CORES_PER_NODE;

/// A legacy-style named counter: one mnemonic over one or more BG/P
/// events (per-core events aggregate across cores).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mnemonic {
    /// Legacy name, `BGL_…` style.
    pub name: &'static str,
    /// The BG/P events it aggregates.
    pub events: Vec<EventId>,
}

fn per_core(ev: CoreEvent) -> Vec<EventId> {
    (0..CORES_PER_NODE).map(|c| ev.id(c)).collect()
}

/// The 52-mnemonic table of the compatibility view.
pub fn mnemonics() -> Vec<Mnemonic> {
    let mut out = Vec::with_capacity(52);
    let mut core = |name, ev| out.push(Mnemonic { name, events: per_core(ev) });
    // Pipeline (8)
    core("BGL_INSTRUCTIONS", CoreEvent::InstrCompleted);
    core("BGL_CYCLES", CoreEvent::CycleCount);
    core("BGL_INT_OPS", CoreEvent::IntOp);
    core("BGL_BRANCHES", CoreEvent::Branch);
    core("BGL_BRANCH_MISS", CoreEvent::BranchMispredict);
    core("BGL_STALL_MEM", CoreEvent::StallMem);
    core("BGL_STALL_FPU", CoreEvent::StallFpu);
    core("BGL_FP_MOVES", CoreEvent::FpMove);
    // FPU (8)
    core("BGL_FPU_ADD_SUB", CoreEvent::FpAddSub);
    core("BGL_FPU_MULT", CoreEvent::FpMult);
    core("BGL_FPU_DIV", CoreEvent::FpDiv);
    core("BGL_FPU_FMA", CoreEvent::FpFma);
    core("BGL_FPU_SIMD_ADD_SUB", CoreEvent::FpSimdAddSub);
    core("BGL_FPU_SIMD_MULT", CoreEvent::FpSimdMult);
    core("BGL_FPU_SIMD_DIV", CoreEvent::FpSimdDiv);
    core("BGL_FPU_SIMD_FMA", CoreEvent::FpSimdFma);
    // Loads/stores (8)
    core("BGL_LOADS", CoreEvent::Load);
    core("BGL_STORES", CoreEvent::Store);
    core("BGL_LOAD_DOUBLE", CoreEvent::LoadDouble);
    core("BGL_STORE_DOUBLE", CoreEvent::StoreDouble);
    core("BGL_QUADLOAD", CoreEvent::Quadload);
    core("BGL_QUADSTORE", CoreEvent::Quadstore);
    core("BGL_L1D_WRITEBACKS", CoreEvent::L1dWriteback);
    core("BGL_L2_STREAMS", CoreEvent::L2StreamAlloc);
    // Caches (10)
    core("BGL_L1D_HITS", CoreEvent::L1dHit);
    core("BGL_L1D_MISSES", CoreEvent::L1dMiss);
    core("BGL_L1I_HITS", CoreEvent::L1iHit);
    core("BGL_L1I_MISSES", CoreEvent::L1iMiss);
    core("BGL_L2_HITS", CoreEvent::L2Hit);
    core("BGL_L2_MISSES", CoreEvent::L2Miss);
    core("BGL_L2_PREFETCH", CoreEvent::L2PrefetchIssued);
    core("BGL_L2_PREFETCH_HITS", CoreEvent::L2PrefetchHit);
    out.push(Mnemonic {
        name: "BGL_L3_HITS",
        events: vec![SharedEvent::L3Hit0.id(), SharedEvent::L3Hit1.id()],
    });
    out.push(Mnemonic {
        name: "BGL_L3_MISSES",
        events: vec![SharedEvent::L3Miss0.id(), SharedEvent::L3Miss1.id()],
    });
    // Memory (6)
    let shared = |name, evs: Vec<SharedEvent>| Mnemonic {
        name,
        events: evs.into_iter().map(|e| e.id()).collect(),
    };
    out.push(shared("BGL_DDR_READS", vec![SharedEvent::DdrRead0, SharedEvent::DdrRead1]));
    out.push(shared("BGL_DDR_WRITES", vec![SharedEvent::DdrWrite0, SharedEvent::DdrWrite1]));
    out.push(shared(
        "BGL_DDR_CONFLICTS",
        vec![SharedEvent::DdrConflict0, SharedEvent::DdrConflict1],
    ));
    out.push(shared(
        "BGL_L3_WRITEBACKS",
        vec![SharedEvent::L3Writeback0, SharedEvent::L3Writeback1],
    ));
    out.push(shared("BGL_L3_ALLOCS", vec![SharedEvent::L3Alloc0, SharedEvent::L3Alloc1]));
    out.push(shared(
        "BGL_SNOOPS",
        vec![SharedEvent::SnoopReq, SharedEvent::SnoopFiltered, SharedEvent::SnoopInval],
    ));
    // Network (10)
    let net = |name, ev: NetEvent| Mnemonic { name, events: vec![ev.id()] };
    out.push(net("BGL_TORUS_PKTS_SENT", NetEvent::TorusPktSent));
    out.push(net("BGL_TORUS_PKTS_RECV", NetEvent::TorusPktRecv));
    out.push(net("BGL_TORUS_BYTES_SENT", NetEvent::TorusBytesSent));
    out.push(net("BGL_TORUS_BYTES_RECV", NetEvent::TorusBytesRecv));
    out.push(net("BGL_TORUS_HOPS", NetEvent::TorusHops));
    out.push(net("BGL_COLL_PKTS_SENT", NetEvent::CollPktSent));
    out.push(net("BGL_COLL_PKTS_RECV", NetEvent::CollPktRecv));
    out.push(net("BGL_COLL_BYTES_SENT", NetEvent::CollBytesSent));
    out.push(net("BGL_COLL_BYTES_RECV", NetEvent::CollBytesRecv));
    out.push(net("BGL_BARRIERS", NetEvent::BarrierCrossed));
    // Timebase (1) + reserved spare (1) to land on the historical 52.
    out.push(net("BGL_TIMEBASE", NetEvent::TimebaseTicks));
    out.push(Mnemonic { name: "BGL_RESERVED", events: vec![] });
    out
}

/// Read one legacy counter out of a set of node dumps (summing across
/// nodes and constituent events). Events outside any dump's counter mode
/// simply contribute nothing — the same partial-visibility caveat the
/// legacy API had.
pub fn read(dumps: &[NodeDump], set: u32, name: &str) -> Option<u64> {
    let m = mnemonics().into_iter().find(|m| m.name == name)?;
    let mut total = 0u64;
    for d in dumps {
        if let Some(s) = d.set(set) {
            for ev in &m.events {
                if ev.mode() == d.mode {
                    total += s.counts[ev.slot().0 as usize];
                }
            }
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::{CounterMode, NUM_COUNTERS};

    #[test]
    fn the_table_has_exactly_52_mnemonics() {
        let m = mnemonics();
        assert_eq!(m.len(), 52, "BGLperfctr exposed an abstraction of 52 counters");
        let names: std::collections::HashSet<_> = m.iter().map(|x| x.name).collect();
        assert_eq!(names.len(), 52, "names must be unique");
    }

    #[test]
    fn per_core_mnemonics_cover_all_four_cores() {
        let m = mnemonics();
        let instr = m.iter().find(|x| x.name == "BGL_INSTRUCTIONS").unwrap();
        assert_eq!(instr.events.len(), 4);
        // Two modes are involved: cores 0-1 in mode 0, cores 2-3 in mode 1.
        let modes: std::collections::HashSet<_> =
            instr.events.iter().map(|e| e.mode()).collect();
        assert_eq!(modes.len(), 2);
    }

    #[test]
    fn read_sums_across_nodes_and_cores() {
        use crate::dump::SetDump;
        let mk = |node: u32, mode: CounterMode, fills: &[(EventId, u64)]| {
            let mut counts = vec![0u64; NUM_COUNTERS];
            for &(ev, v) in fills {
                counts[ev.slot().0 as usize] = v;
            }
            NodeDump { node, mode, sets: vec![SetDump { id: 0, records: 1, counts }] }
        };
        let dumps = vec![
            mk(
                0,
                CounterMode::Mode0,
                &[(CoreEvent::FpFma.id(0), 10), (CoreEvent::FpFma.id(1), 5)],
            ),
            mk(1, CounterMode::Mode1, &[(CoreEvent::FpFma.id(2), 7)]),
        ];
        assert_eq!(read(&dumps, 0, "BGL_FPU_FMA"), Some(22));
        assert_eq!(read(&dumps, 0, "BGL_DDR_READS"), Some(0), "mode 2 unobserved");
        assert_eq!(read(&dumps, 0, "NO_SUCH_COUNTER"), None);
    }
}
