//! The **per-node binary dump format** written by `BGP_Finalize`.
//!
//! The paper's library "dumps the difference in counter data between the
//! corresponding pairs of BGP_Start() and the BGP_Stop() functions of all
//! the sets into a binary file at each node" (§IV). This module defines
//! that record format and its hand-rolled little-endian codec, including
//! the integrity fields the post-processing tools check ("the data is
//! checked based on the number of records and the length of each record").
//!
//! ## Layout (little-endian, version 2)
//!
//! ```text
//! magic   : b"BGPC"
//! version : u32 (= 2)
//! node_id : u32
//! mode    : u8   (counter mode 0-3)
//! n_sets  : u32
//! sets    : n_sets × { set_id: u32, records: u32, counts: 256 × u64,
//!                      set_checksum: u64 }
//! checksum: u64  (position-weighted sum of everything before it)
//! ```
//!
//! Version 2 adds the **per-set checksum** (computed over the set's own
//! bytes) so a corrupted file can be salvaged set by set: the strict
//! [`decode`] still rejects the whole file on any damage, while
//! [`decode_lenient`] recovers every set whose own checksum verifies and
//! quarantines the rest — the raw material for degraded-mode
//! aggregation when nodes die or dumps arrive mangled.

use bgp_arch::events::{CounterMode, NUM_COUNTERS};
use bgp_arch::{error::Context, error::Result, BgpError};

/// File magic.
pub const MAGIC: &[u8; 4] = b"BGPC";
/// Format version.
pub const VERSION: u32 = 2;
/// Fixed header length: magic + version + node + mode + n_sets.
pub const HEADER_BYTES: usize = 17;
/// One set record: id + records + 256 counters + per-set checksum.
pub const SET_RECORD_BYTES: usize = 8 + NUM_COUNTERS * 8 + 8;

/// High bit marking a **synthetic multiplexing set**. Under
/// [`bgp_mpi::CounterPolicy::Multiplexed`] the node rotates through all
/// four counter modes, so one user set yields raw counts in every mode.
/// `BGP_Finalize` emits the primary [`SetDump`] (base-mode counts, id
/// unchanged) plus four synthetic sets carrying the per-mode blocks:
/// `id = MUX_SET_BASE | (user_set << 2) | mode`, with `records` holding
/// the mode's **occupancy** (phases the window spent counting in that
/// mode) — the weight reconstruction scales by. User set ids must stay
/// below `2^29` for the encoding to be collision-free.
pub const MUX_SET_BASE: u32 = 0x8000_0000;

/// Synthetic-set id of `user_set`'s mode-`mode` block (see
/// [`MUX_SET_BASE`]).
pub fn mux_set_id(user_set: u32, mode: usize) -> u32 {
    MUX_SET_BASE | (user_set << 2) | mode as u32
}

/// Whether `id` names a synthetic multiplexing set.
pub fn is_mux_set(id: u32) -> bool {
    id & MUX_SET_BASE != 0
}

/// Split a synthetic multiplexing set id into `(user_set, mode index)`;
/// `None` for ordinary set ids.
pub fn mux_set_parts(id: u32) -> Option<(u32, usize)> {
    is_mux_set(id).then_some(((id & !MUX_SET_BASE) >> 2, (id & 3) as usize))
}

/// Bit marking a **multiplexing schedule set**: one synthetic set per
/// multiplexed user set, `id = MUX_SCHED_BASE | user_set`, whose counts
/// carry the rotation schedule's weights instead of event counts —
/// `counts[0..4]` are the window's enabled *cycles* per mode,
/// `counts[4..8]` the enabled *phases* per mode, the rest zero. Cycle
/// weights are what reconstruction scales by; phase counts are the
/// fallback for windows shorter than a phase. Distinct from
/// [`MUX_SET_BASE`] ids because user set ids stay below `2^29`, so an
/// ordinary set never has bit 30 set and a mode set always has bit 31.
pub const MUX_SCHED_BASE: u32 = 0x4000_0000;

/// Schedule-set id of a multiplexed `user_set` (see [`MUX_SCHED_BASE`]).
pub fn mux_sched_id(user_set: u32) -> u32 {
    MUX_SCHED_BASE | user_set
}

/// Whether `id` names a multiplexing schedule set.
pub fn is_mux_sched(id: u32) -> bool {
    id & (MUX_SET_BASE | MUX_SCHED_BASE) == MUX_SCHED_BASE
}

/// Accumulated counter deltas of one instrumentation set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetDump {
    /// Set number (the argument of `BGP_Start`/`BGP_Stop`).
    pub id: u32,
    /// How many start/stop pairs were accumulated.
    pub records: u32,
    /// Summed counter deltas, one per physical counter slot.
    pub counts: Vec<u64>,
}

/// Everything one node dumps at `BGP_Finalize`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeDump {
    /// Node id within the partition.
    pub node: u32,
    /// Counter mode the node's UPC unit was programmed into.
    pub mode: CounterMode,
    /// Per-set accumulated deltas, ordered by set id.
    pub sets: Vec<SetDump>,
}

impl NodeDump {
    /// Counter deltas of one set, if present.
    pub fn set(&self, id: u32) -> Option<&SetDump> {
        self.sets.iter().find(|s| s.id == id)
    }
}

/// A set that [`decode_lenient`] could not salvage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedSet {
    /// Position of the set record within the file (0-based).
    pub index: usize,
    /// The set id as read from the file, when the id field itself was
    /// readable (it may of course be corrupt).
    pub id: Option<u32>,
    /// Byte offset of the set record within the file.
    pub offset: u64,
    /// Why the set was rejected.
    pub reason: String,
}

/// The best-effort result of [`decode_lenient`]: everything that could
/// be salvaged from a damaged dump, plus an account of what could not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredDump {
    /// Node id from the header (header integrity is vouched for by the
    /// file checksum — check [`RecoveredDump::checksum_ok`]).
    pub node: u32,
    /// Counter mode from the header.
    pub mode: CounterMode,
    /// Sets whose own checksums verified.
    pub sets: Vec<SetDump>,
    /// Sets that failed their checksum or were cut off.
    pub quarantined: Vec<QuarantinedSet>,
    /// The file ended before all declared data (and the trailer) fit.
    pub truncated: bool,
    /// The whole-file checksum verified (implies nothing was
    /// quarantined and the header is trustworthy).
    pub checksum_ok: bool,
}

impl RecoveredDump {
    /// A fully intact file: everything recovered, nothing suspicious.
    pub fn is_intact(&self) -> bool {
        self.checksum_ok && !self.truncated && self.quarantined.is_empty()
    }

    /// Convert to a [`NodeDump`] carrying only the surviving sets.
    pub fn into_dump(self) -> NodeDump {
        NodeDump { node: self.node, mode: self.mode, sets: self.sets }
    }
}

/// Encode a dump (always writes the current [`VERSION`]).
pub fn encode(dump: &NodeDump) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(HEADER_BYTES + dump.sets.len() * SET_RECORD_BYTES + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&dump.node.to_le_bytes());
    out.push(dump.mode.index() as u8);
    out.extend_from_slice(&(dump.sets.len() as u32).to_le_bytes());
    for s in &dump.sets {
        assert_eq!(s.counts.len(), NUM_COUNTERS, "a set always carries 256 counters");
        let start = out.len();
        out.extend_from_slice(&s.id.to_le_bytes());
        out.extend_from_slice(&s.records.to_le_bytes());
        for c in &s.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        // Per-set checksum over the set's own bytes, so each record is
        // independently verifiable.
        let sum = checksum(&out[start..]);
        out.extend_from_slice(&sum.to_le_bytes());
    }
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode and integrity-check a dump, strictly.
///
/// Any damage — a flipped bit anywhere, a truncated tail, trailing
/// garbage — yields [`BgpError::Corrupt`] with the byte offset of the
/// first problem found. Use [`decode_lenient`] to salvage what survives.
pub fn decode(bytes: &[u8]) -> Result<NodeDump> {
    let header = decode_header(bytes)?;
    let body_len = HEADER_BYTES + header.n_sets * SET_RECORD_BYTES;
    if bytes.len() != body_len + 8 {
        return Err(BgpError::Corrupt(
            Context::new(format!(
                "length mismatch: {} bytes for {} sets (want {})",
                bytes.len(),
                header.n_sets,
                body_len + 8
            ))
            .at_node(header.node)
            .at_offset(bytes.len().min(body_len + 8) as u64),
        ));
    }
    let mut sets = Vec::with_capacity(header.n_sets);
    for i in 0..header.n_sets {
        let start = HEADER_BYTES + i * SET_RECORD_BYTES;
        let rec = &bytes[start..start + SET_RECORD_BYTES];
        let set = decode_set(rec).map_err(|reason| {
            BgpError::Corrupt(
                Context::new(reason)
                    .at_node(header.node)
                    .at_set(read_u32(&rec[0..4]))
                    .at_offset(start as u64),
            )
        })?;
        sets.push(set);
    }
    let declared = read_u64(&bytes[body_len..body_len + 8]);
    let actual = checksum(&bytes[..body_len]);
    if declared != actual {
        return Err(BgpError::Corrupt(
            Context::new(format!(
                "file checksum mismatch: stored {declared:#x}, computed {actual:#x}"
            ))
            .at_node(header.node)
            .at_offset(body_len as u64),
        ));
    }
    Ok(NodeDump { node: header.node, mode: header.mode, sets })
}

/// Decode as much of a damaged dump as possible.
///
/// Returns `Err` only when the 17-byte header itself is unusable (bad
/// magic, unknown version or mode, or the file is shorter than the
/// header) — without a trustworthy header there is no node to attribute
/// data to. Otherwise every set whose own checksum verifies is
/// recovered; the rest are quarantined with the reason and offset.
pub fn decode_lenient(bytes: &[u8]) -> Result<RecoveredDump> {
    let header = decode_header(bytes)?;
    let mut sets = Vec::new();
    let mut quarantined = Vec::new();
    let mut truncated = false;
    for i in 0..header.n_sets {
        let start = HEADER_BYTES + i * SET_RECORD_BYTES;
        if start + SET_RECORD_BYTES > bytes.len() {
            truncated = true;
            quarantined.push(QuarantinedSet {
                index: i,
                id: (start + 4 <= bytes.len())
                    .then(|| read_u32(&bytes[start..start + 4])),
                offset: start.min(bytes.len()) as u64,
                reason: "file ends mid-record".into(),
            });
            // Later records cannot start at their proper offsets either.
            // One summary entry covers them all: the declared count is
            // attacker-controlled (a flipped header byte can claim 2^32
            // sets), so the quarantine list must stay bounded by the
            // bytes actually present, never by the claim.
            if i + 1 < header.n_sets {
                quarantined.push(QuarantinedSet {
                    index: i + 1,
                    id: None,
                    offset: bytes.len() as u64,
                    reason: format!(
                        "{} more record(s) declared beyond end of file",
                        header.n_sets - i - 1
                    ),
                });
            }
            break;
        }
        let rec = &bytes[start..start + SET_RECORD_BYTES];
        match decode_set(rec) {
            Ok(set) => sets.push(set),
            Err(reason) => quarantined.push(QuarantinedSet {
                index: i,
                id: Some(read_u32(&rec[0..4])),
                offset: start as u64,
                reason,
            }),
        }
    }
    let body_len = HEADER_BYTES + header.n_sets * SET_RECORD_BYTES;
    let checksum_ok = bytes.len() == body_len + 8
        && read_u64(&bytes[body_len..body_len + 8]) == checksum(&bytes[..body_len]);
    if bytes.len() < body_len + 8 {
        truncated = true;
    }
    Ok(RecoveredDump {
        node: header.node,
        mode: header.mode,
        sets,
        quarantined,
        truncated,
        checksum_ok,
    })
}

struct Header {
    node: u32,
    mode: CounterMode,
    n_sets: usize,
}

fn decode_header(bytes: &[u8]) -> Result<Header> {
    if bytes.len() < HEADER_BYTES {
        return Err(BgpError::Corrupt(
            Context::new(format!(
                "file shorter than the {HEADER_BYTES}-byte header ({} bytes)",
                bytes.len()
            ))
            .at_offset(bytes.len() as u64),
        ));
    }
    if &bytes[0..4] != MAGIC {
        return Err(BgpError::Corrupt(Context::new("bad magic").at_offset(0)));
    }
    let version = read_u32(&bytes[4..8]);
    if version != VERSION {
        return Err(BgpError::Corrupt(
            Context::new(format!("unsupported version {version}")).at_offset(4),
        ));
    }
    let node = read_u32(&bytes[8..12]);
    let mode_byte = bytes[12];
    let mode = CounterMode::from_index(mode_byte as usize).ok_or_else(|| {
        BgpError::Corrupt(
            Context::new(format!("invalid counter mode {mode_byte}"))
                .at_node(node)
                .at_offset(12),
        )
    })?;
    let n_sets = read_u32(&bytes[13..17]) as usize;
    Ok(Header { node, mode, n_sets })
}

/// Decode one full-length set record, verifying its own checksum.
fn decode_set(rec: &[u8]) -> std::result::Result<SetDump, String> {
    debug_assert_eq!(rec.len(), SET_RECORD_BYTES);
    let payload = SET_RECORD_BYTES - 8;
    let declared = read_u64(&rec[payload..]);
    let actual = checksum(&rec[..payload]);
    if declared != actual {
        return Err(format!(
            "set checksum mismatch: stored {declared:#x}, computed {actual:#x}"
        ));
    }
    let id = read_u32(&rec[0..4]);
    let records = read_u32(&rec[4..8]);
    let counts = (0..NUM_COUNTERS)
        .map(|i| read_u64(&rec[8 + i * 8..16 + i * 8]))
        .collect();
    Ok(SetDump { id, records, counts })
}

fn checksum(bytes: &[u8]) -> u64 {
    // Position-weighted wrapping sum: cheap, order-sensitive, and —
    // because 31 is odd and thus invertible mod 2^64 — guaranteed to
    // catch every single-byte change.
    bytes
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc.wrapping_mul(31).wrapping_add(b as u64 ^ i as u64))
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeDump {
        NodeDump {
            node: 7,
            mode: CounterMode::Mode2,
            sets: vec![
                SetDump { id: 0, records: 1, counts: (0..256).map(|i| i as u64 * 3).collect() },
                SetDump { id: 5, records: 2, counts: vec![u64::MAX; 256] },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let d = sample();
        assert_eq!(decode(&encode(&d)).unwrap(), d);
    }

    #[test]
    fn empty_dump_round_trips() {
        let d = NodeDump { node: 0, mode: CounterMode::Mode0, sets: vec![] };
        assert_eq!(decode(&encode(&d)).unwrap(), d);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = encode(&sample());
        b[0] = b'X';
        assert!(matches!(decode(&b), Err(BgpError::Corrupt(_))));
    }

    #[test]
    fn truncation_rejected() {
        let b = encode(&sample());
        for cut in [0, 3, 16, b.len() - 1] {
            assert!(
                matches!(decode(&b[..cut]), Err(BgpError::Corrupt(_))),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bitflip_in_counts_caught_by_checksum() {
        let mut b = encode(&sample());
        let mid = b.len() / 2;
        b[mid] ^= 0x40;
        assert!(matches!(decode(&b), Err(BgpError::Corrupt(_))));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut b = encode(&sample());
        b.push(0);
        assert!(matches!(decode(&b), Err(BgpError::Corrupt(_))));
    }

    #[test]
    fn invalid_mode_rejected() {
        let mut b = encode(&sample());
        b[12] = 9; // mode byte
        assert!(matches!(decode(&b), Err(BgpError::Corrupt(_))));
    }

    #[test]
    fn corrupt_error_carries_node_and_offset() {
        let mut b = encode(&sample());
        let mid = HEADER_BYTES + 100; // inside set 0's counts
        b[mid] ^= 0x01;
        match decode(&b) {
            Err(BgpError::Corrupt(c)) => {
                assert_eq!(c.node, Some(7));
                assert_eq!(c.set, Some(0));
                assert_eq!(c.offset, Some(HEADER_BYTES as u64));
            }
            other => panic!("expected Corrupt with context, got {other:?}"),
        }
    }

    #[test]
    fn lenient_recovers_good_sets_around_a_bad_one() {
        let d = NodeDump {
            node: 3,
            mode: CounterMode::Mode1,
            sets: (0..4)
                .map(|i| SetDump { id: i, records: 1, counts: vec![i as u64; 256] })
                .collect(),
        };
        let mut b = encode(&d);
        // Corrupt a byte in set 2's counts.
        let bad = HEADER_BYTES + 2 * SET_RECORD_BYTES + 50;
        b[bad] ^= 0xFF;
        let r = decode_lenient(&b).unwrap();
        assert_eq!(r.node, 3);
        assert_eq!(r.sets.iter().map(|s| s.id).collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(r.quarantined.len(), 1);
        assert_eq!(r.quarantined[0].index, 2);
        assert_eq!(r.quarantined[0].id, Some(2));
        assert!(!r.checksum_ok);
        assert!(!r.truncated);
        assert!(!r.is_intact());
    }

    #[test]
    fn lenient_recovers_prefix_of_truncated_file() {
        let d = sample();
        let b = encode(&d);
        // Keep the header, all of set 0, and half of set 1.
        let cut = HEADER_BYTES + SET_RECORD_BYTES + SET_RECORD_BYTES / 2;
        let r = decode_lenient(&b[..cut]).unwrap();
        assert_eq!(r.sets.len(), 1);
        assert_eq!(r.sets[0].id, 0);
        assert!(r.truncated);
        assert!(!r.checksum_ok);
        assert_eq!(r.quarantined.len(), 1);
        assert_eq!(r.quarantined[0].reason, "file ends mid-record");
    }

    #[test]
    fn lenient_on_intact_file_recovers_everything() {
        let d = sample();
        let r = decode_lenient(&encode(&d)).unwrap();
        assert!(r.is_intact());
        assert_eq!(r.into_dump(), d);
    }

    #[test]
    fn lenient_rejects_unusable_header() {
        assert!(decode_lenient(b"BGP").is_err());
        let mut b = encode(&sample());
        b[0] = b'X';
        assert!(decode_lenient(&b).is_err());
    }
}
