//! The **per-node binary dump format** written by `BGP_Finalize`.
//!
//! The paper's library "dumps the difference in counter data between the
//! corresponding pairs of BGP_Start() and the BGP_Stop() functions of all
//! the sets into a binary file at each node" (§IV). This module defines
//! that record format and its hand-rolled little-endian codec, including
//! the integrity fields the post-processing tools check ("the data is
//! checked based on the number of records and the length of each record").
//!
//! ## Layout (little-endian)
//!
//! ```text
//! magic   : b"BGPC"
//! version : u32 (= 1)
//! node_id : u32
//! mode    : u8   (counter mode 0-3)
//! n_sets  : u32
//! sets    : n_sets × { set_id: u32, records: u32, counts: 256 × u64 }
//! checksum: u64  (wrapping byte sum of everything before it)
//! ```

use bgp_arch::events::{CounterMode, NUM_COUNTERS};
use bgp_arch::{error::Result, BgpError};

/// File magic.
pub const MAGIC: &[u8; 4] = b"BGPC";
/// Format version.
pub const VERSION: u32 = 1;

/// Accumulated counter deltas of one instrumentation set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetDump {
    /// Set number (the argument of `BGP_Start`/`BGP_Stop`).
    pub id: u32,
    /// How many start/stop pairs were accumulated.
    pub records: u32,
    /// Summed counter deltas, one per physical counter slot.
    pub counts: Vec<u64>,
}

/// Everything one node dumps at `BGP_Finalize`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeDump {
    /// Node id within the partition.
    pub node: u32,
    /// Counter mode the node's UPC unit was programmed into.
    pub mode: CounterMode,
    /// Per-set accumulated deltas, ordered by set id.
    pub sets: Vec<SetDump>,
}

impl NodeDump {
    /// Counter deltas of one set, if present.
    pub fn set(&self, id: u32) -> Option<&SetDump> {
        self.sets.iter().find(|s| s.id == id)
    }
}

/// Encode a dump.
pub fn encode(dump: &NodeDump) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + dump.sets.len() * (8 + NUM_COUNTERS * 8) + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&dump.node.to_le_bytes());
    out.push(dump.mode.index() as u8);
    out.extend_from_slice(&(dump.sets.len() as u32).to_le_bytes());
    for s in &dump.sets {
        assert_eq!(s.counts.len(), NUM_COUNTERS, "a set always carries 256 counters");
        out.extend_from_slice(&s.id.to_le_bytes());
        out.extend_from_slice(&s.records.to_le_bytes());
        for c in &s.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode and integrity-check a dump.
pub fn decode(bytes: &[u8]) -> Result<NodeDump> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(BgpError::Corrupt("bad magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(BgpError::Corrupt(format!("unsupported version {version}")));
    }
    let node = r.u32()?;
    let mode_byte = r.u8()?;
    let mode = CounterMode::from_index(mode_byte as usize)
        .ok_or_else(|| BgpError::Corrupt(format!("invalid counter mode {mode_byte}")))?;
    let n_sets = r.u32()? as usize;
    // Each set record is 8 + 2048 bytes; guard length before reading.
    let body_len = 17 + n_sets * (8 + NUM_COUNTERS * 8);
    if bytes.len() != body_len + 8 {
        return Err(BgpError::Corrupt(format!(
            "length mismatch: {} bytes for {} sets (want {})",
            bytes.len(),
            n_sets,
            body_len + 8
        )));
    }
    let mut sets = Vec::with_capacity(n_sets);
    for _ in 0..n_sets {
        let id = r.u32()?;
        let records = r.u32()?;
        let mut counts = Vec::with_capacity(NUM_COUNTERS);
        for _ in 0..NUM_COUNTERS {
            counts.push(r.u64()?);
        }
        sets.push(SetDump { id, records, counts });
    }
    let declared = r.u64()?;
    let actual = checksum(&bytes[..body_len]);
    if declared != actual {
        return Err(BgpError::Corrupt(format!(
            "checksum mismatch: stored {declared:#x}, computed {actual:#x}"
        )));
    }
    Ok(NodeDump { node, mode, sets })
}

fn checksum(bytes: &[u8]) -> u64 {
    // Position-weighted wrapping sum: cheap, order-sensitive.
    bytes
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc.wrapping_mul(31).wrapping_add(b as u64 ^ i as u64))
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(BgpError::Corrupt("truncated dump".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeDump {
        NodeDump {
            node: 7,
            mode: CounterMode::Mode2,
            sets: vec![
                SetDump { id: 0, records: 1, counts: (0..256).map(|i| i as u64 * 3).collect() },
                SetDump { id: 5, records: 2, counts: vec![u64::MAX; 256] },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let d = sample();
        assert_eq!(decode(&encode(&d)).unwrap(), d);
    }

    #[test]
    fn empty_dump_round_trips() {
        let d = NodeDump { node: 0, mode: CounterMode::Mode0, sets: vec![] };
        assert_eq!(decode(&encode(&d)).unwrap(), d);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = encode(&sample());
        b[0] = b'X';
        assert!(matches!(decode(&b), Err(BgpError::Corrupt(_))));
    }

    #[test]
    fn truncation_rejected() {
        let b = encode(&sample());
        for cut in [0, 3, 16, b.len() - 1] {
            assert!(
                matches!(decode(&b[..cut]), Err(BgpError::Corrupt(_))),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bitflip_in_counts_caught_by_checksum() {
        let mut b = encode(&sample());
        let mid = b.len() / 2;
        b[mid] ^= 0x40;
        assert!(matches!(decode(&b), Err(BgpError::Corrupt(_))));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut b = encode(&sample());
        b.push(0);
        assert!(matches!(decode(&b), Err(BgpError::Corrupt(_))));
    }

    #[test]
    fn invalid_mode_rejected() {
        let mut b = encode(&sample());
        b[12] = 9; // mode byte
        assert!(matches!(decode(&b), Err(BgpError::Corrupt(_))));
    }
}
