//! **Resilient counter collection**: fetch every node's dump with
//! bounded retries, exponential backoff, and per-node fault isolation.
//!
//! On the real machine the I/O nodes gather compute-node dumps over the
//! collective network; nodes die, links wedge, requests time out. This
//! module models that gather against a [`FaultPlan`]: each node is
//! fetched independently, transient failures ([`BgpError::is_retryable`])
//! are retried up to [`RetryPolicy::max_attempts`] with doubling
//! backoff, and fatal failures (lost nodes, corrupt-beyond-salvage
//! dumps) are recorded without sinking the run. The result is a
//! [`Collection`]: the surviving dumps plus a per-node account of what
//! happened — exactly the input degraded-mode aggregation needs.

use crate::dump::{self, NodeDump};
use crate::CounterLibrary;
use bgp_arch::BgpError;
use bgp_faults::FaultPlan;

/// Retry discipline for per-node collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum fetch attempts per node (≥ 1).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt (cycles); doubles per
    /// subsequent retry.
    pub base_backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, base_backoff_cycles: 10_000 }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry number `retry` (1-based): the
    /// classic exponential `base << (retry - 1)`.
    pub fn backoff_cycles(&self, retry: u32) -> u64 {
        self.base_backoff_cycles.saturating_mul(1u64 << (retry - 1).min(32))
    }
}

/// What collection ultimately got out of one node.
#[derive(Debug)]
pub enum NodeOutcome {
    /// Whole dump recovered, checksums clean.
    Intact,
    /// Dump recovered partially: some sets were quarantined.
    Partial {
        /// Sets whose checksums verified.
        recovered_sets: usize,
        /// Sets dropped as corrupt or cut off.
        quarantined_sets: usize,
    },
    /// Nothing usable; the final error after all permitted attempts.
    Failed(BgpError),
}

impl NodeOutcome {
    /// Whether any counter data survived from this node.
    pub fn delivered(&self) -> bool {
        !matches!(self, NodeOutcome::Failed(_))
    }
}

/// Per-node collection log.
#[derive(Debug)]
pub struct NodeReport {
    /// The node collected from.
    pub node: u32,
    /// Fetch attempts spent (≥ 1, except 0 for planned-lost nodes that
    /// were never tried).
    pub attempts: u32,
    /// Total backoff cycles burned waiting between attempts.
    pub backoff_cycles: u64,
    /// What came back.
    pub outcome: NodeOutcome,
}

/// Everything collection salvaged, plus the per-node accounting.
#[derive(Debug)]
pub struct Collection {
    /// Surviving dumps (quarantined sets already dropped), ordered by
    /// node id.
    pub dumps: Vec<NodeDump>,
    /// One report per node of the partition, ordered by node id.
    pub reports: Vec<NodeReport>,
}

impl Collection {
    /// Fraction of nodes that delivered any data, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.reports.is_empty() {
            return 1.0;
        }
        let ok = self.reports.iter().filter(|r| r.outcome.delivered()).count();
        ok as f64 / self.reports.len() as f64
    }

    /// Nodes that delivered nothing.
    pub fn failed_nodes(&self) -> Vec<u32> {
        self.reports
            .iter()
            .filter(|r| !r.outcome.delivered())
            .map(|r| r.node)
            .collect()
    }

    /// Total backoff cycles across all nodes (the price of retrying).
    pub fn total_backoff_cycles(&self) -> u64 {
        self.reports.iter().map(|r| r.backoff_cycles).sum()
    }
}

/// Collect every node's dump from `lib`, under `plan`'s faults.
///
/// Per node:
/// 1. A planned-lost node fails immediately with [`BgpError::NodeLost`]
///    — fatal, never retried.
/// 2. Each fetch attempt may time out per the plan; timeouts are
///    retryable, so collection backs off (doubling from
///    [`RetryPolicy::base_backoff_cycles`]) and tries again, up to
///    [`RetryPolicy::max_attempts`].
/// 3. A fetched dump passes through the plan's dump fault (truncation,
///    byte flip, loss) and is decoded leniently: intact files and
///    partially salvaged files both count as delivered; only an
///    unusable header is fatal.
///
/// Never panics; a machine-wide disaster yields a `Collection` whose
/// `coverage()` is 0.
///
/// Nodes are fetched concurrently — like the I/O nodes gathering their
/// processing sets in parallel — and the results assembled in node-id
/// order, so the `Collection` is identical to a serial gather.
pub fn collect_dumps(
    lib: &CounterLibrary,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Collection {
    let n_nodes = plan.nodes();
    // One scoped worker per chunk of nodes, bounded by the host's
    // parallelism; each writes only its own result slots.
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get()).min(n_nodes.max(1));
    let chunk = n_nodes.div_ceil(workers.max(1)).max(1);
    let mut results: Vec<Option<(NodeReport, Option<NodeDump>)>> = Vec::new();
    results.resize_with(n_nodes, || None);
    std::thread::scope(|s| {
        let mut rest = results.as_mut_slice();
        let mut node0 = 0u32;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let start = node0;
            s.spawn(move || {
                for (i, slot) in head.iter_mut().enumerate() {
                    *slot = Some(collect_node(lib, plan, policy, start + i as u32));
                }
            });
            rest = tail;
            node0 += take as u32;
        }
    });
    let mut dumps = Vec::new();
    let mut reports = Vec::with_capacity(n_nodes);
    for slot in results {
        let (report, dump) = slot.expect("every node slot filled");
        if let Some(d) = dump {
            dumps.push(d);
        }
        reports.push(report);
    }
    Collection { dumps, reports }
}

/// Run the retry loop for one node; returns the report and, when data
/// survived, the salvaged dump.
fn collect_node(
    lib: &CounterLibrary,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    node: u32,
) -> (NodeReport, Option<NodeDump>) {
    if plan.node_lost(node) {
        let report = NodeReport {
            node,
            attempts: 0,
            backoff_cycles: 0,
            outcome: NodeOutcome::Failed(BgpError::NodeLost { node }),
        };
        return (report, None);
    }
    let max = policy.max_attempts.max(1);
    let mut backoff_cycles = 0u64;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let err = match attempt_fetch(lib, plan, node, attempts - 1) {
            Ok((outcome, dump)) => {
                return (NodeReport { node, attempts, backoff_cycles, outcome }, Some(dump));
            }
            Err(e) => e,
        };
        // Retryable-vs-fatal classification is the error taxonomy's
        // job: timeouts and I/O hiccups earn another attempt, corrupt
        // data and lost nodes fail identically every time.
        if err.is_retryable() && attempts < max {
            backoff_cycles += policy.backoff_cycles(attempts);
            continue;
        }
        let report = NodeReport {
            node,
            attempts,
            backoff_cycles,
            outcome: NodeOutcome::Failed(err),
        };
        return (report, None);
    }
}

/// One fetch attempt: timeout check, fault application, lenient decode.
fn attempt_fetch(
    lib: &CounterLibrary,
    plan: &FaultPlan,
    node: u32,
    attempt: u32,
) -> Result<(NodeOutcome, NodeDump), BgpError> {
    if plan.collection_timeout(node, attempt) {
        return Err(BgpError::Timeout { node, attempts: attempt + 1 });
    }
    let bytes = lib
        .encoded_dump(node as usize)
        .ok_or(BgpError::NodeLost { node })?;
    let bytes = match plan.dump_fault(node) {
        Some(f) => f.apply(bytes).ok_or(BgpError::NodeLost { node })?,
        None => bytes,
    };
    let rec = dump::decode_lenient(&bytes)?;
    let outcome = if rec.is_intact() {
        NodeOutcome::Intact
    } else {
        NodeOutcome::Partial {
            recovered_sets: rec.sets.len(),
            quarantined_sets: rec.quarantined.len(),
        }
    };
    Ok((outcome, rec.into_dump()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::events::CounterMode;
    use bgp_arch::OpMode;
    use bgp_faults::FaultSpec;
    use bgp_mpi::{CounterPolicy, JobSpec, Machine};
    use std::sync::Arc;

    fn run_with(plan: Option<Arc<FaultPlan>>, ranks: usize) -> Arc<CounterLibrary> {
        let mut spec = JobSpec::new(ranks, OpMode::VirtualNode);
        spec.counter_policy = CounterPolicy::Fixed(CounterMode::Mode0);
        spec.faults = plan;
        let m = Machine::new(spec);
        let (_, lib) = crate::run_instrumented(&m, |mut ctx| async move {
            let mut v = ctx.alloc::<f64>(256);
            for i in 0..256 {
                ctx.st(&mut v, i, i as f64).await;
            }
            (ctx, ())
        });
        lib
    }

    #[test]
    fn fault_free_collection_is_full_coverage() {
        let plan = FaultPlan::inert(4);
        let lib = run_with(None, 16);
        let c = collect_dumps(&lib, &plan, &RetryPolicy::default());
        assert_eq!(c.coverage(), 1.0);
        assert_eq!(c.dumps.len(), 4);
        assert!(c.failed_nodes().is_empty());
        assert!(c.reports.iter().all(|r| r.attempts == 1 && r.backoff_cycles == 0));
    }

    #[test]
    fn lost_nodes_fail_without_retries() {
        let spec = FaultSpec { node_loss_rate: 1.0, ..FaultSpec::none() };
        let plan = Arc::new(FaultPlan::new(spec, 3, 4));
        let lib = run_with(Some(Arc::clone(&plan)), 16);
        let c = collect_dumps(&lib, &plan, &RetryPolicy::default());
        assert_eq!(c.coverage(), 0.0);
        assert_eq!(c.failed_nodes(), vec![0, 1, 2, 3]);
        for r in &c.reports {
            assert_eq!(r.attempts, 0, "lost nodes are never fetched");
            assert!(matches!(r.outcome, NodeOutcome::Failed(BgpError::NodeLost { .. })));
        }
    }

    #[test]
    fn timeouts_retry_with_exponential_backoff() {
        // 100% timeout rate: every attempt fails, exhausting the policy.
        let spec = FaultSpec { collection_timeout_rate: 1.0, ..FaultSpec::none() };
        let plan = Arc::new(FaultPlan::new(spec, 5, 1));
        let lib = run_with(Some(Arc::clone(&plan)), 4);
        let policy = RetryPolicy { max_attempts: 4, base_backoff_cycles: 100 };
        let c = collect_dumps(&lib, &plan, &policy);
        assert_eq!(c.coverage(), 0.0);
        let r = &c.reports[0];
        assert_eq!(r.attempts, 4);
        // 100 + 200 + 400 after attempts 1-3; no backoff after the last.
        assert_eq!(r.backoff_cycles, 700);
        assert!(matches!(r.outcome, NodeOutcome::Failed(BgpError::Timeout { .. })));
    }

    #[test]
    fn moderate_timeouts_usually_recover_via_retry() {
        // ~30% per-attempt timeouts, 5 attempts: expected failure rate
        // per node ≈ 0.3^5 ≈ 0.24% — all 8 nodes should deliver.
        let spec = FaultSpec { collection_timeout_rate: 0.3, ..FaultSpec::none() };
        let plan = Arc::new(FaultPlan::new(spec, 7, 8));
        let lib = run_with(Some(Arc::clone(&plan)), 32);
        let policy = RetryPolicy { max_attempts: 5, base_backoff_cycles: 10 };
        let c = collect_dumps(&lib, &plan, &policy);
        assert_eq!(c.coverage(), 1.0, "failed: {:?}", c.failed_nodes());
        // At least one node should have needed a retry at this rate.
        assert!(
            c.reports.iter().any(|r| r.attempts > 1),
            "expected some retries at 30% timeout rate"
        );
        assert!(c.total_backoff_cycles() > 0);
    }

    #[test]
    fn corrupted_dumps_degrade_to_partial_not_failed() {
        // Byte flips on every dump: most strike inside a set record and
        // quarantine just that set; header hits fail the node. Either
        // way collection completes and reports honestly.
        let spec = FaultSpec { dump_byteflip_rate: 1.0, ..FaultSpec::none() };
        let plan = Arc::new(FaultPlan::new(spec, 11, 8));
        let lib = run_with(Some(Arc::clone(&plan)), 32);
        let c = collect_dumps(&lib, &plan, &RetryPolicy::default());
        let partial = c
            .reports
            .iter()
            .filter(|r| matches!(r.outcome, NodeOutcome::Partial { .. }))
            .count();
        assert!(partial > 0, "expected partial recoveries, got {:?}", c.reports);
        // Dumps list only contains delivered nodes.
        assert_eq!(
            c.dumps.len(),
            c.reports.iter().filter(|r| r.outcome.delivered()).count()
        );
    }
}
