//! Supervised job execution: wall-clock and simulated-cycle budgets,
//! crash classification, and bounded resume-from-checkpoint retries.
//!
//! [`supervise`] wraps [`crate::run_instrumented`] the way a batch
//! scheduler wraps a Blue Gene/P job: each attempt builds a fresh
//! [`Machine`], resumes it from the newest valid snapshot in the job's
//! checkpoint directory (cold start when there is none), and guards it
//! with a wall-clock watchdog that aborts the run when the budget
//! expires. A failed attempt is *classified* from the panic payload the
//! machine re-raises:
//!
//! * **retryable** — watchdog kills (wall budget, injected kill
//!   points), MPI deadlock reports, and the generic peer-abort echo.
//!   The supervisor backs off exponentially and tries again, resuming
//!   from whatever snapshot the dead attempt left behind.
//! * **fatal** — a simulated-cycle budget violation (the job is
//!   genuinely too big; re-running cannot change a deterministic
//!   simulator's cycle count) and any unrecognized panic (a kernel
//!   bug). These stop the supervisor immediately.
//!
//! Determinism note: supervision never changes *what* the job computes.
//! A recovered job's dumps, cycle counts, and traces are byte-identical
//! to an uninterrupted run (asserted by `tests/snapshot_resume.rs`);
//! the supervisor only decides *whether* the job runs to completion.

use crate::CounterLibrary;
use bgp_mpi::machine::panic_message;
use bgp_mpi::{JobSpec, Machine, RankCtx};
use bgp_snapshot::SnapshotStore;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Supervision policy: budgets, retries, backoff, crash drills.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Wall-clock budget per attempt; `None` disables the watchdog.
    pub wall_budget: Option<Duration>,
    /// Retries after the first attempt (total attempts = retries + 1).
    pub max_retries: u32,
    /// First retry delay; doubles per retry up to [`backoff_cap`].
    ///
    /// [`backoff_cap`]: SupervisorConfig::backoff_cap
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff delay.
    pub backoff_cap: Duration,
    /// Crash drill: kill the *first* attempt deterministically when its
    /// phase counter reaches this value (via
    /// [`Machine::set_kill_at_phase`]), then recover normally. Used by
    /// recovery tests and `bgpc-run --crash-at-phase`.
    pub inject_kill_at_phase: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            wall_budget: None,
            max_retries: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            inject_kill_at_phase: None,
        }
    }
}

/// How one attempt ended.
#[derive(Clone, Debug)]
pub enum AttemptOutcome {
    /// The job ran to completion.
    Completed,
    /// The job died; `retryable` is the classification verdict and
    /// `watchdog_fired` records whether this supervisor's own wall
    /// watchdog initiated the abort.
    Failed {
        /// The panic message the machine re-raised.
        message: String,
        /// Whether [`classify_panic`] (or the watchdog) deemed it
        /// worth retrying.
        retryable: bool,
        /// Whether the wall-clock watchdog aborted this attempt.
        watchdog_fired: bool,
    },
}

/// Record of one supervised attempt.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// Phase of the snapshot this attempt resumed from (`None` = cold).
    pub resumed_from: Option<u64>,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// A successfully supervised job.
pub struct SupervisedRun<R> {
    /// Per-rank kernel results (from the completing attempt; see the
    /// replay caveat on [`Machine::resume`]).
    pub results: Vec<R>,
    /// The counter library holding the per-node dumps.
    pub library: Arc<CounterLibrary>,
    /// The machine of the completing attempt (trace export, cycle
    /// counts, [`Machine::snapshot_stats`]).
    pub machine: Arc<Machine>,
    /// Every attempt, in order; the last one is `Completed`.
    pub attempts: Vec<Attempt>,
}

/// Why supervision gave up.
#[derive(Debug)]
pub enum SupervisorError {
    /// A non-retryable failure (cycle-budget violation, kernel bug).
    Fatal {
        /// Every attempt, in order; the last one carries `message`.
        attempts: Vec<Attempt>,
        /// The fatal panic message.
        message: String,
    },
    /// Every allowed attempt failed retryably.
    RetriesExhausted {
        /// Every attempt, in order.
        attempts: Vec<Attempt>,
    },
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::Fatal { attempts, message } => write!(
                f,
                "fatal failure on attempt {}: {message}",
                attempts.len()
            ),
            SupervisorError::RetriesExhausted { attempts } => write!(
                f,
                "gave up after {} attempts; last: {}",
                attempts.len(),
                match &attempts.last().map(|a| &a.outcome) {
                    Some(AttemptOutcome::Failed { message, .. }) => message.as_str(),
                    _ => "(no attempt recorded)",
                }
            ),
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Classify a panic message re-raised by [`Machine::run`]: `true` means
/// a retry (resuming from the latest snapshot) is worthwhile.
///
/// Deadlocks are classified retryable deliberately: a deadlock after
/// resume can be a stale-snapshot artifact (e.g. a quarantined-then-
/// recovered older file), and a bounded retry from an earlier snapshot
/// is cheap. A *deterministic* deadlock simply exhausts the retry
/// budget and surfaces as [`SupervisorError::RetriesExhausted`].
pub fn classify_panic(message: &str) -> bool {
    if message.contains("simulated-cycle budget exceeded") {
        return false; // deterministic: retrying reproduces it exactly
    }
    message.contains("supervisor watchdog")
        || message.contains("MPI deadlock")
        || message.contains(bgp_mpi::machine::ABORT_ECHO)
}

/// Observation hooks into a supervised run, for callers that need to
/// watch the live machine — the counter-service daemon (`bgp-serve`)
/// uses [`RunObserver::attempt_started`] to stream a running job's
/// phase counter to subscribed clients and to keep an abort handle for
/// drains. All methods default to no-ops; [`supervise`] is
/// `supervise_observed` with the `()` observer.
pub trait RunObserver: Sync {
    /// A fresh attempt is about to run. `machine` is live for the whole
    /// attempt; its atomic phase counter (`Machine::phases`) may be
    /// sampled concurrently, and `Machine::abort_job` may be called to
    /// kill the attempt from outside.
    fn attempt_started(
        &self,
        attempt: u32,
        resumed_from: Option<u64>,
        machine: &Arc<Machine>,
    ) {
        let _ = (attempt, resumed_from, machine);
    }

    /// The attempt ended (completed or died-and-classified).
    fn attempt_ended(&self, attempt: u32, outcome: &AttemptOutcome) {
        let _ = (attempt, outcome);
    }
}

impl RunObserver for () {}

/// Run `kernel` under whole-program instrumentation with supervision:
/// budgets, watchdog kills, and bounded resume-from-checkpoint retries
/// per `cfg`. Checkpointing and the simulated-cycle budget come from
/// `spec` ([`JobSpec::checkpoint`], [`JobSpec::cycle_budget`]); without
/// a checkpoint directory every retry is a cold start.
///
/// # Errors
/// [`SupervisorError::Fatal`] on a non-retryable failure,
/// [`SupervisorError::RetriesExhausted`] when every attempt died.
pub fn supervise<R, F, Fut>(
    spec: &JobSpec,
    cfg: &SupervisorConfig,
    kernel: F,
) -> Result<SupervisedRun<R>, SupervisorError>
where
    R: Send,
    F: Fn(RankCtx) -> Fut + Sync,
    Fut: std::future::Future<Output = (RankCtx, R)> + Send,
{
    supervise_observed(spec, cfg, kernel, &())
}

/// [`supervise`] with a [`RunObserver`] watching each attempt. The
/// observer sees every machine before its run starts (live phase
/// sampling, external aborts) and every outcome after classification.
///
/// # Errors
/// Same contract as [`supervise`].
pub fn supervise_observed<R, F, Fut>(
    spec: &JobSpec,
    cfg: &SupervisorConfig,
    kernel: F,
    observer: &dyn RunObserver,
) -> Result<SupervisedRun<R>, SupervisorError>
where
    R: Send,
    F: Fn(RankCtx) -> Fut + Sync,
    Fut: std::future::Future<Output = (RankCtx, R)> + Send,
{
    let mut attempts: Vec<Attempt> = Vec::new();
    for attempt in 0..=cfg.max_retries {
        if attempt > 0 {
            let exp = 1u32 << (attempt - 1).min(16);
            let delay = cfg.backoff_base.saturating_mul(exp).min(cfg.backoff_cap);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        let machine = Machine::new(spec.clone());
        let library = CounterLibrary::for_machine(&machine);
        let resumed_from = try_resume(&machine, spec);
        if attempt == 0 {
            if let Some(phase) = cfg.inject_kill_at_phase {
                machine.set_kill_at_phase(phase);
            }
        }
        observer.attempt_started(attempt, resumed_from, &machine);

        // Wall watchdog: a helper thread that aborts the job when the
        // budget elapses before the run signals completion (by dropping
        // the channel sender).
        let watchdog_fired = Arc::new(AtomicBool::new(false));
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let watchdog = cfg.wall_budget.map(|budget| {
            let machine = Arc::clone(&machine);
            let fired = Arc::clone(&watchdog_fired);
            std::thread::spawn(move || {
                if done_rx.recv_timeout(budget).is_err() {
                    fired.store(true, Ordering::SeqCst);
                    machine.abort_job();
                }
            })
        });

        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let kernel = &kernel;
            let lib_ref = &library;
            machine.run(move |ctx| {
                crate::instrumented_body(Arc::clone(lib_ref), ctx, kernel)
            })
        }));
        drop(done_tx);
        if let Some(w) = watchdog {
            let _ = w.join();
        }

        match out {
            Ok(results) => {
                let outcome = AttemptOutcome::Completed;
                observer.attempt_ended(attempt, &outcome);
                attempts.push(Attempt { resumed_from, outcome });
                return Ok(SupervisedRun { results, library, machine, attempts });
            }
            Err(payload) => {
                let fired = watchdog_fired.load(Ordering::SeqCst);
                let message = match panic_message(payload.as_ref()) {
                    "" => "(non-string panic payload)".to_string(),
                    m if fired => format!("wall budget exceeded ({m})"),
                    m => m.to_string(),
                };
                let retryable = fired || classify_panic(&message);
                let outcome = AttemptOutcome::Failed {
                    message: message.clone(),
                    retryable,
                    watchdog_fired: fired,
                };
                observer.attempt_ended(attempt, &outcome);
                attempts.push(Attempt { resumed_from, outcome });
                if !retryable {
                    return Err(SupervisorError::Fatal { attempts, message });
                }
            }
        }
    }
    Err(SupervisorError::RetriesExhausted { attempts })
}

/// Resume `machine` from the newest valid snapshot of its experiment,
/// if checkpointing is configured and one exists. Quarantined files and
/// rejected snapshots are reported to stderr but never fatal — the
/// supervisor falls back to a cold start, which is always correct.
fn try_resume(machine: &Arc<Machine>, spec: &JobSpec) -> Option<u64> {
    let cp = spec.checkpoint.as_ref()?;
    let store = SnapshotStore::new(&cp.dir, cp.retain);
    match store.load_latest_valid(spec.fingerprint()) {
        Ok(outcome) => {
            for q in &outcome.quarantined {
                eprintln!(
                    "supervisor: quarantined snapshot {}: {}",
                    q.path.display(),
                    q.reason
                );
            }
            let (snap, path) = outcome.snapshot?;
            let phase = snap.phase;
            match machine.resume(snap) {
                Ok(()) => Some(phase),
                Err(e) => {
                    eprintln!(
                        "supervisor: refusing snapshot {}: {e}",
                        path.display()
                    );
                    None
                }
            }
        }
        Err(e) => {
            eprintln!("supervisor: snapshot store unreadable: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_arch::OpMode;
    use bgp_mpi::machine::CheckpointConfig;
    use bgp_mpi::SemOp;

    async fn kernel(mut ctx: RankCtx) -> (RankCtx, u64) {
        let mut v = ctx.alloc::<f64>(512);
        for round in 0..4u64 {
            for i in 0..512 {
                ctx.st(&mut v, i, round as f64).await;
            }
            ctx.fp_scalar_n(SemOp::MulAdd, 128);
            ctx.barrier().await;
        }
        let r = ctx.allreduce_sum_f64(&[1.0]).await[0].to_bits();
        (ctx, r)
    }

    fn spec(dir: Option<&std::path::Path>) -> JobSpec {
        let mut spec = JobSpec::new(4, OpMode::VirtualNode);
        if let Some(dir) = dir {
            spec.checkpoint = Some(CheckpointConfig::new(dir, 2));
        }
        spec
    }

    fn fast(cfg: &mut SupervisorConfig) {
        cfg.backoff_base = Duration::ZERO;
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join(format!("bgp-sup-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clean_job_completes_on_first_attempt() {
        let run = supervise(&spec(None), &SupervisorConfig::default(), kernel)
            .expect("clean job supervises");
        assert_eq!(run.attempts.len(), 1);
        assert!(matches!(run.attempts[0].outcome, AttemptOutcome::Completed));
        assert!(run.library.dumps().is_ok(), "dumps available");
    }

    #[test]
    fn injected_kill_recovers_from_snapshot() {
        let dir = tempdir("kill");
        // Reference: the same job, unsupervised and uninterrupted.
        let reference = {
            let m = Machine::new(spec(None));
            let (_, lib) = crate::run_instrumented(&m, kernel);
            lib.dumps().unwrap()
        };
        let mut cfg = SupervisorConfig::default();
        fast(&mut cfg);
        cfg.inject_kill_at_phase = Some(5);
        let run = supervise(&spec(Some(&dir)), &cfg, kernel).expect("recovers");
        assert_eq!(run.attempts.len(), 2, "one kill, one recovery");
        match &run.attempts[0].outcome {
            AttemptOutcome::Failed { message, retryable, watchdog_fired } => {
                assert!(message.contains("supervisor watchdog"), "{message}");
                assert!(retryable);
                assert!(!watchdog_fired, "injected kill, not the wall watchdog");
            }
            other => panic!("first attempt should fail: {other:?}"),
        }
        assert!(
            run.attempts[1].resumed_from.is_some(),
            "recovery must resume from a snapshot, not cold-start"
        );
        assert_eq!(
            run.library.dumps().unwrap(),
            reference,
            "recovered dumps differ from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cycle_budget_violation_is_fatal() {
        let mut s = spec(None);
        s.cycle_budget = Some(1); // impossible budget
        let mut cfg = SupervisorConfig::default();
        fast(&mut cfg);
        match supervise(&s, &cfg, kernel) {
            Err(SupervisorError::Fatal { attempts, message }) => {
                assert_eq!(attempts.len(), 1, "fatal failures never retry");
                assert!(message.contains("cycle budget"), "{message}");
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("must not complete"),
        }
    }

    #[test]
    fn wall_watchdog_kill_is_retryable_until_exhausted() {
        let mut cfg = SupervisorConfig::default();
        fast(&mut cfg);
        cfg.max_retries = 1;
        cfg.wall_budget = Some(Duration::ZERO); // dies instantly, every time
        match supervise(&spec(None), &cfg, kernel) {
            Err(SupervisorError::RetriesExhausted { attempts }) => {
                assert_eq!(attempts.len(), 2);
                for a in &attempts {
                    match &a.outcome {
                        AttemptOutcome::Failed { watchdog_fired, retryable, .. } => {
                            assert!(*watchdog_fired && *retryable);
                        }
                        other => panic!("attempt completed: {other:?}"),
                    }
                }
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("zero wall budget must not complete"),
        }
    }

    #[test]
    fn classification_table() {
        assert!(!classify_panic("simulated-cycle budget exceeded: 10 > 1 cycles at phase 64"));
        assert!(classify_panic("job killed by supervisor watchdog at phase 5 (injected kill point)"));
        assert!(classify_panic("MPI deadlock: all live ranks blocked"));
        assert!(classify_panic(bgp_mpi::machine::ABORT_ECHO));
        assert!(!classify_panic("index out of bounds: the len is 3"));
        assert!(!classify_panic(""));
    }
}
