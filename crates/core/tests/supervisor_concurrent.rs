//! The supervisor under concurrency: many jobs supervised from many
//! threads at once, with deliberately mixed outcomes. The counter
//! service runs exactly this shape (a worker pool calling `supervise`
//! in parallel), so classification and results must be a function of
//! each job alone — never of scheduling interleaving between jobs.

use bgp_arch::OpMode;
use bgp_core::supervisor::{
    supervise, supervise_observed, AttemptOutcome, RunObserver, SupervisorConfig,
    SupervisorError,
};
use bgp_core::{run_instrumented, CounterLibrary};
use bgp_mpi::machine::CheckpointConfig;
use bgp_mpi::{JobSpec, Machine, RankCtx, SemOp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A small deterministic kernel with enough phases for a mid-run kill.
async fn kernel(mut ctx: RankCtx) -> (RankCtx, u64) {
    let mut v = ctx.alloc::<f64>(256);
    for round in 0..4u64 {
        for i in 0..256 {
            ctx.st(&mut v, i, round as f64).await;
        }
        ctx.fp_scalar_n(SemOp::MulAdd, 64);
        ctx.barrier().await;
    }
    let r = ctx.allreduce_sum_f64(&[1.0]).await[0].to_bits();
    (ctx, r)
}

fn spec(dir: Option<&std::path::Path>) -> JobSpec {
    let mut spec = JobSpec::new(4, OpMode::VirtualNode);
    spec.sim_threads = Some(1); // many jobs at once; don't oversubscribe
    if let Some(dir) = dir {
        spec.checkpoint = Some(CheckpointConfig::new(dir, 2));
    }
    spec
}

fn fast() -> SupervisorConfig {
    SupervisorConfig { backoff_base: Duration::ZERO, ..SupervisorConfig::default() }
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("bgp-supc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// What one supervised job is scripted to do, and what must come out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scripted {
    Clean,
    WatchdogRetry,
    Fatal,
}

#[test]
fn mixed_outcomes_are_interleaving_independent() {
    // Reference dumps from one clean, unsupervised, serial run.
    let reference = {
        let m = Machine::new(spec(None));
        let (_, lib) = run_instrumented(&m, kernel);
        lib.dumps().unwrap()
    };

    let scripts: Vec<Scripted> = (0..9)
        .map(|i| match i % 3 {
            0 => Scripted::Clean,
            1 => Scripted::WatchdogRetry,
            _ => Scripted::Fatal,
        })
        .collect();

    let reference = &reference;
    let scripts = &scripts;
    std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .enumerate()
            .map(|(i, &script)| {
                scope.spawn(move || {
                    let mut cfg = fast();
                    let dir;
                    let mut s = match script {
                        Scripted::Clean => spec(None),
                        Scripted::WatchdogRetry => {
                            dir = tempdir(&format!("job{i}"));
                            cfg.inject_kill_at_phase = Some(5);
                            spec(Some(&dir))
                        }
                        Scripted::Fatal => {
                            let mut s = spec(None);
                            s.cycle_budget = Some(1);
                            s
                        }
                    };
                    // Perturb nothing outcome-relevant between jobs of
                    // the same script: identical specs must produce
                    // identical dumps regardless of what runs next to
                    // them. (cycle_budget is fingerprint-cosmetic.)
                    s.quantum = 2048;
                    (i, script, supervise(&s, &cfg, kernel))
                })
            })
            .collect();

        for h in handles {
            let (i, script, out) = h.join().expect("supervisor thread must not panic");
            match (script, out) {
                (Scripted::Clean, Ok(run)) => {
                    assert_eq!(run.attempts.len(), 1, "job {i}: clean = one attempt");
                    assert!(matches!(run.attempts[0].outcome, AttemptOutcome::Completed));
                    assert_eq!(
                        run.library.dumps().unwrap(),
                        *reference,
                        "job {i}: clean dumps must match the serial reference"
                    );
                }
                (Scripted::WatchdogRetry, Ok(run)) => {
                    assert_eq!(run.attempts.len(), 2, "job {i}: one kill, one recovery");
                    match &run.attempts[0].outcome {
                        AttemptOutcome::Failed { message, retryable, .. } => {
                            assert!(
                                message.contains("supervisor watchdog"),
                                "job {i}: {message}"
                            );
                            assert!(*retryable, "job {i}: kill must classify retryable");
                        }
                        other => panic!("job {i}: first attempt completed: {other:?}"),
                    }
                    assert!(
                        run.attempts[1].resumed_from.is_some(),
                        "job {i}: recovery must resume from a snapshot"
                    );
                    assert_eq!(
                        run.library.dumps().unwrap(),
                        *reference,
                        "job {i}: recovered dumps must match the serial reference"
                    );
                }
                (Scripted::Fatal, Err(SupervisorError::Fatal { attempts, message })) => {
                    assert_eq!(attempts.len(), 1, "job {i}: fatal never retries");
                    assert!(message.contains("cycle budget"), "job {i}: {message}");
                }
                (script, out) => panic!(
                    "job {i}: script {script:?} got unexpected outcome: {:?}",
                    out.map(|r| format!("Ok({} attempts)", r.attempts.len()))
                ),
            }
        }
    });
}

/// Observer used by the service daemon: it must see every attempt's
/// live machine before the run and every classified outcome after.
#[derive(Default)]
struct Recording {
    started: Mutex<Vec<(u32, Option<u64>)>>,
    ended: Mutex<Vec<(u32, bool)>>,
    live_phase_max: AtomicU64,
}

impl RunObserver for Recording {
    fn attempt_started(
        &self,
        attempt: u32,
        resumed_from: Option<u64>,
        machine: &Arc<Machine>,
    ) {
        self.started.lock().unwrap().push((attempt, resumed_from));
        // The hook's contract: the machine's phase counter is safely
        // samplable from outside while the attempt runs.
        let m = Arc::clone(machine);
        let max = self.live_phase_max.load(Ordering::SeqCst);
        self.live_phase_max.store(max.max(m.phases()), Ordering::SeqCst);
    }

    fn attempt_ended(&self, attempt: u32, outcome: &AttemptOutcome) {
        let completed = matches!(outcome, AttemptOutcome::Completed);
        self.ended.lock().unwrap().push((attempt, completed));
    }
}

#[test]
fn observer_sees_every_attempt_in_order() {
    let dir = tempdir("observer");
    let mut cfg = fast();
    cfg.inject_kill_at_phase = Some(5);
    let obs = Recording::default();
    let run = supervise_observed(&spec(Some(&dir)), &cfg, kernel, &obs)
        .expect("kill-then-recover job completes");
    assert_eq!(run.attempts.len(), 2);
    let started = obs.started.lock().unwrap().clone();
    let ended = obs.ended.lock().unwrap().clone();
    assert_eq!(started.len(), 2, "one start per attempt");
    assert_eq!(started[0], (0, None), "first attempt is a cold start");
    assert_eq!(started[1].0, 1);
    assert!(started[1].1.is_some(), "second attempt resumes from a snapshot");
    assert_eq!(ended, vec![(0, false), (1, true)]);
    // Dumps are still byte-identical to an unobserved run.
    let reference = {
        let m = Machine::new(spec(None));
        let (_, lib) = run_instrumented(&m, kernel);
        lib.dumps().unwrap()
    };
    assert_eq!(run.library.dumps().unwrap(), reference);
    drop::<Arc<CounterLibrary>>(run.library);
    let _ = std::fs::remove_dir_all(&dir);
}
