//! Adversarial tests of the dump codec: truncation at every byte
//! boundary and a flipped byte at every position. The codec must never
//! panic, the strict decoder must reject every damaged file with a
//! well-located [`BgpError::Corrupt`], and the lenient decoder must
//! either salvage exactly the undamaged sets or report an unusable
//! header — it must never hand back silently corrupted counter data.

use bgp_arch::events::{CounterMode, NUM_COUNTERS};
use bgp_arch::BgpError;
use bgp_core::dump::{
    decode, decode_lenient, encode, NodeDump, SetDump, HEADER_BYTES, SET_RECORD_BYTES,
};

/// A two-set dump with distinctive per-set data.
fn sample() -> NodeDump {
    NodeDump {
        node: 42,
        mode: CounterMode::Mode1,
        sets: vec![
            SetDump {
                id: 0,
                records: 3,
                counts: (0..NUM_COUNTERS as u64).map(|i| i * 17 + 1).collect(),
            },
            SetDump {
                id: 7,
                records: 1,
                counts: (0..NUM_COUNTERS as u64).map(|i| i * 31 + 5).collect(),
            },
        ],
    }
}

#[test]
fn round_trip_at_every_set_count() {
    for n_sets in 0..4u32 {
        let dump = NodeDump {
            node: n_sets,
            mode: CounterMode::Mode2,
            sets: (0..n_sets)
                .map(|id| SetDump {
                    id,
                    records: id + 1,
                    counts: vec![u64::from(id) * 1000 + 7; NUM_COUNTERS],
                })
                .collect(),
        };
        let bytes = encode(&dump);
        assert_eq!(bytes.len(), HEADER_BYTES + n_sets as usize * SET_RECORD_BYTES + 8);
        assert_eq!(decode(&bytes).unwrap(), dump, "strict round trip, {n_sets} sets");
        let rec = decode_lenient(&bytes).unwrap();
        assert!(rec.is_intact(), "lenient sees an intact file, {n_sets} sets");
        assert_eq!(rec.into_dump(), dump, "lenient round trip, {n_sets} sets");
    }
}

#[test]
fn truncation_at_every_byte_boundary_never_panics() {
    let dump = sample();
    let bytes = encode(&dump);
    for len in 0..bytes.len() {
        let cut = &bytes[..len];
        // Strict: every truncation is an error, never a panic.
        let err = decode(cut).expect_err("truncated file must not decode strictly");
        assert!(
            matches!(err, BgpError::Corrupt(_)),
            "truncation at {len} gave {err:?}, want Corrupt"
        );
        if let Some(off) = err.context().and_then(|c| c.offset) {
            assert!(off <= bytes.len() as u64, "offset {off} out of bounds at len {len}");
        }
        // Lenient: an unusable header is an error; anything longer
        // salvages exactly the complete, verifying set records.
        match decode_lenient(cut) {
            Err(e) => {
                assert!(len < HEADER_BYTES, "lenient failed on a usable header: {e}");
            }
            Ok(rec) => {
                assert!(len >= HEADER_BYTES);
                assert!(rec.truncated, "cut at {len} must set the truncated flag");
                assert!(!rec.is_intact());
                let whole_records = (len - HEADER_BYTES) / SET_RECORD_BYTES;
                let expect = whole_records.min(dump.sets.len());
                assert_eq!(
                    rec.sets.len(),
                    expect,
                    "cut at {len}: want {expect} salvaged set(s)"
                );
                for (i, s) in rec.sets.iter().enumerate() {
                    assert_eq!(s, &dump.sets[i], "salvaged set {i} must be bit-exact");
                }
            }
        }
    }
}

#[test]
fn single_byte_flip_at_every_position_is_caught() {
    let dump = sample();
    let bytes = encode(&dump);
    let set_start = |i: usize| HEADER_BYTES + i * SET_RECORD_BYTES;
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xFF;
        // Strict: the position-weighted checksums catch every
        // single-byte change; the error names an in-bounds offset.
        let err = decode(&bad).expect_err("flipped file must not decode strictly");
        assert!(
            matches!(err, BgpError::Corrupt(_)),
            "flip at {pos} gave {err:?}, want Corrupt"
        );
        let ctx = err.context().expect("corrupt errors carry context");
        if let Some(off) = ctx.offset {
            assert!(off <= bytes.len() as u64, "offset {off} out of bounds, flip {pos}");
        }
        // A flip inside a set record is located to that record's start.
        for i in 0..dump.sets.len() {
            if (set_start(i)..set_start(i) + SET_RECORD_BYTES).contains(&pos) {
                assert_eq!(
                    ctx.offset,
                    Some(set_start(i) as u64),
                    "flip at {pos} should be pinned to set {i}"
                );
                assert_eq!(ctx.node, Some(dump.node), "flip at {pos} should name the node");
            }
        }
        // Lenient: no panic; a salvaged set is always bit-exact — a
        // damaged one is quarantined, never silently returned.
        match decode_lenient(&bad) {
            Err(_) => {
                // Only header damage (magic, version, mode) is fatal.
                assert!(
                    pos < 13,
                    "lenient gave up on non-header damage at {pos}"
                );
            }
            Ok(rec) => {
                assert!(!rec.is_intact(), "flip at {pos} must not look intact");
                for s in &rec.sets {
                    assert!(
                        dump.sets.contains(s),
                        "flip at {pos} leaked a corrupted set {} into recovery",
                        s.id
                    );
                }
                for i in 0..dump.sets.len() {
                    let in_set = (set_start(i)..set_start(i) + SET_RECORD_BYTES).contains(&pos);
                    if in_set {
                        assert!(
                            rec.quarantined.iter().any(|q| q.index == i),
                            "flip at {pos} in set {i} must quarantine it"
                        );
                        assert!(
                            !rec.sets.iter().any(|s| s == &dump.sets[i]),
                            "flip at {pos}: set {i} both quarantined and recovered"
                        );
                    }
                }
                // Trailer damage: all sets survive, file checksum fails.
                if pos >= set_start(dump.sets.len()) {
                    assert_eq!(rec.sets.len(), dump.sets.len());
                    assert!(!rec.checksum_ok);
                }
            }
        }
    }
}
