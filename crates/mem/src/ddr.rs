//! The DDR2 **memory controllers** and their port-contention model.
//!
//! A Blue Gene/P chip has two on-chip DDR2 controllers, each behind one
//! L3 bank. When several cores miss the L3 concurrently their requests
//! queue at the controller; the paper attributes the >4× DDR-traffic
//! blow-up of FT and IS in Virtual Node Mode partly to this "memory port
//! contention" (§VIII, Fig. 12).
//!
//! The simulator serializes the ranks *of one node* for determinism
//! (the phase engine rotates them in multi-thousand-access quanta), so
//! literal temporal overlap never exists. Contention is therefore modeled on *activity
//! rates*: the controller remembers when each core last accessed it (in
//! units of the node's global memory-access clock) and charges each
//! request a queueing penalty per **other** core active within
//! [`HORIZON`] — a window wide enough to span all resident ranks'
//! scheduler quanta, which is exactly the timescale on which the real
//! cores' request streams interleave.

use bgp_arch::CORES_PER_NODE;

/// Activity horizon in node memory accesses. Must exceed the scheduler
/// quantum × cores so that concurrently-running ranks see each other;
/// the default quantum is 2048, giving 4 × 2048 × 2 of slack.
pub const HORIZON: u64 = 16_384;

/// Outcome of one DDR access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DdrAccess {
    /// Total latency in cycles (base + queueing).
    pub latency: u64,
    /// Number of other cores contending within the horizon (0–3).
    pub conflicts: u64,
}

/// One DDR2 controller.
#[derive(Clone, Debug)]
pub struct DdrController {
    base_latency: u64,
    conflict_penalty: u64,
    reads: u64,
    writes: u64,
    last_access: [u64; CORES_PER_NODE],
}

impl DdrController {
    /// Controller with an unloaded `base_latency` and a per-contending-core
    /// `conflict_penalty` (both cycles).
    pub fn new(base_latency: u64, conflict_penalty: u64) -> DdrController {
        DdrController {
            base_latency,
            conflict_penalty,
            reads: 0,
            writes: 0,
            last_access: [u64::MAX; CORES_PER_NODE],
        }
    }

    /// Issue one line-sized burst from `core` at node memory-access time
    /// `now`. `write` selects the burst direction.
    pub fn access(&mut self, core: usize, write: bool, now: u64) -> DdrAccess {
        if write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        let conflicts = self
            .last_access
            .iter()
            .enumerate()
            .filter(|&(c, &t)| c != core && t != u64::MAX && now.saturating_sub(t) < HORIZON)
            .count() as u64;
        self.last_access[core] = now;
        DdrAccess {
            latency: self.base_latency + conflicts * self.conflict_penalty,
            conflicts,
        }
    }

    /// Read bursts issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write bursts issued so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bursts.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Serialize the controller's runtime state (checkpoint support).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        bgp_arch::wire::put_u64(out, self.reads);
        bgp_arch::wire::put_u64(out, self.writes);
        for &t in &self.last_access {
            bgp_arch::wire::put_u64(out, t);
        }
    }

    /// Restore state previously written by [`DdrController::save_state`].
    ///
    /// # Errors
    /// [`bgp_arch::BgpError::Corrupt`] on truncated input.
    pub fn restore_state(
        &mut self,
        r: &mut bgp_arch::wire::Reader<'_>,
    ) -> bgp_arch::error::Result<()> {
        self.reads = r.u64("ddr reads")?;
        self.writes = r.u64("ddr writes")?;
        r.u64_array(&mut self.last_access, "ddr last access")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_never_conflicts() {
        let mut c = DdrController::new(100, 20);
        for i in 0..1000 {
            let a = c.access(0, false, i * 10);
            assert_eq!(a.conflicts, 0);
            assert_eq!(a.latency, 100);
        }
        assert_eq!(c.reads(), 1000);
    }

    #[test]
    fn active_peers_within_horizon_queue_requests() {
        let mut c = DdrController::new(100, 20);
        c.access(0, false, 0);
        let a = c.access(1, false, 10);
        assert_eq!(a.conflicts, 1);
        assert_eq!(a.latency, 120);
        c.access(2, true, 20);
        let a = c.access(3, false, 30);
        assert_eq!(a.conflicts, 3);
        assert_eq!(a.latency, 160);
    }

    #[test]
    fn quantum_scale_interleaving_still_counts_as_concurrency() {
        // Ranks alternate in multi-thousand-access slices; the horizon
        // must bridge them (the whole point of the rate-based model).
        let mut c = DdrController::new(100, 20);
        c.access(0, false, 0);
        let a = c.access(1, false, 3000); // one quantum later
        assert_eq!(a.conflicts, 1);
    }

    #[test]
    fn idle_peers_age_out_of_the_horizon() {
        let mut c = DdrController::new(100, 20);
        c.access(1, false, 0);
        let a = c.access(0, false, HORIZON + 1);
        assert_eq!(a.conflicts, 0, "core 1 went quiet a horizon ago");
    }

    #[test]
    fn read_write_bookkeeping() {
        let mut c = DdrController::new(10, 0);
        c.access(0, false, 0);
        c.access(0, true, 1);
        c.access(0, true, 2);
        assert_eq!((c.reads(), c.writes(), c.total()), (1, 2, 3));
    }
}
