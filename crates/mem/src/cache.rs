//! A generic set-associative, write-back, LRU cache core.
//!
//! Used for the L1-I/L1-D (32-byte lines), the private L2 and the shared
//! L3 banks (128-byte lines). Addresses are handled at *line* granularity:
//! callers shift byte addresses down before lookup, so one `Cache` never
//! needs to know its line size.
//!
//! The implementation is built for the batch engine's probe rate: each
//! way is one packed `u64` — the line tag shifted left with the
//! dirty/prefetched bits in the low bits — and every set keeps its ways
//! ordered **most- to least-recently-used**. Recency ordering makes the
//! position encode exact LRU: a hit rotates the way to the front, the
//! eviction victim is always the last way, and no per-way timestamp
//! array exists at all. Under the temporal locality the simulated
//! kernels exhibit, the hit fast path is a single load and compare of
//! way 0. Set selection is `line % sets`, reduced to a mask when `sets`
//! is a power of two — [`MachineConfig::validate`] guarantees the L1 and
//! L2 set counts are powers of two so their probes never take the `%`
//! branch, while the L3 is built from 2 MB eDRAM macros and legitimately
//! has non-power-of-two set counts (e.g. the 6 MB point of the paper's
//! Fig. 11 sweep).
//!
//! Alongside the way entries the cache maintains a **counting membership
//! filter** (one `u16` bucket per hashed line, kept exact by
//! incrementing on install and decrementing on eviction/invalidation).
//! A zero bucket proves a line absent without touching the set, which
//! turns the probe-heavy *usually-absent* paths — coherence snoops into
//! peer caches, prefetch-duplicate checks, write-back `mark_dirty`
//! probes — into a single hash and load. A non-zero bucket falls back to
//! the exact tag scan, so results never change; only the cost does.
//!
//! Way order is an implementation detail: no production consumer
//! observes it (the differential and golden tests pin that), so the
//! recency ordering is behaviorally identical to a timestamped LRU.
//!
//! [`MachineConfig::validate`]: bgp_arch::MachineConfig::validate

/// Packed-entry flag bit: line has been modified (write-back needed on
/// eviction).
const FLAG_DIRTY: u64 = 1 << 0;
/// Packed-entry flag bit: line was speculatively fetched and not yet
/// demand-touched.
const FLAG_PREFETCHED: u64 = 1 << 1;
/// Mask of the flag bits within a packed entry.
const FLAG_MASK: u64 = FLAG_DIRTY | FLAG_PREFETCHED;
/// Left shift turning a line address into its packed-entry tag.
const ENT_SHIFT: u32 = 2;
/// Sentinel entry meaning "invalid way". Cannot collide with a real
/// entry: a real tag has bit 1 << 63 clear (lines are byte addresses
/// shifted *down* by at least the 32-byte line shift, then up by
/// [`ENT_SHIFT`]).
const INVALID: u64 = u64::MAX;

/// A line evicted by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Line address (same granularity the cache was addressed with).
    pub line: u64,
    /// Whether the line was dirty (needs writing down the hierarchy).
    pub dirty: bool,
}

/// Result of a demand lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hit {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether the hit line had been brought in by a prefetch and this is
    /// the first demand touch since.
    pub first_prefetch_use: bool,
}

/// A set-associative LRU cache addressed at line granularity.
///
/// ```
/// use bgp_mem::Cache;
///
/// let mut c = Cache::new(2, 2); // 2 sets × 2 ways
/// assert!(!c.access(7, false).hit);   // cold miss
/// c.fill(7, false, false);
/// assert!(c.access(7, true).hit);     // write hit marks the line dirty
/// assert_eq!(c.flush(), vec![7]);     // flush returns the dirty lines
/// ```
/// Backing storage allocates **lazily**: a freshly built cache holds no
/// way array and no filter until the first [`Cache::fill`] (cold probes
/// answer "miss"/"absent" straight from the empty state). A machine with
/// tens of thousands of idle nodes therefore pays a few machine words
/// per cache, not `sets × ways`; the first line installed materializes
/// the arrays and behavior is identical from then on.
#[derive(Clone, Debug)]
pub struct Cache {
    /// Packed way entries (`line << ENT_SHIFT | flags`), `sets × ways`,
    /// set-major, each set ordered most- to least-recently-used.
    /// Empty until the first fill materializes it.
    ents: Vec<u64>,
    /// Counting membership filter: `filt[hash(line)]` is the number of
    /// resident lines hashing to that bucket. Zero proves absence.
    /// Empty until the first fill (or always, for unfiltered caches).
    filt: Vec<u16>,
    /// Length the filter materializes to (0 = unfiltered).
    filt_len: usize,
    /// Right-shift applied to the hashed line to index `filt`.
    filt_shift: u32,
    num_sets: usize,
    assoc: usize,
    set_mask: Option<u64>,
}

/// Multiplier of the Fibonacci line hash feeding the membership filter.
const FILT_HASH: u64 = 0x9E37_79B9_7F4A_7C15;

impl Cache {
    /// Build a cache with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(sets: usize, assoc: usize) -> Cache {
        // Two filter buckets per line keeps bucket occupancy (and thus
        // the false-maybe rate of the absence test) low.
        Cache::build(sets, assoc, true)
    }

    /// Build a cache without the membership filter. Right for caches
    /// whose probe mix rarely benefits from absence proofs (the L3:
    /// write-backs it receives usually find their line resident, so a
    /// filter is maintenance cost without payoff).
    pub fn unfiltered(sets: usize, assoc: usize) -> Cache {
        Cache::build(sets, assoc, false)
    }

    fn build(sets: usize, assoc: usize, filtered: bool) -> Cache {
        assert!(sets > 0 && assoc > 0, "cache must have sets and ways");
        let filt_len = if filtered {
            (sets * assoc * 2).next_power_of_two().max(64)
        } else {
            0
        };
        Cache {
            ents: Vec::new(),
            filt: Vec::new(),
            filt_len,
            filt_shift: 64 - filt_len.trailing_zeros().min(63),
            num_sets: sets,
            assoc,
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
        }
    }

    /// Whether the backing arrays have not been allocated yet (no line
    /// was ever installed, or every restore image was all-invalid).
    #[inline]
    fn is_cold(&self) -> bool {
        self.ents.is_empty()
    }

    /// Allocate the way array and filter. Idempotent.
    fn materialize(&mut self) {
        if self.is_cold() {
            self.ents = vec![INVALID; self.num_sets * self.assoc];
            self.filt = vec![0; self.filt_len];
        }
    }

    #[inline]
    fn filt_idx(&self, line: u64) -> usize {
        (line.wrapping_mul(FILT_HASH) >> self.filt_shift) as usize
    }

    /// Membership-filter check: `false` proves `line` is absent; `true`
    /// means "maybe resident" and callers fall back to the tag scan.
    #[inline]
    fn maybe_resident(&self, line: u64) -> bool {
        if self.is_cold() {
            return false;
        }
        self.filt.is_empty() || self.filt[self.filt_idx(line)] != 0
    }

    #[inline]
    fn filt_add(&mut self, line: u64) {
        if self.filt.is_empty() {
            return;
        }
        let i = self.filt_idx(line);
        debug_assert!(self.filt[i] < u16::MAX, "membership filter bucket overflow");
        self.filt[i] += 1;
    }

    #[inline]
    fn filt_remove(&mut self, line: u64) {
        if self.filt.is_empty() {
            return;
        }
        let i = self.filt_idx(line);
        debug_assert!(self.filt[i] > 0, "membership filter underflow");
        self.filt[i] -= 1;
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.num_sets * self.assoc
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        match self.set_mask {
            Some(m) => (line & m) as usize,
            None => (line % self.num_sets as u64) as usize,
        }
    }

    /// Demand access: returns hit/miss, refreshes LRU, optionally marks
    /// the line dirty (write hit).
    #[inline]
    pub fn access(&mut self, line: u64, write: bool) -> Hit {
        if self.is_cold() {
            return Hit { hit: false, first_prefetch_use: false };
        }
        let base = self.set_of(line) * self.assoc;
        let target = line << ENT_SHIFT;
        let wflag = if write { FLAG_DIRTY } else { 0 };
        let set = &mut self.ents[base..base + self.assoc];
        // Fast path: the MRU way answers most hits, with no reordering.
        let e0 = set[0];
        if e0 & !FLAG_MASK == target {
            set[0] = target | ((e0 & FLAG_DIRTY) | wflag);
            return Hit { hit: true, first_prefetch_use: e0 & FLAG_PREFETCHED != 0 };
        }
        for i in 1..set.len() {
            let e = set[i];
            if e & !FLAG_MASK == target {
                // Rotate the hit way to the MRU position. Shifted by
                // hand: the rotation distance is usually 1-3 ways, where
                // an explicit loop beats a generic `copy_within` memmove.
                let mut k = i;
                while k > 0 {
                    set[k] = set[k - 1];
                    k -= 1;
                }
                set[0] = target | ((e & FLAG_DIRTY) | wflag);
                return Hit { hit: true, first_prefetch_use: e & FLAG_PREFETCHED != 0 };
            }
        }
        Hit { hit: false, first_prefetch_use: false }
    }

    /// Probe without disturbing LRU or prefetch state (snoop path).
    /// The membership filter answers the common absent case without
    /// touching the set.
    #[inline]
    pub fn contains(&self, line: u64) -> bool {
        if !self.maybe_resident(line) {
            return false;
        }
        let base = self.set_of(line) * self.assoc;
        let target = line << ENT_SHIFT;
        self.ents[base..base + self.assoc].iter().any(|&e| e & !FLAG_MASK == target)
    }

    /// Install `line`, evicting the LRU way if the set is full.
    ///
    /// `dirty` marks the line modified on arrival (write-allocate store,
    /// or a write-back arriving from above). `prefetched` tags the line
    /// as speculatively fetched so the first demand hit can be attributed
    /// to the prefetcher.
    #[inline]
    pub fn fill(&mut self, line: u64, dirty: bool, prefetched: bool) -> Option<Evicted> {
        self.materialize();
        let base = self.set_of(line) * self.assoc;
        let target = line << ENT_SHIFT;
        let dflag = if dirty { FLAG_DIRTY } else { 0 };
        let set = &mut self.ents[base..base + self.assoc];
        let mut invalid_at = None;
        for i in 0..set.len() {
            let e = set[i];
            if e & !FLAG_MASK == target {
                // Already present (e.g. a racing prefetch): refresh.
                let mut f = (e & FLAG_MASK) | dflag;
                if !prefetched {
                    f &= !FLAG_PREFETCHED;
                }
                let mut k = i;
                while k > 0 {
                    set[k] = set[k - 1];
                    k -= 1;
                }
                set[0] = target | f;
                return None;
            }
            if e == INVALID && invalid_at.is_none() {
                invalid_at = Some(i);
            }
        }
        let pflag = if prefetched { FLAG_PREFETCHED } else { 0 };
        let new_ent = target | dflag | pflag;
        match invalid_at {
            Some(i) => {
                let mut k = i;
                while k > 0 {
                    set[k] = set[k - 1];
                    k -= 1;
                }
                set[0] = new_ent;
                self.filt_add(line);
                None
            }
            None => {
                let victim = set[set.len() - 1];
                let evicted = Evicted {
                    line: victim >> ENT_SHIFT,
                    dirty: victim & FLAG_DIRTY != 0,
                };
                let mut k = set.len() - 1;
                while k > 0 {
                    set[k] = set[k - 1];
                    k -= 1;
                }
                set[0] = new_ent;
                self.filt_remove(evicted.line);
                self.filt_add(line);
                Some(evicted)
            }
        }
    }

    /// Mark an already-present line dirty; returns whether it was
    /// present. Does not refresh LRU (write-backs arriving from above are
    /// not demand touches).
    #[inline]
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        if !self.maybe_resident(line) {
            return false;
        }
        let base = self.set_of(line) * self.assoc;
        let target = line << ENT_SHIFT;
        for e in &mut self.ents[base..base + self.assoc] {
            if *e & !FLAG_MASK == target {
                *e |= FLAG_DIRTY;
                return true;
            }
        }
        false
    }

    /// Remove a line (snoop invalidation); returns its dirtiness if it
    /// was present.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        if !self.maybe_resident(line) {
            return None;
        }
        let base = self.set_of(line) * self.assoc;
        let target = line << ENT_SHIFT;
        for e in &mut self.ents[base..base + self.assoc] {
            if *e & !FLAG_MASK == target {
                let dirty = *e & FLAG_DIRTY != 0;
                *e = INVALID;
                self.filt_remove(line);
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines currently resident (O(capacity); tests only).
    pub fn resident_lines(&self) -> usize {
        self.ents.iter().filter(|&&e| e != INVALID).count()
    }

    /// Serialize the cache's runtime state (checkpoint support).
    ///
    /// Only the packed way entries are written: the membership filter is
    /// an exact count of resident lines, so [`Cache::restore_state`]
    /// rebuilds it deterministically from the entries. A cold
    /// (never-filled) cache writes the same all-invalid image an eagerly
    /// allocated empty cache would, so snapshots stay byte-identical
    /// regardless of materialization state.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        if self.is_cold() {
            bgp_arch::wire::put_u64s(out, &vec![INVALID; self.num_sets * self.assoc]);
        } else {
            bgp_arch::wire::put_u64s(out, &self.ents);
        }
    }

    /// Restore state previously written by [`Cache::save_state`] into a
    /// cache of identical geometry.
    ///
    /// # Errors
    /// [`bgp_arch::BgpError::Corrupt`] on truncated input or an entry
    /// count that does not match this cache's `sets × ways`.
    pub fn restore_state(
        &mut self,
        r: &mut bgp_arch::wire::Reader<'_>,
    ) -> bgp_arch::error::Result<()> {
        let ents = r.u64s("cache entries")?;
        if ents.len() != self.num_sets * self.assoc {
            return Err(bgp_arch::BgpError::corrupt(format!(
                "cache geometry mismatch: snapshot has {} entries, cache holds {}",
                ents.len(),
                self.num_sets * self.assoc
            )));
        }
        if ents.iter().all(|&e| e == INVALID) {
            // All-invalid image: stay (or return to) the cold
            // representation so restored idle nodes cost nothing.
            self.ents = Vec::new();
            self.filt = Vec::new();
            return Ok(());
        }
        self.ents = ents;
        self.filt = vec![0; self.filt_len];
        if !self.filt.is_empty() {
            for i in 0..self.ents.len() {
                let e = self.ents[i];
                if e != INVALID {
                    self.filt_add(e >> ENT_SHIFT);
                }
            }
        }
        Ok(())
    }

    /// Drop every line, returning the dirty ones (cache flush).
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for e in &mut self.ents {
            if *e != INVALID && *e & FLAG_DIRTY != 0 {
                dirty.push(*e >> ENT_SHIFT);
            }
            *e = INVALID;
        }
        self.filt.fill(0);
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(!c.access(10, false).hit);
        c.fill(10, false, false);
        assert!(c.access(10, false).hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = Cache::new(1, 2);
        c.fill(1, false, false);
        c.fill(2, false, false);
        c.access(1, false); // 2 becomes LRU
        let ev = c.fill(3, false, false).unwrap();
        assert_eq!(ev.line, 2);
        assert!(c.contains(1));
        assert!(c.contains(3));
    }

    #[test]
    fn dirty_state_survives_and_reports_on_eviction() {
        let mut c = Cache::new(1, 1);
        c.fill(7, false, false);
        assert!(c.mark_dirty(7));
        let ev = c.fill(8, false, false).unwrap();
        assert_eq!(ev, Evicted { line: 7, dirty: true });
        let ev2 = c.fill(9, false, false).unwrap();
        assert_eq!(ev2, Evicted { line: 8, dirty: false });
    }

    #[test]
    fn write_access_marks_dirty() {
        let mut c = Cache::new(2, 2);
        c.fill(4, false, false);
        assert!(c.access(4, true).hit);
        let flushed = c.flush();
        assert_eq!(flushed, vec![4]);
    }

    #[test]
    fn prefetched_flag_reports_first_use_only() {
        let mut c = Cache::new(2, 2);
        c.fill(6, false, true);
        let h1 = c.access(6, false);
        assert!(h1.hit && h1.first_prefetch_use);
        let h2 = c.access(6, false);
        assert!(h2.hit && !h2.first_prefetch_use);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = Cache::new(1, 2);
        c.fill(1, false, false);
        c.fill(2, true, false);
        assert!(c.fill(2, false, false).is_none());
        // Dirty bit is sticky across the duplicate fill.
        let ev = c.fill(3, false, false).unwrap();
        assert_eq!(ev.line, 1, "line 2 was refreshed by refill");
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = Cache::new(2, 1);
        c.fill(3, true, false);
        assert_eq!(c.invalidate(3), Some(true));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(3));
    }

    #[test]
    fn non_power_of_two_sets_distribute_all_lines() {
        // Mirrors the 6 MB L3 configuration (3072 sets).
        let mut c = Cache::new(3, 2);
        for line in 0..6u64 {
            c.fill(line, false, false);
        }
        assert_eq!(c.resident_lines(), 6, "3 sets × 2 ways all used");
        for line in 0..6u64 {
            assert!(c.contains(line));
        }
    }

    #[test]
    fn conflict_misses_within_one_set() {
        let mut c = Cache::new(4, 1);
        c.fill(0, false, false);
        c.fill(4, false, false); // same set (0), evicts 0
        assert!(!c.contains(0));
        assert!(c.contains(4));
    }

    #[test]
    fn prefetched_flag_clears_on_duplicate_demand_fill() {
        // A duplicate fill with prefetched=false must clear the
        // speculative tag (prefetched &= prefetched semantics).
        let mut c = Cache::new(1, 2);
        c.fill(5, false, true);
        c.fill(5, false, false);
        let h = c.access(5, false);
        assert!(h.hit && !h.first_prefetch_use);
    }

    #[test]
    fn save_restore_preserves_lru_dirty_and_filter() {
        let mut c = Cache::new(4, 2);
        c.fill(1, true, false);
        c.fill(5, false, true);
        c.fill(9, false, false); // evicts within set 1
        c.access(1, false);

        let mut bytes = Vec::new();
        c.save_state(&mut bytes);
        let mut d = Cache::new(4, 2);
        let mut r = bgp_arch::wire::Reader::new(&bytes);
        d.restore_state(&mut r).unwrap();
        r.expect_end("cache").unwrap();

        assert_eq!(d.ents, c.ents, "packed entries identical");
        assert_eq!(d.filt, c.filt, "rebuilt filter identical");
        // Behavioral check: LRU victim order and dirtiness survive.
        assert_eq!(c.flush(), d.flush());

        // Geometry mismatch fails closed.
        let mut wrong = Cache::new(8, 2);
        assert!(wrong.restore_state(&mut bgp_arch::wire::Reader::new(&bytes)).is_err());
    }

    #[test]
    fn cold_cache_allocates_nothing_until_first_fill() {
        let mut c = Cache::new(1024, 8);
        assert!(c.ents.is_empty() && c.filt.is_empty(), "built cold");
        // Cold probes answer without materializing.
        assert!(!c.access(42, true).hit);
        assert!(!c.contains(42));
        assert!(!c.mark_dirty(42));
        assert_eq!(c.invalidate(42), None);
        assert_eq!(c.flush(), Vec::<u64>::new());
        assert_eq!(c.resident_lines(), 0);
        assert!(c.ents.is_empty() && c.filt.is_empty(), "still cold");
        // First fill materializes; behavior is the eager cache's.
        c.fill(42, true, false);
        assert_eq!(c.ents.len(), 1024 * 8);
        assert!(c.access(42, false).hit);
        assert_eq!(c.flush(), vec![42]);
    }

    #[test]
    fn cold_and_eager_empty_caches_snapshot_identically() {
        let cold = Cache::new(8, 2);
        let mut touched = Cache::new(8, 2);
        touched.fill(3, false, false);
        touched.invalidate(3);
        // `touched` is materialized but empty; images must match.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        cold.save_state(&mut a);
        touched.save_state(&mut b);
        assert_eq!(a, b);
        // Restoring an all-invalid image returns the cache to cold.
        let mut r = bgp_arch::wire::Reader::new(&a);
        touched.restore_state(&mut r).unwrap();
        assert!(touched.ents.is_empty(), "all-invalid restore de-materializes");
        assert!(!touched.contains(3));
    }

    #[test]
    fn invalidated_way_is_refilled_before_any_eviction() {
        let mut c = Cache::new(1, 3);
        for line in [1u64, 2, 3] {
            c.fill(line, false, false);
        }
        c.invalidate(2);
        // The freed way absorbs the next fill; nothing is evicted.
        assert!(c.fill(9, false, false).is_none());
        assert_eq!(c.resident_lines(), 3);
        // The set is full again: the next fill evicts true-LRU line 1.
        assert_eq!(c.fill(10, false, false).unwrap().line, 1);
    }
}
