//! A generic set-associative, write-back, LRU cache core.
//!
//! Used for the L1-I/L1-D (32-byte lines), the private L2 and the shared
//! L3 banks (128-byte lines). Addresses are handled at *line* granularity:
//! callers shift byte addresses down before lookup, so one `Cache` never
//! needs to know its line size.
//!
//! The implementation is flat-array based (no per-set allocation, no
//! hashing): `sets × ways` tag and metadata slots, with a monotonically
//! increasing stamp providing exact LRU. Set selection is `line % sets`,
//! reduced to a mask when `sets` is a power of two — the L3 is built from
//! 2 MB eDRAM macros and legitimately has non-power-of-two set counts
//! (e.g. the 6 MB point of the paper's Fig. 11 sweep).

/// Sentinel tag meaning "invalid way".
const INVALID: u64 = u64::MAX;

/// A line evicted by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Line address (same granularity the cache was addressed with).
    pub line: u64,
    /// Whether the line was dirty (needs writing down the hierarchy).
    pub dirty: bool,
}

/// Result of a demand lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hit {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether the hit line had been brought in by a prefetch and this is
    /// the first demand touch since.
    pub first_prefetch_use: bool,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    stamp: u64,
    dirty: bool,
    prefetched: bool,
}

impl Way {
    const EMPTY: Way = Way { tag: INVALID, stamp: 0, dirty: false, prefetched: false };
}

/// A set-associative LRU cache addressed at line granularity.
///
/// ```
/// use bgp_mem::Cache;
///
/// let mut c = Cache::new(2, 2); // 2 sets × 2 ways
/// assert!(!c.access(7, false).hit);   // cold miss
/// c.fill(7, false, false);
/// assert!(c.access(7, true).hit);     // write hit marks the line dirty
/// assert_eq!(c.flush(), vec![7]);     // flush returns the dirty lines
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    ways: Vec<Way>,
    num_sets: usize,
    assoc: usize,
    set_mask: Option<u64>,
    clock: u64,
}

impl Cache {
    /// Build a cache with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(sets: usize, assoc: usize) -> Cache {
        assert!(sets > 0 && assoc > 0, "cache must have sets and ways");
        Cache {
            ways: vec![Way::EMPTY; sets * assoc],
            num_sets: sets,
            assoc,
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            clock: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.num_sets * self.assoc
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        match self.set_mask {
            Some(m) => (line & m) as usize,
            None => (line % self.num_sets as u64) as usize,
        }
    }

    #[inline]
    fn set_slice(&mut self, set: usize) -> &mut [Way] {
        let base = set * self.assoc;
        &mut self.ways[base..base + self.assoc]
    }

    /// Demand access: returns hit/miss, refreshes LRU, optionally marks
    /// the line dirty (write hit).
    #[inline]
    pub fn access(&mut self, line: u64, write: bool) -> Hit {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(line);
        for w in self.set_slice(set) {
            if w.tag == line {
                w.stamp = clock;
                let first_prefetch_use = w.prefetched;
                w.prefetched = false;
                if write {
                    w.dirty = true;
                }
                return Hit { hit: true, first_prefetch_use };
            }
        }
        Hit { hit: false, first_prefetch_use: false }
    }

    /// Probe without disturbing LRU or prefetch state (snoop path).
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.ways[base..base + self.assoc].iter().any(|w| w.tag == line)
    }

    /// Install `line`, evicting the LRU way if the set is full.
    ///
    /// `dirty` marks the line modified on arrival (write-allocate store,
    /// or a write-back arriving from above). `prefetched` tags the line
    /// as speculatively fetched so the first demand hit can be attributed
    /// to the prefetcher.
    #[inline]
    pub fn fill(&mut self, line: u64, dirty: bool, prefetched: bool) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(line);
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        let slice = self.set_slice(set);
        for (i, w) in slice.iter_mut().enumerate() {
            if w.tag == line {
                // Already present (e.g. a racing prefetch): refresh.
                w.stamp = clock;
                w.dirty |= dirty;
                w.prefetched &= prefetched;
                return None;
            }
            if w.tag == INVALID {
                *w = Way { tag: line, stamp: clock, dirty, prefetched };
                return None;
            }
            if w.stamp < victim_stamp {
                victim_stamp = w.stamp;
                victim = i;
            }
        }
        let w = &mut slice[victim];
        let evicted = Evicted { line: w.tag, dirty: w.dirty };
        *w = Way { tag: line, stamp: clock, dirty, prefetched };
        Some(evicted)
    }

    /// Mark an already-present line dirty; returns whether it was present.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        for w in self.set_slice(set) {
            if w.tag == line {
                w.dirty = true;
                return true;
            }
        }
        false
    }

    /// Remove a line (snoop invalidation); returns its dirtiness if it
    /// was present.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        for w in self.set_slice(set) {
            if w.tag == line {
                let dirty = w.dirty;
                *w = Way::EMPTY;
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines currently resident (O(capacity); tests only).
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.tag != INVALID).count()
    }

    /// Drop every line, returning the dirty ones (cache flush).
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for w in &mut self.ways {
            if w.tag != INVALID && w.dirty {
                dirty.push(w.tag);
            }
            *w = Way::EMPTY;
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(!c.access(10, false).hit);
        c.fill(10, false, false);
        assert!(c.access(10, false).hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = Cache::new(1, 2);
        c.fill(1, false, false);
        c.fill(2, false, false);
        c.access(1, false); // 2 becomes LRU
        let ev = c.fill(3, false, false).unwrap();
        assert_eq!(ev.line, 2);
        assert!(c.contains(1));
        assert!(c.contains(3));
    }

    #[test]
    fn dirty_state_survives_and_reports_on_eviction() {
        let mut c = Cache::new(1, 1);
        c.fill(7, false, false);
        assert!(c.mark_dirty(7));
        let ev = c.fill(8, false, false).unwrap();
        assert_eq!(ev, Evicted { line: 7, dirty: true });
        let ev2 = c.fill(9, false, false).unwrap();
        assert_eq!(ev2, Evicted { line: 8, dirty: false });
    }

    #[test]
    fn write_access_marks_dirty() {
        let mut c = Cache::new(2, 2);
        c.fill(4, false, false);
        assert!(c.access(4, true).hit);
        let flushed = c.flush();
        assert_eq!(flushed, vec![4]);
    }

    #[test]
    fn prefetched_flag_reports_first_use_only() {
        let mut c = Cache::new(2, 2);
        c.fill(6, false, true);
        let h1 = c.access(6, false);
        assert!(h1.hit && h1.first_prefetch_use);
        let h2 = c.access(6, false);
        assert!(h2.hit && !h2.first_prefetch_use);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = Cache::new(1, 2);
        c.fill(1, false, false);
        c.fill(2, true, false);
        assert!(c.fill(2, false, false).is_none());
        // Dirty bit is sticky across the duplicate fill.
        let ev = c.fill(3, false, false).unwrap();
        assert_eq!(ev.line, 1, "line 2 was refreshed by refill");
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = Cache::new(2, 1);
        c.fill(3, true, false);
        assert_eq!(c.invalidate(3), Some(true));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(3));
    }

    #[test]
    fn non_power_of_two_sets_distribute_all_lines() {
        // Mirrors the 6 MB L3 configuration (3072 sets).
        let mut c = Cache::new(3, 2);
        for line in 0..6u64 {
            c.fill(line, false, false);
        }
        assert_eq!(c.resident_lines(), 6, "3 sets × 2 ways all used");
        for line in 0..6u64 {
            assert!(c.contains(line));
        }
    }

    #[test]
    fn conflict_misses_within_one_set() {
        let mut c = Cache::new(4, 1);
        c.fill(0, false, false);
        c.fill(4, false, false); // same set (0), evicts 0
        assert!(!c.contains(0));
        assert!(c.contains(4));
    }
}
