//! # bgp-mem — the Blue Gene/P node memory hierarchy
//!
//! Models the full on-chip memory system of a compute node (paper §III,
//! Fig. 2): per-core 32 KB L1 instruction/data caches (32-byte lines),
//! per-core small prefetching L2s with sequential stream engines
//! (128-byte lines), the shared multi-bank L3 (0–8 MB, the paper's
//! Fig. 11 sweep variable), snoop-filter coherence between the private
//! caches, and two DDR2 controllers with a queueing-contention model
//! (the mechanism behind Figs. 12–13).
//!
//! The entry point is [`MemorySystem`]; the building blocks
//! ([`cache::Cache`], [`prefetch::StreamPrefetcher`],
//! [`ddr::DdrController`]) are public for unit benchmarking and ablation
//! experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod ddr;
pub mod hierarchy;
pub mod prefetch;

pub use cache::{Cache, Evicted, Hit};
pub use ddr::{DdrAccess, DdrController};
pub use hierarchy::{HitLevel, MemAccess, MemStats, MemorySystem, Outcome};
pub use prefetch::{PrefetchDecision, StreamPrefetcher};
