//! The L2 sequential **stream prefetcher**.
//!
//! The Blue Gene/P private L2 is a small line store whose main job is
//! prefetching: a set of stream engines watch the L2 miss stream, detect
//! ascending sequential line sequences, and run ahead of the demand
//! stream by a configurable depth (the "prefetch amount" the paper's §IX
//! proposes sweeping — see the `fig_ext_prefetch` experiment).
//!
//! The detector is the classic two-step scheme: a miss at line `L`
//! allocates a stream only if a recent miss at `L-1` is remembered;
//! a confirmed stream at `L` prefetches `L+1 ..= L+depth` and advances
//! as demand touches arrive.

/// Decision of the prefetcher for one L2 miss.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchDecision {
    /// Lines to fetch speculatively into the L2.
    pub prefetch_lines: Vec<u64>,
    /// Whether a new stream engine was allocated for this miss.
    pub allocated_stream: bool,
}

#[derive(Clone, Copy, Debug)]
struct Stream {
    /// Next demand line this stream expects.
    expect: u64,
    /// How far ahead (exclusive) the stream has already prefetched.
    prefetched_to: u64,
    /// LRU stamp.
    stamp: u64,
}

/// Sequential stream detector + scheduler for one core's L2.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    depth: usize,
    recent_misses: [u64; Self::HISTORY],
    recent_head: usize,
    clock: u64,
}

impl StreamPrefetcher {
    /// Miss-history length used for stream detection.
    pub const HISTORY: usize = 8;

    /// A prefetcher with `max_streams` engines running `depth` lines ahead.
    /// `depth == 0` disables prefetching entirely.
    pub fn new(max_streams: usize, depth: usize) -> StreamPrefetcher {
        StreamPrefetcher {
            streams: Vec::with_capacity(max_streams),
            max_streams: max_streams.max(1),
            depth,
            recent_misses: [u64::MAX; Self::HISTORY],
            recent_head: 0,
            clock: 0,
        }
    }

    /// Configured prefetch depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Feed one L2 **demand miss** at `line`; returns what to prefetch.
    pub fn on_miss(&mut self, line: u64) -> PrefetchDecision {
        let mut out = PrefetchDecision::default();
        self.on_miss_into(line, &mut out);
        out
    }

    /// Allocation-free [`StreamPrefetcher::on_miss`]: clears `out` and
    /// refills it in place, reusing its line buffer. The batch engine
    /// keeps one scratch decision per memory system so the miss path
    /// never heap-allocates.
    pub fn on_miss_into(&mut self, line: u64, out: &mut PrefetchDecision) {
        out.prefetch_lines.clear();
        out.allocated_stream = false;
        self.clock += 1;
        let clock = self.clock;
        if self.depth == 0 {
            return;
        }

        // An existing stream predicted this line (the prefetch may have
        // been evicted before use — still treat as stream progress).
        if let Some(s) = self.streams.iter_mut().find(|s| {
            line >= s.expect && line < s.prefetched_to.max(s.expect + 1)
        }) {
            s.expect = line + 1;
            s.stamp = clock;
            let target = line + 1 + self.depth as u64;
            while s.prefetched_to < target {
                out.prefetch_lines.push(s.prefetched_to.max(line + 1));
                s.prefetched_to = out.prefetch_lines.last().unwrap() + 1;
            }
            return;
        }

        // New stream if the predecessor line missed recently.
        if line > 0 && self.recent_misses.contains(&(line - 1)) {
            let first = line + 1;
            let until = first + self.depth as u64;
            out.prefetch_lines.extend(first..until);
            out.allocated_stream = true;
            let s = Stream { expect: first, prefetched_to: until, stamp: clock };
            if self.streams.len() < self.max_streams {
                self.streams.push(s);
            } else {
                // Replace the least recently used engine.
                let lru = self
                    .streams
                    .iter_mut()
                    .min_by_key(|s| s.stamp)
                    .expect("max_streams >= 1");
                *lru = s;
            }
        }

        self.recent_misses[self.recent_head] = line;
        self.recent_head = (self.recent_head + 1) % Self::HISTORY;
    }

    /// Feed a demand **hit** on a line the prefetcher may be tracking so
    /// established streams keep running ahead of the demand stream.
    pub fn on_hit(&mut self, line: u64) -> PrefetchDecision {
        let mut out = PrefetchDecision::default();
        self.on_hit_into(line, &mut out);
        out
    }

    /// Allocation-free [`StreamPrefetcher::on_hit`]; see
    /// [`StreamPrefetcher::on_miss_into`].
    pub fn on_hit_into(&mut self, line: u64, out: &mut PrefetchDecision) {
        out.prefetch_lines.clear();
        out.allocated_stream = false;
        self.clock += 1;
        let clock = self.clock;
        if self.depth == 0 {
            return;
        }
        if let Some(s) = self.streams.iter_mut().find(|s| s.expect == line) {
            s.expect = line + 1;
            s.stamp = clock;
            let target = line + 1 + self.depth as u64;
            while s.prefetched_to < target {
                out.prefetch_lines.push(s.prefetched_to);
                s.prefetched_to += 1;
            }
        }
    }

    /// Number of active stream engines.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Serialize the prefetcher's runtime state (checkpoint support):
    /// the stream engines, the miss-history window, and the LRU clock.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        bgp_arch::wire::put_u64(out, self.streams.len() as u64);
        for s in &self.streams {
            bgp_arch::wire::put_u64(out, s.expect);
            bgp_arch::wire::put_u64(out, s.prefetched_to);
            bgp_arch::wire::put_u64(out, s.stamp);
        }
        for &m in &self.recent_misses {
            bgp_arch::wire::put_u64(out, m);
        }
        bgp_arch::wire::put_u64(out, self.recent_head as u64);
        bgp_arch::wire::put_u64(out, self.clock);
    }

    /// Restore state previously written by
    /// [`StreamPrefetcher::save_state`].
    ///
    /// # Errors
    /// [`bgp_arch::BgpError::Corrupt`] on truncated input or a stream
    /// count exceeding this prefetcher's engine capacity.
    pub fn restore_state(
        &mut self,
        r: &mut bgp_arch::wire::Reader<'_>,
    ) -> bgp_arch::error::Result<()> {
        let n = r.u64("prefetch stream count")?;
        if n > self.max_streams as u64 {
            return Err(bgp_arch::BgpError::corrupt(format!(
                "snapshot has {n} prefetch streams, capacity is {}",
                self.max_streams
            )));
        }
        self.streams.clear();
        for _ in 0..n {
            self.streams.push(Stream {
                expect: r.u64("stream expect")?,
                prefetched_to: r.u64("stream prefetched_to")?,
                stamp: r.u64("stream stamp")?,
            });
        }
        r.u64_array(&mut self.recent_misses, "prefetch miss history")?;
        let head = r.u64("prefetch history head")?;
        if head >= Self::HISTORY as u64 {
            return Err(bgp_arch::BgpError::corrupt(format!(
                "prefetch history head {head} out of range"
            )));
        }
        self.recent_head = head as usize;
        self.clock = r.u64("prefetch clock")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sequential_misses_allocate_a_stream() {
        let mut p = StreamPrefetcher::new(4, 2);
        assert_eq!(p.on_miss(100), PrefetchDecision::default());
        let d = p.on_miss(101);
        assert!(d.allocated_stream);
        assert_eq!(d.prefetch_lines, vec![102, 103]);
        assert_eq!(p.active_streams(), 1);
    }

    #[test]
    fn established_stream_runs_ahead_on_hits() {
        let mut p = StreamPrefetcher::new(4, 2);
        p.on_miss(10);
        p.on_miss(11); // stream expects 12, prefetched to 14
        let d = p.on_hit(12);
        assert_eq!(d.prefetch_lines, vec![14]);
        let d = p.on_hit(13);
        assert_eq!(d.prefetch_lines, vec![15]);
    }

    #[test]
    fn random_misses_never_prefetch() {
        let mut p = StreamPrefetcher::new(4, 2);
        for line in [5u64, 100, 33, 78, 12, 999] {
            let d = p.on_miss(line);
            assert!(d.prefetch_lines.is_empty(), "line {line}");
        }
        assert_eq!(p.active_streams(), 0);
    }

    #[test]
    fn depth_zero_disables_prefetching() {
        let mut p = StreamPrefetcher::new(4, 0);
        p.on_miss(1);
        let d = p.on_miss(2);
        assert_eq!(d, PrefetchDecision::default());
    }

    #[test]
    fn stream_engines_are_lru_replaced() {
        let mut p = StreamPrefetcher::new(2, 1);
        // Allocate streams at 3 distinct regions; capacity is 2.
        for base in [100u64, 200, 300] {
            p.on_miss(base);
            assert!(p.on_miss(base + 1).allocated_stream);
        }
        assert_eq!(p.active_streams(), 2);
        // The first (oldest) stream is gone: a hit at its expectation
        // prefetches nothing.
        assert!(p.on_hit(102).prefetch_lines.is_empty());
        // The newest stream still runs.
        assert!(!p.on_hit(302).prefetch_lines.is_empty());
    }

    #[test]
    fn stream_tolerates_missing_prefetched_line() {
        // If a prefetched line was evicted before use, the demand miss on
        // it must advance the stream rather than break it.
        let mut p = StreamPrefetcher::new(4, 2);
        p.on_miss(50);
        p.on_miss(51); // expects 52, prefetched to 54
        let d = p.on_miss(52); // prefetch was lost: miss, but stream survives
        assert!(!d.allocated_stream);
        assert_eq!(d.prefetch_lines, vec![54]);
    }
}
